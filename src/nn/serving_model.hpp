// Frozen link-prediction model for the online serving layer.
//
// A ServingModel snapshots a trained LinkPredictionModel's weights (the
// trainer may keep mutating its replicas afterwards) and answers
// link-prediction queries with EXACT full-neighborhood message passing:
// every layer consumes a node's complete neighborhood, never a sampled one.
// That choice is what makes serving cacheable and deterministic —
//
//   * a node's embedding is a pure function of (frozen weights, train
//     graph, features, node id): no RNG stream, no batch context, so a
//     cached row and a recomputed row are byte-identical;
//   * every tensor op on the inference path (gather, GEMM, relu, bias
//     broadcast, per-destination aggregation/softmax, rowwise dot) produces
//     each output row from exactly its input row(s), so a pair's score does
//     not depend on which other pairs share its scoring batch — the serving
//     stack can coalesce requests freely;
//   * the same holds for core::Evaluator::score_pairs when its fanouts are
//     all zero, which is the oracle the serving test battery replays seeded
//     request traces against (bit-identity across every cache size x batch
//     size x client count x SPLPG_VEC pin).
//
// Int8 inference (per-tensor symmetric quantization, tensor/int8 — the same
// arithmetic as the PR-9 CommHook) is opt-in per tensor class:
//   * int8_weights: every frozen weight matrix round-trips through int8 at
//     freeze time; per-entry error <= amax / 254 per tensor. Weights
//     already on their quantization grid freeze bit-exactly.
//   * int8_embeddings: cache rows are stored as the 1-byte-per-value +
//     4-byte-scale wire format (4x smaller); per-entry dequantization error
//     <= amax_row / 254. The dot predictor then scores straight off the
//     int8 payloads via tensor::score_dot_i8.
// The int8 path is exempt from the bitwise contract but bounded: per
// quantized tensor, error <= amax / 254 per entry (DESIGN.md §11).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/features.hpp"
#include "nn/model.hpp"
#include "sampling/edge_split.hpp"
#include "sampling/neighbor_sampler.hpp"

namespace splpg::nn {

struct ServingOptions {
  /// Round-trip every frozen weight matrix through per-tensor symmetric
  /// int8 at freeze time (error <= amax / 254 per entry, per tensor).
  bool int8_weights = false;
  /// Store cache rows as int8 payload + f32 scale (dim + 4 bytes instead of
  /// 4 * dim); dequantization error <= amax_row / 254 per entry.
  bool int8_embeddings = false;
  /// Stream tag for the sampler rng. Full-neighborhood expansion draws no
  /// fanout picks, so this never reaches the scores; it exists so the
  /// sampler API contract (rng advances once per call) holds per node.
  std::uint64_t seed = 7;
};

class ServingModel {
 public:
  /// Freezes `source`'s weights over the given message-passing graph and
  /// feature store (both must outlive the ServingModel; features.dim() must
  /// match the model's in_dim).
  ServingModel(const LinkPredictionModel& source, const graph::CsrGraph& graph,
               const graph::FeatureStore& features, ServingOptions options = {});

  [[nodiscard]] const ModelConfig& config() const noexcept { return model_->config(); }
  [[nodiscard]] const ServingOptions& options() const noexcept { return options_; }
  [[nodiscard]] graph::NodeId num_nodes() const noexcept { return graph_->num_nodes(); }
  [[nodiscard]] std::size_t embedding_dim() const noexcept {
    return model_->config().hidden_dim;
  }

  /// Cache-row footprint in bytes: 4 * dim (f32) or dim + 4 (int8 payload
  /// followed by the f32 scale — the PR-9 wire format).
  [[nodiscard]] std::size_t row_bytes() const noexcept;

  /// Max per-tensor weight round-trip error bound amax / 254 across all
  /// frozen tensors (0 when int8_weights is off).
  [[nodiscard]] float weight_error_bound() const noexcept { return weight_error_bound_; }

  /// Computes node `v`'s embedding by exact L-hop full-neighborhood message
  /// passing and encodes it into the cache-row format. Pure function of
  /// (frozen state, v); thread-safe const. Throws std::out_of_range for a
  /// node id outside the graph.
  void compute_row(graph::NodeId v, std::span<std::byte> out) const;

  /// Decodes one cache row to f32 (memcpy in f32 mode; dequantize in int8
  /// mode). `out` must hold embedding_dim() floats.
  void decode_row(std::span<const std::byte> row, std::span<float> out) const;

  /// Scores pairs[i] = (u_rows[i], v_rows[i]) given their cache rows. Each
  /// score depends only on its own two rows — batch composition is
  /// unobservable. In int8 mode with the dot predictor, scoring runs
  /// directly on the int8 payloads (tensor::score_dot_i8); every other
  /// combination decodes rows and runs the frozen f32 predictor.
  [[nodiscard]] std::vector<float> score_rows(std::span<const std::byte* const> u_rows,
                                              std::span<const std::byte* const> v_rows) const;

  /// Compute + score in one call, no cache (bench baselines, tests, the
  /// sync convenience path).
  [[nodiscard]] std::vector<float> score_pairs(
      std::span<const sampling::NodePair> pairs) const;

 private:
  std::unique_ptr<LinkPredictionModel> model_;  // frozen weight snapshot
  const graph::CsrGraph* graph_;
  const graph::FeatureStore* features_;
  sampling::NeighborSampler sampler_;  // all-zero fanouts: full neighborhoods
  ServingOptions options_;
  float weight_error_bound_ = 0.0F;
};

}  // namespace splpg::nn
