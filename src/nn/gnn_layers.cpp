#include "nn/gnn_layers.hpp"

#include <numeric>
#include <stdexcept>

#include "tensor/init.hpp"

namespace splpg::nn {

using sampling::Block;
using tensor::Matrix;
using tensor::Tensor;

namespace {

/// Indices [0, dst_count) — the dst prefix of src_nodes.
std::vector<std::uint32_t> dst_prefix_indices(const Block& block) {
  std::vector<std::uint32_t> idx(block.dst_count);
  std::iota(idx.begin(), idx.end(), 0U);
  return idx;
}

/// Edge index arrays extended with one implicit self-edge per destination
/// (dst d is src_nodes[d], so the self source index is d itself).
struct SelfLoopEdges {
  std::vector<std::uint32_t> src;
  std::vector<std::uint32_t> dst;
};

SelfLoopEdges with_self_loops(const Block& block) {
  SelfLoopEdges out;
  out.src.reserve(block.num_edges() + block.dst_count);
  out.dst.reserve(block.num_edges() + block.dst_count);
  out.src.assign(block.edge_src.begin(), block.edge_src.end());
  out.dst.assign(block.edge_dst.begin(), block.edge_dst.end());
  for (std::uint32_t d = 0; d < block.dst_count; ++d) {
    out.src.push_back(d);
    out.dst.push_back(d);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- GcnConv --

GcnConv::GcnConv(std::size_t in_dim, std::size_t out_dim, util::Rng& rng) {
  weight_ = register_parameter(tensor::xavier_uniform(in_dim, out_dim, rng));
  bias_ = register_parameter(tensor::zeros(1, out_dim));
}

Tensor GcnConv::forward(const Block& block, const Tensor& src_feats) const {
  // Weighted sum of neighbors, plus self, divided by (1 + total weight).
  const Tensor coef = Tensor::constant(
      Matrix(block.num_edges(), 1, std::vector<float>(block.edge_weight)));
  const Tensor agg = spmm_edges(src_feats, coef, block.edge_src, block.edge_dst,
                                block.dst_count);
  const Tensor self = gather_rows(src_feats, dst_prefix_indices(block));

  Matrix norm(block.dst_count, 1, 0.0F);
  for (std::size_t e = 0; e < block.num_edges(); ++e) {
    norm.at(block.edge_dst[e], 0) += block.edge_weight[e];
  }
  for (std::size_t d = 0; d < block.dst_count; ++d) {
    norm.at(d, 0) = 1.0F / (1.0F + norm.at(d, 0));
  }
  const Tensor mean = mul(add(agg, self), Tensor::constant(std::move(norm)));
  return add(matmul(mean, weight_), bias_);
}

// --------------------------------------------------------------- SageConv --

SageConv::SageConv(std::size_t in_dim, std::size_t out_dim, util::Rng& rng) {
  weight_self_ = register_parameter(tensor::xavier_uniform(in_dim, out_dim, rng));
  weight_neigh_ = register_parameter(tensor::xavier_uniform(in_dim, out_dim, rng));
  bias_ = register_parameter(tensor::zeros(1, out_dim));
}

Tensor SageConv::forward(const Block& block, const Tensor& src_feats) const {
  // Weighted mean over sampled neighbors (all-ones weights = plain mean).
  Matrix total(block.dst_count, 1, 0.0F);
  for (std::size_t e = 0; e < block.num_edges(); ++e) {
    total.at(block.edge_dst[e], 0) += block.edge_weight[e];
  }
  Matrix coef_values(block.num_edges(), 1);
  for (std::size_t e = 0; e < block.num_edges(); ++e) {
    const float denom = total.at(block.edge_dst[e], 0);
    coef_values.at(e, 0) = denom > 0.0F ? block.edge_weight[e] / denom : 0.0F;
  }
  const Tensor mean = spmm_edges(src_feats, Tensor::constant(std::move(coef_values)),
                                 block.edge_src, block.edge_dst, block.dst_count);
  const Tensor self = gather_rows(src_feats, dst_prefix_indices(block));
  return add(add(matmul(self, weight_self_), matmul(mean, weight_neigh_)), bias_);
}

// ---------------------------------------------------------------- GatConv --

GatConv::GatConv(std::size_t in_dim, std::size_t out_dim, util::Rng& rng, float negative_slope,
                 std::uint32_t num_heads)
    : negative_slope_(negative_slope), num_heads_(std::max(1U, num_heads)) {
  if (out_dim % num_heads_ != 0) {
    throw std::invalid_argument("GatConv: num_heads must divide out_dim");
  }
  const std::size_t head_dim = out_dim / num_heads_;
  weight_ = register_parameter(tensor::xavier_uniform(in_dim, out_dim, rng));
  for (std::uint32_t h = 0; h < num_heads_; ++h) {
    attn_src_.push_back(register_parameter(tensor::xavier_uniform(head_dim, 1, rng)));
  }
  for (std::uint32_t h = 0; h < num_heads_; ++h) {
    attn_dst_.push_back(register_parameter(tensor::xavier_uniform(head_dim, 1, rng)));
  }
  bias_ = register_parameter(tensor::zeros(1, out_dim));
}

Tensor GatConv::forward(const Block& block, const Tensor& src_feats) const {
  const Tensor z = matmul(src_feats, weight_);  // S x out
  const SelfLoopEdges edges = with_self_loops(block);
  const std::size_t head_dim = weight_.cols() / num_heads_;

  Tensor out;  // concatenated head outputs
  for (std::uint32_t h = 0; h < num_heads_; ++h) {
    const Tensor z_h = num_heads_ == 1 ? z : slice_cols(z, h * head_dim, head_dim);
    const Tensor score_src = matmul(z_h, attn_src_[h]);  // S x 1
    const Tensor score_dst = matmul(z_h, attn_dst_[h]);  // S x 1 (dst prefix used)
    const Tensor e_scores = leaky_relu(
        add(gather_rows(score_src, edges.src), gather_rows(score_dst, edges.dst)),
        negative_slope_);
    const Tensor att = segment_softmax(e_scores, edges.dst, block.dst_count);
    const Tensor out_h = spmm_edges(z_h, att, edges.src, edges.dst, block.dst_count);
    out = out.defined() ? concat_cols(out, out_h) : out_h;
  }
  return add(out, bias_);
}

// -------------------------------------------------------------- Gatv2Conv --

Gatv2Conv::Gatv2Conv(std::size_t in_dim, std::size_t out_dim, util::Rng& rng,
                     float negative_slope, std::uint32_t num_heads)
    : negative_slope_(negative_slope), num_heads_(std::max(1U, num_heads)) {
  if (out_dim % num_heads_ != 0) {
    throw std::invalid_argument("Gatv2Conv: num_heads must divide out_dim");
  }
  const std::size_t head_dim = out_dim / num_heads_;
  weight_src_ = register_parameter(tensor::xavier_uniform(in_dim, out_dim, rng));
  weight_dst_ = register_parameter(tensor::xavier_uniform(in_dim, out_dim, rng));
  for (std::uint32_t h = 0; h < num_heads_; ++h) {
    attn_.push_back(register_parameter(tensor::xavier_uniform(head_dim, 1, rng)));
  }
  bias_ = register_parameter(tensor::zeros(1, out_dim));
}

Tensor Gatv2Conv::forward(const Block& block, const Tensor& src_feats) const {
  const Tensor z_src = matmul(src_feats, weight_src_);  // S x out
  const Tensor z_dst = matmul(src_feats, weight_dst_);  // S x out

  const SelfLoopEdges edges = with_self_loops(block);
  // Per edge and head: e = a_h^T LeakyReLU(W_src h_u + W_dst h_v).
  const Tensor pre = leaky_relu(
      add(gather_rows(z_src, edges.src), gather_rows(z_dst, edges.dst)), negative_slope_);
  const std::size_t head_dim = weight_src_.cols() / num_heads_;

  Tensor out;
  for (std::uint32_t h = 0; h < num_heads_; ++h) {
    const Tensor pre_h = num_heads_ == 1 ? pre : slice_cols(pre, h * head_dim, head_dim);
    const Tensor e_scores = matmul(pre_h, attn_[h]);
    const Tensor att = segment_softmax(e_scores, edges.dst, block.dst_count);
    const Tensor z_h = num_heads_ == 1 ? z_src : slice_cols(z_src, h * head_dim, head_dim);
    const Tensor out_h = spmm_edges(z_h, att, edges.src, edges.dst, block.dst_count);
    out = out.defined() ? concat_cols(out, out_h) : out_h;
  }
  return add(out, bias_);
}

// ---------------------------------------------------------------- factory --

std::string to_string(GnnKind kind) {
  switch (kind) {
    case GnnKind::kGcn: return "gcn";
    case GnnKind::kSage: return "graphsage";
    case GnnKind::kGat: return "gat";
    case GnnKind::kGatv2: return "gatv2";
  }
  return "unknown";
}

GnnKind gnn_kind_from_string(const std::string& name) {
  if (name == "gcn") return GnnKind::kGcn;
  if (name == "graphsage" || name == "sage") return GnnKind::kSage;
  if (name == "gat") return GnnKind::kGat;
  if (name == "gatv2") return GnnKind::kGatv2;
  throw std::invalid_argument("unknown GNN kind: " + name);
}

std::unique_ptr<GnnLayer> make_gnn_layer(GnnKind kind, std::size_t in_dim, std::size_t out_dim,
                                         util::Rng& rng, std::uint32_t num_heads) {
  switch (kind) {
    case GnnKind::kGcn: return std::make_unique<GcnConv>(in_dim, out_dim, rng);
    case GnnKind::kSage: return std::make_unique<SageConv>(in_dim, out_dim, rng);
    case GnnKind::kGat:
      return std::make_unique<GatConv>(in_dim, out_dim, rng, 0.2F, num_heads);
    case GnnKind::kGatv2:
      return std::make_unique<Gatv2Conv>(in_dim, out_dim, rng, 0.2F, num_heads);
  }
  throw std::invalid_argument("unknown GNN kind");
}

}  // namespace splpg::nn
