// First-order optimizers over a Module's parameter list.
//
// Workers keep per-replica optimizer state; with gradient averaging the
// replicas stay bit-identical (same init, same averaged gradients, same
// deterministic update), which mirrors PyTorch DDP semantics.
#pragma once

#include <iosfwd>
#include <vector>

#include "nn/module.hpp"
#include "tensor/matrix.hpp"

namespace splpg::nn {

class Optimizer {
 public:
  explicit Optimizer(Module& module) : parameters_(&module.parameters()) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the current gradients.
  virtual void step() = 0;

  /// (De)serializes the optimizer's internal state (step count, moment
  /// estimates). Loading into an optimizer built over an identically shaped
  /// module makes subsequent steps bit-identical to never having paused —
  /// the exact-resume contract nn::save_train_state builds on. Stateless
  /// optimizers (SGD) write/read nothing.
  virtual void save_state(std::ostream& out) const;
  /// Throws std::runtime_error on format errors, std::invalid_argument on
  /// shape/arity mismatches with this optimizer's parameters.
  virtual void load_state(std::istream& in);

  void zero_grad() noexcept {
    for (auto& p : *parameters_) p.zero_grad();
  }

 protected:
  std::vector<tensor::Tensor>* parameters_;
};

class Sgd final : public Optimizer {
 public:
  Sgd(Module& module, float learning_rate, float weight_decay = 0.0F)
      : Optimizer(module), learning_rate_(learning_rate), weight_decay_(weight_decay) {}

  void step() override;

 private:
  float learning_rate_;
  float weight_decay_;
};

class Adam final : public Optimizer {
 public:
  Adam(Module& module, float learning_rate = 1e-3F, float beta1 = 0.9F, float beta2 = 0.999F,
       float epsilon = 1e-8F);

  void step() override;

  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

 private:
  float learning_rate_;
  float beta1_;
  float beta2_;
  float epsilon_;
  std::uint64_t t_ = 0;
  std::vector<tensor::Matrix> m_;
  std::vector<tensor::Matrix> v_;
};

}  // namespace splpg::nn
