#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

#include "util/serialize.hpp"

namespace splpg::nn {

namespace {
// Optimizer-state section header inside a train-state checkpoint.
constexpr std::uint32_t kStateMagic = 0x53504F53;  // "SPOS"

void write_matrix(std::ostream& out, const tensor::Matrix& matrix) {
  util::write_pod<std::uint64_t>(out, matrix.rows());
  util::write_pod<std::uint64_t>(out, matrix.cols());
  const auto data = matrix.data();
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
}

void read_matrix_into(std::istream& in, tensor::Matrix& matrix) {
  const auto rows = util::read_pod<std::uint64_t>(in);
  const auto cols = util::read_pod<std::uint64_t>(in);
  if (rows != matrix.rows() || cols != matrix.cols()) {
    throw std::invalid_argument("Adam::load_state: moment shape mismatch");
  }
  auto data = matrix.data();
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!in) throw std::runtime_error("Adam::load_state: unexpected end of stream");
}
}  // namespace

void Optimizer::save_state(std::ostream& out) const { (void)out; }

void Optimizer::load_state(std::istream& in) { (void)in; }

void Sgd::step() {
  for (auto& p : *parameters_) {
    if (p.grad().empty()) continue;
    auto& value = p.mutable_value();
    if (weight_decay_ > 0.0F) value.scale_inplace(1.0F - learning_rate_ * weight_decay_);
    value.axpy_inplace(-learning_rate_, p.grad());
  }
}

Adam::Adam(Module& module, float learning_rate, float beta1, float beta2, float epsilon)
    : Optimizer(module), learning_rate_(learning_rate), beta1_(beta1), beta2_(beta2),
      epsilon_(epsilon) {
  m_.reserve(parameters_->size());
  v_.reserve(parameters_->size());
  for (const auto& p : *parameters_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::step() {
  ++t_;
  const float bias1 = 1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0F - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < parameters_->size(); ++i) {
    auto& p = (*parameters_)[i];
    if (p.grad().empty()) continue;
    const auto grad = p.grad().data();
    const auto m = m_[i].data();
    const auto v = v_[i].data();
    const auto value = p.mutable_value().data();
    for (std::size_t j = 0; j < grad.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0F - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0F - beta2_) * grad[j] * grad[j];
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      value[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

void Adam::save_state(std::ostream& out) const {
  util::write_pod(out, kStateMagic);
  util::write_pod<std::uint64_t>(out, t_);
  util::write_pod<std::uint64_t>(out, m_.size());
  for (std::size_t i = 0; i < m_.size(); ++i) {
    write_matrix(out, m_[i]);
    write_matrix(out, v_[i]);
  }
  if (!out) throw std::runtime_error("Adam::save_state: write failed");
}

void Adam::load_state(std::istream& in) {
  if (util::read_pod<std::uint32_t>(in) != kStateMagic) {
    throw std::runtime_error("Adam::load_state: bad magic");
  }
  const auto t = util::read_pod<std::uint64_t>(in);
  const auto count = util::read_pod<std::uint64_t>(in);
  if (count != m_.size()) {
    throw std::invalid_argument("Adam::load_state: moment count mismatch");
  }
  for (std::size_t i = 0; i < m_.size(); ++i) {
    read_matrix_into(in, m_[i]);
    read_matrix_into(in, v_[i]);
  }
  t_ = t;
}

}  // namespace splpg::nn
