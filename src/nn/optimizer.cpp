#include "nn/optimizer.hpp"

#include <cmath>

namespace splpg::nn {

void Sgd::step() {
  for (auto& p : *parameters_) {
    if (p.grad().empty()) continue;
    auto& value = p.mutable_value();
    if (weight_decay_ > 0.0F) value.scale_inplace(1.0F - learning_rate_ * weight_decay_);
    value.axpy_inplace(-learning_rate_, p.grad());
  }
}

Adam::Adam(Module& module, float learning_rate, float beta1, float beta2, float epsilon)
    : Optimizer(module), learning_rate_(learning_rate), beta1_(beta1), beta2_(beta2),
      epsilon_(epsilon) {
  m_.reserve(parameters_->size());
  v_.reserve(parameters_->size());
  for (const auto& p : *parameters_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::step() {
  ++t_;
  const float bias1 = 1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0F - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < parameters_->size(); ++i) {
    auto& p = (*parameters_)[i];
    if (p.grad().empty()) continue;
    const auto grad = p.grad().data();
    const auto m = m_[i].data();
    const auto v = v_[i].data();
    const auto value = p.mutable_value().data();
    for (std::size_t j = 0; j < grad.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0F - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0F - beta2_) * grad[j] * grad[j];
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      value[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

}  // namespace splpg::nn
