#include "nn/optimizer.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "io/crc32.hpp"
#include "io/error.hpp"
#include "tensor/vec.hpp"
#include "util/serialize.hpp"

namespace splpg::nn {

namespace {
// Optimizer-state section header inside a train-state checkpoint. The legacy
// "SPOS" layout (magic, t, count, moments — no checksums) is still readable;
// new states are written as "SPO2": magic, t, count, payload byte count,
// payload CRC-32, header CRC-32, then the moment payload. The magic changed
// (instead of a version bump) because the v1 layout has no version field —
// the byte after the magic is already the step counter.
constexpr std::uint32_t kStateMagicLegacy = 0x53504F53;  // "SPOS"
constexpr std::uint32_t kStateMagic = 0x53504F32;        // "SPO2"

void write_matrix(std::ostream& out, const tensor::Matrix& matrix) {
  util::write_pod<std::uint64_t>(out, matrix.rows());
  util::write_pod<std::uint64_t>(out, matrix.cols());
  const auto data = matrix.data();
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
}

void read_matrix_into(std::istream& in, tensor::Matrix& matrix) {
  const auto rows = util::read_pod<std::uint64_t>(in);
  const auto cols = util::read_pod<std::uint64_t>(in);
  if (rows != matrix.rows() || cols != matrix.cols()) {
    throw std::invalid_argument("Adam::load_state: moment shape mismatch");
  }
  auto data = matrix.data();
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!in) throw std::runtime_error("Adam::load_state: unexpected end of stream");
}
}  // namespace

void Optimizer::save_state(std::ostream& out) const { (void)out; }

void Optimizer::load_state(std::istream& in) { (void)in; }

void Sgd::step() {
  for (auto& p : *parameters_) {
    if (p.grad().empty()) continue;
    auto& value = p.mutable_value();
    if (weight_decay_ > 0.0F) value.scale_inplace(1.0F - learning_rate_ * weight_decay_);
    value.axpy_inplace(-learning_rate_, p.grad());
  }
}

Adam::Adam(Module& module, float learning_rate, float beta1, float beta2, float epsilon)
    : Optimizer(module), learning_rate_(learning_rate), beta1_(beta1), beta2_(beta2),
      epsilon_(epsilon) {
  m_.reserve(parameters_->size());
  v_.reserve(parameters_->size());
  for (const auto& p : *parameters_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::step() {
  ++t_;
  const float bias1 = 1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0F - std::pow(beta2_, static_cast<float>(t_));
  // adam_step is one of the bit-identical-on-every-backend kernels (see
  // vec.hpp), so checkpoints and resumed runs never depend on SPLPG_VEC.
  const tensor::VecKernels& kern = tensor::vec_kernels();
  for (std::size_t i = 0; i < parameters_->size(); ++i) {
    auto& p = (*parameters_)[i];
    if (p.grad().empty()) continue;
    const auto grad = p.grad().data();
    kern.adam_step_f32(p.mutable_value().data().data(), m_[i].data().data(),
                       v_[i].data().data(), grad.data(), grad.size(), beta1_, beta2_,
                       learning_rate_, bias1, bias2, epsilon_);
  }
}

void Adam::save_state(std::ostream& out) const {
  using util::write_pod;
  std::ostringstream payload;
  for (std::size_t i = 0; i < m_.size(); ++i) {
    write_matrix(payload, m_[i]);
    write_matrix(payload, v_[i]);
  }
  const std::string body = payload.str();
  std::ostringstream header;
  write_pod(header, kStateMagic);
  write_pod<std::uint64_t>(header, t_);
  write_pod<std::uint64_t>(header, m_.size());
  write_pod<std::uint64_t>(header, body.size());
  write_pod<std::uint32_t>(header, io::Crc32::of(body.data(), body.size()));
  const std::string head = header.str();
  out.write(head.data(), static_cast<std::streamsize>(head.size()));
  write_pod<std::uint32_t>(out, io::Crc32::of(head.data(), head.size()));
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!out) throw std::runtime_error("Adam::save_state: write failed");
}

void Adam::load_state(std::istream& in) {
  using util::read_pod;
  const auto magic = read_pod<std::uint32_t>(in);
  if (magic == kStateMagicLegacy) {
    // v1 layout: no checksums — parse as written, flag nothing.
    const auto t = read_pod<std::uint64_t>(in);
    const auto count = read_pod<std::uint64_t>(in);
    if (count != m_.size()) {
      throw std::invalid_argument("Adam::load_state: moment count mismatch");
    }
    for (std::size_t i = 0; i < m_.size(); ++i) {
      read_matrix_into(in, m_[i]);
      read_matrix_into(in, v_[i]);
    }
    t_ = t;
    return;
  }
  if (magic != kStateMagic) {
    throw io::FormatError("Adam::load_state: bad magic (not an SPOS optimizer state)");
  }
  std::uint64_t t = 0;
  std::uint64_t count = 0;
  std::uint64_t payload_bytes = 0;
  std::uint32_t payload_crc = 0;
  std::uint32_t stored_header_crc = 0;
  try {
    t = read_pod<std::uint64_t>(in);
    count = read_pod<std::uint64_t>(in);
    payload_bytes = read_pod<std::uint64_t>(in);
    payload_crc = read_pod<std::uint32_t>(in);
    stored_header_crc = read_pod<std::uint32_t>(in);
  } catch (const std::runtime_error&) {
    throw io::FormatError("Adam::load_state: truncated optimizer-state header");
  }
  std::ostringstream bytes;
  util::write_pod(bytes, magic);
  util::write_pod(bytes, t);
  util::write_pod(bytes, count);
  util::write_pod(bytes, payload_bytes);
  util::write_pod(bytes, payload_crc);
  const std::string head = bytes.str();
  if (const auto computed = io::Crc32::of(head.data(), head.size());
      computed != stored_header_crc) {
    throw io::FormatError("Adam::load_state: optimizer-state header checksum mismatch at offset " +
                          std::to_string(head.size()));
  }
  if (count != m_.size()) {
    throw std::invalid_argument("Adam::load_state: moment count mismatch");
  }
  std::string body(payload_bytes, '\0');
  in.read(body.data(), static_cast<std::streamsize>(payload_bytes));
  if (static_cast<std::uint64_t>(in.gcount()) != payload_bytes) {
    throw io::FormatError("Adam::load_state: truncated — optimizer-state header declares " +
                          std::to_string(payload_bytes) + " payload bytes");
  }
  if (const auto computed = io::Crc32::of(body.data(), body.size()); computed != payload_crc) {
    throw io::FormatError(
        "Adam::load_state: optimizer-state payload checksum mismatch over " +
        std::to_string(payload_bytes) + " bytes");
  }
  std::istringstream verified(body);
  for (std::size_t i = 0; i < m_.size(); ++i) {
    read_matrix_into(verified, m_[i]);
    read_matrix_into(verified, v_[i]);
  }
  t_ = t;
}

}  // namespace splpg::nn
