#include "nn/serving_model.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "tensor/int8.hpp"
#include "util/rng.hpp"

namespace splpg::nn {

using graph::NodeId;
using tensor::Matrix;

ServingModel::ServingModel(const LinkPredictionModel& source, const graph::CsrGraph& graph,
                           const graph::FeatureStore& features, ServingOptions options)
    : graph_(&graph), features_(&features),
      sampler_(std::vector<std::uint32_t>(source.config().num_layers, 0U)),
      options_(options) {
  if (source.config().in_dim != features.dim()) {
    throw std::invalid_argument("ServingModel: feature dim != model in_dim");
  }
  if (features.num_nodes() < graph.num_nodes()) {
    throw std::invalid_argument("ServingModel: feature store smaller than graph");
  }
  // Freeze: rebuild the architecture (seed irrelevant — weights are
  // overwritten) and snapshot the source parameters.
  model_ = std::make_unique<LinkPredictionModel>(source.config(), /*seed=*/0);
  copy_parameters(source, *model_);
  if (options_.int8_weights) {
    for (auto& parameter : model_->parameters()) {
      const float bound = tensor::quantize_dequantize_inplace(parameter.mutable_value());
      weight_error_bound_ = std::max(weight_error_bound_, bound);
    }
  }
}

std::size_t ServingModel::row_bytes() const noexcept {
  const std::size_t dim = embedding_dim();
  return options_.int8_embeddings ? dim + sizeof(float) : dim * sizeof(float);
}

void ServingModel::compute_row(NodeId v, std::span<std::byte> out) const {
  if (v >= graph_->num_nodes()) {
    throw std::out_of_range("ServingModel::compute_row: node id out of range");
  }
  if (out.size() != row_bytes()) {
    throw std::invalid_argument("ServingModel::compute_row: bad row buffer size");
  }
  util::Rng rng = util::Rng(options_.seed).split("serve", v);
  sampling::GraphProvider provider(*graph_);
  const NodeId seeds[1] = {v};
  const auto cg = sampler_.sample(provider, seeds, rng);
  const auto embedding = model_->encode(cg, *features_);
  const auto row = embedding.value().row(0);

  if (options_.int8_embeddings) {
    const float scale = tensor::symmetric_scale(row);
    auto* payload = reinterpret_cast<std::int8_t*>(out.data());
    tensor::quantize_span(row, scale, {payload, row.size()});
    std::memcpy(out.data() + row.size(), &scale, sizeof(float));
  } else {
    std::memcpy(out.data(), row.data(), row.size() * sizeof(float));
  }
}

void ServingModel::decode_row(std::span<const std::byte> row, std::span<float> out) const {
  const std::size_t dim = embedding_dim();
  if (row.size() != row_bytes() || out.size() != dim) {
    throw std::invalid_argument("ServingModel::decode_row: bad buffer size");
  }
  if (options_.int8_embeddings) {
    const auto* payload = reinterpret_cast<const std::int8_t*>(row.data());
    float scale = 0.0F;
    std::memcpy(&scale, row.data() + dim, sizeof(float));
    tensor::dequantize_span({payload, dim}, scale, out);
  } else {
    std::memcpy(out.data(), row.data(), dim * sizeof(float));
  }
}

std::vector<float> ServingModel::score_rows(std::span<const std::byte* const> u_rows,
                                            std::span<const std::byte* const> v_rows) const {
  if (u_rows.size() != v_rows.size()) {
    throw std::invalid_argument("ServingModel::score_rows: endpoint count mismatch");
  }
  const std::size_t count = u_rows.size();
  const std::size_t dim = embedding_dim();
  std::vector<float> scores(count);
  if (count == 0) return scores;

  if (options_.int8_embeddings && config().predictor == PredictorKind::kDot) {
    // Int8 fast path: dot straight off the quantized payloads, one float
    // rounding per pair (tensor/int8 scoring kernel).
    for (std::size_t i = 0; i < count; ++i) {
      const auto* qu = reinterpret_cast<const std::int8_t*>(u_rows[i]);
      const auto* qv = reinterpret_cast<const std::int8_t*>(v_rows[i]);
      float scale_u = 0.0F;
      float scale_v = 0.0F;
      std::memcpy(&scale_u, u_rows[i] + dim, sizeof(float));
      std::memcpy(&scale_v, v_rows[i] + dim, sizeof(float));
      scores[i] = tensor::score_dot_i8({qu, dim}, scale_u, {qv, dim}, scale_v);
    }
    return scores;
  }

  // Decode rows into a 2B x dim embedding matrix (u at row 2i, v at 2i+1)
  // and run the frozen predictor. Every predictor op is row-independent, so
  // scores[i] is a function of rows 2i / 2i+1 only.
  Matrix embeddings(2 * count, dim);
  std::vector<PairIndex> pairs(count);
  for (std::size_t i = 0; i < count; ++i) {
    decode_row({u_rows[i], row_bytes()}, embeddings.row(2 * i));
    decode_row({v_rows[i], row_bytes()}, embeddings.row(2 * i + 1));
    pairs[i] = {static_cast<std::uint32_t>(2 * i), static_cast<std::uint32_t>(2 * i + 1)};
  }
  const auto logits = model_->score(tensor::Tensor::constant(std::move(embeddings)), pairs);
  for (std::size_t i = 0; i < count; ++i) scores[i] = logits.value().at(i, 0);
  return scores;
}

std::vector<float> ServingModel::score_pairs(std::span<const sampling::NodePair> pairs) const {
  const std::size_t bytes = row_bytes();
  std::vector<std::byte> rows(2 * pairs.size() * bytes);
  std::vector<const std::byte*> u_rows(pairs.size());
  std::vector<const std::byte*> v_rows(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    std::byte* u_row = rows.data() + (2 * i) * bytes;
    std::byte* v_row = rows.data() + (2 * i + 1) * bytes;
    compute_row(pairs[i].u, {u_row, bytes});
    compute_row(pairs[i].v, {v_row, bytes});
    u_rows[i] = u_row;
    v_rows[i] = v_row;
  }
  return score_rows(u_rows, v_rows);
}

}  // namespace splpg::nn
