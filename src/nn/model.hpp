// The complete link-prediction model: K-layer GNN encoder + edge predictor
// (Figure 2's "GNN model" + "Edge predictor" boxes).
//
// Construction is deterministic in (config, seed): every distributed worker
// builds its replica with the same seed, so initial weights are identical
// across workers ("initialize model weights W and copy them to each worker",
// Algorithm 1 line 16).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/features.hpp"
#include "nn/gnn_layers.hpp"
#include "nn/predictor.hpp"
#include "sampling/neighbor_sampler.hpp"

namespace splpg::nn {

struct ModelConfig {
  GnnKind gnn = GnnKind::kSage;
  PredictorKind predictor = PredictorKind::kMlp;
  std::size_t in_dim = 0;              // input feature dimension (required)
  std::size_t hidden_dim = 256;        // paper default
  std::uint32_t num_layers = 3;        // paper default (3-layer GNN)
  std::uint32_t predictor_layers = 3;  // paper default (3-layer MLP)
  std::uint32_t num_heads = 1;         // attention heads (GAT/GATv2 only)
};

class LinkPredictionModel : public Module {
 public:
  LinkPredictionModel(const ModelConfig& config, std::uint64_t seed);

  [[nodiscard]] const ModelConfig& config() const noexcept { return config_; }

  /// Runs the encoder over the computational graph. `input_features` rows
  /// must align with cg.input_nodes(); returns embeddings whose rows align
  /// with cg.seed_nodes().
  [[nodiscard]] tensor::Tensor encode(const sampling::ComputationGraph& cg,
                                      tensor::Matrix input_features) const;

  /// Gathers input features for cg.input_nodes() from a global store and
  /// encodes.
  [[nodiscard]] tensor::Tensor encode(const sampling::ComputationGraph& cg,
                                      const graph::FeatureStore& features) const;

  /// Edge logits for index pairs into the seed-embedding rows.
  [[nodiscard]] tensor::Tensor score(const tensor::Tensor& seed_embeddings,
                                     std::span<const PairIndex> pairs) const;

  /// Per-layer neighbor fanouts: the paper's 25/10/5 for GraphSAGE-style
  /// sampled aggregation; full neighborhoods (all zeros) for GCN/GAT/GATv2.
  [[nodiscard]] std::vector<std::uint32_t> default_fanouts() const;

 private:
  ModelConfig config_;
  std::vector<std::unique_ptr<GnnLayer>> layers_;
  std::unique_ptr<EdgePredictor> predictor_;
};

/// In-place, same-shape parameter copy: dst_i <- src_i. Used by model
/// averaging and by tests that clone replicas.
void copy_parameters(const Module& source, Module& destination);

}  // namespace splpg::nn
