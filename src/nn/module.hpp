// Base class for anything holding trainable parameters.
//
// Parameters are Tensor leaves with requires_grad = true; submodules register
// their parameters into the owner so optimizers and the distributed
// synchronizers (gradient / model averaging) can iterate one flat list whose
// order is identical across worker replicas (construction order).
#pragma once

#include <vector>

#include "tensor/autograd.hpp"

namespace splpg::nn {

class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  Module(Module&&) = default;
  Module& operator=(Module&&) = default;

  /// Flat parameter list in registration order.
  [[nodiscard]] std::vector<tensor::Tensor>& parameters() noexcept { return parameters_; }
  [[nodiscard]] const std::vector<tensor::Tensor>& parameters() const noexcept {
    return parameters_;
  }

  /// Total trainable scalar count.
  [[nodiscard]] std::size_t parameter_count() const noexcept {
    std::size_t total = 0;
    for (const auto& p : parameters_) total += p.value().size();
    return total;
  }

  void zero_grad() noexcept {
    for (auto& p : parameters_) p.zero_grad();
  }

 protected:
  tensor::Tensor register_parameter(tensor::Matrix value) {
    auto param = tensor::Tensor::parameter(std::move(value));
    parameters_.push_back(param);
    return param;
  }

  /// Adopts a child's parameters (child must outlive or share tensors).
  void register_module(Module& child) {
    for (auto& p : child.parameters()) parameters_.push_back(p);
  }

 private:
  std::vector<tensor::Tensor> parameters_;
};

}  // namespace splpg::nn
