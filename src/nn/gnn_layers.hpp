// Graph neural network layers operating on sampled Blocks (Eq. (1)).
//
// Every layer consumes `src_feats`, whose rows align with
// block.src_nodes, and produces embeddings for the block's dst prefix
// (rows 0..dst_count). Activations are applied by the model between layers,
// not inside the layers.
//
// Implementation notes relative to the reference formulations:
//  * GcnConv uses the weighted mean-with-self form
//      h_v = W^T * (h_v + sum_e w_e h_src(e)) / (1 + sum_e w_e)
//    which matches Kipf-Welling's D^-1(A+I) propagation on unweighted
//    blocks and respects the sparsifier's edge weights on weighted ones.
//  * SageConv is the mean-aggregator GraphSAGE:
//      h_v = W_self^T h_v + W_neigh^T mean_e(h_src(e)) + b.
//  * GatConv / Gatv2Conv are single-head; an implicit self-edge per
//    destination joins the attention softmax (equivalent to DGL's add-self-
//    loop convention).
#pragma once

#include <memory>
#include <string>

#include "nn/module.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "tensor/autograd.hpp"
#include "util/rng.hpp"

namespace splpg::nn {

class GnnLayer : public Module {
 public:
  /// `src_feats` rows align with block.src_nodes; returns dst_count rows.
  [[nodiscard]] virtual tensor::Tensor forward(const sampling::Block& block,
                                               const tensor::Tensor& src_feats) const = 0;

  [[nodiscard]] virtual std::size_t out_dim() const noexcept = 0;
};

class GcnConv final : public GnnLayer {
 public:
  GcnConv(std::size_t in_dim, std::size_t out_dim, util::Rng& rng);

  [[nodiscard]] tensor::Tensor forward(const sampling::Block& block,
                                       const tensor::Tensor& src_feats) const override;
  [[nodiscard]] std::size_t out_dim() const noexcept override { return weight_.cols(); }

 private:
  tensor::Tensor weight_;
  tensor::Tensor bias_;
};

class SageConv final : public GnnLayer {
 public:
  SageConv(std::size_t in_dim, std::size_t out_dim, util::Rng& rng);

  [[nodiscard]] tensor::Tensor forward(const sampling::Block& block,
                                       const tensor::Tensor& src_feats) const override;
  [[nodiscard]] std::size_t out_dim() const noexcept override { return weight_self_.cols(); }

 private:
  tensor::Tensor weight_self_;
  tensor::Tensor weight_neigh_;
  tensor::Tensor bias_;
};

class GatConv final : public GnnLayer {
 public:
  /// Multi-head attention with concatenated heads: `num_heads` must divide
  /// `out_dim` (head width = out_dim / num_heads). num_heads = 1 recovers
  /// single-head GAT.
  GatConv(std::size_t in_dim, std::size_t out_dim, util::Rng& rng,
          float negative_slope = 0.2F, std::uint32_t num_heads = 1);

  [[nodiscard]] tensor::Tensor forward(const sampling::Block& block,
                                       const tensor::Tensor& src_feats) const override;
  [[nodiscard]] std::size_t out_dim() const noexcept override { return weight_.cols(); }
  [[nodiscard]] std::uint32_t num_heads() const noexcept { return num_heads_; }

 private:
  tensor::Tensor weight_;
  std::vector<tensor::Tensor> attn_src_;  // per head: head_dim x 1
  std::vector<tensor::Tensor> attn_dst_;  // per head: head_dim x 1
  tensor::Tensor bias_;
  float negative_slope_;
  std::uint32_t num_heads_;
};

/// GATv2 [Brody et al.]: the attention MLP applies the nonlinearity *before*
/// the attention vector, fixing GAT's static-attention limitation.
class Gatv2Conv final : public GnnLayer {
 public:
  /// Multi-head with concatenated heads; see GatConv.
  Gatv2Conv(std::size_t in_dim, std::size_t out_dim, util::Rng& rng,
            float negative_slope = 0.2F, std::uint32_t num_heads = 1);

  [[nodiscard]] tensor::Tensor forward(const sampling::Block& block,
                                       const tensor::Tensor& src_feats) const override;
  [[nodiscard]] std::size_t out_dim() const noexcept override { return weight_src_.cols(); }
  [[nodiscard]] std::uint32_t num_heads() const noexcept { return num_heads_; }

 private:
  tensor::Tensor weight_src_;
  tensor::Tensor weight_dst_;
  std::vector<tensor::Tensor> attn_;  // per head: head_dim x 1
  tensor::Tensor bias_;
  float negative_slope_;
  std::uint32_t num_heads_;
};

enum class GnnKind { kGcn, kSage, kGat, kGatv2 };

[[nodiscard]] std::string to_string(GnnKind kind);
[[nodiscard]] GnnKind gnn_kind_from_string(const std::string& name);

/// Factory for a single layer. `num_heads` applies to the attention kinds
/// only (must divide out_dim).
[[nodiscard]] std::unique_ptr<GnnLayer> make_gnn_layer(GnnKind kind, std::size_t in_dim,
                                                       std::size_t out_dim, util::Rng& rng,
                                                       std::uint32_t num_heads = 1);

}  // namespace splpg::nn
