// Edge predictors (Eq. (2)): map a pair of node embeddings to an edge score.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "tensor/autograd.hpp"

namespace splpg::nn {

/// Index pair into an embedding matrix (rows).
struct PairIndex {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
};

class EdgePredictor : public Module {
 public:
  /// Returns logits (N x 1) for the N pairs.
  [[nodiscard]] virtual tensor::Tensor score(const tensor::Tensor& embeddings,
                                             std::span<const PairIndex> pairs) const = 0;
};

/// s(u,v) = h_u . h_v.
class DotPredictor final : public EdgePredictor {
 public:
  [[nodiscard]] tensor::Tensor score(const tensor::Tensor& embeddings,
                                     std::span<const PairIndex> pairs) const override;
};

/// s(u,v) = MLP([h_u | h_v]); the paper uses a 3-layer MLP.
class MlpPredictor final : public EdgePredictor {
 public:
  MlpPredictor(std::size_t embedding_dim, std::size_t hidden_dim, std::uint32_t num_layers,
               util::Rng& rng);

  [[nodiscard]] tensor::Tensor score(const tensor::Tensor& embeddings,
                                     std::span<const PairIndex> pairs) const override;

 private:
  std::unique_ptr<Mlp> mlp_;
};

enum class PredictorKind { kDot, kMlp };

[[nodiscard]] std::string to_string(PredictorKind kind);
[[nodiscard]] PredictorKind predictor_kind_from_string(const std::string& name);

[[nodiscard]] std::unique_ptr<EdgePredictor> make_predictor(PredictorKind kind,
                                                            std::size_t embedding_dim,
                                                            std::size_t hidden_dim,
                                                            std::uint32_t num_layers,
                                                            util::Rng& rng);

}  // namespace splpg::nn
