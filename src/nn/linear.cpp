#include "nn/linear.hpp"

#include <stdexcept>

#include "tensor/init.hpp"

namespace splpg::nn {

using tensor::Tensor;

Linear::Linear(std::size_t in_dim, std::size_t out_dim, util::Rng& rng) {
  weight_ = register_parameter(tensor::xavier_uniform(in_dim, out_dim, rng));
  bias_ = register_parameter(tensor::zeros(1, out_dim));
}

Tensor Linear::forward(const Tensor& input) const {
  return add(matmul(input, weight_), bias_);
}

Mlp::Mlp(const std::vector<std::size_t>& dims, util::Rng& rng) {
  if (dims.size() < 2) throw std::invalid_argument("Mlp: need at least {in, out} dims");
  layers_.reserve(dims.size() - 1);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
  for (auto& layer : layers_) register_module(layer);
}

Tensor Mlp::forward(const Tensor& input) const {
  Tensor h = input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].forward(h);
    if (i + 1 < layers_.size()) h = relu(h);
  }
  return h;
}

}  // namespace splpg::nn
