// Model checkpointing: (de)serialize a Module's parameter list.
//
// Format: magic, parameter count, then each parameter's shape + row-major
// float data. Loading requires an identically constructed module (same
// config), mirroring PyTorch's state_dict contract.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/module.hpp"

namespace splpg::nn {

void save_parameters(std::ostream& out, const Module& module);
void save_parameters_file(const std::string& path, const Module& module);

/// Throws std::runtime_error on format errors and std::invalid_argument on
/// arity/shape mismatches with the destination module.
void load_parameters(std::istream& in, Module& module);
void load_parameters_file(const std::string& path, Module& module);

}  // namespace splpg::nn
