// Model checkpointing: (de)serialize a Module's parameter list, or the full
// training state (parameters + optimizer moments + epoch counter).
//
// Parameter format ("SPLM"): magic, parameter count, then each parameter's
// shape + row-major float data. Loading requires an identically constructed
// module (same config), mirroring PyTorch's state_dict contract.
//
// Train-state format ("SPCK", version 1): header (magic, version, epoch),
// then the parameter section, then the optimizer's state section. Restoring
// both halves makes resumed training bit-identical to never having stopped
// (the exact-resume contract core::TrainConfig::resume_from relies on);
// restoring parameters alone would rebuild Adam moments from zero and
// diverge on the first step.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "nn/module.hpp"
#include "nn/optimizer.hpp"

namespace splpg::nn {

void save_parameters(std::ostream& out, const Module& module);
void save_parameters_file(const std::string& path, const Module& module);

/// Throws std::runtime_error on format errors and std::invalid_argument on
/// arity/shape mismatches with the destination module.
void load_parameters(std::istream& in, Module& module);
void load_parameters_file(const std::string& path, Module& module);

void save_train_state(std::ostream& out, const Module& module, const Optimizer& optimizer,
                      std::uint32_t epoch);
void save_train_state_file(const std::string& path, const Module& module,
                           const Optimizer& optimizer, std::uint32_t epoch);

/// Restores parameters and optimizer state; returns the checkpoint's epoch.
/// Same exception contract as load_parameters.
std::uint32_t load_train_state(std::istream& in, Module& module, Optimizer& optimizer);
std::uint32_t load_train_state_file(const std::string& path, Module& module,
                                    Optimizer& optimizer);

}  // namespace splpg::nn
