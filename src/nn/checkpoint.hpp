// Model checkpointing: (de)serialize a Module's parameter list, or the full
// training state (parameters + optimizer moments + epoch counter), plus the
// checkpoint-directory machinery the trainer's durability layer builds on
// (manifest, keep-last-K retention, corruption-skipping discovery).
//
// Parameter format ("SPM2"): magic, parameter count, payload byte count,
// payload CRC-32, header CRC-32, then each parameter's shape + row-major
// float data. Loading requires an identically constructed module (same
// config), mirroring PyTorch's state_dict contract. Legacy "SPLM" sections
// (no checksums) still load and are flagged `checksummed = false`.
//
// Train-state format ("SPCK", version 2): header (magic, version, epoch,
// header CRC-32), then the parameter section, then the optimizer's state
// section — each section carries its own checksums. Restoring both halves
// makes resumed training bit-identical to never having stopped (the
// exact-resume contract core::TrainConfig::resume_from relies on); restoring
// parameters alone would rebuild Adam moments from zero and diverge on the
// first step. Version-1 states (unchecksummed sections) still load.
//
// Checkpoint directories: the trainer writes `model_epoch_<e>.bin` (servable
// parameters) + `state_epoch_<e>.bin` (resumable train state) per
// checkpointed epoch, every file through io::AtomicFile. A MANIFEST text
// file names the retained epochs (advisory — the directory scan is ground
// truth, so a corrupt manifest never blocks recovery), and
// find_latest_valid_checkpoint powers `resume_from = "auto"`: newest state
// file whose structure and checksums validate, skipping corrupt ones.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "io/error.hpp"
#include "nn/module.hpp"
#include "nn/optimizer.hpp"

namespace splpg::nn {

void save_parameters(std::ostream& out, const Module& module);
void save_parameters_file(const std::string& path, const Module& module);

/// Throws io::FormatError (a std::runtime_error) on malformed bytes and
/// std::invalid_argument on arity/shape mismatches with the destination
/// module. `integrity` (when non-null) reports the parsed format version and
/// whether checksums were verified (false for legacy "SPLM" sections).
void load_parameters(std::istream& in, Module& module, io::ReadIntegrity* integrity = nullptr);
void load_parameters_file(const std::string& path, Module& module,
                          io::ReadIntegrity* integrity = nullptr);

void save_train_state(std::ostream& out, const Module& module, const Optimizer& optimizer,
                      std::uint32_t epoch);
void save_train_state_file(const std::string& path, const Module& module,
                           const Optimizer& optimizer, std::uint32_t epoch);

/// Restores parameters and optimizer state; returns the checkpoint's epoch.
/// Same exception contract as load_parameters.
std::uint32_t load_train_state(std::istream& in, Module& module, Optimizer& optimizer,
                               io::ReadIntegrity* integrity = nullptr);
std::uint32_t load_train_state_file(const std::string& path, Module& module,
                                    Optimizer& optimizer,
                                    io::ReadIntegrity* integrity = nullptr);

// ---- checkpoint directories ----

/// One checkpointed epoch inside a checkpoint directory.
struct CheckpointEntry {
  std::uint32_t epoch = 0;
  std::string model_file;  // full path; may be missing on disk
  std::string state_file;  // full path; the resumable artifact
};

[[nodiscard]] std::string checkpoint_model_file(const std::string& dir, std::uint32_t epoch);
[[nodiscard]] std::string checkpoint_state_file(const std::string& dir, std::uint32_t epoch);

/// Newest-first list of `state_epoch_<e>.bin` checkpoints present in `dir`.
/// A missing directory yields an empty list.
[[nodiscard]] std::vector<CheckpointEntry> list_checkpoints(const std::string& dir);

/// Structurally validates a train-state file without needing a module: walks
/// the SPCK header and both sections, verifying every checksum present and
/// rejecting truncation and trailing garbage. Returns the checkpoint's
/// epoch; throws io::FormatError / io::IoError on any defect.
std::uint32_t validate_train_state_file(const std::string& path);

/// The newest checkpoint in `dir` whose state file passes
/// validate_train_state_file. Corrupt or truncated checkpoints are skipped
/// (counted into *skipped when non-null); nullopt when none validates.
[[nodiscard]] std::optional<CheckpointEntry> find_latest_valid_checkpoint(
    const std::string& dir, std::uint32_t* skipped = nullptr);

/// Rewrites `dir`/MANIFEST (atomically) to name the checkpoints currently on
/// disk. The manifest is advisory — recovery always re-scans the directory —
/// but gives operators and tooling one self-checksummed place to look.
void write_checkpoint_manifest(const std::string& dir);

/// Parses `dir`/MANIFEST. Missing, unreadable, or checksum-mismatched
/// manifests yield an empty list (never an exception): the manifest must not
/// be able to block recovery.
[[nodiscard]] std::vector<CheckpointEntry> read_checkpoint_manifest(const std::string& dir);

/// Keep-last-K retention: deletes all but the newest `keep_last` checkpoint
/// epochs (model + state files) and sweeps orphaned AtomicFile temporaries.
/// `keep_last == 0` keeps every epoch (temps are still swept). Returns the
/// number of files removed.
std::size_t gc_checkpoints(const std::string& dir, std::uint32_t keep_last);

}  // namespace splpg::nn
