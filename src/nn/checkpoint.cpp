#include "nn/checkpoint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/atomic_file.hpp"
#include "io/crc32.hpp"
#include "io/storage_fault.hpp"
#include "util/serialize.hpp"

namespace splpg::nn {

namespace fs = std::filesystem;

namespace {

// Parameter section. The legacy "SPLM" layout (magic, count, shapes + data,
// no checksums) is still readable; new sections are written as "SPM2" with a
// checksummed header + payload. The magic changed (instead of a version
// bump) because v1 has no version field — the byte after the magic is
// already the parameter count.
constexpr std::uint32_t kMagicLegacy = 0x53504C4D;  // "SPLM"
constexpr std::uint32_t kMagic = 0x53504D32;        // "SPM2"

// Train state: magic + version came first since v1, so the magic is stable.
constexpr std::uint32_t kStateMagic = 0x5350434B;  // "SPCK"
constexpr std::uint32_t kStateVersionLegacy = 1;
constexpr std::uint32_t kStateVersion = 2;

// Optimizer-section magics (owned by nn/optimizer.cpp; the structural walker
// below needs to recognize both generations).
constexpr std::uint32_t kOptMagicLegacy = 0x53504F53;  // "SPOS"
constexpr std::uint32_t kOptMagic = 0x53504F32;        // "SPO2"

constexpr const char* kManifestFile = "MANIFEST";
constexpr const char* kStatePrefix = "state_epoch_";
constexpr const char* kModelPrefix = "model_epoch_";

[[noreturn]] void fail(const std::string& message) { throw io::FormatError(message); }

void check_crc(std::uint32_t stored, std::uint32_t computed, const char* what,
               std::uint64_t offset) {
  if (stored == computed) return;
  std::ostringstream hex;
  hex << std::hex << stored << ", computed 0x" << computed;
  fail(std::string(what) + " checksum mismatch at offset " + std::to_string(offset) +
       " (stored 0x" + hex.str() + ")");
}

struct ParameterSectionHeader {
  std::uint32_t magic = 0;
  std::uint64_t count = 0;
  std::uint64_t payload_bytes = 0;  // v2 only
  std::uint32_t payload_crc = 0;    // v2 only

  [[nodiscard]] bool checksummed() const noexcept { return magic == kMagic; }
};

ParameterSectionHeader read_parameter_header(std::istream& in) {
  using util::read_pod;
  ParameterSectionHeader header;
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in) fail("load_parameters: truncated header (no magic)");
  if (magic != kMagic && magic != kMagicLegacy) {
    fail("load_parameters: bad magic (not an SPLM parameter section)");
  }
  header.magic = magic;
  try {
    header.count = read_pod<std::uint64_t>(in);
    if (magic == kMagic) {
      header.payload_bytes = read_pod<std::uint64_t>(in);
      header.payload_crc = read_pod<std::uint32_t>(in);
      const auto stored_header_crc = read_pod<std::uint32_t>(in);
      std::ostringstream bytes;
      util::write_pod(bytes, magic);
      util::write_pod(bytes, header.count);
      util::write_pod(bytes, header.payload_bytes);
      util::write_pod(bytes, header.payload_crc);
      const std::string head = bytes.str();
      check_crc(stored_header_crc, io::Crc32::of(head.data(), head.size()),
                "load_parameters: parameter-section header", head.size());
    }
  } catch (const io::FormatError&) {
    throw;
  } catch (const std::runtime_error&) {
    fail("load_parameters: truncated header");
  }
  return header;
}

std::string read_verified_payload(std::istream& in, const ParameterSectionHeader& header,
                                  const char* who) {
  std::string body(header.payload_bytes, '\0');
  in.read(body.data(), static_cast<std::streamsize>(header.payload_bytes));
  if (static_cast<std::uint64_t>(in.gcount()) != header.payload_bytes) {
    fail(std::string(who) + ": truncated — header declares " +
         std::to_string(header.payload_bytes) + " payload bytes");
  }
  check_crc(header.payload_crc, io::Crc32::of(body.data(), body.size()),
            (std::string(who) + ": payload").c_str(), 28);
  return body;
}

/// Reads one shape-prefixed matrix into `destination`, enforcing the
/// destination's shape (the state_dict contract).
void read_matrix_data(std::istream& in, tensor::Matrix& destination, const char* who) {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  try {
    rows = util::read_pod<std::uint64_t>(in);
    cols = util::read_pod<std::uint64_t>(in);
  } catch (const std::runtime_error&) {
    fail(std::string(who) + ": truncated shape header");
  }
  if (rows != destination.rows() || cols != destination.cols()) {
    throw std::invalid_argument(std::string(who) + ": shape mismatch");
  }
  auto data = destination.data();
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!in) fail(std::string(who) + ": unexpected end of stream");
}

// ---- module-free structural walkers (validate_train_state_file) ----

void skip_bytes(std::istream& in, std::uint64_t bytes, const char* what) {
  in.ignore(static_cast<std::streamsize>(bytes));
  if (static_cast<std::uint64_t>(in.gcount()) != bytes) {
    fail(std::string("validate_train_state: truncated ") + what);
  }
}

std::uint64_t checked_matrix_bytes(std::uint64_t rows, std::uint64_t cols) {
  if (rows != 0 && cols > (UINT64_MAX / sizeof(float)) / rows) {
    fail("validate_train_state: implausible matrix shape " + std::to_string(rows) + "x" +
         std::to_string(cols));
  }
  return rows * cols * sizeof(float);
}

/// Walks `count` shape-prefixed matrices of `in`, validating structure only.
void walk_matrices(std::istream& in, std::uint64_t count, const char* what) {
  using util::read_pod;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    try {
      rows = read_pod<std::uint64_t>(in);
      cols = read_pod<std::uint64_t>(in);
    } catch (const std::runtime_error&) {
      fail(std::string("validate_train_state: truncated ") + what + " shape header");
    }
    skip_bytes(in, checked_matrix_bytes(rows, cols), what);
  }
}

void walk_parameter_section(std::istream& in, bool& checksummed) {
  const ParameterSectionHeader header = read_parameter_header(in);
  checksummed = header.checksummed();
  if (header.checksummed()) {
    const std::string body = read_verified_payload(in, header, "validate_train_state");
    std::istringstream verified(body);
    walk_matrices(verified, header.count, "parameter");
    if (verified.peek() != std::char_traits<char>::eof()) {
      fail("validate_train_state: parameter payload longer than its shapes declare");
    }
  } else {
    walk_matrices(in, header.count, "parameter");
  }
}

void walk_optimizer_section(std::istream& in, bool& checksummed) {
  using util::read_pod;
  if (in.peek() == std::char_traits<char>::eof()) return;  // stateless optimizer
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in) fail("validate_train_state: truncated optimizer section");
  if (magic == kOptMagicLegacy) {
    checksummed = false;
    try {
      (void)read_pod<std::uint64_t>(in);  // t
      const auto count = read_pod<std::uint64_t>(in);
      walk_matrices(in, 2 * count, "moment");
    } catch (const io::FormatError&) {
      throw;
    } catch (const std::runtime_error&) {
      fail("validate_train_state: truncated optimizer section");
    }
    return;
  }
  if (magic != kOptMagic) {
    fail("validate_train_state: bad optimizer-section magic");
  }
  try {
    const auto t = read_pod<std::uint64_t>(in);
    const auto count = read_pod<std::uint64_t>(in);
    const auto payload_bytes = read_pod<std::uint64_t>(in);
    const auto payload_crc = read_pod<std::uint32_t>(in);
    const auto stored_header_crc = read_pod<std::uint32_t>(in);
    std::ostringstream bytes;
    util::write_pod(bytes, magic);
    util::write_pod(bytes, t);
    util::write_pod(bytes, count);
    util::write_pod(bytes, payload_bytes);
    util::write_pod(bytes, payload_crc);
    const std::string head = bytes.str();
    check_crc(stored_header_crc, io::Crc32::of(head.data(), head.size()),
              "validate_train_state: optimizer-section header", head.size());
    std::string body(payload_bytes, '\0');
    in.read(body.data(), static_cast<std::streamsize>(payload_bytes));
    if (static_cast<std::uint64_t>(in.gcount()) != payload_bytes) {
      fail("validate_train_state: truncated — optimizer section declares " +
           std::to_string(payload_bytes) + " payload bytes");
    }
    check_crc(payload_crc, io::Crc32::of(body.data(), body.size()),
              "validate_train_state: optimizer payload", head.size());
    std::istringstream verified(body);
    walk_matrices(verified, 2 * count, "moment");
    if (verified.peek() != std::char_traits<char>::eof()) {
      fail("validate_train_state: optimizer payload longer than its shapes declare");
    }
  } catch (const io::FormatError&) {
    throw;
  } catch (const std::runtime_error&) {
    fail("validate_train_state: truncated optimizer section");
  }
}

struct StateHeader {
  std::uint32_t version = 0;
  std::uint32_t epoch = 0;
};

StateHeader read_state_header(std::istream& in, const char* who) {
  using util::read_pod;
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kStateMagic) {
    fail(std::string(who) + ": bad magic (not an SPCK train state)");
  }
  StateHeader header;
  try {
    header.version = read_pod<std::uint32_t>(in);
    if (header.version != kStateVersion && header.version != kStateVersionLegacy) {
      fail(std::string(who) + ": unsupported version " + std::to_string(header.version));
    }
    header.epoch = read_pod<std::uint32_t>(in);
    if (header.version == kStateVersion) {
      const auto stored_header_crc = read_pod<std::uint32_t>(in);
      std::ostringstream bytes;
      util::write_pod(bytes, magic);
      util::write_pod(bytes, header.version);
      util::write_pod(bytes, header.epoch);
      const std::string head = bytes.str();
      check_crc(stored_header_crc, io::Crc32::of(head.data(), head.size()),
                (std::string(who) + ": train-state header").c_str(), head.size());
    }
  } catch (const io::FormatError&) {
    throw;
  } catch (const std::runtime_error&) {
    fail(std::string(who) + ": truncated header");
  }
  return header;
}

void expect_file_end(std::istream& in, const char* who) {
  if (in.peek() != std::char_traits<char>::eof()) {
    fail(std::string(who) + ": trailing garbage after the declared contents");
  }
}

/// Parses the epoch out of `<prefix><digits>.bin`; nullopt for other names.
std::optional<std::uint32_t> epoch_of(const std::string& filename, const char* prefix) {
  const std::string_view name(filename);
  const std::string_view pre(prefix);
  if (name.size() <= pre.size() + 4 || name.substr(0, pre.size()) != pre ||
      name.substr(name.size() - 4) != ".bin") {
    return std::nullopt;
  }
  const std::string_view digits = name.substr(pre.size(), name.size() - pre.size() - 4);
  std::uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > UINT32_MAX) return std::nullopt;
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace

void save_parameters(std::ostream& out, const Module& module) {
  using util::write_pod;
  std::ostringstream payload;
  for (const auto& p : module.parameters()) {
    write_pod<std::uint64_t>(payload, p.value().rows());
    write_pod<std::uint64_t>(payload, p.value().cols());
    const auto data = p.value().data();
    payload.write(reinterpret_cast<const char*>(data.data()),
                  static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  const std::string body = payload.str();
  std::ostringstream header;
  write_pod(header, kMagic);
  write_pod<std::uint64_t>(header, module.parameters().size());
  write_pod<std::uint64_t>(header, body.size());
  write_pod<std::uint32_t>(header, io::Crc32::of(body.data(), body.size()));
  const std::string head = header.str();
  out.write(head.data(), static_cast<std::streamsize>(head.size()));
  write_pod<std::uint32_t>(out, io::Crc32::of(head.data(), head.size()));
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!out) throw std::runtime_error("save_parameters: write failed");
}

void save_parameters_file(const std::string& path, const Module& module) {
  io::write_file_atomic(path, [&](std::ostream& out) { save_parameters(out, module); });
}

void load_parameters(std::istream& in, Module& module, io::ReadIntegrity* integrity) {
  const ParameterSectionHeader header = read_parameter_header(in);
  if (integrity != nullptr) {
    integrity->version = header.checksummed() ? 2 : 1;
    integrity->checksummed = header.checksummed();
  }
  if (header.count != module.parameters().size()) {
    throw std::invalid_argument("load_parameters: parameter count mismatch");
  }
  if (header.checksummed()) {
    // Verify the whole payload BEFORE interpreting any of it: a flipped bit
    // reports as a checksum mismatch, never as a bogus shape error.
    const std::string body = read_verified_payload(in, header, "load_parameters");
    std::istringstream verified(body);
    for (auto& p : module.parameters()) {
      read_matrix_data(verified, p.mutable_value(), "load_parameters");
    }
  } else {
    for (auto& p : module.parameters()) {
      read_matrix_data(in, p.mutable_value(), "load_parameters");
    }
  }
}

void load_parameters_file(const std::string& path, Module& module,
                          io::ReadIntegrity* integrity) {
  io::storage_faults_on_read(path);
  std::ifstream in(path, std::ios::binary);
  if (!in) io::throw_errno("load_parameters_file: cannot open", path);
  io::with_path(path, [&] {
    load_parameters(in, module, integrity);
    expect_file_end(in, "load_parameters_file");
  });
}

void save_train_state(std::ostream& out, const Module& module, const Optimizer& optimizer,
                      std::uint32_t epoch) {
  using util::write_pod;
  std::ostringstream header;
  write_pod(header, kStateMagic);
  write_pod(header, kStateVersion);
  write_pod(header, epoch);
  const std::string head = header.str();
  out.write(head.data(), static_cast<std::streamsize>(head.size()));
  write_pod<std::uint32_t>(out, io::Crc32::of(head.data(), head.size()));
  save_parameters(out, module);
  optimizer.save_state(out);
  if (!out) throw std::runtime_error("save_train_state: write failed");
}

void save_train_state_file(const std::string& path, const Module& module,
                           const Optimizer& optimizer, std::uint32_t epoch) {
  io::write_file_atomic(
      path, [&](std::ostream& out) { save_train_state(out, module, optimizer, epoch); });
}

std::uint32_t load_train_state(std::istream& in, Module& module, Optimizer& optimizer,
                               io::ReadIntegrity* integrity) {
  const StateHeader header = read_state_header(in, "load_train_state");
  io::ReadIntegrity params;
  load_parameters(in, module, &params);
  optimizer.load_state(in);
  if (integrity != nullptr) {
    integrity->version = header.version;
    integrity->checksummed = header.version == kStateVersion && params.checksummed;
  }
  return header.epoch;
}

std::uint32_t load_train_state_file(const std::string& path, Module& module,
                                    Optimizer& optimizer, io::ReadIntegrity* integrity) {
  io::storage_faults_on_read(path);
  std::ifstream in(path, std::ios::binary);
  if (!in) io::throw_errno("load_train_state_file: cannot open", path);
  return io::with_path(path, [&] {
    const std::uint32_t epoch = load_train_state(in, module, optimizer, integrity);
    expect_file_end(in, "load_train_state_file");
    return epoch;
  });
}

// ---- checkpoint directories ----

std::string checkpoint_model_file(const std::string& dir, std::uint32_t epoch) {
  return (fs::path(dir) / (kModelPrefix + std::to_string(epoch) + ".bin")).string();
}

std::string checkpoint_state_file(const std::string& dir, std::uint32_t epoch) {
  return (fs::path(dir) / (kStatePrefix + std::to_string(epoch) + ".bin")).string();
}

std::vector<CheckpointEntry> list_checkpoints(const std::string& dir) {
  std::vector<CheckpointEntry> entries;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(dir, ec)) {
    if (!item.is_regular_file()) continue;
    const auto epoch = epoch_of(item.path().filename().string(), kStatePrefix);
    if (!epoch.has_value()) continue;
    CheckpointEntry entry;
    entry.epoch = *epoch;
    entry.state_file = item.path().string();
    entry.model_file = checkpoint_model_file(dir, *epoch);
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const CheckpointEntry& a, const CheckpointEntry& b) { return a.epoch > b.epoch; });
  return entries;
}

std::uint32_t validate_train_state_file(const std::string& path) {
  io::storage_faults_on_read(path);
  std::ifstream in(path, std::ios::binary);
  if (!in) io::throw_errno("validate_train_state: cannot open", path);
  return io::with_path(path, [&] {
    const StateHeader header = read_state_header(in, "validate_train_state");
    bool checksummed = header.version == kStateVersion;
    walk_parameter_section(in, checksummed);
    walk_optimizer_section(in, checksummed);
    expect_file_end(in, "validate_train_state");
    return header.epoch;
  });
}

std::optional<CheckpointEntry> find_latest_valid_checkpoint(const std::string& dir,
                                                            std::uint32_t* skipped) {
  if (skipped != nullptr) *skipped = 0;
  for (const auto& entry : list_checkpoints(dir)) {
    try {
      (void)validate_train_state_file(entry.state_file);
      return entry;
    } catch (const std::exception&) {
      // Corrupt, truncated, or unreadable: recovery falls back to the next
      // older checkpoint instead of dying on the newest one.
      if (skipped != nullptr) ++*skipped;
    }
  }
  return std::nullopt;
}

void write_checkpoint_manifest(const std::string& dir) {
  std::ostringstream body;
  body << "# SpLPG checkpoint manifest (advisory; the directory scan is ground truth)\n";
  const auto entries = list_checkpoints(dir);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {  // oldest first
    body << "epoch=" << it->epoch << " state=" << fs::path(it->state_file).filename().string()
         << " model=" << fs::path(it->model_file).filename().string() << "\n";
  }
  const std::string text = body.str();
  std::ostringstream crc;
  crc << "crc=0x" << std::hex << io::Crc32::of(text.data(), text.size()) << "\n";
  io::write_file_atomic((fs::path(dir) / kManifestFile).string(),
                        [&](std::ostream& out) { out << text << crc.str(); });
}

std::vector<CheckpointEntry> read_checkpoint_manifest(const std::string& dir) {
  std::ifstream in((fs::path(dir) / kManifestFile).string());
  if (!in) return {};
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const auto crc_pos = text.rfind("crc=0x");
  if (crc_pos == std::string::npos) return {};
  const std::string body = text.substr(0, crc_pos);
  std::uint32_t stored = 0;
  try {
    stored = static_cast<std::uint32_t>(
        std::stoul(text.substr(crc_pos + 6), nullptr, 16));
  } catch (const std::exception&) {
    return {};
  }
  if (stored != io::Crc32::of(body.data(), body.size())) return {};
  std::vector<CheckpointEntry> entries;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    CheckpointEntry entry;
    std::istringstream fields(line);
    std::string token;
    bool have_epoch = false;
    while (fields >> token) {
      const auto eq = token.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      try {
        if (key == "epoch") {
          entry.epoch = static_cast<std::uint32_t>(std::stoul(value));
          have_epoch = true;
        } else if (key == "state") {
          entry.state_file = (fs::path(dir) / value).string();
        } else if (key == "model") {
          entry.model_file = (fs::path(dir) / value).string();
        }
      } catch (const std::exception&) {
        return {};
      }
    }
    if (have_epoch) entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const CheckpointEntry& a, const CheckpointEntry& b) { return a.epoch > b.epoch; });
  return entries;
}

std::size_t gc_checkpoints(const std::string& dir, std::uint32_t keep_last) {
  std::size_t removed = 0;
  std::error_code ec;
  // Epochs present as either artifact, newest first.
  std::vector<std::uint32_t> epochs;
  std::vector<fs::path> temps;
  for (const auto& item : fs::directory_iterator(dir, ec)) {
    if (!item.is_regular_file()) continue;
    const std::string name = item.path().filename().string();
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
      temps.push_back(item.path());
      continue;
    }
    for (const char* prefix : {kStatePrefix, kModelPrefix}) {
      if (const auto epoch = epoch_of(name, prefix); epoch.has_value()) {
        epochs.push_back(*epoch);
        break;
      }
    }
  }
  // Orphaned AtomicFile temporaries are wreckage from an interrupted write;
  // the completed artifact (if any) lives under the final name.
  for (const auto& temp : temps) {
    if (fs::remove(temp, ec)) ++removed;
  }
  if (keep_last == 0) return removed;
  std::sort(epochs.begin(), epochs.end(), std::greater<>());
  epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());
  for (std::size_t i = keep_last; i < epochs.size(); ++i) {
    for (const auto& path : {checkpoint_state_file(dir, epochs[i]),
                             checkpoint_model_file(dir, epochs[i])}) {
      if (fs::remove(path, ec)) ++removed;
    }
  }
  return removed;
}

}  // namespace splpg::nn
