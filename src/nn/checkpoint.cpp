#include "nn/checkpoint.hpp"

#include <fstream>
#include <stdexcept>

#include "util/serialize.hpp"

namespace splpg::nn {

namespace {
constexpr std::uint32_t kMagic = 0x53504C4D;  // "SPLM"
}

void save_parameters(std::ostream& out, const Module& module) {
  using util::write_pod;
  write_pod(out, kMagic);
  write_pod<std::uint64_t>(out, module.parameters().size());
  for (const auto& p : module.parameters()) {
    write_pod<std::uint64_t>(out, p.value().rows());
    write_pod<std::uint64_t>(out, p.value().cols());
    const auto data = p.value().data();
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("save_parameters: write failed");
}

void save_parameters_file(const std::string& path, const Module& module) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_parameters_file: cannot open " + path);
  save_parameters(out, module);
}

void load_parameters(std::istream& in, Module& module) {
  using util::read_pod;
  if (read_pod<std::uint32_t>(in) != kMagic) {
    throw std::runtime_error("load_parameters: bad magic");
  }
  const auto count = read_pod<std::uint64_t>(in);
  if (count != module.parameters().size()) {
    throw std::invalid_argument("load_parameters: parameter count mismatch");
  }
  for (auto& p : module.parameters()) {
    const auto rows = read_pod<std::uint64_t>(in);
    const auto cols = read_pod<std::uint64_t>(in);
    if (rows != p.value().rows() || cols != p.value().cols()) {
      throw std::invalid_argument("load_parameters: shape mismatch");
    }
    auto data = p.mutable_value().data();
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!in) throw std::runtime_error("load_parameters: unexpected end of stream");
  }
}

void load_parameters_file(const std::string& path, Module& module) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_parameters_file: cannot open " + path);
  load_parameters(in, module);
}

}  // namespace splpg::nn
