#include "nn/checkpoint.hpp"

#include <fstream>
#include <stdexcept>

#include "util/serialize.hpp"

namespace splpg::nn {

namespace {
constexpr std::uint32_t kMagic = 0x53504C4D;       // "SPLM"
constexpr std::uint32_t kStateMagic = 0x5350434B;  // "SPCK"
constexpr std::uint32_t kStateVersion = 1;
}

void save_parameters(std::ostream& out, const Module& module) {
  using util::write_pod;
  write_pod(out, kMagic);
  write_pod<std::uint64_t>(out, module.parameters().size());
  for (const auto& p : module.parameters()) {
    write_pod<std::uint64_t>(out, p.value().rows());
    write_pod<std::uint64_t>(out, p.value().cols());
    const auto data = p.value().data();
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("save_parameters: write failed");
}

void save_parameters_file(const std::string& path, const Module& module) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_parameters_file: cannot open " + path);
  save_parameters(out, module);
}

void load_parameters(std::istream& in, Module& module) {
  using util::read_pod;
  if (read_pod<std::uint32_t>(in) != kMagic) {
    throw std::runtime_error("load_parameters: bad magic");
  }
  const auto count = read_pod<std::uint64_t>(in);
  if (count != module.parameters().size()) {
    throw std::invalid_argument("load_parameters: parameter count mismatch");
  }
  for (auto& p : module.parameters()) {
    const auto rows = read_pod<std::uint64_t>(in);
    const auto cols = read_pod<std::uint64_t>(in);
    if (rows != p.value().rows() || cols != p.value().cols()) {
      throw std::invalid_argument("load_parameters: shape mismatch");
    }
    auto data = p.mutable_value().data();
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!in) throw std::runtime_error("load_parameters: unexpected end of stream");
  }
}

void load_parameters_file(const std::string& path, Module& module) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_parameters_file: cannot open " + path);
  load_parameters(in, module);
}

void save_train_state(std::ostream& out, const Module& module, const Optimizer& optimizer,
                      std::uint32_t epoch) {
  using util::write_pod;
  write_pod(out, kStateMagic);
  write_pod(out, kStateVersion);
  write_pod(out, epoch);
  save_parameters(out, module);
  optimizer.save_state(out);
  if (!out) throw std::runtime_error("save_train_state: write failed");
}

void save_train_state_file(const std::string& path, const Module& module,
                           const Optimizer& optimizer, std::uint32_t epoch) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_train_state_file: cannot open " + path);
  save_train_state(out, module, optimizer, epoch);
}

std::uint32_t load_train_state(std::istream& in, Module& module, Optimizer& optimizer) {
  using util::read_pod;
  if (read_pod<std::uint32_t>(in) != kStateMagic) {
    throw std::runtime_error("load_train_state: bad magic (not an SPCK train state)");
  }
  if (const auto version = read_pod<std::uint32_t>(in); version != kStateVersion) {
    throw std::runtime_error("load_train_state: unsupported version " +
                             std::to_string(version));
  }
  const auto epoch = read_pod<std::uint32_t>(in);
  load_parameters(in, module);
  optimizer.load_state(in);
  return epoch;
}

std::uint32_t load_train_state_file(const std::string& path, Module& module,
                                    Optimizer& optimizer) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_train_state_file: cannot open " + path);
  return load_train_state(in, module, optimizer);
}

}  // namespace splpg::nn
