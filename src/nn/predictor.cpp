#include "nn/predictor.hpp"

#include <stdexcept>
#include <vector>

namespace splpg::nn {

using tensor::Tensor;

namespace {

std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>> split_pairs(
    std::span<const PairIndex> pairs) {
  std::vector<std::uint32_t> u;
  std::vector<std::uint32_t> v;
  u.reserve(pairs.size());
  v.reserve(pairs.size());
  for (const auto& pair : pairs) {
    u.push_back(pair.u);
    v.push_back(pair.v);
  }
  return {std::move(u), std::move(v)};
}

}  // namespace

Tensor DotPredictor::score(const Tensor& embeddings, std::span<const PairIndex> pairs) const {
  const auto [u, v] = split_pairs(pairs);
  return rowwise_dot(gather_rows(embeddings, u), gather_rows(embeddings, v));
}

MlpPredictor::MlpPredictor(std::size_t embedding_dim, std::size_t hidden_dim,
                           std::uint32_t num_layers, util::Rng& rng) {
  if (num_layers < 1) throw std::invalid_argument("MlpPredictor: need >= 1 layer");
  std::vector<std::size_t> dims;
  dims.push_back(2 * embedding_dim);
  for (std::uint32_t i = 0; i + 1 < num_layers; ++i) dims.push_back(hidden_dim);
  dims.push_back(1);
  mlp_ = std::make_unique<Mlp>(dims, rng);
  register_module(*mlp_);
}

Tensor MlpPredictor::score(const Tensor& embeddings, std::span<const PairIndex> pairs) const {
  const auto [u, v] = split_pairs(pairs);
  const Tensor joined = concat_cols(gather_rows(embeddings, u), gather_rows(embeddings, v));
  return mlp_->forward(joined);
}

std::string to_string(PredictorKind kind) {
  return kind == PredictorKind::kDot ? "dot" : "mlp";
}

PredictorKind predictor_kind_from_string(const std::string& name) {
  if (name == "dot") return PredictorKind::kDot;
  if (name == "mlp") return PredictorKind::kMlp;
  throw std::invalid_argument("unknown predictor kind: " + name);
}

std::unique_ptr<EdgePredictor> make_predictor(PredictorKind kind, std::size_t embedding_dim,
                                              std::size_t hidden_dim, std::uint32_t num_layers,
                                              util::Rng& rng) {
  if (kind == PredictorKind::kDot) return std::make_unique<DotPredictor>();
  return std::make_unique<MlpPredictor>(embedding_dim, hidden_dim, num_layers, rng);
}

}  // namespace splpg::nn
