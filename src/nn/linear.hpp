// Fully connected layers and the MLP used as the paper's edge predictor.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.hpp"
#include "tensor/autograd.hpp"
#include "util/rng.hpp"

namespace splpg::nn {

class Linear : public Module {
 public:
  Linear(std::size_t in_dim, std::size_t out_dim, util::Rng& rng);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input) const;

  [[nodiscard]] std::size_t in_dim() const noexcept { return weight_.rows(); }
  [[nodiscard]] std::size_t out_dim() const noexcept { return weight_.cols(); }

 private:
  tensor::Tensor weight_;  // in x out
  tensor::Tensor bias_;    // 1 x out
};

/// Plain MLP: Linear -> ReLU -> ... -> Linear (no activation on the output).
class Mlp : public Module {
 public:
  /// `dims` = {in, hidden..., out}; needs at least {in, out}.
  Mlp(const std::vector<std::size_t>& dims, util::Rng& rng);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input) const;

 private:
  std::vector<Linear> layers_;
};

}  // namespace splpg::nn
