#include "nn/model.hpp"

#include <stdexcept>

namespace splpg::nn {

using sampling::ComputationGraph;
using tensor::Matrix;
using tensor::Tensor;

LinkPredictionModel::LinkPredictionModel(const ModelConfig& config, std::uint64_t seed)
    : config_(config) {
  if (config.in_dim == 0) throw std::invalid_argument("model: in_dim is required");
  if (config.num_layers == 0) throw std::invalid_argument("model: need >= 1 GNN layer");

  util::Rng rng = util::Rng(seed).split("model");
  layers_.reserve(config.num_layers);
  std::size_t in_dim = config.in_dim;
  for (std::uint32_t k = 0; k < config.num_layers; ++k) {
    layers_.push_back(
        make_gnn_layer(config.gnn, in_dim, config.hidden_dim, rng, config.num_heads));
    in_dim = config.hidden_dim;
    register_module(*layers_.back());
  }
  predictor_ = make_predictor(config.predictor, config.hidden_dim, config.hidden_dim,
                              config.predictor_layers, rng);
  register_module(*predictor_);
}

Tensor LinkPredictionModel::encode(const ComputationGraph& cg, Matrix input_features) const {
  if (cg.blocks.size() != layers_.size()) {
    throw std::invalid_argument("encode: computational graph depth != model depth");
  }
  if (input_features.rows() != cg.input_nodes().size()) {
    throw std::invalid_argument("encode: input feature rows != input nodes");
  }
  Tensor h = Tensor::constant(std::move(input_features));
  for (std::size_t k = 0; k < layers_.size(); ++k) {
    h = layers_[k]->forward(cg.blocks[k], h);
    if (k + 1 < layers_.size()) h = relu(h);
  }
  return h;
}

Tensor LinkPredictionModel::encode(const ComputationGraph& cg,
                                   const graph::FeatureStore& features) const {
  const auto inputs = cg.input_nodes();
  Matrix input_features(inputs.size(), features.dim());
  features.gather_into(inputs, input_features.data());
  return encode(cg, std::move(input_features));
}

Tensor LinkPredictionModel::score(const Tensor& seed_embeddings,
                                  std::span<const PairIndex> pairs) const {
  return predictor_->score(seed_embeddings, pairs);
}

std::vector<std::uint32_t> LinkPredictionModel::default_fanouts() const {
  if (config_.gnn == GnnKind::kSage) {
    // Paper §V-A: 25/10/5 nodes from the first/second/third hop. Block 0 is
    // the input-most (deepest hop) layer.
    std::vector<std::uint32_t> fanouts(config_.num_layers, 10);
    if (config_.num_layers >= 1) fanouts[config_.num_layers - 1] = 25;
    if (config_.num_layers >= 3) fanouts[0] = 5;
    return fanouts;
  }
  return std::vector<std::uint32_t>(config_.num_layers, 0);  // full neighborhood
}

void copy_parameters(const Module& source, Module& destination) {
  const auto& src = source.parameters();
  auto& dst = destination.parameters();
  if (src.size() != dst.size()) throw std::invalid_argument("copy_parameters: arity mismatch");
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (!dst[i].value().same_shape(src[i].value())) {
      throw std::invalid_argument("copy_parameters: shape mismatch");
    }
    dst[i].mutable_value() = src[i].value();
  }
}

}  // namespace splpg::nn
