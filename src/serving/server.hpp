// Batched online link-prediction server.
//
// Clients submit() vectors of node pairs and get a future per request. All
// requests flow through one util::BoundedQueue (the PR-5 pipeline queue,
// hoisted) into a single scorer thread that coalesces pairs FIFO across
// concurrent requests into fixed-size scoring batches: per batch it
// resolves each distinct node's embedding row through the EmbeddingCache
// (miss = exact full-neighborhood encode on the SIMD kernel engine, then
// insert) and scores all pairs in one ServingModel::score_rows call.
//
// Delivery contract (the serving soak test's assertions):
//   * no response is lost or duplicated — every accepted submit()'s future
//     is fulfilled exactly once;
//   * per-client in-order delivery — pairs enter batches in request FIFO
//     order and batches complete in order, so one client's requests finish
//     in its submission order (ScoredReply::sequence is the server-wide
//     completion number: per client it is strictly increasing);
//   * shutdown() drains — it stops new submits, then scores every request
//     already accepted before joining the scorer. submit() after shutdown
//     throws.
//
// Determinism contract (DESIGN.md §11): the scores a seeded request trace
// receives are bit-identical regardless of cache capacity, batch size,
// client thread count, and queue capacity, because each pair's score is a
// pure function of (frozen model, graph, features, pair) — equal, for the
// f32 model, to core::Evaluator::score_pairs with all-zero fanouts.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <limits>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "nn/serving_model.hpp"
#include "sampling/edge_split.hpp"
#include "serving/embedding_cache.hpp"
#include "util/bounded_queue.hpp"

namespace splpg::serving {

struct ServingConfig {
  /// Max pairs per scoring batch (coalesced FIFO across requests).
  std::size_t batch_size = 64;
  /// Bounded request-queue capacity (backpressure: submit blocks when full).
  std::size_t queue_capacity = 256;
  /// EmbeddingCache capacity in entries; 0 disables caching (passthrough),
  /// SIZE_MAX (the default) never evicts.
  std::size_t cache_capacity = std::numeric_limits<std::size_t>::max();
  /// Nodes whose rows are precomputed and pinned at startup (never
  /// evicted, exempt from cache_capacity) — the production hot set.
  std::vector<graph::NodeId> pinned_nodes;
  /// Test instrumentation: called on the scorer thread with the running
  /// batch index just before each batch is scored (latency/straggler
  /// injection in the soak test). Must not throw.
  std::function<void(std::uint64_t batch_index)> batch_hook;
};

/// One request's response: scores parallel to the submitted pairs, plus the
/// server-wide completion sequence number (1-based; strictly increasing in
/// completion order, hence strictly increasing per client).
struct ScoredReply {
  std::vector<float> scores;
  std::uint64_t sequence = 0;
};

struct ServingStats {
  std::uint64_t requests = 0;  ///< requests completed
  std::uint64_t pairs = 0;     ///< pairs scored
  std::uint64_t batches = 0;   ///< scoring batches executed
};

class ServingServer {
 public:
  /// `model` must outlive the server. Precomputes + pins config.pinned_nodes.
  explicit ServingServer(const nn::ServingModel& model, ServingConfig config = {});
  ~ServingServer();

  ServingServer(const ServingServer&) = delete;
  ServingServer& operator=(const ServingServer&) = delete;

  /// Enqueues a request (blocking while the queue is full) and returns its
  /// future. Validates node ids up front (std::out_of_range). Throws
  /// std::runtime_error after shutdown().
  [[nodiscard]] std::future<ScoredReply> submit(std::vector<sampling::NodePair> pairs);

  /// Synchronous convenience: submit + wait.
  [[nodiscard]] ScoredReply score_pairs(std::span<const sampling::NodePair> pairs);

  /// Stops accepting, scores every already-accepted request, joins the
  /// scorer. Idempotent; called by the destructor.
  void shutdown();

  /// Drops all unpinned cache entries (mid-flight invalidation; scores are
  /// unaffected by construction).
  void clear_cache();

  [[nodiscard]] EmbeddingCache::Stats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] ServingStats stats() const;

 private:
  struct Request {
    std::vector<sampling::NodePair> pairs;
    std::promise<ScoredReply> promise;
  };

  void scorer_loop_();

  const nn::ServingModel* model_;
  ServingConfig config_;
  EmbeddingCache cache_;
  util::BoundedQueue<Request> queue_;
  std::atomic<bool> accepting_{true};
  mutable std::mutex stats_mutex_;
  ServingStats stats_;
  std::thread scorer_;  // last member: starts after everything it reads
};

}  // namespace splpg::serving
