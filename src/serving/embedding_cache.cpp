#include "serving/embedding_cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace splpg::serving {

using graph::NodeId;

EmbeddingCache::EmbeddingCache(std::size_t capacity, std::size_t row_bytes)
    : capacity_(capacity), row_bytes_(row_bytes) {
  if (row_bytes_ == 0) throw std::invalid_argument("EmbeddingCache: row_bytes must be > 0");
}

std::size_t EmbeddingCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t EmbeddingCache::pinned_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size() - unpinned_;
}

void EmbeddingCache::check_row_size_(std::size_t got) const {
  if (got != row_bytes_) {
    throw std::invalid_argument("EmbeddingCache: row size mismatch");
  }
}

bool EmbeddingCache::lookup(NodeId node, std::span<std::byte> out) {
  check_row_size_(out.size());
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.lookups;
  const auto it = entries_.find(node);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  if (!it->second.pinned && it->second.lru != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru);  // refresh recency
  }
  std::copy(it->second.row.begin(), it->second.row.end(), out.begin());
  return true;
}

void EmbeddingCache::insert(NodeId node, std::span<const std::byte> row) {
  check_row_size_(row.size());
  const std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0 || entries_.count(node) != 0) return;
  if (unpinned_ == capacity_) {
    // Evict the least-recently-used unpinned entry.
    const NodeId victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    --unpinned_;
    ++stats_.evictions;
  }
  lru_.push_front(node);
  Entry entry;
  entry.row.assign(row.begin(), row.end());
  entry.lru = lru_.begin();
  entries_.emplace(node, std::move(entry));
  ++unpinned_;
}

void EmbeddingCache::pin(NodeId node, std::span<const std::byte> row) {
  check_row_size_(row.size());
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(node);
  if (it != entries_.end()) {
    if (!it->second.pinned) {  // promote in place
      lru_.erase(it->second.lru);
      --unpinned_;
      it->second.pinned = true;
    }
    return;
  }
  Entry entry;
  entry.row.assign(row.begin(), row.end());
  entry.pinned = true;
  entries_.emplace(node, std::move(entry));
}

void EmbeddingCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const NodeId node : lru_) entries_.erase(node);
  stats_.evictions += unpinned_;
  lru_.clear();
  unpinned_ = 0;
}

EmbeddingCache::Stats EmbeddingCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace splpg::serving
