// LRU cache of per-node serving rows (precomputed embeddings).
//
// The serving hot path is dominated by embedding access (a cache miss costs
// a full L-hop full-neighborhood encode over the — possibly mmap-backed —
// FeatureStore; a hit is one row copy), so the cache is the layer that
// makes "millions of users" latency possible. Content-agnostic: rows are
// fixed-size byte blobs in whatever format the ServingModel emits (f32 or
// int8 + scale), and because serving rows are pure functions of the node
// id, an entry that is evicted and later recomputed holds identical bytes —
// the cache can never serve a stale or schedule-dependent answer.
//
// Pinned hot set: pin() installs entries that are never evicted and do not
// count against the LRU capacity (size the pin set deliberately — e.g. the
// top-degree nodes a production mix hammers). capacity 0 is a passthrough:
// every unpinned lookup misses and inserts are dropped, which is how the
// bench measures the uncached baseline.
//
// Thread-safe: a single mutex guards map + LRU list + counters; lookup
// copies the row out under the lock so callers never hold references into
// the cache. Counter contract: hits + misses == lookups, always.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/csr_graph.hpp"

namespace splpg::serving {

class EmbeddingCache {
 public:
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  /// `capacity` bounds the number of UNPINNED entries; `row_bytes` is the
  /// fixed size of every row.
  EmbeddingCache(std::size_t capacity, std::size_t row_bytes);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t row_bytes() const noexcept { return row_bytes_; }

  /// Entries currently resident (pinned + unpinned).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t pinned_count() const;

  /// Copies the row for `node` into `out` (row_bytes() bytes) and returns
  /// true on a hit; counts one lookup either way. A hit refreshes LRU
  /// recency (pinned entries have no recency to refresh).
  bool lookup(graph::NodeId node, std::span<std::byte> out);

  /// Stores a copy of `row`, evicting the least-recently-used unpinned
  /// entry when at capacity. No-op at capacity 0 (passthrough) and for
  /// nodes already resident (rows are pure functions of the node, so a
  /// re-insert has nothing new to say).
  void insert(graph::NodeId node, std::span<const std::byte> row);

  /// Installs `node` as a pinned entry: never evicted, exempt from
  /// `capacity`. An existing unpinned entry is promoted in place.
  void pin(graph::NodeId node, std::span<const std::byte> row);

  /// Drops every UNPINNED entry (counted as evictions); pinned entries and
  /// counters survive. Models mid-flight invalidation pressure.
  void clear();

  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::vector<std::byte> row;
    bool pinned = false;
    std::list<graph::NodeId>::iterator lru;  // valid iff !pinned
  };

  void check_row_size_(std::size_t got) const;

  const std::size_t capacity_;
  const std::size_t row_bytes_;
  mutable std::mutex mutex_;
  std::unordered_map<graph::NodeId, Entry> entries_;
  std::list<graph::NodeId> lru_;  // front = most recently used (unpinned only)
  std::size_t unpinned_ = 0;
  Stats stats_;
};

}  // namespace splpg::serving
