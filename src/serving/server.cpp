#include "serving/server.hpp"

#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace splpg::serving {

using graph::NodeId;
using sampling::NodePair;

ServingServer::ServingServer(const nn::ServingModel& model, ServingConfig config)
    : model_(&model),
      config_(std::move(config)),
      cache_(config_.cache_capacity, model.row_bytes()),
      queue_(config_.queue_capacity) {
  if (config_.batch_size == 0) config_.batch_size = 1;
  std::vector<std::byte> row(model_->row_bytes());
  for (const NodeId node : config_.pinned_nodes) {
    model_->compute_row(node, row);
    cache_.pin(node, row);
  }
  scorer_ = std::thread([this] { scorer_loop_(); });
}

ServingServer::~ServingServer() { shutdown(); }

std::future<ScoredReply> ServingServer::submit(std::vector<NodePair> pairs) {
  for (const NodePair& pair : pairs) {
    if (pair.u >= model_->num_nodes() || pair.v >= model_->num_nodes()) {
      throw std::out_of_range("ServingServer::submit: node id out of range");
    }
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    throw std::runtime_error("ServingServer::submit: server is shut down");
  }
  Request request;
  request.pairs = std::move(pairs);
  std::future<ScoredReply> future = request.promise.get_future();
  if (!queue_.push(std::move(request))) {
    // Lost the race with shutdown(): the queue closed before our push landed,
    // so the scorer will never see this request.
    throw std::runtime_error("ServingServer::submit: server is shut down");
  }
  return future;
}

ScoredReply ServingServer::score_pairs(std::span<const NodePair> pairs) {
  return submit(std::vector<NodePair>(pairs.begin(), pairs.end())).get();
}

void ServingServer::shutdown() {
  if (accepting_.exchange(false, std::memory_order_acq_rel)) {
    queue_.close();  // scorer drains accepted requests, then exits
    scorer_.join();
  }
}

void ServingServer::clear_cache() { cache_.clear(); }

ServingStats ServingServer::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void ServingServer::scorer_loop_() {
  // Requests accepted but not yet fully scored, in arrival (FIFO) order.
  struct InFlight {
    Request request;
    std::vector<float> scores;
    std::size_t scored = 0;  // pairs of this request already scored
  };
  std::deque<InFlight> pending;
  std::size_t unscored = 0;      // total unscored pairs across `pending`
  std::uint64_t batch_index = 0;
  std::uint64_t sequence = 0;

  const auto admit = [&](Request&& request) {
    InFlight in_flight;
    in_flight.scores.resize(request.pairs.size());
    unscored += request.pairs.size();
    in_flight.request = std::move(request);
    pending.push_back(std::move(in_flight));
  };
  const auto fulfill_ready = [&] {
    while (!pending.empty() &&
           pending.front().scored == pending.front().request.pairs.size()) {
      InFlight done = std::move(pending.front());
      pending.pop_front();
      ScoredReply reply;
      reply.scores = std::move(done.scores);
      reply.sequence = ++sequence;
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.requests;
        stats_.pairs += reply.scores.size();
      }
      done.request.promise.set_value(std::move(reply));
    }
  };

  while (true) {
    if (pending.empty()) {
      auto request = queue_.pop();  // blocks; nullopt == closed and drained
      if (!request.has_value()) break;
      admit(std::move(request).value());
    }
    // Coalesce whatever else is already queued, up to one full batch.
    while (unscored < config_.batch_size) {
      auto request = queue_.try_pop();
      if (!request.has_value()) break;
      admit(std::move(request).value());
    }
    fulfill_ready();  // zero-pair requests complete without a batch
    if (unscored == 0) continue;

    // Assemble the next batch FIFO across requests: (request, pair) slots.
    struct Slot {
      InFlight* in_flight;
      std::size_t pair;
    };
    std::vector<Slot> slots;
    slots.reserve(std::min(unscored, config_.batch_size));
    for (auto& in_flight : pending) {
      for (std::size_t i = in_flight.scored; i < in_flight.request.pairs.size(); ++i) {
        if (slots.size() == config_.batch_size) break;
        slots.push_back({&in_flight, i});
      }
      if (slots.size() == config_.batch_size) break;
    }

    if (config_.batch_hook) config_.batch_hook(batch_index);
    ++batch_index;

    // Resolve each distinct endpoint's row once per batch: cache hit = row
    // copy, miss = exact recompute + insert. Map nodes are stable, so the
    // row pointers below survive later insertions.
    std::unordered_map<NodeId, std::vector<std::byte>> rows;
    const auto resolve = [&](NodeId node) -> const std::byte* {
      auto it = rows.find(node);
      if (it == rows.end()) {
        std::vector<std::byte> row(model_->row_bytes());
        if (!cache_.lookup(node, row)) {
          model_->compute_row(node, row);
          cache_.insert(node, row);
        }
        it = rows.emplace(node, std::move(row)).first;
      }
      return it->second.data();
    };
    std::vector<const std::byte*> u_rows(slots.size());
    std::vector<const std::byte*> v_rows(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const NodePair& pair = slots[i].in_flight->request.pairs[slots[i].pair];
      u_rows[i] = resolve(pair.u);
      v_rows[i] = resolve(pair.v);
    }
    const std::vector<float> scores = model_->score_rows(u_rows, v_rows);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      slots[i].in_flight->scores[slots[i].pair] = scores[i];
      ++slots[i].in_flight->scored;
    }
    unscored -= slots.size();
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.batches;
    }
    fulfill_ready();
  }
}

}  // namespace splpg::serving
