// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) for the binary file
// formats' per-section checksums.
//
// Incremental: feed bytes in any chunking, the digest is the same. The
// standard check value holds: Crc32::of("123456789", 9) == 0xCBF43926.
#pragma once

#include <cstddef>
#include <cstdint>

namespace splpg::io {

class Crc32 {
 public:
  /// Folds `size` bytes into the running digest. Chunking-independent.
  Crc32& update(const void* data, std::size_t size) noexcept;

  /// Final (xor-out applied) digest of everything fed so far. Does not
  /// consume: more update() calls continue the same stream.
  [[nodiscard]] std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFU; }

  /// One-shot digest of a buffer.
  [[nodiscard]] static std::uint32_t of(const void* data, std::size_t size) noexcept {
    return Crc32().update(data, size).value();
  }

 private:
  std::uint32_t state_ = 0xFFFFFFFFU;
};

}  // namespace splpg::io
