// Whole-dataset persistence: a data::Dataset round-trips through a directory.
//
// Layout (one dataset per directory):
//   meta.txt      key=value manifest (name, batch_size, counts, edge format)
//   edges.bin     canonical edge list, binary SPGE format   (kBinary)
//   edges.txt     OGB-style "u v" text edge list            (kText)
//   features.bin  node features, SPFT format (mmap-able)
//   labels.bin    optional per-node community labels, SPLB format
//
// load_dataset validates the manifest against every file it loads (node
// counts, feature dims, edge counts must agree) so a mismatched or hand-
// edited directory fails loudly instead of training on garbage. Loaded
// datasets are bit-identical to what save_dataset was given — training on a
// round-tripped dataset reproduces the in-memory run exactly.
#pragma once

#include <string>

#include "data/dataset.hpp"
#include "io/feature_file.hpp"

namespace splpg::io {

enum class EdgeFormat { kText, kBinary };

struct DatasetLoadOptions {
  /// How feature rows are served: buffered heap copy or zero-copy mmap view.
  FeatureBackend feature_backend = FeatureBackend::kBuffered;
};

/// Writes `dataset` into `dir` (created if missing), overwriting any previous
/// contents of the five well-known files.
void save_dataset(const std::string& dir, const data::Dataset& dataset,
                  EdgeFormat edge_format = EdgeFormat::kBinary);

/// Loads a dataset directory written by save_dataset (edge format is taken
/// from the manifest). Throws FormatError on any inconsistency.
[[nodiscard]] data::Dataset load_dataset(const std::string& dir,
                                         const DatasetLoadOptions& options = {});

}  // namespace splpg::io
