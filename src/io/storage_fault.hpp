// Seeded, deterministic storage fault injection — the io-plane sibling of
// dist/fault (which covers the compute/network plane).
//
// A StorageFaultPlan is a list of one-shot faults. Each fault names the kind
// of misbehavior, which paths it applies to (substring match), the byte/bit
// position (or "draw one deterministically from the run seed"), and how many
// matching operations to let through before firing. The write-side kinds are
// consulted by io::AtomicFile:
//
//   kEnospc       the temp-file write stops after `offset` bytes and fails
//                 with ENOSPC — the final name is never touched.
//   kTornWrite    the commit dies between writing the temp file and renaming
//                 it: the temp is truncated at `offset` and SimulatedCrash is
//                 thrown. Models the machine dying mid-checkpoint; the
//                 crash-consistency contract is that the final name still
//                 holds its previous (complete) contents.
//   kFailedRename the rename itself fails (EXDEV/EIO style); IoError.
//
// The read-side kinds are consulted by every *_file reader before it opens
// the file, and physically corrupt the on-disk bytes (one-shot), so the
// checksum verification under test sees exactly what a real flipped bit or
// truncated file would look like:
//
//   kBitFlip      one bit at `offset` (bit index drawn from the seed) flips.
//   kShortRead    the file is truncated to `offset` bytes.
//
// All randomness (kRandomOffset resolution, bit index) comes from
// Rng(seed).split("storage"), so a plan replays byte-identically.
//
// Installation is process-global via StorageFaultScope (not thread_local:
// the trainer writes checkpoints from barrier serial sections that run on
// worker threads). Hooks serialize on an internal mutex; the checkpoint
// write path is single-threaded anyway, so firing order is deterministic.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "io/error.hpp"
#include "util/rng.hpp"

namespace splpg::io {

enum class StorageFaultKind : std::uint32_t {
  kEnospc,        // write-side: fail the temp write with ENOSPC at `offset`
  kTornWrite,     // write-side: truncate temp at `offset`, die before rename
  kFailedRename,  // write-side: the rename into place fails
  kBitFlip,       // read-side: flip one bit at byte `offset` on disk
  kShortRead,     // read-side: truncate the file to `offset` bytes on disk
};

[[nodiscard]] std::string to_string(StorageFaultKind kind);

struct StorageFault {
  /// Sentinel for `offset`: draw a position uniformly over the file size
  /// from the injector's seeded stream at fire time.
  static constexpr std::uint64_t kRandomOffset = ~0ULL;

  StorageFaultKind kind = StorageFaultKind::kBitFlip;
  /// The fault applies to operations whose path contains this substring
  /// (empty = every path).
  std::string path_contains;
  /// Byte position (write kinds: bytes successfully persisted before the
  /// failure; read kinds: corruption site). kRandomOffset = seeded draw.
  std::uint64_t offset = kRandomOffset;
  /// Number of matching operations to let through unharmed before firing
  /// (0 = fire on the first match). Each fault fires exactly once.
  std::uint32_t skip_matches = 0;
};

struct StorageFaultPlan {
  std::vector<StorageFault> faults;

  [[nodiscard]] bool empty() const noexcept { return faults.empty(); }
};

/// Fired-fault counts, by kind (read them off the injector after a run).
struct StorageFaultStats {
  std::uint64_t enospc_failures = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t failed_renames = 0;
  std::uint64_t bit_flips = 0;
  std::uint64_t short_reads = 0;

  [[nodiscard]] std::uint64_t write_faults() const noexcept {
    return enospc_failures + torn_writes + failed_renames;
  }
  [[nodiscard]] std::uint64_t read_faults() const noexcept {
    return bit_flips + short_reads;
  }
};

/// Thrown by a torn write to simulate the process dying mid-commit. NOT an
/// IoError on purpose: recovery code that swallows checkpoint I/O failures
/// must never swallow a simulated machine death, or the chaos harness would
/// be testing nothing.
class SimulatedCrash : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class StorageFaultInjector {
 public:
  StorageFaultInjector(StorageFaultPlan plan, std::uint64_t seed);

  /// Write-side hook (AtomicFile): called with the final path and the full
  /// buffered contents length before anything touches the disk. Returns the
  /// number of bytes the temp write should persist (== `size` when no fault
  /// fires) and which failure to raise after persisting them.
  struct WriteOutcome {
    enum class Kind { kNone, kEnospc, kTorn, kRenameFails } kind = Kind::kNone;
    std::uint64_t persisted_bytes = 0;
  };
  [[nodiscard]] WriteOutcome on_write(const std::string& final_path, std::uint64_t size);

  /// Read-side hook: called by *_file readers before opening `path`. Applies
  /// any due bit flip / truncation to the on-disk file (no-op if the file
  /// does not exist).
  void on_read(const std::string& path);

  [[nodiscard]] StorageFaultStats stats() const;

 private:
  [[nodiscard]] std::uint64_t resolve_offset(const StorageFault& fault, std::uint64_t size);

  mutable std::mutex mutex_;
  StorageFaultPlan plan_;
  std::vector<bool> fired_;
  std::vector<std::uint32_t> remaining_skips_;
  util::Rng rng_;
  StorageFaultStats stats_;
};

/// Installs `injector` as the process-global storage fault source for the
/// scope's lifetime (nullptr = explicitly none). Scopes nest; the innermost
/// wins. Construction/destruction must happen on one thread at a time (the
/// trainer installs at most one per run).
class StorageFaultScope {
 public:
  explicit StorageFaultScope(StorageFaultInjector* injector) noexcept;
  ~StorageFaultScope();
  StorageFaultScope(const StorageFaultScope&) = delete;
  StorageFaultScope& operator=(const StorageFaultScope&) = delete;

 private:
  StorageFaultInjector* previous_;
};

/// The innermost installed injector, or nullptr. Consulted by AtomicFile and
/// the *_file readers.
[[nodiscard]] StorageFaultInjector* active_storage_faults() noexcept;

/// Read-side hook entry point for *_file readers: applies due read faults to
/// `path` when an injector is installed, else no-op.
void storage_faults_on_read(const std::string& path);

}  // namespace splpg::io
