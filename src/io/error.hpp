// Error types shared by every binary/text format in the io module.
//
// FormatError: the bytes are wrong — torn headers, checksum mismatches,
// trailing garbage, out-of-range ids. The message names the file (when read
// through a *_file wrapper), the section, and the byte offset so a corrupt
// artifact can be diagnosed without a hex dump.
//
// IoError: the operating system said no — open/write/rename/fsync failures.
// Carries the errno captured at the failure site; the message includes
// strerror(errno) and the full path.
#pragma once

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace splpg::io {

/// Raised on any malformed input; the message carries file/section/offset
/// context.
class FormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised when a filesystem operation fails; wraps the errno of the failure.
class IoError : public FormatError {
 public:
  IoError(const std::string& message, int error_number)
      : FormatError(message), error_number_(error_number) {}

  [[nodiscard]] int error_number() const noexcept { return error_number_; }

 private:
  int error_number_;
};

/// Filled in by the binary readers when the caller wants to know whether the
/// bytes were actually checksum-verified. v1 (pre-checksum) files parse but
/// come back `checksummed = false` — readable, flagged unverified.
struct ReadIntegrity {
  std::uint32_t version = 0;  // format version actually parsed
  bool checksummed = false;   // true = per-section CRCs verified on read
};

/// Throws IoError for a failed OS call: "<operation> <path>: <strerror>".
/// `error_number` defaults to the current errno.
[[noreturn]] inline void throw_errno(const std::string& operation, const std::string& path,
                                     int error_number = errno) {
  throw IoError(operation + " " + path + ": " + std::strerror(error_number), error_number);
}

/// Runs `fn`, prefixing any FormatError it raises with the file path (unless
/// the message already names it). IoErrors pass through untouched — they are
/// built with the path at the failure site and rethrowing would drop errno.
template <typename Fn>
decltype(auto) with_path(const std::string& path, Fn&& fn) {
  try {
    return fn();
  } catch (const IoError&) {
    throw;
  } catch (const FormatError& error) {
    const std::string what = error.what();
    if (what.find(path) != std::string::npos) throw;
    throw FormatError(path + ": " + what);
  }
}

}  // namespace splpg::io
