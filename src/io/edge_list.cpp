#include "io/edge_list.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "io/atomic_file.hpp"
#include "io/crc32.hpp"
#include "io/storage_fault.hpp"
#include "util/serialize.hpp"

namespace splpg::io {

using graph::CsrGraph;
using graph::Edge;
using graph::EdgeId;
using graph::GraphBuilder;
using graph::NodeId;

namespace {

constexpr std::uint32_t kEdgeMagic = 0x53504745;  // "SPGE"
constexpr std::uint32_t kEdgeVersionLegacy = 1;   // pre-checksum layout
constexpr std::uint32_t kEdgeVersion = 2;         // + payload/header CRC-32
// v2 header: magic, version, flags, num_nodes (u32 each), num_edges (u64),
// payload_crc, header_crc (u32 each). The header CRC covers bytes [0, 28).
constexpr std::size_t kEdgeHeaderBytesV2 = 32;
constexpr std::size_t kEdgeHeaderBytesV1 = 24;
constexpr std::uint32_t kFlagWeighted = 1U << 0;

[[noreturn]] void fail(const std::string& message) { throw FormatError(message); }

/// Parsed but not yet validated text edge, with its source line for errors.
struct RawEdge {
  std::uint64_t u = 0;
  std::uint64_t v = 0;
  float weight = 1.0F;
  std::uint64_t line = 0;
};

const char* skip_spaces(const char* it, const char* end) {
  while (it != end && (*it == ' ' || *it == '\t' || *it == '\r')) ++it;
  return it;
}

std::uint64_t parse_id(const char*& it, const char* end, std::uint64_t line,
                       const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(it, end, value);
  if (ec != std::errc{} || ptr == it) {
    fail("edge list line " + std::to_string(line) + ": expected a numeric " + what +
         ", got '" + std::string(it, end) + "'");
  }
  it = ptr;
  return value;
}

/// Canonicalizes, range-checks, and (strict) rejects self-loops/duplicates,
/// then builds the graph. Shared by the text and binary readers.
CsrGraph build_checked(NodeId num_nodes, std::vector<RawEdge> raw, bool weighted,
                       const EdgeListOptions& options, const char* format) {
  const bool bounded = options.expected_nodes > 0 || num_nodes > 0;
  for (const auto& edge : raw) {
    const std::uint64_t limit =
        bounded ? num_nodes : static_cast<std::uint64_t>(graph::kInvalidNode);
    if (edge.u >= limit || edge.v >= limit) {
      fail(std::string(format) + " line " + std::to_string(edge.line) + ": node id " +
           std::to_string(std::max(edge.u, edge.v)) + " out of range [0, " +
           std::to_string(limit) + ")");
    }
    if (options.strict && edge.u == edge.v) {
      fail(std::string(format) + " line " + std::to_string(edge.line) + ": self-loop at node " +
           std::to_string(edge.u));
    }
  }
  if (options.strict) {
    std::vector<std::pair<Edge, std::uint64_t>> canonical;
    canonical.reserve(raw.size());
    for (const auto& edge : raw) {
      const auto u = static_cast<NodeId>(std::min(edge.u, edge.v));
      const auto v = static_cast<NodeId>(std::max(edge.u, edge.v));
      canonical.emplace_back(Edge{u, v}, edge.line);
    }
    std::sort(canonical.begin(), canonical.end());
    for (std::size_t i = 1; i < canonical.size(); ++i) {
      if (canonical[i].first == canonical[i - 1].first) {
        fail(std::string(format) + " line " + std::to_string(canonical[i].second) +
             ": duplicate edge (" + std::to_string(canonical[i].first.u) + ", " +
             std::to_string(canonical[i].first.v) + ") first seen on line " +
             std::to_string(canonical[i - 1].second));
      }
    }
  }
  GraphBuilder builder(num_nodes, weighted);
  for (const auto& edge : raw) {
    builder.add_edge(static_cast<NodeId>(edge.u), static_cast<NodeId>(edge.v), edge.weight);
  }
  return builder.build();
}

/// Bytes left in a seekable stream, or nullopt when the stream cannot tell —
/// used to report truncation *before* trusting a header's element count.
std::optional<std::uint64_t> remaining_bytes(std::istream& in) {
  const auto here = in.tellg();
  if (here < 0) return std::nullopt;
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(here);
  if (end < 0) return std::nullopt;
  return static_cast<std::uint64_t>(end - here);
}

/// Rejects bytes past the declared payload, naming the first stray offset.
void expect_end_of_payload(std::istream& in, std::uint64_t payload_end, const char* format) {
  if (in.peek() != std::char_traits<char>::eof()) {
    fail(std::string(format) + ": trailing garbage after the declared payload at offset " +
         std::to_string(payload_end));
  }
}

}  // namespace

CsrGraph read_edge_list_text(std::istream& in, const EdgeListOptions& options) {
  if (options.renumber && options.expected_nodes > 0) {
    fail("edge list: renumber and expected_nodes are mutually exclusive");
  }
  std::vector<RawEdge> raw;
  std::unordered_map<std::uint64_t, NodeId> remap;
  std::uint64_t max_id = 0;
  bool weighted = false;
  std::string line;
  std::uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const char* it = line.data();
    const char* end = line.data() + line.size();
    it = skip_spaces(it, end);
    if (it == end || *it == '#') continue;

    RawEdge edge;
    edge.line = line_number;
    edge.u = parse_id(it, end, line_number, "source id");
    it = skip_spaces(it, end);
    if (it == end) fail("edge list line " + std::to_string(line_number) + ": missing target id");
    edge.v = parse_id(it, end, line_number, "target id");
    it = skip_spaces(it, end);
    if (it != end) {
      // Optional third column: edge weight.
      const auto [ptr, ec] = std::from_chars(it, end, edge.weight);
      if (ec != std::errc{} || ptr == it) {
        fail("edge list line " + std::to_string(line_number) + ": expected a numeric weight, got '" +
             std::string(it, end) + "'");
      }
      it = skip_spaces(ptr, end);
      if (it != end) {
        fail("edge list line " + std::to_string(line_number) + ": trailing tokens '" +
             std::string(it, end) + "'");
      }
      weighted = true;
    }
    if (options.renumber) {
      for (std::uint64_t* id : {&edge.u, &edge.v}) {
        const auto [entry, inserted] = remap.emplace(*id, static_cast<NodeId>(remap.size()));
        (void)inserted;
        *id = entry->second;
      }
    }
    max_id = std::max({max_id, edge.u, edge.v});
    raw.push_back(edge);
  }
  if (in.bad()) fail("edge list: read failed");

  NodeId num_nodes = options.expected_nodes;
  if (num_nodes == 0 && !raw.empty()) {
    if (max_id >= graph::kInvalidNode) {
      fail("edge list: node id " + std::to_string(max_id) + " exceeds the supported maximum " +
           std::to_string(graph::kInvalidNode - 1));
    }
    num_nodes = static_cast<NodeId>(max_id) + 1;
  }
  return build_checked(num_nodes, std::move(raw), weighted, options, "edge list");
}

CsrGraph read_edge_list_text_file(const std::string& path, const EdgeListOptions& options) {
  storage_faults_on_read(path);
  std::ifstream in(path);
  if (!in) throw_errno("edge list: cannot open", path);
  return with_path(path, [&] { return read_edge_list_text(in, options); });
}

void write_edge_list_text(std::ostream& out, const CsrGraph& graph) {
  out << "# nodes=" << graph.num_nodes() << " edges=" << graph.num_edges()
      << (graph.is_weighted() ? " weighted=1" : "") << "\n";
  char weight_text[32];
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto& [u, v] = graph.edges()[e];
    out << u << " " << v;
    if (graph.is_weighted()) {
      // %.9g round-trips any float exactly through strtof/from_chars.
      std::snprintf(weight_text, sizeof(weight_text), "%.9g",
                    static_cast<double>(graph.edge_weights()[e]));
      out << " " << weight_text;
    }
    out << "\n";
  }
  if (!out) fail("edge list: write failed");
}

void write_edge_list_text_file(const std::string& path, const CsrGraph& graph) {
  write_file_atomic(path, [&](std::ostream& out) { write_edge_list_text(out, graph); });
}

CsrGraph read_edge_list_binary(std::istream& in, const EdgeListOptions& options,
                               ReadIntegrity* integrity) {
  using util::read_pod;
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in) fail("binary edge list: truncated header (no magic)");
  if (magic != kEdgeMagic) {
    std::ostringstream hex;
    hex << std::hex << magic;
    fail("binary edge list: bad magic 0x" + hex.str() + " (not an SPGE file)");
  }
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  std::uint32_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t payload_crc = 0;
  try {
    version = read_pod<std::uint32_t>(in);
    if (version != kEdgeVersion && version != kEdgeVersionLegacy) {
      fail("binary edge list: unsupported version " + std::to_string(version) +
           " (expected " + std::to_string(kEdgeVersionLegacy) + " or " +
           std::to_string(kEdgeVersion) + ")");
    }
    flags = read_pod<std::uint32_t>(in);
    num_nodes = read_pod<std::uint32_t>(in);
    num_edges = read_pod<std::uint64_t>(in);
    if (version == kEdgeVersion) {
      payload_crc = read_pod<std::uint32_t>(in);
      const auto stored_header_crc = read_pod<std::uint32_t>(in);
      // Reassemble the exact header bytes [0, 28) the writer checksummed.
      std::ostringstream header;
      util::write_pod(header, magic);
      util::write_pod(header, version);
      util::write_pod(header, flags);
      util::write_pod(header, num_nodes);
      util::write_pod(header, num_edges);
      util::write_pod(header, payload_crc);
      const std::string header_bytes = header.str();
      const std::uint32_t computed = Crc32::of(header_bytes.data(), header_bytes.size());
      if (computed != stored_header_crc) {
        std::ostringstream hex;
        hex << std::hex << stored_header_crc << ", computed 0x" << computed;
        fail("binary edge list: header checksum mismatch at offset " +
             std::to_string(kEdgeHeaderBytesV2 - sizeof(std::uint32_t)) + " (stored 0x" +
             hex.str() + ")");
      }
    }
  } catch (const FormatError&) {
    throw;
  } catch (const std::runtime_error&) {
    fail("binary edge list: truncated header");
  }
  const std::uint64_t header_bytes =
      version == kEdgeVersion ? kEdgeHeaderBytesV2 : kEdgeHeaderBytesV1;
  if (integrity != nullptr) {
    integrity->version = version;
    integrity->checksummed = version == kEdgeVersion;
  }
  if ((flags & ~kFlagWeighted) != 0) {
    std::ostringstream hex;
    hex << std::hex << flags;
    fail("binary edge list: unknown flags 0x" + hex.str());
  }
  if (options.expected_nodes > 0 && num_nodes != options.expected_nodes) {
    fail("binary edge list: header declares " + std::to_string(num_nodes) +
         " nodes, expected " + std::to_string(options.expected_nodes));
  }
  const bool weighted = (flags & kFlagWeighted) != 0;
  const std::uint64_t payload =
      num_edges * (sizeof(NodeId) * 2 + (weighted ? sizeof(float) : 0));
  if (const auto left = remaining_bytes(in); left.has_value() && *left < payload) {
    fail("binary edge list: truncated — header declares " + std::to_string(num_edges) +
         " edges (" + std::to_string(payload) + " bytes) but only " + std::to_string(*left) +
         " bytes remain");
  }

  Crc32 crc;
  std::vector<RawEdge> raw(num_edges);
  for (std::uint64_t e = 0; e < num_edges; ++e) {
    NodeId pair[2];
    in.read(reinterpret_cast<char*>(pair), sizeof(pair));
    if (!in) fail("binary edge list: truncated at edge " + std::to_string(e));
    crc.update(pair, sizeof(pair));
    raw[e].u = pair[0];
    raw[e].v = pair[1];
    raw[e].line = e;  // "line" doubles as the edge index in error messages
  }
  if (weighted) {
    for (std::uint64_t e = 0; e < num_edges; ++e) {
      in.read(reinterpret_cast<char*>(&raw[e].weight), sizeof(float));
      if (!in) fail("binary edge list: truncated weight array at edge " + std::to_string(e));
      crc.update(&raw[e].weight, sizeof(float));
    }
  }
  if (version == kEdgeVersion && crc.value() != payload_crc) {
    std::ostringstream hex;
    hex << std::hex << payload_crc << ", computed 0x" << crc.value();
    fail("binary edge list: payload checksum mismatch over bytes [" +
         std::to_string(header_bytes) + ", " + std::to_string(header_bytes + payload) +
         ") (stored 0x" + hex.str() + ")");
  }
  expect_end_of_payload(in, header_bytes + payload, "binary edge list");
  EdgeListOptions checked = options;
  checked.expected_nodes = num_nodes;
  return build_checked(num_nodes, std::move(raw), weighted, checked, "binary edge list");
}

CsrGraph read_edge_list_binary_file(const std::string& path, const EdgeListOptions& options,
                                    ReadIntegrity* integrity) {
  storage_faults_on_read(path);
  std::ifstream in(path, std::ios::binary);
  if (!in) throw_errno("binary edge list: cannot open", path);
  return with_path(path, [&] { return read_edge_list_binary(in, options, integrity); });
}

void write_edge_list_binary(std::ostream& out, const CsrGraph& graph) {
  using util::write_pod;
  // First pass: checksum the payload bytes exactly as they will be written.
  Crc32 crc;
  for (const auto& [u, v] : graph.edges()) {
    const NodeId pair[2] = {u, v};
    crc.update(pair, sizeof(pair));
  }
  if (graph.is_weighted()) {
    crc.update(graph.edge_weights().data(), graph.num_edges() * sizeof(float));
  }

  std::ostringstream header;
  write_pod(header, kEdgeMagic);
  write_pod(header, kEdgeVersion);
  write_pod<std::uint32_t>(header, graph.is_weighted() ? kFlagWeighted : 0);
  write_pod<std::uint32_t>(header, graph.num_nodes());
  write_pod<std::uint64_t>(header, graph.num_edges());
  write_pod<std::uint32_t>(header, crc.value());
  const std::string header_bytes = header.str();
  out.write(header_bytes.data(), static_cast<std::streamsize>(header_bytes.size()));
  write_pod<std::uint32_t>(out, Crc32::of(header_bytes.data(), header_bytes.size()));

  for (const auto& [u, v] : graph.edges()) {
    const NodeId pair[2] = {u, v};
    out.write(reinterpret_cast<const char*>(pair), sizeof(pair));
  }
  if (graph.is_weighted()) {
    out.write(reinterpret_cast<const char*>(graph.edge_weights().data()),
              static_cast<std::streamsize>(graph.num_edges() * sizeof(float)));
  }
  if (!out) fail("binary edge list: write failed");
}

void write_edge_list_binary_file(const std::string& path, const CsrGraph& graph) {
  write_file_atomic(path, [&](std::ostream& out) { write_edge_list_binary(out, graph); });
}

}  // namespace splpg::io
