#include "io/feature_file.hpp"

#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "io/atomic_file.hpp"
#include "io/crc32.hpp"
#include "io/error.hpp"
#include "io/mmap_file.hpp"
#include "io/storage_fault.hpp"
#include "util/serialize.hpp"

namespace splpg::io {

namespace {

constexpr std::uint32_t kFeatureMagic = 0x53504654;  // "SPFT"
constexpr std::uint32_t kFeatureVersionLegacy = 1;   // pre-checksum layout
constexpr std::uint32_t kFeatureVersion = 2;         // + payload/header CRC-32
// v1 header: magic, version, nodes, dim. v2 appends payload_bytes (u64),
// payload_crc, header_crc; the header CRC covers bytes [0, 28). The payload
// still starts at a fixed float-aligned offset so mmap stays zero-copy.
constexpr std::size_t kFeatureHeaderBytesV1 = 16;
constexpr std::size_t kFeatureHeaderBytesV2 = 32;

constexpr std::uint32_t kLabelMagic = 0x53504C42;  // "SPLB"
constexpr std::uint32_t kLabelVersionLegacy = 1;
constexpr std::uint32_t kLabelVersion = 2;

struct FeatureHeader {
  std::uint32_t version = 0;
  std::uint32_t num_nodes = 0;
  std::uint32_t dim = 0;
  std::uint64_t payload_bytes = 0;  // declared (v2) or derived (v1)
  std::uint32_t payload_crc = 0;    // v2 only
  std::size_t header_bytes = 0;

  [[nodiscard]] bool checksummed() const noexcept { return version == kFeatureVersion; }
};

[[noreturn]] void fail(const std::string& message) { throw FormatError(message); }

void check_crc(std::uint32_t stored, std::uint32_t computed, const char* file,
               const char* section, std::uint64_t offset) {
  if (stored == computed) return;
  std::ostringstream hex;
  hex << std::hex << stored << ", computed 0x" << computed;
  fail(std::string(file) + ": " + section + " checksum mismatch at offset " +
       std::to_string(offset) + " (stored 0x" + hex.str() + ")");
}

FeatureHeader read_feature_header(std::istream& in) {
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in) fail("feature file: truncated header (no magic)");
  if (magic != kFeatureMagic) {
    std::ostringstream hex;
    hex << std::hex << magic;
    fail("feature file: bad magic 0x" + hex.str() + " (not an SPFT file)");
  }
  FeatureHeader header;
  try {
    header.version = util::read_pod<std::uint32_t>(in);
    if (header.version != kFeatureVersion && header.version != kFeatureVersionLegacy) {
      fail("feature file: unsupported version " + std::to_string(header.version) +
           " (expected " + std::to_string(kFeatureVersionLegacy) + " or " +
           std::to_string(kFeatureVersion) + ")");
    }
    header.num_nodes = util::read_pod<std::uint32_t>(in);
    header.dim = util::read_pod<std::uint32_t>(in);
    if (header.version == kFeatureVersion) {
      header.payload_bytes = util::read_pod<std::uint64_t>(in);
      header.payload_crc = util::read_pod<std::uint32_t>(in);
      const auto stored_header_crc = util::read_pod<std::uint32_t>(in);
      std::ostringstream bytes;
      util::write_pod(bytes, magic);
      util::write_pod(bytes, header.version);
      util::write_pod(bytes, header.num_nodes);
      util::write_pod(bytes, header.dim);
      util::write_pod(bytes, header.payload_bytes);
      util::write_pod(bytes, header.payload_crc);
      const std::string head = bytes.str();
      check_crc(stored_header_crc, Crc32::of(head.data(), head.size()), "feature file",
                "header", kFeatureHeaderBytesV2 - sizeof(std::uint32_t));
      header.header_bytes = kFeatureHeaderBytesV2;
    } else {
      header.payload_bytes =
          static_cast<std::uint64_t>(header.num_nodes) * header.dim * sizeof(float);
      header.header_bytes = kFeatureHeaderBytesV1;
    }
  } catch (const FormatError&) {
    throw;
  } catch (const std::runtime_error&) {
    fail("feature file: truncated header");
  }
  const std::uint64_t expected =
      static_cast<std::uint64_t>(header.num_nodes) * header.dim * sizeof(float);
  if (header.payload_bytes != expected) {
    fail("feature file: header declares " + std::to_string(header.payload_bytes) +
         " payload bytes but " + std::to_string(header.num_nodes) + "x" +
         std::to_string(header.dim) + " features need " + std::to_string(expected));
  }
  return header;
}

void fill_integrity(ReadIntegrity* integrity, const FeatureHeader& header) {
  if (integrity != nullptr) {
    integrity->version = header.version;
    integrity->checksummed = header.checksummed();
  }
}

}  // namespace

std::string to_string(FeatureBackend backend) {
  return backend == FeatureBackend::kMmap ? "mmap" : "buffered";
}

void write_features(std::ostream& out, const graph::FeatureStore& features) {
  using util::write_pod;
  const auto data = features.data();
  const std::uint64_t payload_bytes = data.size() * sizeof(float);
  std::ostringstream header;
  write_pod(header, kFeatureMagic);
  write_pod(header, kFeatureVersion);
  write_pod<std::uint32_t>(header, features.num_nodes());
  write_pod<std::uint32_t>(header, features.dim());
  write_pod<std::uint64_t>(header, payload_bytes);
  write_pod<std::uint32_t>(header, Crc32::of(data.data(), payload_bytes));
  const std::string head = header.str();
  out.write(head.data(), static_cast<std::streamsize>(head.size()));
  write_pod<std::uint32_t>(out, Crc32::of(head.data(), head.size()));
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(payload_bytes));
  if (!out) fail("feature file: write failed");
}

void write_features_file(const std::string& path, const graph::FeatureStore& features) {
  write_file_atomic(path, [&](std::ostream& out) { write_features(out, features); });
}

graph::FeatureStore read_features(std::istream& in, ReadIntegrity* integrity) {
  const FeatureHeader header = read_feature_header(in);
  fill_integrity(integrity, header);
  const std::size_t count = static_cast<std::size_t>(header.num_nodes) * header.dim;
  // Validate the stream length against the header BEFORE allocating, so a
  // truncated (or garbage-count) file fails with offsets instead of an
  // allocation or a short read.
  {
    const auto here = in.tellg();
    if (here >= 0) {
      in.seekg(0, std::ios::end);
      const auto end = in.tellg();
      in.seekg(here);
      if (end >= 0) {
        const auto left = static_cast<std::uint64_t>(end - here);
        if (left < header.payload_bytes) {
          fail("feature file: truncated — header declares " +
               std::to_string(header.payload_bytes) + " payload bytes for " +
               std::to_string(header.num_nodes) + "x" + std::to_string(header.dim) +
               " features but only " + std::to_string(left) + " remain");
        }
      }
    }
  }
  std::vector<float> data(count);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(header.payload_bytes));
  if (static_cast<std::uint64_t>(in.gcount()) != header.payload_bytes) {
    fail("feature file: truncated — expected " + std::to_string(header.payload_bytes) +
         " payload bytes for " + std::to_string(header.num_nodes) + "x" +
         std::to_string(header.dim) + " features");
  }
  if (header.checksummed()) {
    check_crc(header.payload_crc, Crc32::of(data.data(), header.payload_bytes),
              "feature file", "payload", header.header_bytes);
  }
  if (in.peek() != std::char_traits<char>::eof()) {
    fail("feature file: trailing garbage after the declared payload at offset " +
         std::to_string(header.header_bytes + header.payload_bytes));
  }
  return {header.num_nodes, header.dim, std::move(data)};
}

graph::FeatureStore read_features_file(const std::string& path, FeatureBackend backend,
                                       ReadIntegrity* integrity) {
  storage_faults_on_read(path);
  if (backend == FeatureBackend::kMmap) {
    if (auto mapped = MappedFile::map(path); mapped.has_value()) {
      return with_path(path, [&]() -> graph::FeatureStore {
        // Parse + validate the header against the actual mapping size BEFORE
        // constructing the zero-copy view: a truncated or padded file must be
        // a FormatError here, never an out-of-bounds read or SIGBUS on the
        // first gather.
        std::istringstream header_stream(
            std::string(reinterpret_cast<const char*>(mapped->data()),
                        std::min(mapped->size(), kFeatureHeaderBytesV2)));
        const FeatureHeader header = read_feature_header(header_stream);
        const std::uint64_t expected_size = header.header_bytes + header.payload_bytes;
        if (mapped->size() < expected_size) {
          fail("feature file: truncated — holds " + std::to_string(mapped->size()) +
               " bytes, header declares " + std::to_string(expected_size) + " (" +
               std::to_string(header.num_nodes) + "x" + std::to_string(header.dim) +
               " features)");
        }
        if (mapped->size() > expected_size) {
          fail("feature file: trailing garbage after the declared payload at offset " +
               std::to_string(expected_size));
        }
        if (header.checksummed()) {
          check_crc(header.payload_crc,
                    Crc32::of(mapped->data() + header.header_bytes, header.payload_bytes),
                    "feature file", "payload", header.header_bytes);
        }
        fill_integrity(integrity, header);
        // Point the store straight at the mapped payload (zero-copy). The
        // shared_ptr keeps the mapping alive as long as any store copy does.
        auto owner = std::make_shared<MappedFile>(std::move(*mapped));
        const auto* rows =
            reinterpret_cast<const float*>(owner->data() + header.header_bytes);
        return {header.num_nodes, header.dim, rows, std::move(owner)};
      });
    }
    // Mapping unavailable (platform or I/O): fall back to a buffered read so
    // the backend choice never changes observable behavior.
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw_errno("feature file: cannot open", path);
  return with_path(path, [&] { return read_features(in, integrity); });
}

void write_labels_file(const std::string& path, const std::vector<std::uint32_t>& labels) {
  write_file_atomic(path, [&](std::ostream& out) {
    using util::write_pod;
    const std::uint64_t payload_bytes = labels.size() * sizeof(std::uint32_t);
    std::ostringstream header;
    write_pod(header, kLabelMagic);
    write_pod(header, kLabelVersion);
    write_pod<std::uint64_t>(header, labels.size());
    write_pod<std::uint32_t>(header, Crc32::of(labels.data(), payload_bytes));
    const std::string head = header.str();
    out.write(head.data(), static_cast<std::streamsize>(head.size()));
    write_pod<std::uint32_t>(out, Crc32::of(head.data(), head.size()));
    out.write(reinterpret_cast<const char*>(labels.data()),
              static_cast<std::streamsize>(payload_bytes));
    if (!out) fail("label file: write failed");
  });
}

std::vector<std::uint32_t> read_labels_file(const std::string& path,
                                            ReadIntegrity* integrity) {
  storage_faults_on_read(path);
  std::ifstream in(path, std::ios::binary);
  if (!in) throw_errno("label file: cannot open", path);
  return with_path(path, [&]() -> std::vector<std::uint32_t> {
    std::uint32_t magic = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    if (!in) fail("label file: truncated header (no magic)");
    if (magic != kLabelMagic) fail("label file: bad magic (not an SPLB file)");
    try {
      const auto version = util::read_pod<std::uint32_t>(in);
      std::vector<std::uint32_t> labels;
      std::uint64_t payload_end = 0;
      if (version == kLabelVersion) {
        const auto count = util::read_pod<std::uint64_t>(in);
        const auto payload_crc = util::read_pod<std::uint32_t>(in);
        const auto stored_header_crc = util::read_pod<std::uint32_t>(in);
        std::ostringstream bytes;
        util::write_pod(bytes, magic);
        util::write_pod(bytes, version);
        util::write_pod(bytes, count);
        util::write_pod(bytes, payload_crc);
        const std::string head = bytes.str();
        check_crc(stored_header_crc, Crc32::of(head.data(), head.size()), "label file",
                  "header", head.size());
        labels.resize(count);
        const std::uint64_t payload_bytes = count * sizeof(std::uint32_t);
        in.read(reinterpret_cast<char*>(labels.data()),
                static_cast<std::streamsize>(payload_bytes));
        if (static_cast<std::uint64_t>(in.gcount()) != payload_bytes) {
          fail("label file: truncated — header declares " + std::to_string(count) +
               " labels");
        }
        check_crc(payload_crc, Crc32::of(labels.data(), payload_bytes), "label file",
                  "payload", head.size() + sizeof(std::uint32_t));
        payload_end = head.size() + sizeof(std::uint32_t) + payload_bytes;
      } else if (version == kLabelVersionLegacy) {
        labels = util::read_vector<std::uint32_t>(in);
        payload_end = 2 * sizeof(std::uint32_t) + sizeof(std::uint64_t) +
                      labels.size() * sizeof(std::uint32_t);
      } else {
        fail("label file: unsupported version " + std::to_string(version));
      }
      if (in.peek() != std::char_traits<char>::eof()) {
        fail("label file: trailing garbage after the declared payload at offset " +
             std::to_string(payload_end));
      }
      if (integrity != nullptr) {
        integrity->version = version;
        integrity->checksummed = version == kLabelVersion;
      }
      return labels;
    } catch (const FormatError&) {
      throw;
    } catch (const std::runtime_error&) {
      fail("label file: truncated");
    }
  });
}

}  // namespace splpg::io
