#include "io/feature_file.hpp"

#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "io/edge_list.hpp"
#include "io/mmap_file.hpp"
#include "util/serialize.hpp"

namespace splpg::io {

namespace {

constexpr std::uint32_t kFeatureMagic = 0x53504654;  // "SPFT"
constexpr std::uint32_t kFeatureVersion = 1;
constexpr std::size_t kFeatureHeaderBytes = 16;  // magic, version, nodes, dim

constexpr std::uint32_t kLabelMagic = 0x53504C42;  // "SPLB"
constexpr std::uint32_t kLabelVersion = 1;

struct FeatureHeader {
  std::uint32_t num_nodes = 0;
  std::uint32_t dim = 0;
};

[[noreturn]] void fail(const std::string& message) { throw FormatError(message); }

FeatureHeader read_feature_header(std::istream& in) {
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in) fail("feature file: truncated header (no magic)");
  if (magic != kFeatureMagic) {
    std::ostringstream hex;
    hex << std::hex << magic;
    fail("feature file: bad magic 0x" + hex.str() + " (not an SPFT file)");
  }
  std::uint32_t version = 0;
  FeatureHeader header;
  try {
    version = util::read_pod<std::uint32_t>(in);
    header.num_nodes = util::read_pod<std::uint32_t>(in);
    header.dim = util::read_pod<std::uint32_t>(in);
  } catch (const std::runtime_error&) {
    fail("feature file: truncated header");
  }
  if (version != kFeatureVersion) {
    fail("feature file: unsupported version " + std::to_string(version) + " (expected " +
         std::to_string(kFeatureVersion) + ")");
  }
  return header;
}

}  // namespace

std::string to_string(FeatureBackend backend) {
  return backend == FeatureBackend::kMmap ? "mmap" : "buffered";
}

void write_features(std::ostream& out, const graph::FeatureStore& features) {
  using util::write_pod;
  write_pod(out, kFeatureMagic);
  write_pod(out, kFeatureVersion);
  write_pod<std::uint32_t>(out, features.num_nodes());
  write_pod<std::uint32_t>(out, features.dim());
  const auto data = features.data();
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!out) fail("feature file: write failed");
}

void write_features_file(const std::string& path, const graph::FeatureStore& features) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("feature file: cannot open " + path + " for writing");
  write_features(out, features);
}

graph::FeatureStore read_features(std::istream& in) {
  const FeatureHeader header = read_feature_header(in);
  const std::size_t count = static_cast<std::size_t>(header.num_nodes) * header.dim;
  std::vector<float> data(count);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (static_cast<std::size_t>(in.gcount()) != count * sizeof(float)) {
    fail("feature file: truncated — expected " + std::to_string(count * sizeof(float)) +
         " payload bytes for " + std::to_string(header.num_nodes) + "x" +
         std::to_string(header.dim) + " features");
  }
  return {header.num_nodes, header.dim, std::move(data)};
}

graph::FeatureStore read_features_file(const std::string& path, FeatureBackend backend) {
  if (backend == FeatureBackend::kMmap) {
    if (auto mapped = MappedFile::map(path); mapped.has_value()) {
      // Validate the header against the actual mapping size, then point the
      // store straight at the mapped payload (zero-copy). The shared_ptr
      // keeps the mapping alive for as long as any copy of the store exists.
      std::istringstream header_stream(
          std::string(reinterpret_cast<const char*>(mapped->data()),
                      std::min(mapped->size(), kFeatureHeaderBytes)));
      const FeatureHeader header = read_feature_header(header_stream);
      const std::size_t count = static_cast<std::size_t>(header.num_nodes) * header.dim;
      if (mapped->size() < kFeatureHeaderBytes + count * sizeof(float)) {
        fail("feature file: truncated — " + path + " holds " + std::to_string(mapped->size()) +
             " bytes, header declares " + std::to_string(header.num_nodes) + "x" +
             std::to_string(header.dim) + " features");
      }
      auto owner = std::make_shared<MappedFile>(std::move(*mapped));
      const auto* rows = reinterpret_cast<const float*>(owner->data() + kFeatureHeaderBytes);
      return {header.num_nodes, header.dim, rows, std::move(owner)};
    }
    // Mapping unavailable (platform or I/O): fall back to a buffered read so
    // the backend choice never changes observable behavior.
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("feature file: cannot open " + path);
  return read_features(in);
}

void write_labels_file(const std::string& path, const std::vector<std::uint32_t>& labels) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("label file: cannot open " + path + " for writing");
  util::write_pod(out, kLabelMagic);
  util::write_pod(out, kLabelVersion);
  util::write_vector(out, labels);
  if (!out) fail("label file: write failed");
}

std::vector<std::uint32_t> read_labels_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("label file: cannot open " + path);
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in) fail("label file: truncated header (no magic)");
  if (magic != kLabelMagic) fail("label file: bad magic (not an SPLB file)");
  try {
    if (const auto version = util::read_pod<std::uint32_t>(in); version != kLabelVersion) {
      fail("label file: unsupported version " + std::to_string(version));
    }
    return util::read_vector<std::uint32_t>(in);
  } catch (const FormatError&) {
    throw;
  } catch (const std::runtime_error&) {
    fail("label file: truncated");
  }
}

}  // namespace splpg::io
