#include "io/mmap_file.hpp"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define SPLPG_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SPLPG_HAS_MMAP 0
#endif

namespace splpg::io {

bool MappedFile::supported() noexcept { return SPLPG_HAS_MMAP != 0; }

std::optional<MappedFile> MappedFile::map(const std::string& path) {
#if SPLPG_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return std::nullopt;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (mapped == MAP_FAILED) return std::nullopt;
  return MappedFile(static_cast<const std::byte*>(mapped), size);
#else
  (void)path;
  return std::nullopt;
#endif
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    this->~MappedFile();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
#if SPLPG_HAS_MMAP
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
}

}  // namespace splpg::io
