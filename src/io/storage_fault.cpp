#include "io/storage_fault.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace splpg::io {

namespace fs = std::filesystem;

namespace {

std::atomic<StorageFaultInjector*> g_active{nullptr};

}  // namespace

std::string to_string(StorageFaultKind kind) {
  switch (kind) {
    case StorageFaultKind::kEnospc: return "enospc";
    case StorageFaultKind::kTornWrite: return "torn-write";
    case StorageFaultKind::kFailedRename: return "failed-rename";
    case StorageFaultKind::kBitFlip: return "bit-flip";
    case StorageFaultKind::kShortRead: return "short-read";
  }
  return "unknown";
}

StorageFaultInjector::StorageFaultInjector(StorageFaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), fired_(plan_.faults.size(), false),
      rng_(util::Rng(seed).split("storage")) {
  remaining_skips_.reserve(plan_.faults.size());
  for (const auto& fault : plan_.faults) remaining_skips_.push_back(fault.skip_matches);
}

std::uint64_t StorageFaultInjector::resolve_offset(const StorageFault& fault,
                                                   std::uint64_t size) {
  if (fault.offset != StorageFault::kRandomOffset) return fault.offset;
  return size > 0 ? rng_.uniform_u64(size) : 0;
}

StorageFaultInjector::WriteOutcome StorageFaultInjector::on_write(
    const std::string& final_path, std::uint64_t size) {
  const std::lock_guard<std::mutex> lock(mutex_);
  WriteOutcome outcome;
  outcome.persisted_bytes = size;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const auto& fault = plan_.faults[i];
    const bool write_kind = fault.kind == StorageFaultKind::kEnospc ||
                            fault.kind == StorageFaultKind::kTornWrite ||
                            fault.kind == StorageFaultKind::kFailedRename;
    if (fired_[i] || !write_kind) continue;
    if (!fault.path_contains.empty() &&
        final_path.find(fault.path_contains) == std::string::npos) {
      continue;
    }
    if (remaining_skips_[i] > 0) {
      --remaining_skips_[i];
      continue;
    }
    fired_[i] = true;
    switch (fault.kind) {
      case StorageFaultKind::kEnospc:
        ++stats_.enospc_failures;
        outcome.kind = WriteOutcome::Kind::kEnospc;
        outcome.persisted_bytes = std::min(size, resolve_offset(fault, size));
        break;
      case StorageFaultKind::kTornWrite:
        ++stats_.torn_writes;
        outcome.kind = WriteOutcome::Kind::kTorn;
        outcome.persisted_bytes = std::min(size, resolve_offset(fault, size));
        break;
      case StorageFaultKind::kFailedRename:
        ++stats_.failed_renames;
        outcome.kind = WriteOutcome::Kind::kRenameFails;
        break;
      default: break;
    }
    return outcome;  // at most one fault per operation
  }
  return outcome;
}

void StorageFaultInjector::on_read(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ec;
  const auto file_size = fs::file_size(path, ec);
  if (ec) return;  // missing file: the reader reports its own open error
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const auto& fault = plan_.faults[i];
    const bool read_kind = fault.kind == StorageFaultKind::kBitFlip ||
                           fault.kind == StorageFaultKind::kShortRead;
    if (fired_[i] || !read_kind) continue;
    if (!fault.path_contains.empty() &&
        path.find(fault.path_contains) == std::string::npos) {
      continue;
    }
    if (remaining_skips_[i] > 0) {
      --remaining_skips_[i];
      continue;
    }
    fired_[i] = true;
    if (fault.kind == StorageFaultKind::kShortRead) {
      ++stats_.short_reads;
      const std::uint64_t cut = std::min<std::uint64_t>(file_size, resolve_offset(fault, file_size));
      fs::resize_file(path, cut, ec);
    } else {
      ++stats_.bit_flips;
      if (file_size == 0) continue;
      const std::uint64_t at =
          std::min<std::uint64_t>(file_size - 1, resolve_offset(fault, file_size));
      const unsigned bit = static_cast<unsigned>(rng_.uniform_u64(8));
      std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
      if (!file) continue;
      file.seekg(static_cast<std::streamoff>(at));
      char byte = 0;
      file.get(byte);
      byte = static_cast<char>(byte ^ static_cast<char>(1U << bit));
      file.seekp(static_cast<std::streamoff>(at));
      file.put(byte);
    }
    // Keep scanning: several read faults may target the same artifact.
  }
}

StorageFaultStats StorageFaultInjector::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

StorageFaultScope::StorageFaultScope(StorageFaultInjector* injector) noexcept
    : previous_(g_active.exchange(injector, std::memory_order_acq_rel)) {}

StorageFaultScope::~StorageFaultScope() {
  g_active.store(previous_, std::memory_order_release);
}

StorageFaultInjector* active_storage_faults() noexcept {
  return g_active.load(std::memory_order_acquire);
}

void storage_faults_on_read(const std::string& path) {
  if (auto* injector = active_storage_faults(); injector != nullptr) {
    injector->on_read(path);
  }
}

}  // namespace splpg::io
