#include "io/atomic_file.hpp"

#include <cstdio>
#include <filesystem>

#include "io/error.hpp"
#include "io/storage_fault.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SPLPG_HAS_FSYNC 1
#include <fcntl.h>
#include <unistd.h>
#else
#define SPLPG_HAS_FSYNC 0
#include <fstream>
#endif

namespace splpg::io {

namespace {

/// fsync the directory containing `path` so the rename itself is durable.
void fsync_parent_dir(const std::string& path) {
#if SPLPG_HAS_FSYNC
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) throw_errno("cannot open directory for fsync", dir);
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    throw_errno("cannot fsync directory", dir, saved);
  }
  ::close(fd);
#else
  (void)path;
#endif
}

/// Writes exactly `size` bytes of `data` to a fresh `path` and fsyncs it.
void write_and_sync(const std::string& path, const char* data, std::uint64_t size) {
#if SPLPG_HAS_FSYNC
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("cannot create", path);
  std::uint64_t written = 0;
  while (written < size) {
    const ::ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      throw_errno("cannot write", path, saved);
    }
    written += static_cast<std::uint64_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    throw_errno("cannot fsync", path, saved);
  }
  if (::close(fd) != 0) throw_errno("cannot close", path);
#else
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw_errno("cannot create", path);
  out.write(data, static_cast<std::streamsize>(size));
  out.flush();
  if (!out) throw_errno("cannot write", path);
#endif
}

}  // namespace

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)), temp_path_(path_ + ".tmp") {}

AtomicFile::~AtomicFile() {
  if (!committed_ && temp_created_) {
    std::error_code ec;
    std::filesystem::remove(temp_path_, ec);  // best-effort abort cleanup
  }
}

void AtomicFile::commit() {
  if (committed_) throw std::logic_error("AtomicFile::commit: already committed " + path_);
  const std::string contents = buffer_.str();

  StorageFaultInjector::WriteOutcome outcome;
  outcome.persisted_bytes = contents.size();
  if (auto* injector = active_storage_faults(); injector != nullptr) {
    outcome = injector->on_write(path_, contents.size());
  }
  using Kind = StorageFaultInjector::WriteOutcome::Kind;

  temp_created_ = true;
  if (outcome.kind == Kind::kEnospc) {
    // Simulated full disk: only a prefix makes it to the temp file, then the
    // write fails. The dtor removes the temp; the final name is untouched.
    write_and_sync(temp_path_, contents.data(), outcome.persisted_bytes);
    throw_errno("cannot write (injected fault)", temp_path_, ENOSPC);
  }
  if (outcome.kind == Kind::kTorn) {
    // Simulated machine death mid-write: the truncated temp stays on disk
    // (a real crash leaves it too) and the process "dies" here — before the
    // rename, so the final name still holds its previous complete contents.
    write_and_sync(temp_path_, contents.data(), outcome.persisted_bytes);
    temp_created_ = false;  // a dead process runs no destructors: keep the wreckage
    throw SimulatedCrash("simulated crash: torn write of " + path_ + " after " +
                         std::to_string(outcome.persisted_bytes) + " of " +
                         std::to_string(contents.size()) + " bytes");
  }

  write_and_sync(temp_path_, contents.data(), contents.size());

  if (outcome.kind == Kind::kRenameFails) {
    throw_errno("cannot rename (injected fault)", temp_path_ + " -> " + path_, EIO);
  }
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    throw_errno("cannot rename into place", temp_path_ + " -> " + path_);
  }
  committed_ = true;
  fsync_parent_dir(path_);
}

void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  AtomicFile file(path);
  writer(file.stream());
  if (!file.stream()) {
    throw IoError("cannot buffer contents of " + path + ": stream failure", EIO);
  }
  file.commit();
}

}  // namespace splpg::io
