// Read-only memory-mapped files.
//
// `MappedFile::map` returns nullopt whenever mapping is not possible (missing
// file, empty file, platform without mmap) so callers can fall back to
// buffered reads — the io feature loaders treat mmap strictly as an
// optimization, never a requirement.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace splpg::io {

class MappedFile {
 public:
  /// Maps `path` read-only. nullopt on any failure (caller falls back).
  [[nodiscard]] static std::optional<MappedFile> map(const std::string& path);

  /// True when this platform can mmap at all (POSIX). When false, `map`
  /// always returns nullopt.
  [[nodiscard]] static bool supported() noexcept;

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  MappedFile(const std::byte* data, std::size_t size) : data_(data), size_(size) {}

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace splpg::io
