// Crash-consistent file writes: write-to-temp → fsync → rename → fsync-dir.
//
// An AtomicFile buffers everything written to stream() in memory, then
// commit() persists it under `<path>.tmp`, fsyncs, renames into place, and
// fsyncs the parent directory. The invariant every writer in this repo
// relies on: the final name either holds its previous complete contents or
// the new complete contents — never a torn mixture — no matter at which
// byte the machine (or the storage fault injector) kills the write.
//
// Destroying an uncommitted AtomicFile removes the temp file (RAII abort).
// A SimulatedCrash during commit (injected torn write) deliberately leaves
// the truncated temp behind, exactly like a real crash would; readers never
// look at `*.tmp` names and the checkpoint GC sweeps strays.
//
// On non-POSIX platforms the fsync steps degrade to flush+close; the
// temp-then-rename ordering is kept.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace splpg::io {

class AtomicFile {
 public:
  /// Prepares an atomic write to `path` (nothing touches the disk yet).
  explicit AtomicFile(std::string path);

  /// Removes the temp file if commit() was never reached (or failed before
  /// the rename).
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// The in-memory buffer; write the file contents here.
  [[nodiscard]] std::ostream& stream() noexcept { return buffer_; }

  /// Persists the buffer: temp write, fsync, rename over `path()`, fsync of
  /// the parent directory. Throws IoError on any OS failure (temp removed,
  /// final name untouched) and SimulatedCrash on an injected torn write
  /// (truncated temp left behind, final name untouched). May be called once.
  void commit();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const std::string& temp_path() const noexcept { return temp_path_; }

 private:
  std::string path_;
  std::string temp_path_;
  std::ostringstream buffer_;
  bool committed_ = false;
  bool temp_created_ = false;
};

/// Convenience wrapper: `writer` fills the stream, then the file is
/// committed. Any exception from `writer` aborts the write (no temp left).
void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

}  // namespace splpg::io
