#include "io/dataset_io.hpp"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "io/atomic_file.hpp"
#include "io/edge_list.hpp"
#include "io/storage_fault.hpp"

namespace splpg::io {

namespace fs = std::filesystem;

namespace {

constexpr const char* kMetaFile = "meta.txt";
constexpr const char* kEdgesText = "edges.txt";
constexpr const char* kEdgesBinary = "edges.bin";
constexpr const char* kFeaturesFile = "features.bin";
constexpr const char* kLabelsFile = "labels.bin";

[[noreturn]] void fail(const std::string& message) { throw FormatError(message); }

std::map<std::string, std::string> read_manifest(const std::string& path) {
  storage_faults_on_read(path);
  std::ifstream in(path);
  if (!in) throw_errno("dataset: cannot open manifest", path);
  std::map<std::string, std::string> manifest;
  std::string line;
  std::uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      fail("dataset manifest line " + std::to_string(line_number) +
           ": expected key=value, got '" + line + "'");
    }
    manifest[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return manifest;
}

const std::string& manifest_get(const std::map<std::string, std::string>& manifest,
                                const std::string& key) {
  const auto it = manifest.find(key);
  if (it == manifest.end()) fail("dataset manifest: missing key '" + key + "'");
  return it->second;
}

std::uint64_t manifest_get_u64(const std::map<std::string, std::string>& manifest,
                               const std::string& key) {
  const std::string& text = manifest_get(manifest, key);
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    fail("dataset manifest: key '" + key + "' is not a number: '" + text + "'");
  }
}

}  // namespace

void save_dataset(const std::string& dir, const data::Dataset& dataset,
                  EdgeFormat edge_format) {
  fs::create_directories(dir);
  const fs::path root(dir);

  if (edge_format == EdgeFormat::kText) {
    write_edge_list_text_file((root / kEdgesText).string(), dataset.graph);
    fs::remove(root / kEdgesBinary);
  } else {
    write_edge_list_binary_file((root / kEdgesBinary).string(), dataset.graph);
    fs::remove(root / kEdgesText);
  }
  write_features_file((root / kFeaturesFile).string(), dataset.features);
  if (!dataset.communities.empty()) {
    write_labels_file((root / kLabelsFile).string(), dataset.communities);
  } else {
    fs::remove(root / kLabelsFile);
  }

  write_file_atomic((root / kMetaFile).string(), [&](std::ostream& meta) {
    meta << "# SpLPG dataset manifest\n"
         << "name=" << dataset.name << "\n"
         << "batch_size=" << dataset.batch_size << "\n"
         << "num_nodes=" << dataset.graph.num_nodes() << "\n"
         << "num_edges=" << dataset.graph.num_edges() << "\n"
         << "feature_dim=" << dataset.features.dim() << "\n"
         << "edge_format=" << (edge_format == EdgeFormat::kText ? "text" : "binary") << "\n"
         << "has_labels=" << (dataset.communities.empty() ? 0 : 1) << "\n";
  });
}

data::Dataset load_dataset(const std::string& dir, const DatasetLoadOptions& options) {
  const fs::path root(dir);
  const auto manifest = read_manifest((root / kMetaFile).string());

  const auto num_nodes = manifest_get_u64(manifest, "num_nodes");
  const auto num_edges = manifest_get_u64(manifest, "num_edges");
  if (num_nodes > graph::kInvalidNode) {
    fail("dataset manifest: num_nodes " + std::to_string(num_nodes) + " out of range");
  }

  data::Dataset dataset;
  dataset.name = manifest_get(manifest, "name");
  dataset.batch_size = static_cast<std::uint32_t>(manifest_get_u64(manifest, "batch_size"));

  EdgeListOptions edge_options;
  edge_options.expected_nodes = static_cast<graph::NodeId>(num_nodes);
  const std::string& edge_format = manifest_get(manifest, "edge_format");
  if (edge_format == "text") {
    dataset.graph = read_edge_list_text_file((root / kEdgesText).string(), edge_options);
  } else if (edge_format == "binary") {
    dataset.graph = read_edge_list_binary_file((root / kEdgesBinary).string(), edge_options);
  } else {
    fail("dataset manifest: unknown edge_format '" + edge_format + "'");
  }
  if (dataset.graph.num_edges() != num_edges) {
    fail("dataset: manifest declares " + std::to_string(num_edges) + " edges but the edge list holds " +
         std::to_string(dataset.graph.num_edges()));
  }

  dataset.features =
      read_features_file((root / kFeaturesFile).string(), options.feature_backend);
  if (dataset.features.num_nodes() != num_nodes) {
    fail("dataset: feature file holds " + std::to_string(dataset.features.num_nodes()) +
         " rows for " + std::to_string(num_nodes) + " nodes");
  }
  if (const auto dim = manifest_get_u64(manifest, "feature_dim");
      dataset.features.dim() != dim) {
    fail("dataset: feature file dim " + std::to_string(dataset.features.dim()) +
         " does not match manifest feature_dim " + std::to_string(dim));
  }

  if (manifest_get_u64(manifest, "has_labels") != 0) {
    dataset.communities = read_labels_file((root / kLabelsFile).string());
    if (dataset.communities.size() != num_nodes) {
      fail("dataset: label file holds " + std::to_string(dataset.communities.size()) +
           " labels for " + std::to_string(num_nodes) + " nodes");
    }
  }
  return dataset;
}

}  // namespace splpg::io
