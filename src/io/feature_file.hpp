// Node-feature and label files.
//
// Feature file (magic "SPFT", version 1): a 16-byte header (magic, version,
// node count, feature dim) followed by the row-major float32 matrix. The
// payload starts at a fixed, float-aligned offset so the whole file can be
// mmap'ed and served zero-copy through graph::FeatureStore's view backing.
//
// Label file (magic "SPLB", version 1): header (magic, version, count) then
// one uint32 label per node — the generator's ground-truth communities.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/features.hpp"

namespace splpg::io {

enum class FeatureBackend {
  kBuffered,  // read the matrix into an owned vector
  kMmap,      // map the file; rows are served zero-copy (falls back to
              // buffered when mmap is unavailable)
};

[[nodiscard]] std::string to_string(FeatureBackend backend);

void write_features(std::ostream& out, const graph::FeatureStore& features);
void write_features_file(const std::string& path, const graph::FeatureStore& features);

/// Loads a feature file. With kMmap the returned store is a zero-copy view
/// whose keepalive owns the mapping; with kBuffered (or when mapping fails)
/// it owns a heap copy. Both return bit-identical rows.
[[nodiscard]] graph::FeatureStore read_features(std::istream& in);
[[nodiscard]] graph::FeatureStore read_features_file(const std::string& path,
                                                     FeatureBackend backend);

void write_labels_file(const std::string& path, const std::vector<std::uint32_t>& labels);
[[nodiscard]] std::vector<std::uint32_t> read_labels_file(const std::string& path);

}  // namespace splpg::io
