// Node-feature and label files.
//
// Feature file (magic "SPFT", version 2): a 32-byte header (magic, version,
// node count, feature dim, payload byte count, payload CRC-32, header CRC-32)
// followed by the row-major float32 matrix. The payload starts at a fixed,
// float-aligned offset so the whole file can be mmap'ed and served zero-copy
// through graph::FeatureStore's view backing — and the mmap path verifies the
// header, the exact file size, and the payload checksum BEFORE constructing
// the view, so a truncated file is a FormatError, never a SIGBUS mid-gather.
//
// Label file (magic "SPLB", version 2): header (magic, version, count,
// payload CRC-32, header CRC-32) then one uint32 label per node — the
// generator's ground-truth communities.
//
// Version-1 files (no checksums) of both formats still load; callers that
// pass a ReadIntegrity see them flagged `checksummed = false`. File writers
// go through io::AtomicFile: a crash mid-write never leaves a torn file
// under the final name.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/features.hpp"
#include "io/error.hpp"

namespace splpg::io {

enum class FeatureBackend {
  kBuffered,  // read the matrix into an owned vector
  kMmap,      // map the file; rows are served zero-copy (falls back to
              // buffered when mmap is unavailable)
};

[[nodiscard]] std::string to_string(FeatureBackend backend);

void write_features(std::ostream& out, const graph::FeatureStore& features);
void write_features_file(const std::string& path, const graph::FeatureStore& features);

/// Loads a feature file. With kMmap the returned store is a zero-copy view
/// whose keepalive owns the mapping; with kBuffered (or when mapping fails)
/// it owns a heap copy. Both return bit-identical rows and verify the same
/// checksums; `integrity` (when non-null) reports the parsed version and
/// whether checksums were actually verified (false for v1 files).
[[nodiscard]] graph::FeatureStore read_features(std::istream& in,
                                                ReadIntegrity* integrity = nullptr);
[[nodiscard]] graph::FeatureStore read_features_file(const std::string& path,
                                                     FeatureBackend backend,
                                                     ReadIntegrity* integrity = nullptr);

void write_labels_file(const std::string& path, const std::vector<std::uint32_t>& labels);
[[nodiscard]] std::vector<std::uint32_t> read_labels_file(const std::string& path,
                                                          ReadIntegrity* integrity = nullptr);

}  // namespace splpg::io
