// OGB-style edge-list ingestion and the compact binary graph format.
//
// Text format: one "u v" (or "u v w" for weighted graphs) pair per line,
// '#' comment lines and blank lines ignored — the shape OGB and SNAP dumps
// come in. Binary format (magic "SPGE", version 2): a fixed header (magic,
// version, flags, node count, edge count, payload CRC-32, header CRC-32)
// followed by the canonical (u < v, sorted, deduplicated) edge array and an
// optional weight array; this is the format save_dataset writes and the one
// that round-trips a graph bit-exactly. Version-1 files (no checksums) still
// load and are flagged `checksummed = false` via ReadIntegrity.
//
// All parsers validate before they build: malformed input (truncated files,
// checksum mismatches, trailing bytes past the declared payload, bad
// magic/version, non-numeric tokens, out-of-range node ids, and — in strict
// mode — self-loops or duplicate edges) raises FormatError with a message
// naming the offending file, section, and line/edge/offset, never an assert
// or garbage reads. File-level writers go through io::AtomicFile, so a crash
// mid-write never leaves a torn file under the final name.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr_graph.hpp"
#include "io/error.hpp"

namespace splpg::io {

struct EdgeListOptions {
  /// Declared node count: ids must lie in [0, expected_nodes). 0 = infer the
  /// count as max_id + 1 (text) or trust the header (binary).
  graph::NodeId expected_nodes = 0;
  /// Text only: renumber ids densely in first-seen order (for raw dumps whose
  /// id space is sparse). Incompatible with expected_nodes.
  bool renumber = false;
  /// Strict mode (default): self-loops and duplicate edges are errors.
  /// Relaxed: they are dropped/merged exactly like graph::GraphBuilder.
  bool strict = true;
};

[[nodiscard]] graph::CsrGraph read_edge_list_text(std::istream& in,
                                                  const EdgeListOptions& options = {});
[[nodiscard]] graph::CsrGraph read_edge_list_text_file(const std::string& path,
                                                       const EdgeListOptions& options = {});
void write_edge_list_text(std::ostream& out, const graph::CsrGraph& graph);
void write_edge_list_text_file(const std::string& path, const graph::CsrGraph& graph);

/// Binary readers verify the v2 header/payload checksums; `integrity` (when
/// non-null) reports the parsed version and whether checksums were verified
/// (false for v1 files).
[[nodiscard]] graph::CsrGraph read_edge_list_binary(std::istream& in,
                                                    const EdgeListOptions& options = {},
                                                    ReadIntegrity* integrity = nullptr);
[[nodiscard]] graph::CsrGraph read_edge_list_binary_file(const std::string& path,
                                                         const EdgeListOptions& options = {},
                                                         ReadIntegrity* integrity = nullptr);
void write_edge_list_binary(std::ostream& out, const graph::CsrGraph& graph);
void write_edge_list_binary_file(const std::string& path, const graph::CsrGraph& graph);

}  // namespace splpg::io
