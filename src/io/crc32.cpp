#include "io/crc32.hpp"

#include <array>

namespace splpg::io {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1U) != 0 ? 0xEDB88320U : 0U);
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

Crc32& Crc32::update(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = state_;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFFU];
  }
  state_ = crc;
  return *this;
}

}  // namespace splpg::io
