#include "sampling/edge_split.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

namespace splpg::sampling {

using graph::CsrGraph;
using graph::Edge;
using graph::NodeId;
using util::Rng;

LinkSplit split_edges(const CsrGraph& graph, const SplitOptions& options, Rng& rng) {
  const auto edges = graph.edges();
  if (edges.size() < 10) throw std::invalid_argument("split_edges: need at least 10 edges");
  if (options.train_fraction <= 0.0 || options.train_fraction + options.val_fraction >= 1.0) {
    throw std::invalid_argument("split_edges: bad fractions");
  }

  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(std::span<std::size_t>(order));

  const auto train_count =
      static_cast<std::size_t>(options.train_fraction * static_cast<double>(edges.size()));
  const auto val_count =
      static_cast<std::size_t>(options.val_fraction * static_cast<double>(edges.size()));

  LinkSplit split;
  split.train_pos.reserve(train_count);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Edge edge = edges[order[i]];
    if (i < train_count) {
      split.train_pos.push_back(edge);
    } else if (i < train_count + val_count) {
      split.val_pos.push_back(edge);
    } else {
      split.test_pos.push_back(edge);
    }
  }

  split.train_graph = CsrGraph(graph.num_nodes(),
                               std::vector<Edge>(split.train_pos.begin(), split.train_pos.end()));
  // Negatives are non-edges of the FULL graph: a val/test positive must never
  // appear as a negative.
  split.val_neg =
      sample_global_negatives(graph, split.val_pos.size() * options.eval_negative_ratio, rng);
  split.test_neg =
      sample_global_negatives(graph, split.test_pos.size() * options.eval_negative_ratio, rng);
  return split;
}

std::vector<NodePair> sample_global_negatives(const CsrGraph& graph, std::size_t count,
                                              Rng& rng) {
  const NodeId n = graph.num_nodes();
  if (n < 2) throw std::invalid_argument("sample_global_negatives: need >= 2 nodes");
  // Guard against dense graphs where negatives are scarce.
  const auto max_pairs = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  if (graph.num_edges() + count > max_pairs) {
    throw std::invalid_argument("sample_global_negatives: not enough non-edges");
  }

  std::set<std::pair<NodeId, NodeId>> used;
  std::vector<NodePair> out;
  out.reserve(count);
  while (out.size() < count) {
    auto u = static_cast<NodeId>(rng.uniform_u64(n));
    auto v = static_cast<NodeId>(rng.uniform_u64(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (graph.has_edge(u, v)) continue;
    if (!used.emplace(u, v).second) continue;
    out.push_back(NodePair{u, v});
  }
  return out;
}

}  // namespace splpg::sampling
