// Train/validation/test edge splitting for link prediction.
//
// Follows the paper's protocol (§V-A): 80% of edges for training, 10%
// validation, 10% test; message passing uses only the training edges (the
// "train graph") so that held-out edges are never leaked through
// neighborhoods. Evaluation negatives are drawn globally uniform, fixed once
// (3x the positives for val/test, per DGL convention).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace splpg::sampling {

struct NodePair {
  graph::NodeId u = 0;
  graph::NodeId v = 0;
  friend bool operator==(const NodePair&, const NodePair&) = default;
};

struct LinkSplit {
  graph::CsrGraph train_graph;          // message-passing graph (train edges only)
  std::vector<graph::Edge> train_pos;
  std::vector<graph::Edge> val_pos;
  std::vector<graph::Edge> test_pos;
  std::vector<NodePair> val_neg;        // 3x val_pos, fixed
  std::vector<NodePair> test_neg;       // 3x test_pos, fixed
};

struct SplitOptions {
  double train_fraction = 0.8;
  double val_fraction = 0.1;   // remainder is test
  std::uint32_t eval_negative_ratio = 3;
};

/// Deterministic given rng state. Requires at least 10 edges.
[[nodiscard]] LinkSplit split_edges(const graph::CsrGraph& graph, const SplitOptions& options,
                                    util::Rng& rng);

/// Draws `count` global-uniform negative pairs (u != v, (u,v) not an edge of
/// `graph`). Rejection-sampled; pairs may repeat across calls but not within.
[[nodiscard]] std::vector<NodePair> sample_global_negatives(const graph::CsrGraph& graph,
                                                            std::size_t count, util::Rng& rng);

}  // namespace splpg::sampling
