#include "sampling/neighbor_sampler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

#include "util/thread_pool.hpp"

namespace splpg::sampling {

using graph::NodeId;
using util::Rng;

void GraphProvider::append_neighbors(NodeId v, std::vector<NodeId>& neighbors,
                                     std::vector<float>& weights) {
  const auto adjacent = graph_->neighbors(v);
  const auto adjacent_weights = graph_->neighbor_weights(v);
  neighbors.insert(neighbors.end(), adjacent.begin(), adjacent.end());
  if (adjacent_weights.empty()) {
    weights.insert(weights.end(), adjacent.size(), 1.0F);
  } else {
    weights.insert(weights.end(), adjacent_weights.begin(), adjacent_weights.end());
  }
}

std::size_t ComputationGraph::total_edges() const noexcept {
  std::size_t total = 0;
  for (const auto& block : blocks) total += block.num_edges();
  return total;
}

NeighborSampler::NeighborSampler(std::vector<std::uint32_t> fanouts)
    : fanouts_(std::move(fanouts)) {
  if (fanouts_.empty()) throw std::invalid_argument("NeighborSampler: need >= 1 layer");
}

namespace {

// Per-chunk scratch for one layer expansion. `adj_*` hold the fetched
// neighborhoods of the chunk's destinations (offsets indexed locally);
// `picked_*` hold the post-fanout selections, concatenated per destination.
struct ChunkScratch {
  std::vector<NodeId> adj_nodes;
  std::vector<float> adj_weights;
  std::vector<std::size_t> adj_offsets;
  std::vector<NodeId> picked_nodes;
  std::vector<float> picked_weights;
  std::vector<std::uint32_t> picked_counts;
};

}  // namespace

ComputationGraph NeighborSampler::sample(AdjacencyProvider& adjacency,
                                         std::span<const NodeId> seeds, Rng& rng,
                                         util::ThreadPool* pool,
                                         std::size_t chunk_size) const {
  // Deduplicate seeds, preserving first-seen order.
  std::vector<NodeId> dst;
  {
    std::unordered_map<NodeId, std::uint32_t> index;
    index.reserve(seeds.size() * 2);
    for (const NodeId s : seeds) {
      if (index.emplace(s, static_cast<std::uint32_t>(dst.size())).second) dst.push_back(s);
    }
  }
  if (dst.empty()) throw std::invalid_argument("NeighborSampler: empty seed set");
  if (chunk_size == 0) chunk_size = 1;
  if (pool != nullptr && pool->size() <= 1) pool = nullptr;

  // The caller's stream advances by exactly ONE draw per sample() call, no
  // matter how many nodes/layers/chunks get expanded. Everything below runs
  // off streams pre-split from this base seed, which is what makes the
  // output a pure function of (rng state, seeds, fanouts, chunk_size) —
  // independent of pool width and scheduling.
  const util::Rng base(rng.next());

  ComputationGraph out;
  out.blocks.resize(fanouts_.size());

  // Build from the seed layer (last block) towards the inputs.
  for (std::size_t layer = fanouts_.size(); layer-- > 0;) {
    Block& block = out.blocks[layer];
    block.dst_count = dst.size();
    block.src_nodes = dst;  // dst prefix

    const std::uint32_t fanout = fanouts_[layer];
    const std::size_t num_chunks = (dst.size() + chunk_size - 1) / chunk_size;
    std::vector<ChunkScratch> chunks(num_chunks);

    // Phase A — fetch every destination's neighborhood. Stateful providers
    // (WorkerView meters reads and consumes fault-injection randomness) must
    // observe reads serially in ascending destination order; read-only
    // providers can fetch chunk-parallel.
    const auto fetch_chunk = [&](std::size_t c) {
      ChunkScratch& s = chunks[c];
      const std::size_t lo = c * chunk_size;
      const std::size_t hi = std::min(dst.size(), lo + chunk_size);
      s.adj_offsets.assign(1, 0);
      for (std::size_t d = lo; d < hi; ++d) {
        adjacency.append_neighbors(dst[d], s.adj_nodes, s.adj_weights);
        s.adj_offsets.push_back(s.adj_nodes.size());
      }
    };
    if (pool != nullptr && adjacency.concurrent_safe()) {
      pool->parallel_for(0, num_chunks, fetch_chunk);
    } else {
      for (std::size_t c = 0; c < num_chunks; ++c) fetch_chunk(c);
    }

    // Phase B — fanout picks. Each chunk samples from its own pre-split
    // stream and writes only its own scratch, so running this on the pool
    // or inline produces the same bytes.
    const auto pick_chunk = [&](std::size_t c) {
      ChunkScratch& s = chunks[c];
      const std::size_t lo = c * chunk_size;
      const std::size_t hi = std::min(dst.size(), lo + chunk_size);
      Rng chunk_rng = base.split("layer", layer).split("chunk", c);
      for (std::size_t d = lo; d < hi; ++d) {
        const std::size_t begin = s.adj_offsets[d - lo];
        const std::size_t available = s.adj_offsets[d - lo + 1] - begin;
        if (fanout == 0 || available <= fanout) {
          for (std::size_t i = 0; i < available; ++i) {
            s.picked_nodes.push_back(s.adj_nodes[begin + i]);
            s.picked_weights.push_back(s.adj_weights[begin + i]);
          }
          s.picked_counts.push_back(static_cast<std::uint32_t>(available));
        } else {
          for (const std::uint32_t pick : chunk_rng.sample_without_replacement(
                   static_cast<std::uint32_t>(available), fanout)) {
            s.picked_nodes.push_back(s.adj_nodes[begin + pick]);
            s.picked_weights.push_back(s.adj_weights[begin + pick]);
          }
          s.picked_counts.push_back(fanout);
        }
      }
    };
    if (pool != nullptr) {
      pool->parallel_for(0, num_chunks, pick_chunk);
    } else {
      for (std::size_t c = 0; c < num_chunks; ++c) pick_chunk(c);
    }

    // Phase C — serial merge in ascending (chunk, destination, pick) order.
    // src_nodes ordering (and hence the whole block) is fixed by this order.
    std::unordered_map<NodeId, std::uint32_t> src_index;
    src_index.reserve(dst.size() * 4);
    for (std::uint32_t i = 0; i < dst.size(); ++i) src_index.emplace(dst[i], i);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const ChunkScratch& s = chunks[c];
      std::size_t pick_pos = 0;
      for (std::size_t local = 0; local < s.picked_counts.size(); ++local) {
        const auto d = static_cast<std::uint32_t>(c * chunk_size + local);
        for (std::uint32_t i = 0; i < s.picked_counts[local]; ++i, ++pick_pos) {
          const NodeId neighbor = s.picked_nodes[pick_pos];
          const auto [it, inserted] = src_index.emplace(
              neighbor, static_cast<std::uint32_t>(block.src_nodes.size()));
          if (inserted) block.src_nodes.push_back(neighbor);
          block.edge_src.push_back(it->second);
          block.edge_dst.push_back(d);
          block.edge_weight.push_back(s.picked_weights[pick_pos]);
        }
      }
    }
    // The next (closer-to-input) layer computes embeddings for every node
    // this layer reads.
    dst = block.src_nodes;
  }
  return out;
}

}  // namespace splpg::sampling
