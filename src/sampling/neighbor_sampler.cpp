#include "sampling/neighbor_sampler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace splpg::sampling {

using graph::NodeId;
using util::Rng;

void GraphProvider::append_neighbors(NodeId v, std::vector<NodeId>& neighbors,
                                     std::vector<float>& weights) {
  const auto adjacent = graph_->neighbors(v);
  const auto adjacent_weights = graph_->neighbor_weights(v);
  neighbors.insert(neighbors.end(), adjacent.begin(), adjacent.end());
  if (adjacent_weights.empty()) {
    weights.insert(weights.end(), adjacent.size(), 1.0F);
  } else {
    weights.insert(weights.end(), adjacent_weights.begin(), adjacent_weights.end());
  }
}

std::size_t ComputationGraph::total_edges() const noexcept {
  std::size_t total = 0;
  for (const auto& block : blocks) total += block.num_edges();
  return total;
}

NeighborSampler::NeighborSampler(std::vector<std::uint32_t> fanouts)
    : fanouts_(std::move(fanouts)) {
  if (fanouts_.empty()) throw std::invalid_argument("NeighborSampler: need >= 1 layer");
}

ComputationGraph NeighborSampler::sample(AdjacencyProvider& adjacency,
                                         std::span<const NodeId> seeds, Rng& rng) const {
  // Deduplicate seeds, preserving first-seen order.
  std::vector<NodeId> dst;
  {
    std::unordered_map<NodeId, std::uint32_t> index;
    index.reserve(seeds.size() * 2);
    for (const NodeId s : seeds) {
      if (index.emplace(s, static_cast<std::uint32_t>(dst.size())).second) dst.push_back(s);
    }
  }
  if (dst.empty()) throw std::invalid_argument("NeighborSampler: empty seed set");

  ComputationGraph out;
  out.blocks.resize(fanouts_.size());

  std::vector<NodeId> scratch_neighbors;
  std::vector<float> scratch_weights;

  // Build from the seed layer (last block) towards the inputs.
  for (std::size_t layer = fanouts_.size(); layer-- > 0;) {
    Block& block = out.blocks[layer];
    block.dst_count = dst.size();
    block.src_nodes = dst;  // dst prefix

    std::unordered_map<NodeId, std::uint32_t> src_index;
    src_index.reserve(dst.size() * 4);
    for (std::uint32_t i = 0; i < dst.size(); ++i) src_index.emplace(dst[i], i);

    const std::uint32_t fanout = fanouts_[layer];
    for (std::uint32_t d = 0; d < block.dst_count; ++d) {
      scratch_neighbors.clear();
      scratch_weights.clear();
      adjacency.append_neighbors(dst[d], scratch_neighbors, scratch_weights);
      const std::size_t available = scratch_neighbors.size();

      auto add_edge = [&](std::size_t pick) {
        const NodeId neighbor = scratch_neighbors[pick];
        const auto [it, inserted] =
            src_index.emplace(neighbor, static_cast<std::uint32_t>(block.src_nodes.size()));
        if (inserted) block.src_nodes.push_back(neighbor);
        block.edge_src.push_back(it->second);
        block.edge_dst.push_back(d);
        block.edge_weight.push_back(scratch_weights[pick]);
      };

      if (fanout == 0 || available <= fanout) {
        for (std::size_t i = 0; i < available; ++i) add_edge(i);
      } else {
        for (const std::uint32_t pick : rng.sample_without_replacement(
                 static_cast<std::uint32_t>(available), fanout)) {
          add_edge(pick);
        }
      }
    }
    // The next (closer-to-input) layer computes embeddings for every node
    // this layer reads.
    dst = block.src_nodes;
  }
  return out;
}

}  // namespace splpg::sampling
