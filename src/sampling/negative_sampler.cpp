#include "sampling/negative_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace splpg::sampling {

using graph::Edge;
using graph::NodeId;
using util::Rng;

PerSourceNegativeSampler::PerSourceNegativeSampler(std::vector<NodeId> candidates,
                                                   EdgeOracle is_edge,
                                                   std::vector<double> candidate_weights)
    : candidates_(std::move(candidates)), is_edge_(std::move(is_edge)) {
  if (candidates_.size() < 2) {
    throw std::invalid_argument("PerSourceNegativeSampler: need >= 2 candidates");
  }
  if (!candidate_weights.empty()) {
    if (candidate_weights.size() != candidates_.size()) {
      throw std::invalid_argument("PerSourceNegativeSampler: weight arity mismatch");
    }
    weighted_ = util::AliasTable{std::span<const double>(candidate_weights)};
  }
}

NodeId PerSourceNegativeSampler::sample_destination(NodeId source, Rng& rng,
                                                    std::uint32_t max_tries) const {
  NodeId last = candidates_[0];
  for (std::uint32_t attempt = 0; attempt < max_tries; ++attempt) {
    const NodeId candidate = weighted_.empty()
                                 ? candidates_[rng.uniform_u64(candidates_.size())]
                                 : candidates_[weighted_.sample(rng)];
    last = candidate;
    if (candidate == source) continue;
    if (is_edge_(source, candidate)) continue;
    return candidate;
  }
  // Rejection exhausted (source's neighborhood covers almost the whole
  // candidate set): scan from a random offset for any valid destination so a
  // hub cannot turn its own neighbors — or itself — into "negatives".
  const std::size_t offset = rng.uniform_u64(candidates_.size());
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    const NodeId candidate = candidates_[(offset + i) % candidates_.size()];
    if (candidate == source) continue;
    if (is_edge_(source, candidate)) continue;
    return candidate;
  }
  return last;  // every candidate is source or a neighbor
}

std::vector<double> negative_candidate_weights(NegativeDistribution distribution,
                                               const graph::CsrGraph& graph,
                                               std::span<const NodeId> candidates) {
  if (distribution == NegativeDistribution::kUniform) return {};
  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (const NodeId v : candidates) {
    weights.push_back(std::pow(static_cast<double>(graph.degree(v)) + 1.0, 0.75));
  }
  return weights;
}

std::vector<NodePair> PerSourceNegativeSampler::sample_for_batch(std::span<const Edge> positives,
                                                                 Rng& rng) const {
  std::vector<NodePair> out;
  out.reserve(positives.size());
  for (const auto& [u, v] : positives) {
    (void)v;
    out.push_back(NodePair{u, sample_destination(u, rng)});
  }
  return out;
}

BatchIterator::BatchIterator(std::span<const Edge> positives, std::uint32_t batch_size)
    : original_(positives.begin(), positives.end()), positives_(original_),
      batch_size_(std::max(1U, batch_size)) {}

void BatchIterator::reset(Rng& rng) {
  positives_ = original_;
  rng.shuffle(std::span<Edge>(positives_));
  cursor_ = 0;
}

std::vector<Edge> BatchIterator::next() {
  if (cursor_ >= positives_.size()) return {};
  const std::size_t end = std::min(positives_.size(), cursor_ + batch_size_);
  std::vector<Edge> batch(positives_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                          positives_.begin() + static_cast<std::ptrdiff_t>(end));
  cursor_ = end;
  return batch;
}

}  // namespace splpg::sampling
