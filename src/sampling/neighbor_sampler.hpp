// K-hop computational-graph construction (the "blocks" of Figure 1(b)).
//
// Given seed nodes (the endpoints of a mini-batch's positive and negative
// samples), the sampler expands K layers of neighborhoods, optionally capped
// by per-layer fanouts (GraphSAGE uses 25/10/5 in the paper; fanout 0 means
// full neighborhood, as GCN requires). The result is a stack of bipartite
// Blocks in DGL's message-flow-graph style: blocks[0] consumes raw input
// features, blocks[K-1] produces seed embeddings.
//
// Adjacency is read through an AdjacencyProvider so the distributed runtime
// can (a) serve partition-local reads for free, (b) meter remote reads, and
// (c) substitute *sparsified* adjacency for remote partitions — the core of
// SpLPG.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace splpg::util {
class ThreadPool;
}  // namespace splpg::util

namespace splpg::sampling {

/// Abstract adjacency source (global id space).
class AdjacencyProvider {
 public:
  virtual ~AdjacencyProvider() = default;

  /// Appends the neighbors of `v` (and their edge weights; 1 when
  /// unweighted) to the output vectors.
  virtual void append_neighbors(graph::NodeId v, std::vector<graph::NodeId>& neighbors,
                                std::vector<float>& weights) = 0;

  /// True iff append_neighbors may be called concurrently from multiple
  /// threads. Defaults to false: dist::WorkerView is stateful (comm metering
  /// dedup, fault injection) and its reads must happen serially in
  /// deterministic order, so the pooled sampler only parallelizes the fanout
  /// picks for it. Read-only providers override to true and get the
  /// adjacency fetch parallelized too.
  [[nodiscard]] virtual bool concurrent_safe() const noexcept { return false; }
};

/// Plain provider over a CsrGraph (centralized training, tests).
class GraphProvider final : public AdjacencyProvider {
 public:
  explicit GraphProvider(const graph::CsrGraph& graph) : graph_(&graph) {}

  void append_neighbors(graph::NodeId v, std::vector<graph::NodeId>& neighbors,
                        std::vector<float>& weights) override;

  [[nodiscard]] bool concurrent_safe() const noexcept override { return true; }

 private:
  const graph::CsrGraph* graph_;
};

/// One bipartite message-passing layer.
///
/// src_nodes holds global ids; its first dst_count entries ARE the
/// destination nodes (so h_dst can be read from the src embedding rows
/// 0..dst_count). Edges are index pairs into src_nodes / the dst prefix.
struct Block {
  std::vector<graph::NodeId> src_nodes;
  std::size_t dst_count = 0;
  std::vector<std::uint32_t> edge_src;   // index into src_nodes
  std::vector<std::uint32_t> edge_dst;   // index into [0, dst_count)
  std::vector<float> edge_weight;        // parallel to edges

  [[nodiscard]] std::size_t num_edges() const noexcept { return edge_src.size(); }
  [[nodiscard]] std::span<const graph::NodeId> dst_nodes() const noexcept {
    return {src_nodes.data(), dst_count};
  }
};

struct ComputationGraph {
  std::vector<Block> blocks;  // blocks[0] = input-most layer

  [[nodiscard]] std::span<const graph::NodeId> input_nodes() const noexcept {
    return blocks.front().src_nodes;
  }
  [[nodiscard]] std::span<const graph::NodeId> seed_nodes() const noexcept {
    return blocks.back().dst_nodes();
  }
  /// Total edges across all blocks (proxy for compute size).
  [[nodiscard]] std::size_t total_edges() const noexcept;
};

class NeighborSampler {
 public:
  /// `fanouts[k]` caps layer k's sampled neighbors per destination
  /// (fanouts[0] = input-most layer, matching the paper's 25/10/5 ordering
  /// as first/second/third hop). 0 = take all neighbors.
  explicit NeighborSampler(std::vector<std::uint32_t> fanouts);

  [[nodiscard]] std::size_t num_layers() const noexcept { return fanouts_.size(); }

  /// Builds the computational graph for `seeds` (global ids; duplicates
  /// allowed and collapsed). Deterministic given rng state, and — the
  /// DESIGN.md §6 contract — bit-identical for every (pool, chunk_size-fixed)
  /// configuration: `rng` advances by exactly one draw per call to derive a
  /// base seed, and each chunk of `chunk_size` destinations samples from its
  /// own pre-split stream, so neither the pool width nor task interleaving
  /// can reach the output bytes. Chunk picks run on `pool` when given (and
  /// the adjacency fetch too, if the provider is concurrent_safe());
  /// per-chunk outputs are merged serially in ascending chunk order.
  [[nodiscard]] ComputationGraph sample(AdjacencyProvider& adjacency,
                                        std::span<const graph::NodeId> seeds,
                                        util::Rng& rng,
                                        util::ThreadPool* pool = nullptr,
                                        std::size_t chunk_size = 64) const;

 private:
  std::vector<std::uint32_t> fanouts_;
};

}  // namespace splpg::sampling
