// Training-time negative sampling (§II-B of the paper).
//
// The paper distinguishes two strategies:
//  * global uniform — both endpoints uniform over the graph (used for eval,
//    see edge_split.hpp);
//  * per-source uniform — for each positive source node, draw negative
//    *destination* nodes uniformly from a candidate set, rejecting actual
//    neighbors. Used during training.
//
// The candidate set is the crux of the distributed story: vanilla baselines
// can only draw destinations from their own partition (local negatives),
// while SpLPG draws from the entire node set (global negatives) because the
// sparsified remote partitions retain *all* nodes.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "sampling/edge_split.hpp"
#include "util/rng.hpp"

namespace splpg::sampling {

/// Predicate answering "is (u, v) an edge?" against whatever view of the
/// graph the worker has (full train graph, local subgraph, ...).
using EdgeOracle = std::function<bool(graph::NodeId, graph::NodeId)>;

class PerSourceNegativeSampler {
 public:
  /// `candidates` is the destination sample space (global node ids). It is
  /// copied; pass the full node universe or a partition's node list.
  ///
  /// `candidate_weights`, if non-empty (parallel to `candidates`), biases
  /// destination draws proportionally — e.g. degree^0.75 "popularity"
  /// sampling from the negative-sampling literature the paper cites [30],
  /// [31]. Empty = uniform (the paper's per-source uniform strategy).
  PerSourceNegativeSampler(std::vector<graph::NodeId> candidates, EdgeOracle is_edge,
                           std::vector<double> candidate_weights = {});

  /// One negative destination for `source`: uniform over candidates,
  /// rejecting `source` itself and its neighbors (per `is_edge`). After
  /// `max_tries` rejections (near-complete neighborhoods around a hub) falls
  /// back to a deterministic scan of the candidate list from a random offset
  /// and returns the first valid destination; only when *no* candidate is
  /// valid (the source is connected to every other candidate) does it return
  /// the last rejected draw.
  [[nodiscard]] graph::NodeId sample_destination(graph::NodeId source, util::Rng& rng,
                                                 std::uint32_t max_tries = 64) const;

  /// One negative pair per positive edge: (src of positive, sampled dst).
  [[nodiscard]] std::vector<NodePair> sample_for_batch(std::span<const graph::Edge> positives,
                                                       util::Rng& rng) const;

  [[nodiscard]] std::size_t candidate_count() const noexcept { return candidates_.size(); }

 private:
  std::vector<graph::NodeId> candidates_;
  EdgeOracle is_edge_;
  util::AliasTable weighted_;  // empty = uniform
};

/// How training-time negative destinations are distributed over candidates.
enum class NegativeDistribution { kUniform, kDegreeWeighted };

/// Candidate weights for the chosen distribution; empty for kUniform.
/// Degree-weighted uses (deg + 1)^0.75 over the given graph's degrees.
[[nodiscard]] std::vector<double> negative_candidate_weights(
    NegativeDistribution distribution, const graph::CsrGraph& graph,
    std::span<const graph::NodeId> candidates);

/// Mini-batch iterator over the training positives: reshuffles every epoch,
/// yields contiguous batches of at most `batch_size` edges.
class BatchIterator {
 public:
  BatchIterator(std::span<const graph::Edge> positives, std::uint32_t batch_size);

  /// Starts a new epoch. The permutation is derived by shuffling the
  /// *original* edge order with `rng`, never the previous epoch's order —
  /// an epoch's batch sequence is a pure function of the rng state handed
  /// in, which is what makes checkpoint resume bit-exact (the trainer hands
  /// in a stream derived from (seed, worker, epoch)).
  void reset(util::Rng& rng);

  /// Next batch, empty when the epoch is exhausted.
  [[nodiscard]] std::vector<graph::Edge> next();

  [[nodiscard]] std::size_t batches_per_epoch() const noexcept {
    return positives_.empty() ? 0 : (positives_.size() + batch_size_ - 1) / batch_size_;
  }

 private:
  std::vector<graph::Edge> original_;   // construction order (reset's base)
  std::vector<graph::Edge> positives_;  // current epoch's permutation
  std::uint32_t batch_size_;
  std::size_t cursor_ = 0;
};

}  // namespace splpg::sampling
