// Bounded blocking queue for producer/consumer hand-off.
//
// Hoisted out of the trainer's intra-worker batch pipeline (PR 5) so the
// serving request queue can reuse it. Two ways to stop:
//  * close()  — graceful: pushes start failing, but every item already
//               queued still pops; a blocking pop() returns nullopt once the
//               queue is drained. The serving shutdown path ("drain
//               in-flight requests, then stop") is exactly this.
//  * cancel() — abort: pushes fail AND pop()/try_pop() return nullopt
//               immediately, leaving queued items unretrieved. The trainer
//               uses this to unblock a producer stuck in push() when the
//               consumer dies early (ProducerGuard).
//
// Any number of producers and consumers may call concurrently; items pushed
// by one thread pop in that thread's push order (FIFO overall — the mutex
// serializes pushes).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <queue>
#include <utility>

namespace splpg::util {

template <typename T>
class BoundedQueue {
 public:
  /// Capacity caps how far producers can run ahead (memory bound); clamped
  /// to at least 1.
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(std::max<std::size_t>(1, capacity)) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false (dropping the item) once the queue is
  /// closed or cancelled.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return stopped_() || items_.size() < capacity_; });
    if (stopped_()) return false;
    items_.push(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty and open. Returns nullopt when cancelled, or when
  /// closed and fully drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return cancelled_ || closed_ || !items_.empty(); });
    if (cancelled_ || items_.empty()) return std::nullopt;
    return pop_locked();
  }

  /// Non-blocking pop: nullopt when the queue holds nothing retrievable.
  std::optional<T> try_pop() {
    const std::unique_lock<std::mutex> lock(mutex_);
    if (cancelled_ || items_.empty()) return std::nullopt;
    return pop_locked();
  }

  /// Graceful stop: subsequent pushes fail; queued items still pop.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Abort: pushes fail and pops return nullopt immediately (queued items
  /// are abandoned, destroyed with the queue).
  void cancel() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      cancelled_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

 private:
  [[nodiscard]] bool stopped_() const noexcept { return closed_ || cancelled_; }

  std::optional<T> pop_locked() {
    std::optional<T> item(std::move(items_.front()));
    items_.pop();
    not_full_.notify_one();
    return item;
  }

  std::size_t capacity_;
  std::queue<T> items_;
  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  bool closed_ = false;
  bool cancelled_ = false;
};

}  // namespace splpg::util
