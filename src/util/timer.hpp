// Wall-clock stopwatch used by the sparsification-time benchmark (Table II)
// and progress reporting, plus a thread-CPU stopwatch for separating
// preprocessing wall time from CPU time when work fans out on the pool.
#pragma once

#include <chrono>
#include <ctime>

namespace splpg::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU-time stopwatch scoped to the *calling thread*. Summed across the
/// ThreadPool tasks of a parallel region it yields the region's total CPU
/// cost, which the wall-clock Stopwatch divides into to report parallel
/// efficiency (SparsifyStats, TrainResult).
class ThreadCpuStopwatch {
 public:
  ThreadCpuStopwatch() : start_(now()) {}

  void reset() noexcept { start_ = now(); }

  /// Thread-CPU seconds consumed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept { return now() - start_; }

 private:
  [[nodiscard]] static double now() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    std::timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
#else
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
#endif
  }

  double start_;
};

/// CPU-time stopwatch scoped to the *whole process* — every thread,
/// including pool workers. Used by the worker-parallelism benchmark: a
/// pooled section's process-CPU ≈ its serial CPU (same flops, different
/// threads), while wall time shrinks with the pool, so cpu/wall reports the
/// achieved parallelism without instrumenting each task.
class ProcessCpuStopwatch {
 public:
  ProcessCpuStopwatch() : start_(now()) {}

  void reset() noexcept { start_ = now(); }

  /// Process-CPU seconds consumed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept { return now() - start_; }

 private:
  [[nodiscard]] static double now() noexcept {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    std::timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
#else
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
#endif
  }

  double start_;
};

}  // namespace splpg::util
