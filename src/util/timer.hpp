// Wall-clock stopwatch used by the sparsification-time benchmark (Table II)
// and progress reporting.
#pragma once

#include <chrono>

namespace splpg::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace splpg::util
