#include "util/logging.hpp"

#include <chrono>
#include <cstdio>

namespace splpg::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : start_(std::chrono::steady_clock::now()) {}

void Logger::write(LogLevel level, const std::string& message) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO ", "WARN ", "ERROR"};
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() - start_)
          .count();
  const std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(stderr, "[%8.3f] [%s] %s\n", static_cast<double>(elapsed) / 1000.0,
               kNames[static_cast<int>(level)], message.c_str());
}

}  // namespace splpg::util
