// Minimal leveled logger. Thread-safe (one mutex around the sink), no global
// construction order issues (Meyers singleton), no allocation on the disabled
// path.
#pragma once

#include <chrono>
#include <mutex>
#include <sstream>
#include <string>

namespace splpg::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log configuration.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept { return level >= level_; }

  /// Writes one line (with level prefix and elapsed-time stamp) to stderr.
  void write(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kInfo;
  std::mutex mutex_;
  std::chrono::steady_clock::time_point start_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace splpg::util

#define SPLPG_LOG(level)                                          \
  if (!::splpg::util::Logger::instance().enabled(level)) {        \
  } else                                                          \
    ::splpg::util::detail::LogLine(level)

#define SPLPG_DEBUG SPLPG_LOG(::splpg::util::LogLevel::kDebug)
#define SPLPG_INFO SPLPG_LOG(::splpg::util::LogLevel::kInfo)
#define SPLPG_WARN SPLPG_LOG(::splpg::util::LogLevel::kWarn)
#define SPLPG_ERROR SPLPG_LOG(::splpg::util::LogLevel::kError)
