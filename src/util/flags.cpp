#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace splpg::util {

namespace {

const char* type_name(int type) {
  static constexpr const char* kNames[] = {"string", "int", "double", "bool"};
  return kNames[type];
}

}  // namespace

Flags::Flags(std::string program_description) : description_(std::move(program_description)) {}

void Flags::define(const std::string& name, std::string default_value, std::string help) {
  entries_[name] = Entry{Type::kString, default_value, std::move(default_value), std::move(help)};
}

void Flags::define(const std::string& name, const char* default_value, std::string help) {
  define(name, std::string(default_value), std::move(help));
}

void Flags::define(const std::string& name, std::int64_t default_value, std::string help) {
  auto text = std::to_string(default_value);
  entries_[name] = Entry{Type::kInt, text, text, std::move(help)};
}

void Flags::define(const std::string& name, double default_value, std::string help) {
  std::ostringstream stream;
  stream << default_value;
  entries_[name] = Entry{Type::kDouble, stream.str(), stream.str(), std::move(help)};
}

void Flags::define(const std::string& name, bool default_value, std::string help) {
  const std::string text = default_value ? "true" : "false";
  entries_[name] = Entry{Type::kBool, text, text, std::move(help)};
}

bool Flags::parse(int argc, char** argv) {
  program_name_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: positional argument '%s' not supported\n", arg.c_str());
      print_usage();
      return false;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    } else {
      name = arg;
    }
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::fprintf(stderr, "error: unknown flag --%s\n", name.c_str());
      print_usage();
      return false;
    }
    if (!has_value) {
      if (it->second.type == Type::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "error: flag --%s requires a value\n", name.c_str());
        return false;
      }
    }
    it->second.value = value;
  }
  return true;
}

const Flags::Entry& Flags::entry_or_die(const std::string& name, Type expected) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::logic_error("flag not defined: --" + name);
  }
  if (it->second.type != expected) {
    throw std::logic_error("flag --" + name + " is a " +
                           type_name(static_cast<int>(it->second.type)) + ", accessed as " +
                           type_name(static_cast<int>(expected)));
  }
  return it->second;
}

std::string Flags::get_string(const std::string& name) const {
  return entry_or_die(name, Type::kString).value;
}

std::int64_t Flags::get_int(const std::string& name) const {
  return std::stoll(entry_or_die(name, Type::kInt).value);
}

double Flags::get_double(const std::string& name) const {
  return std::stod(entry_or_die(name, Type::kDouble).value);
}

bool Flags::get_bool(const std::string& name) const {
  const auto& value = entry_or_die(name, Type::kBool).value;
  return value == "true" || value == "1" || value == "yes";
}

std::vector<std::int64_t> Flags::get_int_list(const std::string& name) const {
  const auto text = get_string(name);
  std::vector<std::int64_t> out;
  std::stringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) out.push_back(std::stoll(token));
  }
  return out;
}

void Flags::print_usage() const {
  std::fprintf(stderr, "%s\n\nflags:\n", description_.c_str());
  for (const auto& [name, entry] : entries_) {
    std::fprintf(stderr, "  --%-24s %s (%s, default: %s)\n", name.c_str(), entry.help.c_str(),
                 type_name(static_cast<int>(entry.type)), entry.default_value.c_str());
  }
}

}  // namespace splpg::util
