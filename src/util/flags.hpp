// Tiny command-line flag parser for the bench/example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags are an error (catches typos in sweep scripts). Every flag is
// registered with a default and a help string; `--help` prints usage.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace splpg::util {

class Flags {
 public:
  explicit Flags(std::string program_description);

  /// Registers a flag with its default value (also defines its type).
  void define(const std::string& name, std::string default_value, std::string help);
  void define(const std::string& name, const char* default_value, std::string help);
  void define(const std::string& name, std::int64_t default_value, std::string help);
  void define(const std::string& name, double default_value, std::string help);
  void define(const std::string& name, bool default_value, std::string help);

  /// Parses argv. Returns false (after printing usage) on `--help` or on a
  /// parse error; callers should exit in that case.
  [[nodiscard]] bool parse(int argc, char** argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Parses a comma-separated int list flag, e.g. "--partitions=4,8,16".
  [[nodiscard]] std::vector<std::int64_t> get_int_list(const std::string& name) const;

  void print_usage() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Entry {
    Type type;
    std::string value;
    std::string default_value;
    std::string help;
  };

  const Entry& entry_or_die(const std::string& name, Type expected) const;

  std::string description_;
  std::map<std::string, Entry> entries_;
  std::string program_name_;
};

}  // namespace splpg::util
