// Reusable thread barrier for the distributed-training simulation.
//
// std::barrier would do, but a hand-rolled generation-counting barrier keeps
// the dependency surface minimal and lets us expose `arrive_and_wait` with a
// serial-section callback (run by exactly one thread per phase), which the
// all-reduce uses for the deterministic summation step.
//
// Fault-tolerance extensions beyond std::barrier:
//   - The serial section is exception-safe: if it throws, the barrier is
//     released (no deadlocked waiters) and the exception propagates on the
//     executing thread.
//   - `arrive_and_drop()` permanently removes one party, so a crashed worker
//     can leave a collective without deadlocking the survivors; the phase
//     completes as soon as the remaining parties have arrived.
//   - `add_party()` grows the membership again (worker recovery). Callable
//     from inside a serial section: the section runs with the internal mutex
//     released (waiters stay blocked on the generation count).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>

namespace splpg::util {

class Barrier {
 public:
  explicit Barrier(std::size_t parties) : parties_(parties), waiting_(0), generation_(0) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until `parties()` threads have arrived (or enough parties have
  /// dropped). If `serial_section` is non-null, the thread completing the
  /// phase runs it while the others are still blocked, then everyone is
  /// released. Returns true for the thread that executed the serial section.
  /// If the serial section throws, all waiters are released and the
  /// exception propagates on the executing thread.
  bool arrive_and_wait(const std::function<void()>& serial_section = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    // A phase whose serial section is in flight has not reset `waiting_`
    // yet; late arrivals belong to the NEXT phase and must not join it.
    cv_.wait(lock, [&] { return !serial_running_; });
    const std::uint64_t my_generation = generation_;
    ++waiting_;
    if (waiting_ >= parties_) return complete_phase(lock, serial_section);
    cv_.wait(lock, [&] {
      return generation_ != my_generation || (waiting_ >= parties_ && !serial_running_);
    });
    if (generation_ == my_generation) {
      // `arrive_and_drop` shrank the membership while we were blocked; we
      // are now the effective last arriver and must complete the phase.
      return complete_phase(lock, serial_section);
    }
    return false;
  }

  /// Permanently removes one party without waiting (a crashed/leaving
  /// worker). If the remaining waiters now form a full phase, one of them is
  /// woken to complete it.
  void arrive_and_drop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (parties_ > 0) --parties_;
    if (waiting_ >= parties_ && waiting_ > 0 && !serial_running_) cv_.notify_all();
  }

  /// Adds one party (worker recovery). The new party joins from the next
  /// phase onward. Safe to call from inside a serial section.
  void add_party() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++parties_;
  }

  [[nodiscard]] std::size_t parties() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return parties_;
  }

 private:
  /// Pre: lock held, this thread completes the current phase. Runs the
  /// serial section with the lock RELEASED (waiters remain blocked on the
  /// generation count; new arrivals are fenced by `serial_running_`), then
  /// releases everyone. Exception-safe: a throwing serial section still
  /// releases the barrier before propagating.
  bool complete_phase(std::unique_lock<std::mutex>& lock,
                      const std::function<void()>& serial_section) {
    if (serial_section) {
      serial_running_ = true;
      lock.unlock();
      try {
        serial_section();
      } catch (...) {
        lock.lock();
        serial_running_ = false;
        release_phase();
        throw;
      }
      lock.lock();
      serial_running_ = false;
    }
    release_phase();
    return true;
  }

  void release_phase() {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
  }

  std::size_t parties_;
  std::size_t waiting_;
  std::uint64_t generation_;
  bool serial_running_ = false;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace splpg::util
