// Reusable thread barrier for the distributed-training simulation.
//
// std::barrier would do, but a hand-rolled generation-counting barrier keeps
// the dependency surface minimal and lets us expose `arrive_and_wait` with a
// serial-section callback (run by exactly one thread per phase), which the
// all-reduce uses for the deterministic summation step.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>

namespace splpg::util {

class Barrier {
 public:
  explicit Barrier(std::size_t parties) : parties_(parties), waiting_(0), generation_(0) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until `parties` threads have arrived. If `serial_section` is
  /// non-null, the last thread to arrive runs it (while the others are still
  /// blocked), then everyone is released. Returns true for the thread that
  /// executed the serial section.
  bool arrive_and_wait(const std::function<void()>& serial_section = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::size_t my_generation = generation_;
    if (++waiting_ == parties_) {
      if (serial_section) serial_section();
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
      return true;
    }
    cv_.wait(lock, [&] { return generation_ != my_generation; });
    return false;
  }

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

 private:
  const std::size_t parties_;
  std::size_t waiting_;
  std::size_t generation_;
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace splpg::util
