// Binary (de)serialization helpers for graph and dataset files.
//
// Format: little-endian PODs and length-prefixed vectors. Used by graph::io
// for the on-disk graph format; not a wire format.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace splpg::util {

template <typename T>
  requires std::is_trivially_copyable_v<T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("serialize: unexpected end of stream");
  return value;
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
void write_vector(std::ostream& out, const std::vector<T>& values) {
  write_pod<std::uint64_t>(out, values.size());
  if (!values.empty()) {
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(T)));
  }
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<T> read_vector(std::istream& in) {
  const auto count = read_pod<std::uint64_t>(in);
  std::vector<T> values(count);
  if (count > 0) {
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
    if (!in) throw std::runtime_error("serialize: unexpected end of stream");
  }
  return values;
}

inline void write_string(std::ostream& out, const std::string& text) {
  write_pod<std::uint64_t>(out, text.size());
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
}

inline std::string read_string(std::istream& in) {
  const auto size = read_pod<std::uint64_t>(in);
  std::string text(size, '\0');
  if (size > 0) {
    in.read(text.data(), static_cast<std::streamsize>(size));
    if (!in) throw std::runtime_error("serialize: unexpected end of stream");
  }
  return text;
}

}  // namespace splpg::util
