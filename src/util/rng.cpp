#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <numeric>
#include <unordered_set>

namespace splpg::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash64(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::split(std::string_view tag, std::uint64_t index) const noexcept {
  // Mix the current state with the tag hash and index; does not advance the
  // parent stream, so split order is irrelevant.
  std::uint64_t mix = s_[0] ^ rotl(s_[1], 17) ^ hash64(tag) ^ (index * 0xd1342543de82ef95ULL);
  return Rng(splitmix64(mix));
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform() noexcept {
  // 53 uniform mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n, std::uint32_t k) {
  assert(k <= n);
  if (k == 0) return {};
  if (k * 3 >= n) {
    // Dense regime: partial Fisher-Yates over an index array.
    std::vector<std::uint32_t> all(n);
    std::iota(all.begin(), all.end(), 0U);
    for (std::uint32_t i = 0; i < k; ++i) {
      const auto j = i + static_cast<std::uint32_t>(uniform_u64(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  // Sparse regime: Floyd's algorithm, O(k) expected.
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    auto t = static_cast<std::uint32_t>(uniform_u64(j + 1));
    if (!chosen.insert(t).second) {
      t = j;
      chosen.insert(j);
    }
    out.push_back(t);
  }
  return out;
}

AliasTable::AliasTable(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) return;
  prob_.resize(n);
  alias_.resize(n);
  p_norm_.resize(n);

  double total = 0.0;
  for (const double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) {
    // Degenerate all-zero input: fall back to uniform.
    const double uniform_p = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      prob_[i] = 1.0;
      alias_[i] = static_cast<std::uint32_t>(i);
      p_norm_[i] = uniform_p;
    }
    return;
  }

  // Vose's algorithm with small/large work lists.
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    p_norm_[i] = weights[i] / total;
    scaled[i] = p_norm_[i] * static_cast<double>(n);
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<std::uint32_t>(i));
    } else {
      large.push_back(static_cast<std::uint32_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (const std::uint32_t l : large) {
    prob_[l] = 1.0;
    alias_[l] = l;
  }
  for (const std::uint32_t s : small) {
    prob_[s] = 1.0;  // numerical leftovers
    alias_[s] = s;
  }
}

std::uint32_t AliasTable::sample(Rng& rng) const noexcept {
  assert(!prob_.empty());
  const auto bucket = static_cast<std::uint32_t>(rng.uniform_u64(prob_.size()));
  return rng.uniform() < prob_[bucket] ? bucket : alias_[bucket];
}

}  // namespace splpg::util
