// Deterministic pseudo-random number generation for all SpLPG components.
//
// Every source of randomness in the library flows through an `Rng` instance
// seeded from a run-level seed, so experiments are bit-reproducible regardless
// of thread scheduling (each worker owns a private stream derived from the run
// seed and its worker id).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

namespace splpg::util {

/// xoshiro256++ generator (Blackman & Vigna). Fast, high-quality, 256-bit
/// state, suitable for parallel streams via `split()`.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Derives an independent stream for a named component / worker id.
  /// Deterministic: same (parent seed, tag, index) -> same stream.
  [[nodiscard]] Rng split(std::string_view tag, std::uint64_t index = 0) const noexcept;

  /// Raw 64 random bits.
  std::uint64_t next() noexcept;

  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Unbiased
  /// (Lemire's nearly-divisionless rejection method).
  std::uint64_t uniform_u64(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform real in [0, 1).
  double uniform() noexcept;

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal via Box-Muller (caches the second deviate).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with success probability `p`.
  bool bernoulli(double p) noexcept;

  /// Fisher-Yates shuffle of `items` in place.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_u64(i));
      if (j != i - 1) std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (Floyd's algorithm when k << n,
  /// reservoir/shuffle otherwise). Result is unsorted.
  [[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                                      std::uint32_t k);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// splitmix64 step — used for seeding and stream derivation.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stable 64-bit FNV-1a hash of a string (for deriving stream tags).
[[nodiscard]] std::uint64_t hash64(std::string_view text) noexcept;

/// O(1) sampling from a fixed discrete distribution (Walker/Vose alias
/// method). Construction is O(n). Used by the effective-resistance
/// sparsifier, which must draw L ~ alpha*|E| edges with probability
/// proportional to per-edge weights.
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from unnormalized non-negative weights. Weights that
  /// are all zero yield a uniform distribution. Empty input is allowed; then
  /// `sample` must not be called.
  explicit AliasTable(std::span<const double> weights);

  [[nodiscard]] bool empty() const noexcept { return prob_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  /// Draws an index in [0, size()) with the configured probabilities.
  [[nodiscard]] std::uint32_t sample(Rng& rng) const noexcept;

  /// Normalized probability of index `i` (for weight computation in the
  /// sparsifier: w = 1 / (L * p_i)).
  [[nodiscard]] double probability(std::uint32_t i) const noexcept { return p_norm_[i]; }

 private:
  std::vector<double> prob_;         // threshold within each bucket
  std::vector<std::uint32_t> alias_; // alias index per bucket
  std::vector<double> p_norm_;       // normalized probabilities
};

}  // namespace splpg::util
