// Fixed-size thread pool with a parallel_for helper.
//
// Used for embarrassingly parallel work on both sides of the trainer: the
// master's preprocessing hot paths (per-partition sparsification, dense ER
// kernels, evaluation scoring) and, since the worker-parallelism PR, the
// per-worker hot paths (chunked neighbor-fanout sampling, row-blocked
// tensor kernels, the batch-pipeline producer's sampling work). Worker
// *training* threads are still managed separately by dist::DistContext
// because they are long-lived and barrier-synchronized.
//
// Exception and nesting semantics (tested in test_util.cpp):
//  * A task that throws does not kill its pool thread: `submit`'s future
//    rethrows the exception on `get()`, and `parallel_for` rethrows the
//    first chunk exception after every chunk has finished. A throwing chunk
//    abandons its own remaining indices; the other chunks still run to
//    completion. The pool stays usable afterwards.
//  * `submit` may be called from a pool worker thread (the task is simply
//    enqueued; nothing blocks).
//  * `parallel_for` called from one of this pool's own worker threads runs
//    the whole range INLINE on the calling thread instead of enqueueing.
//    Blocking on chunk futures from inside a worker would deadlock a fully
//    occupied pool; inline execution is deadlock-free and — because chunks
//    are contiguous, disjoint, and ascending — produces bytes identical to
//    the fanned-out execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace splpg::util {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future resolves when it completes (and
  /// rethrows the task's exception, if any, on get()). Safe to call from a
  /// pool worker thread.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [begin, end), splitting the range into contiguous
  /// chunks across the pool. Blocks until all chunks finish. Exceptions from
  /// tasks propagate to the caller (first one wins). When called from one of
  /// this pool's own worker threads the range runs inline on the caller (see
  /// the nesting semantics above).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// True iff the calling thread is one of THIS pool's worker threads.
  [[nodiscard]] bool on_worker_thread() const noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace splpg::util
