// Fixed-size thread pool with a parallel_for helper.
//
// Used for embarrassingly parallel preprocessing (per-partition
// sparsification, feature generation). Worker *training* threads are managed
// separately by dist::DistContext because they are long-lived and barrier-
// synchronized.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace splpg::util {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [begin, end), splitting the range into contiguous
  /// chunks across the pool. Blocks until all chunks finish. Exceptions from
  /// tasks propagate to the caller (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace splpg::util
