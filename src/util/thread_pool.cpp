#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace splpg::util {

namespace {
// The pool whose worker_loop the current thread is running (nullptr on any
// non-pool thread). Lets parallel_for detect self-nesting without a lookup.
thread_local const ThreadPool* current_pool = nullptr;
}  // namespace

bool ThreadPool::on_worker_thread() const noexcept { return current_pool == this; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  if (on_worker_thread()) {
    // Nested call from one of our own workers: blocking on chunk futures
    // here could deadlock a fully occupied pool, so run the range inline.
    // Chunks are contiguous/disjoint/ascending, so the bytes are identical.
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, std::max<std::size_t>(1, workers_.size()));
  const std::size_t chunk_size = (total + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  current_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace splpg::util
