// Named dataset registry mirroring Table I of the paper.
//
// Each config records the *paper's* node/edge/feature counts and the
// generator parameters that produce a synthetic stand-in with similar shape.
// `scale` (0 < scale <= 1) shrinks node/edge counts for fast runs; feature
// dimension shrinks with sqrt(scale) (capped below at 16) so feature-transfer
// cost stays in realistic proportion to structure-transfer cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/generators.hpp"
#include "graph/csr_graph.hpp"
#include "graph/features.hpp"
#include "util/rng.hpp"

namespace splpg::data {

struct DatasetConfig {
  std::string name;
  graph::NodeId paper_nodes = 0;
  graph::EdgeId paper_edges = 0;
  std::uint32_t paper_features = 0;
  std::uint32_t communities = 16;   // generator granularity
  double intra_prob = 0.85;         // community mixing
  std::uint32_t batch_size = 256;   // paper's default per-dataset batch size
};

struct Dataset {
  std::string name;
  graph::CsrGraph graph;
  graph::FeatureStore features;
  std::vector<std::uint32_t> communities;  // ground-truth generator labels
  std::uint32_t batch_size = 256;
};

/// All nine Table-I configs, in paper order:
/// citeseer, cora, actor, chameleon, pubmed, co_cs, co_physics, collab, ppa.
[[nodiscard]] const std::vector<DatasetConfig>& dataset_registry();

/// Lookup by name; throws std::out_of_range for unknown names.
[[nodiscard]] const DatasetConfig& dataset_config(const std::string& name);

/// Materializes the synthetic stand-in for `config` at the given scale.
/// Deterministic in (config, scale, seed).
[[nodiscard]] Dataset make_dataset(const DatasetConfig& config, double scale,
                                   std::uint64_t seed);

/// Convenience: by-name creation.
[[nodiscard]] Dataset make_dataset(const std::string& name, double scale, std::uint64_t seed);

}  // namespace splpg::data
