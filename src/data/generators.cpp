#include "data/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace splpg::data {

using graph::CsrGraph;
using graph::EdgeId;
using graph::GraphBuilder;
using graph::NodeId;
using util::AliasTable;
using util::Rng;

CsrGraph generate_sbm(const SbmParams& params, Rng& rng,
                      std::vector<std::uint32_t>* communities) {
  const NodeId n = params.num_nodes;
  const std::uint32_t c = std::max<std::uint32_t>(1, params.num_communities);
  if (n == 0) throw std::invalid_argument("generate_sbm: empty graph");

  // Assign communities round-robin over a shuffled node order so sizes are
  // balanced but membership is random.
  std::vector<std::uint32_t> community(n);
  {
    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), NodeId{0});
    rng.shuffle(std::span<NodeId>(order));
    for (NodeId i = 0; i < n; ++i) community[order[i]] = i % c;
  }

  // Pareto degree weights and per-community alias tables.
  std::vector<double> weight(n);
  for (NodeId v = 0; v < n; ++v) {
    // Pareto(shape) via inverse CDF; x_min = 1.
    const double u = std::max(rng.uniform(), 1e-12);
    weight[v] = std::min(std::pow(u, -1.0 / params.pareto_shape), 1e4);
  }
  std::vector<std::vector<NodeId>> members(c);
  for (NodeId v = 0; v < n; ++v) members[community[v]].push_back(v);
  std::vector<AliasTable> community_alias(c);
  for (std::uint32_t g = 0; g < c; ++g) {
    std::vector<double> w;
    w.reserve(members[g].size());
    for (const NodeId v : members[g]) w.push_back(weight[v]);
    community_alias[g] = AliasTable(w);
  }
  const AliasTable global_alias{std::span<const double>(weight)};

  GraphBuilder builder(n);
  // Local dedup set: O(1) accept/reject per draw (the builder's own dedup
  // would re-sort the pending list on every membership query).
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(params.num_edges * 2);
  auto edge_key = [](NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  };
  const EdgeId target = params.num_edges;
  EdgeId added = 0;
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 50 * target + 1000;
  while (added < target && attempts < max_attempts) {
    ++attempts;
    NodeId u = 0;
    NodeId v = 0;
    if (rng.bernoulli(params.intra_prob)) {
      const auto g = static_cast<std::uint32_t>(rng.uniform_u64(c));
      if (members[g].size() < 2) continue;
      u = members[g][community_alias[g].sample(rng)];
      v = members[g][community_alias[g].sample(rng)];
    } else {
      u = static_cast<NodeId>(global_alias.sample(rng));
      v = static_cast<NodeId>(global_alias.sample(rng));
    }
    if (u == v) continue;
    if (!seen.insert(edge_key(u, v)).second) continue;
    builder.add_edge(u, v);
    ++added;
  }
  if (communities != nullptr) *communities = std::move(community);
  return builder.build();
}

CsrGraph generate_barabasi_albert(NodeId num_nodes, std::uint32_t edges_per_node, Rng& rng) {
  if (num_nodes < 2) throw std::invalid_argument("generate_barabasi_albert: need >= 2 nodes");
  const std::uint32_t m = std::max<std::uint32_t>(1, edges_per_node);

  GraphBuilder builder(num_nodes);
  // Repeated-endpoints list implements preferential attachment in O(1) per
  // draw: sampling a uniform entry is sampling proportional to degree.
  std::vector<NodeId> endpoints;
  const NodeId seed_size = std::min<NodeId>(num_nodes, m + 1);
  for (NodeId v = 1; v < seed_size; ++v) {
    builder.add_edge(v - 1, v);
    endpoints.push_back(v - 1);
    endpoints.push_back(v);
  }
  for (NodeId v = seed_size; v < num_nodes; ++v) {
    std::vector<NodeId> targets;
    std::uint32_t guard = 0;
    while (targets.size() < m && guard < 100 * m) {
      ++guard;
      const NodeId t = endpoints[rng.uniform_u64(endpoints.size())];
      if (t != v && std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (const NodeId t : targets) {
      builder.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return builder.build();
}

CsrGraph generate_erdos_renyi(NodeId num_nodes, EdgeId num_edges, Rng& rng) {
  if (num_nodes < 2) throw std::invalid_argument("generate_erdos_renyi: need >= 2 nodes");
  const auto max_edges =
      static_cast<EdgeId>(num_nodes) * (static_cast<EdgeId>(num_nodes) - 1) / 2;
  if (num_edges > max_edges) {
    throw std::invalid_argument("generate_erdos_renyi: too many edges requested");
  }
  GraphBuilder builder(num_nodes);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  EdgeId added = 0;
  while (added < num_edges) {
    const auto u = static_cast<NodeId>(rng.uniform_u64(num_nodes));
    const auto v = static_cast<NodeId>(rng.uniform_u64(num_nodes));
    if (u == v) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(u, v)) << 32) | std::max(u, v);
    if (!seen.insert(key).second) continue;
    builder.add_edge(u, v);
    ++added;
  }
  return builder.build();
}

CsrGraph generate_watts_strogatz(NodeId num_nodes, std::uint32_t k, double beta, Rng& rng) {
  if (num_nodes < 3) throw std::invalid_argument("generate_watts_strogatz: need >= 3 nodes");
  const std::uint32_t half = std::max<std::uint32_t>(1, k / 2);
  GraphBuilder builder(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    for (std::uint32_t j = 1; j <= half; ++j) {
      NodeId target = (v + j) % num_nodes;
      if (rng.bernoulli(beta)) {
        // Rewire to a uniform random node (possibly creating a duplicate,
        // which the builder collapses — standard WS behaviour approximation).
        target = static_cast<NodeId>(rng.uniform_u64(num_nodes));
      }
      builder.add_edge(v, target);
    }
  }
  return builder.build();
}

graph::FeatureStore generate_features(NodeId num_nodes, std::uint32_t dim,
                                      std::span<const std::uint32_t> communities, double signal,
                                      double noise, Rng& rng) {
  graph::FeatureStore store(num_nodes, dim);
  std::uint32_t num_communities = 0;
  for (const std::uint32_t c : communities) num_communities = std::max(num_communities, c + 1);

  // Community centroids.
  std::vector<float> centroids(static_cast<std::size_t>(num_communities) * dim);
  for (float& x : centroids) x = static_cast<float>(rng.normal(0.0, signal));

  for (NodeId v = 0; v < num_nodes; ++v) {
    const auto row = store.row(v);
    const float* centroid =
        communities.empty() ? nullptr : centroids.data() + static_cast<std::size_t>(communities[v]) * dim;
    for (std::uint32_t d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(rng.normal(0.0, noise)) + (centroid ? centroid[d] : 0.0F);
    }
  }
  return store;
}

}  // namespace splpg::data
