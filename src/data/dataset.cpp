#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace splpg::data {

const std::vector<DatasetConfig>& dataset_registry() {
  // Table I of the paper. Batch sizes follow §V-A: 256 for the DGL datasets,
  // 10240 / 51200 for the OGB datasets (collab / ppa).
  static const std::vector<DatasetConfig> kRegistry = {
      {"citeseer", 3'327, 9'228, 3'703, 12, 0.85, 256},
      {"cora", 2'708, 10'556, 1'433, 10, 0.85, 256},
      {"actor", 7'600, 53'411, 932, 16, 0.70, 256},
      {"chameleon", 2'227, 62'792, 2'325, 8, 0.75, 256},
      {"pubmed", 19'717, 88'651, 500, 20, 0.85, 256},
      {"co_cs", 18'333, 163'788, 6'805, 24, 0.88, 256},
      {"co_physics", 34'493, 495'924, 8'415, 24, 0.88, 256},
      {"collab", 235'868, 1'285'465, 128, 64, 0.90, 10'240},
      {"ppa", 576'289, 30'326'273, 58, 64, 0.90, 51'200},
  };
  return kRegistry;
}

const DatasetConfig& dataset_config(const std::string& name) {
  for (const auto& config : dataset_registry()) {
    if (config.name == name) return config;
  }
  throw std::out_of_range("unknown dataset: " + name);
}

Dataset make_dataset(const DatasetConfig& config, double scale, std::uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("make_dataset: scale must be in (0, 1]");
  }
  util::Rng rng = util::Rng(seed).split("dataset/" + config.name);

  SbmParams params;
  params.num_nodes = std::max<graph::NodeId>(
      64, static_cast<graph::NodeId>(std::llround(config.paper_nodes * scale)));
  params.num_edges = std::max<graph::EdgeId>(
      4 * params.num_nodes,
      static_cast<graph::EdgeId>(std::llround(static_cast<double>(config.paper_edges) * scale)));
  // Cap density: a scaled-down node count cannot host the full edge count.
  const auto max_edges = static_cast<graph::EdgeId>(params.num_nodes) *
                         (static_cast<graph::EdgeId>(params.num_nodes) - 1) / 2;
  params.num_edges = std::min(params.num_edges, max_edges / 4);
  params.num_communities =
      std::max<std::uint32_t>(4, static_cast<std::uint32_t>(std::llround(
                                     config.communities * std::sqrt(scale))));
  params.intra_prob = config.intra_prob;

  Dataset dataset;
  dataset.name = config.name;
  dataset.batch_size =
      std::max<std::uint32_t>(32, static_cast<std::uint32_t>(std::llround(
                                      config.batch_size * std::min(1.0, scale * 4))));
  dataset.graph = generate_sbm(params, rng, &dataset.communities);

  const auto dim = std::max<std::uint32_t>(
      16, static_cast<std::uint32_t>(std::llround(config.paper_features * std::sqrt(scale))));
  dataset.features = generate_features(dataset.graph.num_nodes(), dim, dataset.communities,
                                       /*signal=*/1.0, /*noise=*/0.7, rng);
  return dataset;
}

Dataset make_dataset(const std::string& name, double scale, std::uint64_t seed) {
  return make_dataset(dataset_config(name), scale, seed);
}

}  // namespace splpg::data
