// Synthetic graph generators.
//
// The paper evaluates on nine real datasets (Table I) that we cannot ship;
// these generators produce graphs with the same *relevant* characteristics —
// community structure (so METIS-style partitioning finds low cuts and creates
// the information-loss effects the paper studies), heavy-tailed degrees, and
// node features correlated with communities (so link prediction is actually
// learnable from features + structure).
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"
#include "graph/features.hpp"
#include "util/rng.hpp"

namespace splpg::data {

/// Degree-corrected stochastic block model, the default "citation-like"
/// generator. Draws `num_edges` distinct edges; endpoints are chosen with
/// probability proportional to Pareto(shape) node weights; with probability
/// `intra_prob` both endpoints come from the same community.
struct SbmParams {
  graph::NodeId num_nodes = 1000;
  graph::EdgeId num_edges = 5000;
  std::uint32_t num_communities = 20;
  double intra_prob = 0.8;      // fraction of intra-community edges
  double pareto_shape = 2.5;    // degree heavy-tailedness (smaller = heavier)
};
[[nodiscard]] graph::CsrGraph generate_sbm(const SbmParams& params, util::Rng& rng,
                                           std::vector<std::uint32_t>* communities = nullptr);

/// Barabási–Albert preferential attachment: each new node attaches to
/// `edges_per_node` existing nodes proportionally to degree.
[[nodiscard]] graph::CsrGraph generate_barabasi_albert(graph::NodeId num_nodes,
                                                       std::uint32_t edges_per_node,
                                                       util::Rng& rng);

/// Erdős–Rényi G(n, m): m distinct uniform edges.
[[nodiscard]] graph::CsrGraph generate_erdos_renyi(graph::NodeId num_nodes,
                                                   graph::EdgeId num_edges, util::Rng& rng);

/// Watts–Strogatz ring lattice (each node linked to k nearest neighbors)
/// with rewiring probability beta.
[[nodiscard]] graph::CsrGraph generate_watts_strogatz(graph::NodeId num_nodes, std::uint32_t k,
                                                      double beta, util::Rng& rng);

/// Community-correlated Gaussian features: each community has a centroid
/// drawn N(0, signal^2 I); node features are centroid + N(0, noise^2 I).
/// With no communities (empty span) features are pure noise.
[[nodiscard]] graph::FeatureStore generate_features(graph::NodeId num_nodes, std::uint32_t dim,
                                                    std::span<const std::uint32_t> communities,
                                                    double signal, double noise, util::Rng& rng);

}  // namespace splpg::data
