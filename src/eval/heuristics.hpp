// Classical link-prediction heuristics (§II-A of the paper).
//
// These similarity scores are the pre-GNN baselines the link-prediction
// literature builds on: each assigns a pair (u, v) a score from local (or,
// for Katz, global) structure only — no features, no training. They serve as
// sanity baselines for the GNN pipeline and as components for tests (a GNN
// that loses to common-neighbors on a community graph is broken).
//
// All scorers operate on the TRAIN graph so evaluation is leak-free.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "sampling/edge_split.hpp"

namespace splpg::eval {

class HeuristicScorer {
 public:
  virtual ~HeuristicScorer() = default;

  /// Similarity score for one pair; higher = more likely an edge.
  [[nodiscard]] virtual double score(graph::NodeId u, graph::NodeId v) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Convenience: scores a batch of pairs.
  [[nodiscard]] std::vector<float> score_pairs(
      std::span<const sampling::NodePair> pairs) const;
};

/// |N(u) ∩ N(v)|.
class CommonNeighbors final : public HeuristicScorer {
 public:
  explicit CommonNeighbors(const graph::CsrGraph& graph) : graph_(&graph) {}
  [[nodiscard]] double score(graph::NodeId u, graph::NodeId v) const override;
  [[nodiscard]] std::string name() const override { return "common_neighbors"; }

 private:
  const graph::CsrGraph* graph_;
};

/// |N(u) ∩ N(v)| / |N(u) ∪ N(v)|.
class JaccardIndex final : public HeuristicScorer {
 public:
  explicit JaccardIndex(const graph::CsrGraph& graph) : graph_(&graph) {}
  [[nodiscard]] double score(graph::NodeId u, graph::NodeId v) const override;
  [[nodiscard]] std::string name() const override { return "jaccard"; }

 private:
  const graph::CsrGraph* graph_;
};

/// sum over common neighbors w of 1 / log(deg(w)).
class AdamicAdar final : public HeuristicScorer {
 public:
  explicit AdamicAdar(const graph::CsrGraph& graph) : graph_(&graph) {}
  [[nodiscard]] double score(graph::NodeId u, graph::NodeId v) const override;
  [[nodiscard]] std::string name() const override { return "adamic_adar"; }

 private:
  const graph::CsrGraph* graph_;
};

/// sum over common neighbors w of 1 / deg(w).
class ResourceAllocation final : public HeuristicScorer {
 public:
  explicit ResourceAllocation(const graph::CsrGraph& graph) : graph_(&graph) {}
  [[nodiscard]] double score(graph::NodeId u, graph::NodeId v) const override;
  [[nodiscard]] std::string name() const override { return "resource_allocation"; }

 private:
  const graph::CsrGraph* graph_;
};

/// deg(u) * deg(v).
class PreferentialAttachment final : public HeuristicScorer {
 public:
  explicit PreferentialAttachment(const graph::CsrGraph& graph) : graph_(&graph) {}
  [[nodiscard]] double score(graph::NodeId u, graph::NodeId v) const override;
  [[nodiscard]] std::string name() const override { return "preferential_attachment"; }

 private:
  const graph::CsrGraph* graph_;
};

/// Truncated Katz index: sum_{l=1..max_length} beta^l * (#paths of length l).
/// Computed per query by bounded BFS walks; beta must satisfy beta < 1/lambda_max
/// for the untruncated series to converge, but the truncated sum is always
/// finite.
class KatzIndex final : public HeuristicScorer {
 public:
  KatzIndex(const graph::CsrGraph& graph, double beta = 0.05,
            std::uint32_t max_length = 3);
  [[nodiscard]] double score(graph::NodeId u, graph::NodeId v) const override;
  [[nodiscard]] std::string name() const override { return "katz"; }

 private:
  const graph::CsrGraph* graph_;
  double beta_;
  std::uint32_t max_length_;
};

/// All heuristics over the given graph, in a fixed order.
[[nodiscard]] std::vector<std::unique_ptr<HeuristicScorer>> all_heuristics(
    const graph::CsrGraph& graph);

/// Evaluates one scorer against a link split (same Hits@K/AUC protocol as the
/// GNN evaluator). Returns {hits, auc}.
struct HeuristicResult {
  std::string name;
  double test_hits = 0.0;
  double test_auc = 0.0;
  std::size_t k = 0;
};
[[nodiscard]] HeuristicResult evaluate_heuristic(const HeuristicScorer& scorer,
                                                 const sampling::LinkSplit& split,
                                                 std::size_t k = 0);

}  // namespace splpg::eval
