#include "eval/metrics.hpp"

#include <algorithm>

namespace splpg::eval {

double hits_at_k(std::span<const float> positive_scores, std::span<const float> negative_scores,
                 std::size_t k) {
  if (positive_scores.empty()) return 0.0;
  if (negative_scores.size() < k || k == 0) return 1.0;
  // K-th largest negative score.
  std::vector<float> negatives(negative_scores.begin(), negative_scores.end());
  std::nth_element(negatives.begin(), negatives.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   negatives.end(), std::greater<>());
  const float threshold = negatives[k - 1];
  std::size_t hits = 0;
  for (const float score : positive_scores) {
    if (score > threshold) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(positive_scores.size());
}

double auc(std::span<const float> positive_scores, std::span<const float> negative_scores) {
  if (positive_scores.empty() || negative_scores.empty()) return 0.5;
  // Rank-based computation: sort all scores, sum the ranks of positives.
  std::vector<std::pair<float, int>> scored;
  scored.reserve(positive_scores.size() + negative_scores.size());
  for (const float s : positive_scores) scored.emplace_back(s, 1);
  for (const float s : negative_scores) scored.emplace_back(s, 0);
  std::sort(scored.begin(), scored.end());

  // Average ranks across ties.
  double positive_rank_sum = 0.0;
  std::size_t i = 0;
  while (i < scored.size()) {
    std::size_t j = i;
    while (j < scored.size() && scored[j].first == scored[i].first) ++j;
    const double average_rank = (static_cast<double>(i) + static_cast<double>(j - 1)) / 2.0 + 1.0;
    for (std::size_t t = i; t < j; ++t) {
      if (scored[t].second == 1) positive_rank_sum += average_rank;
    }
    i = j;
  }
  const double np = static_cast<double>(positive_scores.size());
  const double nn = static_cast<double>(negative_scores.size());
  return (positive_rank_sum - np * (np + 1.0) / 2.0) / (np * nn);
}

double accuracy_at_zero(std::span<const float> positive_scores,
                        std::span<const float> negative_scores) {
  const std::size_t total = positive_scores.size() + negative_scores.size();
  if (total == 0) return 0.0;
  std::size_t correct = 0;
  for (const float s : positive_scores) {
    if (s > 0.0F) ++correct;
  }
  for (const float s : negative_scores) {
    if (s <= 0.0F) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace splpg::eval
