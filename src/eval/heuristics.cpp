#include "eval/heuristics.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "eval/metrics.hpp"

namespace splpg::eval {

using graph::CsrGraph;
using graph::NodeId;
using sampling::NodePair;

std::vector<float> HeuristicScorer::score_pairs(std::span<const NodePair> pairs) const {
  std::vector<float> out;
  out.reserve(pairs.size());
  for (const auto& [u, v] : pairs) out.push_back(static_cast<float>(score(u, v)));
  return out;
}

namespace {

/// Walks the two sorted neighbor lists once, invoking `on_common` per shared
/// neighbor. Returns the intersection size.
template <typename Fn>
std::size_t for_each_common_neighbor(const CsrGraph& graph, NodeId u, NodeId v, Fn&& on_common) {
  const auto nu = graph.neighbors(u);
  const auto nv = graph.neighbors(v);
  auto iu = nu.begin();
  auto iv = nv.begin();
  std::size_t count = 0;
  while (iu != nu.end() && iv != nv.end()) {
    if (*iu == *iv) {
      on_common(*iu);
      ++count;
      ++iu;
      ++iv;
    } else if (*iu < *iv) {
      ++iu;
    } else {
      ++iv;
    }
  }
  return count;
}

}  // namespace

double CommonNeighbors::score(NodeId u, NodeId v) const {
  return static_cast<double>(for_each_common_neighbor(*graph_, u, v, [](NodeId) {}));
}

double JaccardIndex::score(NodeId u, NodeId v) const {
  const auto common =
      static_cast<double>(for_each_common_neighbor(*graph_, u, v, [](NodeId) {}));
  const double unioned =
      static_cast<double>(graph_->degree(u)) + graph_->degree(v) - common;
  return unioned > 0.0 ? common / unioned : 0.0;
}

double AdamicAdar::score(NodeId u, NodeId v) const {
  double total = 0.0;
  for_each_common_neighbor(*graph_, u, v, [&](NodeId w) {
    const double degree = graph_->degree(w);
    if (degree > 1.0) total += 1.0 / std::log(degree);
  });
  return total;
}

double ResourceAllocation::score(NodeId u, NodeId v) const {
  double total = 0.0;
  for_each_common_neighbor(*graph_, u, v, [&](NodeId w) {
    const double degree = graph_->degree(w);
    if (degree > 0.0) total += 1.0 / degree;
  });
  return total;
}

double PreferentialAttachment::score(NodeId u, NodeId v) const {
  return static_cast<double>(graph_->degree(u)) * graph_->degree(v);
}

KatzIndex::KatzIndex(const CsrGraph& graph, double beta, std::uint32_t max_length)
    : graph_(&graph), beta_(beta), max_length_(std::max(1U, max_length)) {}

double KatzIndex::score(NodeId u, NodeId v) const {
  // Dynamic programming over walk counts from u: counts[l][w] = number of
  // length-l walks u -> w, kept sparse. Sum beta^l * counts[l][v].
  std::unordered_map<NodeId, double> frontier{{u, 1.0}};
  double total = 0.0;
  double beta_power = 1.0;
  for (std::uint32_t length = 1; length <= max_length_; ++length) {
    beta_power *= beta_;
    std::unordered_map<NodeId, double> next;
    next.reserve(frontier.size() * 4);
    for (const auto& [node, walks] : frontier) {
      for (const NodeId neighbor : graph_->neighbors(node)) {
        next[neighbor] += walks;
      }
    }
    if (const auto it = next.find(v); it != next.end()) {
      total += beta_power * it->second;
    }
    frontier = std::move(next);
    // Guard against explosion on dense graphs: cap the frontier size.
    if (frontier.size() > 200'000) break;
  }
  return total;
}

std::vector<std::unique_ptr<HeuristicScorer>> all_heuristics(const CsrGraph& graph) {
  std::vector<std::unique_ptr<HeuristicScorer>> out;
  out.push_back(std::make_unique<CommonNeighbors>(graph));
  out.push_back(std::make_unique<JaccardIndex>(graph));
  out.push_back(std::make_unique<AdamicAdar>(graph));
  out.push_back(std::make_unique<ResourceAllocation>(graph));
  out.push_back(std::make_unique<PreferentialAttachment>(graph));
  out.push_back(std::make_unique<KatzIndex>(graph));
  return out;
}

HeuristicResult evaluate_heuristic(const HeuristicScorer& scorer,
                                   const sampling::LinkSplit& split, std::size_t k) {
  std::vector<NodePair> positives;
  positives.reserve(split.test_pos.size());
  for (const auto& [u, v] : split.test_pos) positives.push_back({u, v});

  const auto positive_scores = scorer.score_pairs(positives);
  const auto negative_scores = scorer.score_pairs(split.test_neg);

  HeuristicResult result;
  result.name = scorer.name();
  result.k = k != 0 ? k : std::max<std::size_t>(10, split.test_neg.size() / 30);
  result.test_hits = hits_at_k(positive_scores, negative_scores, result.k);
  result.test_auc = auc(positive_scores, negative_scores);
  return result;
}

}  // namespace splpg::eval
