// Link-prediction evaluation metrics.
//
// Hits@K is the paper's headline metric (§V-A, following OGB): the fraction
// of positive test edges whose score ranks above the K-th highest negative
// score. AUC is also provided for cross-checks.
#pragma once

#include <span>
#include <vector>

namespace splpg::eval {

/// Fraction of positives scored strictly above the K-th largest negative
/// score (1.0 if there are fewer than K negatives). Range [0, 1].
[[nodiscard]] double hits_at_k(std::span<const float> positive_scores,
                               std::span<const float> negative_scores, std::size_t k);

/// Area under the ROC curve via the Mann-Whitney U statistic (ties count
/// half). Range [0, 1]; 0.5 = chance.
[[nodiscard]] double auc(std::span<const float> positive_scores,
                         std::span<const float> negative_scores);

/// Classification accuracy at a 0.0-logit threshold.
[[nodiscard]] double accuracy_at_zero(std::span<const float> positive_scores,
                                      std::span<const float> negative_scores);

}  // namespace splpg::eval
