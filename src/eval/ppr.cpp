#include "eval/ppr.hpp"

#include <deque>

namespace splpg::eval {

using graph::NodeId;

PersonalizedPageRank::PersonalizedPageRank(const graph::CsrGraph& graph, double alpha,
                                           double epsilon)
    : graph_(&graph), alpha_(alpha), epsilon_(epsilon) {}

std::unordered_map<NodeId, double> PersonalizedPageRank::ppr_vector(NodeId source) const {
  // Forward push (Andersen-Chung-Lang): maintain estimate p and residual r;
  // push any node whose residual exceeds epsilon * degree.
  std::unordered_map<NodeId, double> estimate;
  std::unordered_map<NodeId, double> residual{{source, 1.0}};
  std::deque<NodeId> queue{source};
  std::unordered_map<NodeId, bool> queued{{source, true}};

  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    queued[v] = false;

    const double r = residual[v];
    const double degree = graph_->degree(v);
    if (degree == 0.0) {
      // Dangling node: absorb the whole residual into the estimate.
      estimate[v] += r;
      residual[v] = 0.0;
      continue;
    }
    if (r < epsilon_ * degree) continue;

    estimate[v] += alpha_ * r;
    residual[v] = 0.0;
    const double push = (1.0 - alpha_) * r / degree;
    for (const NodeId w : graph_->neighbors(v)) {
      residual[w] += push;
      if (!queued[w] && residual[w] >= epsilon_ * std::max<double>(1.0, graph_->degree(w))) {
        queued[w] = true;
        queue.push_back(w);
      }
    }
  }
  return estimate;
}

double PersonalizedPageRank::score(NodeId u, NodeId v) const {
  const auto from_u = ppr_vector(u);
  const auto from_v = ppr_vector(v);
  double total = 0.0;
  if (const auto it = from_u.find(v); it != from_u.end()) total += it->second;
  if (const auto it = from_v.find(u); it != from_v.end()) total += it->second;
  return total;
}

}  // namespace splpg::eval
