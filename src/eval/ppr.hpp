// Personalized PageRank (PPR) link predictor — a global-structure heuristic
// complementing the local neighborhood scores in heuristics.hpp.
//
// score(u, v) = ppr_u(v) + ppr_v(u), where ppr_u is the personalized
// PageRank vector seeded at u, computed with the Andersen-Chung-Lang
// forward-push approximation (sparse, O(1/epsilon) pushes, no global
// iteration) over the train graph.
#pragma once

#include <unordered_map>

#include "eval/heuristics.hpp"

namespace splpg::eval {

class PersonalizedPageRank final : public HeuristicScorer {
 public:
  /// `alpha` is the teleport probability; `epsilon` the push threshold
  /// (residual per degree) — smaller is more accurate and slower.
  PersonalizedPageRank(const graph::CsrGraph& graph, double alpha = 0.15,
                       double epsilon = 1e-4);

  [[nodiscard]] double score(graph::NodeId u, graph::NodeId v) const override;
  [[nodiscard]] std::string name() const override { return "personalized_pagerank"; }

  /// The (approximate) PPR vector seeded at `source`, as a sparse map.
  [[nodiscard]] std::unordered_map<graph::NodeId, double> ppr_vector(
      graph::NodeId source) const;

 private:
  const graph::CsrGraph* graph_;
  double alpha_;
  double epsilon_;
};

}  // namespace splpg::eval
