// Result export: CSV writers for training histories and cross-method
// summaries, so the figures can be re-plotted from bench runs without
// parsing console tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/trainer.hpp"

namespace splpg::core {

/// Per-epoch history of one run:
/// epoch,mean_loss,comm_gigabytes,val_hits,test_hits,test_auc,seconds
/// (-1 sentinels for epochs without evaluation are preserved).
void write_history_csv(std::ostream& out, const TrainResult& result);

/// One row per result:
/// label,method,test_hits,test_auc,eval_k,comm_gigabytes_total,
/// comm_gigabytes_per_epoch,sparsify_seconds,train_seconds,edge_cut,balance
/// `labels` must parallel `results` (e.g. "cora/p=4").
void write_summary_csv(std::ostream& out, const std::vector<std::string>& labels,
                       const std::vector<TrainResult>& results);

/// Per-worker communication breakdown of one run:
/// worker,structure_bytes,feature_bytes,structure_fetches,feature_fetches
void write_worker_comm_csv(std::ostream& out, const TrainResult& result);

}  // namespace splpg::core
