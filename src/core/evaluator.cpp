#include "core/evaluator.hpp"

#include <algorithm>
#include <unordered_map>

#include "sampling/neighbor_sampler.hpp"

namespace splpg::core {

using graph::NodeId;
using sampling::NodePair;

Evaluator::Evaluator(const sampling::LinkSplit& split, const graph::FeatureStore& features,
                     std::vector<std::uint32_t> fanouts, std::size_t k, std::size_t chunk_size,
                     std::uint64_t seed, std::size_t num_threads)
    : split_(&split), features_(&features), fanouts_(std::move(fanouts)), k_(k),
      chunk_size_(std::max<std::size_t>(1, chunk_size)), seed_(seed),
      pool_(num_threads != 1 ? std::make_unique<util::ThreadPool>(num_threads) : nullptr) {}

std::vector<float> Evaluator::score_pairs(const nn::LinkPredictionModel& model,
                                          std::span<const NodePair> pairs) const {
  const util::Rng base_rng = util::Rng(seed_).split("evaluator");
  const sampling::NeighborSampler sampler(fanouts_);
  const std::size_t num_chunks = (pairs.size() + chunk_size_ - 1) / chunk_size_;

  // Each chunk draws from its own pre-split rng stream and writes a disjoint
  // slice of `scores`, so pooled and serial scoring produce identical bytes.
  std::vector<float> scores(pairs.size());
  auto score_chunk = [&](std::size_t chunk) {
    const std::size_t begin = chunk * chunk_size_;
    const std::size_t end = std::min(pairs.size(), begin + chunk_size_);
    util::Rng rng = base_rng.split("chunk", chunk);
    sampling::GraphProvider provider(split_->train_graph);

    std::vector<NodeId> seeds;
    seeds.reserve(2 * (end - begin));
    for (std::size_t i = begin; i < end; ++i) {
      seeds.push_back(pairs[i].u);
      seeds.push_back(pairs[i].v);
    }
    const auto cg = sampler.sample(provider, seeds, rng);

    std::unordered_map<NodeId, std::uint32_t> seed_index;
    const auto seed_nodes = cg.seed_nodes();
    seed_index.reserve(seed_nodes.size() * 2);
    for (std::uint32_t i = 0; i < seed_nodes.size(); ++i) seed_index.emplace(seed_nodes[i], i);

    const auto embeddings = model.encode(cg, *features_);
    std::vector<nn::PairIndex> index_pairs;
    index_pairs.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      index_pairs.push_back({seed_index.at(pairs[i].u), seed_index.at(pairs[i].v)});
    }
    const auto logits = model.score(embeddings, index_pairs);
    for (std::size_t i = 0; i < index_pairs.size(); ++i) {
      scores[begin + i] = logits.value().at(i, 0);
    }
  };
  if (pool_ != nullptr && num_chunks > 1) {
    pool_->parallel_for(0, num_chunks, score_chunk);
  } else {
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) score_chunk(chunk);
  }
  return scores;
}

EvalResult Evaluator::evaluate(const nn::LinkPredictionModel& model) const {
  auto to_pairs = [](std::span<const graph::Edge> edges) {
    std::vector<NodePair> pairs;
    pairs.reserve(edges.size());
    for (const auto& [u, v] : edges) pairs.push_back({u, v});
    return pairs;
  };

  const auto val_pos = score_pairs(model, to_pairs(split_->val_pos));
  const auto val_neg = score_pairs(model, split_->val_neg);
  const auto test_pos = score_pairs(model, to_pairs(split_->test_pos));
  const auto test_neg = score_pairs(model, split_->test_neg);

  EvalResult out;
  out.k = k_ != 0 ? k_ : std::max<std::size_t>(10, split_->test_neg.size() / 30);
  out.val_hits = eval::hits_at_k(val_pos, val_neg, out.k);
  out.test_hits = eval::hits_at_k(test_pos, test_neg, out.k);
  out.val_auc = eval::auc(val_pos, val_neg);
  out.test_auc = eval::auc(test_pos, test_neg);
  return out;
}

}  // namespace splpg::core
