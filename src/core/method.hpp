// The training methods compared in the paper's evaluation.
//
// Each method is a point in a small configuration space: which partitioner
// runs on the master, what a worker stores locally, what the shared memory
// serves remotely, and where negative destinations are drawn from (see
// dist/worker_view.hpp for the policy semantics).
#pragma once

#include <memory>
#include <string>

#include "dist/worker_view.hpp"
#include "partition/partitioner.hpp"

namespace splpg::core {

enum class Method {
  kCentralized,     // single worker, full graph (the accuracy reference)
  kPsgdPa,          // METIS + induced local subgraph, local negatives [32]
  kPsgdPaPlus,      // PSGD-PA + complete data sharing
  kRandomTma,       // random node partitioning [26]
  kRandomTmaPlus,   // RandomTMA + complete data sharing
  kSuperTma,        // METIS mini-clusters randomly grouped [26]
  kSuperTmaPlus,    // SuperTMA + complete data sharing
  kLlcg,            // PSGD-PA + periodic server-side global correction [32]
  kSplpg,           // ours: full neighbors + sparsified remote partitions
  kSplpgPlus,       // SpLPG with complete data sharing (no sparsification)
  kSplpgMinus,      // SpLPG- : full neighbors, NO data sharing (ablation)
  kSplpgMinusMinus, // SpLPG--: induced, NO data sharing (ablation)
};

[[nodiscard]] std::string to_string(Method method);
[[nodiscard]] Method method_from_string(const std::string& name);

/// Worker locality/negative policy for the method.
[[nodiscard]] dist::WorkerPolicy worker_policy(Method method);

/// The partitioner the method's master uses. `super_clusters_per_part`
/// applies to SuperTMA only.
[[nodiscard]] std::unique_ptr<partition::Partitioner> method_partitioner(
    Method method, std::uint32_t super_clusters_per_part);

/// True when the method installs sparsified partition copies (SpLPG only).
[[nodiscard]] bool uses_sparsification(Method method);

/// True for LLCG's server-side correction step.
[[nodiscard]] bool uses_global_correction(Method method);

}  // namespace splpg::core
