#include "core/trainer.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <exception>
#include <filesystem>
#include <memory>
#include <mutex>
#include <queue>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "dist/worker_view.hpp"
#include "nn/checkpoint.hpp"
#include "nn/optimizer.hpp"
#include "sampling/negative_sampler.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "sparsify/sparsifier.hpp"
#include "tensor/parallel.hpp"
#include "util/bounded_queue.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace splpg::core {

using graph::Edge;
using graph::NodeId;
using sampling::NodePair;

namespace {

/// Thrown by a worker when the fault plan schedules its crash. Not an
/// error: the trainer parks the worker, survivors keep going, and the
/// worker is respawned from the latest checkpoint at the epoch boundary.
struct WorkerCrashed {};

/// Stage-1 output of one mini-batch: everything the forward/backward pass
/// needs, with all RNG- and WorkerView-touching work already done. Splitting
/// the batch step here is what lets the pipeline overlap batch i+1's
/// sampling (producer thread) with batch i's compute (worker thread) without
/// perturbing any random stream.
struct PreparedBatch {
  sampling::ComputationGraph cg;
  tensor::Matrix input_features;
  std::vector<nn::PairIndex> pairs;
  std::vector<float> labels;
};

/// Stage 1: negative sampling, seed assembly, k-hop neighbor sampling (on
/// the view's pool when attached), and the feature gather. Consumes `rng` in
/// exactly the serial order; the view's meter/fault state advances here.
PreparedBatch prepare_batch(dist::WorkerView& view,
                            const sampling::NeighborSampler& sampler,
                            const sampling::PerSourceNegativeSampler& negatives,
                            std::span<const Edge> positives, util::Rng& rng) {
  view.begin_batch();

  // Per-source uniform negatives, one per positive (balanced batch, §II-B).
  const std::vector<NodePair> negative_pairs = negatives.sample_for_batch(positives, rng);

  std::vector<NodeId> seeds;
  seeds.reserve(2 * (positives.size() + negative_pairs.size()));
  for (const auto& [u, v] : positives) {
    seeds.push_back(u);
    seeds.push_back(v);
  }
  for (const auto& [u, v] : negative_pairs) {
    seeds.push_back(u);
    seeds.push_back(v);
  }

  PreparedBatch prep;
  prep.cg = sampler.sample(view, seeds, rng, view.pool());
  prep.input_features = view.gather_features(prep.cg.input_nodes());

  std::unordered_map<NodeId, std::uint32_t> seed_index;
  const auto seed_nodes = prep.cg.seed_nodes();
  seed_index.reserve(seed_nodes.size() * 2);
  for (std::uint32_t i = 0; i < seed_nodes.size(); ++i) seed_index.emplace(seed_nodes[i], i);

  prep.pairs.reserve(positives.size() + negative_pairs.size());
  prep.labels.reserve(positives.size() + negative_pairs.size());
  for (const auto& [u, v] : positives) {
    prep.pairs.push_back({seed_index.at(u), seed_index.at(v)});
    prep.labels.push_back(1.0F);
  }
  for (const auto& [u, v] : negative_pairs) {
    prep.pairs.push_back({seed_index.at(u), seed_index.at(v)});
    prep.labels.push_back(0.0F);
  }
  return prep;
}

/// Stage 2: forward, loss, backward. RNG-free and view-free, so it can run
/// while the producer is already sampling the next batch. Returns the loss.
float compute_batch(nn::LinkPredictionModel& model, PreparedBatch prep) {
  const auto embeddings = model.encode(prep.cg, std::move(prep.input_features));
  const auto logits = model.score(embeddings, prep.pairs);
  auto loss = bce_with_logits(logits, prep.labels);
  model.zero_grad();
  loss.backward();
  return loss.item();
}

/// One worker's training step on one mini-batch (both stages). Returns the
/// loss.
float train_batch(dist::WorkerView& view, nn::LinkPredictionModel& model,
                  const sampling::NeighborSampler& sampler,
                  const sampling::PerSourceNegativeSampler& negatives,
                  std::span<const Edge> positives, util::Rng& rng) {
  return compute_batch(model, prepare_batch(view, sampler, negatives, positives, rng));
}

/// One pipeline hand-off: a prepared round (or the reason there isn't one).
struct PipelineItem {
  PreparedBatch prep;
  bool has_batch = false;       // false = the round's batch drew empty
  bool crash = false;           // the fault plan scheduled a crash this round
  std::exception_ptr error;     // a real producer failure
};

/// Bounded queue for pipeline hand-off (util::BoundedQueue, shared with the
/// serving request queue). Capacity caps how far the producer can run ahead
/// (memory bound); cancel() unblocks a producer stuck in push() when the
/// consumer dies early.
using BoundedQueue = util::BoundedQueue<PipelineItem>;

/// Joins the epoch's producer thread on every exit path (normal, injected
/// crash, real error) so it never outlives the queue or the epoch state it
/// captures by reference.
struct ProducerGuard {
  BoundedQueue& queue;
  std::thread& producer;
  ~ProducerGuard() {
    queue.cancel();
    if (producer.joinable()) producer.join();
  }
};

}  // namespace

TrainResult train_link_prediction(const sampling::LinkSplit& split,
                                  const graph::FeatureStore& features,
                                  const TrainConfig& config) {
  const util::Stopwatch total_watch;
  TrainResult result;
  result.method = config.method;

  if (config.sync == dist::SyncMode::kLocalSgd && config.local_steps == 0) {
    throw std::invalid_argument("train_link_prediction: local_steps must be >= 1 under kLocalSgd");
  }

  const std::uint32_t num_workers =
      config.method == Method::kCentralized ? 1 : std::max(1U, config.num_partitions);

  // ---- master: partition ----
  util::Rng master_rng = util::Rng(config.seed).split("master");
  const auto partitioner = method_partitioner(config.method, config.super_clusters_per_part);
  partition::PartitionResult parts =
      partitioner->partition(split.train_graph, num_workers, master_rng);
  result.partition_edge_cut = partition::edge_cut(split.train_graph, parts);
  result.partition_balance = partition::balance(split.train_graph, parts);

  dist::MasterStore store(split.train_graph, &features, std::move(parts));

  // ---- master: sparsify (SpLPG only) ----
  if (uses_sparsification(config.method)) {
    sparsify::SparsifyConfig sparsify_config;
    sparsify_config.alpha = config.alpha;
    sparsify_config.num_threads = config.num_threads;
    const auto sparsifier = sparsify::make_sparsifier(config.sparsifier, sparsify_config);
    std::vector<sparsify::SparsifyStats> stats;
    util::Rng sparsify_rng = util::Rng(config.seed).split("sparsify");
    std::vector<std::uint32_t> assignment(store.graph().num_nodes());
    for (NodeId v = 0; v < store.graph().num_nodes(); ++v) assignment[v] = store.part_of(v);
    const util::Stopwatch sparsify_watch;
    store.set_sparsified(sparsifier->sparsify_partitions(store.graph(), assignment, num_workers,
                                                         sparsify_rng, &stats));
    result.sparsify_seconds = sparsify_watch.seconds();
    for (const auto& s : stats) result.sparsify_cpu_seconds += s.cpu_seconds;
  }

  // ---- master: fault injection ----
  std::unique_ptr<dist::FaultInjector> injector;
  if (!config.faults.empty()) {
    injector = std::make_unique<dist::FaultInjector>(config.faults, config.seed, num_workers);
  }

  // Storage-plane fault injection: installed process-globally for the run so
  // every checkpoint write (AtomicFile) and resume read flows through it —
  // including the ones issued from barrier serial sections on worker threads.
  std::unique_ptr<io::StorageFaultInjector> storage_injector;
  if (!config.storage_faults.empty()) {
    storage_injector =
        std::make_unique<io::StorageFaultInjector>(config.storage_faults, config.seed);
  }
  const io::StorageFaultScope storage_scope(storage_injector.get());

  // ---- master: per-worker state ----
  nn::ModelConfig model_config = config.model;
  if (model_config.in_dim == 0) model_config.in_dim = features.dim();

  const dist::WorkerPolicy policy = worker_policy(config.method);
  std::vector<std::unique_ptr<dist::WorkerView>> views;
  std::vector<std::shared_ptr<nn::LinkPredictionModel>> replicas;
  std::vector<std::unique_ptr<nn::Adam>> optimizers;
  std::vector<std::unique_ptr<sampling::PerSourceNegativeSampler>> negative_samplers;
  // Local-only fallback samplers for degraded batches (permanent fetch
  // failure): same rejection oracle, candidates restricted to the worker's
  // own partition.
  std::vector<std::unique_ptr<sampling::PerSourceNegativeSampler>> fallback_samplers;
  std::vector<std::vector<Edge>> owned;
  views.reserve(num_workers);
  for (std::uint32_t w = 0; w < num_workers; ++w) {
    views.push_back(std::make_unique<dist::WorkerView>(store, w, policy));
    if (injector) views[w]->attach_faults(injector.get(), config.retry);
    replicas.push_back(std::make_shared<nn::LinkPredictionModel>(model_config, config.seed));
    optimizers.push_back(std::make_unique<nn::Adam>(*replicas[w], config.learning_rate));
    // The rejection oracle uses the training graph: a worker always knows the
    // full neighbor list of its own (source) nodes.
    const auto& train_graph = split.train_graph;
    auto candidates = views[w]->negative_candidates();
    auto candidate_weights = sampling::negative_candidate_weights(
        config.negative_distribution, train_graph, candidates);
    negative_samplers.push_back(std::make_unique<sampling::PerSourceNegativeSampler>(
        std::move(candidates),
        [&train_graph](NodeId u, NodeId v) { return train_graph.has_edge(u, v); },
        std::move(candidate_weights)));
    if (injector) {
      auto local_candidates = store.part_nodes(w);
      auto local_weights = sampling::negative_candidate_weights(config.negative_distribution,
                                                               train_graph, local_candidates);
      fallback_samplers.push_back(std::make_unique<sampling::PerSourceNegativeSampler>(
          std::move(local_candidates),
          [&train_graph](NodeId u, NodeId v) { return train_graph.has_edge(u, v); },
          std::move(local_weights)));
    } else {
      fallback_samplers.push_back(nullptr);
    }
    owned.push_back(num_workers == 1
                        ? std::vector<Edge>(split.train_pos.begin(), split.train_pos.end())
                        : views[w]->owned_positive_edges(split.train_pos));
  }

  // Per-worker compute pools (worker_threads != 1): shared by the sampler's
  // chunk fanout picks and, via ComputePoolScope, the row-blocked tensor
  // kernels. One pool per worker keeps the worker streams independent.
  std::vector<std::unique_ptr<util::ThreadPool>> worker_pools(num_workers);
  if (config.worker_threads != 1) {
    for (std::uint32_t w = 0; w < num_workers; ++w) {
      worker_pools[w] = std::make_unique<util::ThreadPool>(config.worker_threads);
      views[w]->attach_pool(worker_pools[w].get());
    }
  }

  const auto fanouts = config.fanouts.empty() ? replicas[0]->default_fanouts() : config.fanouts;
  const sampling::NeighborSampler sampler(fanouts);
  const Evaluator evaluator(split, features, fanouts, config.eval_k, 512, 7,
                            config.num_threads);

  // Synchronization rounds per epoch: every worker participates in every
  // round; workers with fewer owned edges wrap their iterator.
  std::size_t max_owned = 1;
  for (const auto& edges : owned) max_owned = std::max(max_owned, edges.size());
  std::uint32_t rounds = static_cast<std::uint32_t>(
      (max_owned + config.batch_size - 1) / config.batch_size);
  if (config.max_batches_per_epoch > 0) rounds = std::min(rounds, config.max_batches_per_epoch);

  dist::DistContext context(num_workers);
  for (std::uint32_t w = 0; w < num_workers; ++w) context.register_replica(w, replicas[w].get());

  // ---- master: resume ----
  // Restoring parameters AND optimizer moments into every replica makes the
  // resumed run bit-identical to an uninterrupted one (per-epoch worker
  // state is a pure function of (seed, worker, epoch)).
  std::uint32_t start_epoch = 1;
  if (!config.resume_from.empty()) {
    std::string resume_path = config.resume_from;
    if (resume_path == "auto") {
      // Self-healing recovery: newest checkpoint in checkpoint_dir whose
      // structure and checksums validate; corrupt ones are skipped
      // epoch-by-epoch. No valid checkpoint = fresh start, not an error.
      if (config.checkpoint_dir.empty()) {
        throw std::invalid_argument(
            "train_link_prediction: resume_from=\"auto\" requires checkpoint_dir");
      }
      std::uint32_t skipped = 0;
      const auto latest =
          nn::find_latest_valid_checkpoint(config.checkpoint_dir, &skipped);
      result.fault.checkpoints_skipped_invalid += skipped;
      if (skipped > 0) {
        SPLPG_WARN << "auto-resume skipped " << skipped << " corrupt checkpoint(s) in "
                   << config.checkpoint_dir;
      }
      resume_path = latest.has_value() ? latest->state_file : std::string();
    }
    if (!resume_path.empty()) {
      std::uint32_t saved_epoch = 0;
      for (std::uint32_t w = 0; w < num_workers; ++w) {
        saved_epoch = nn::load_train_state_file(resume_path, *replicas[w], *optimizers[w]);
      }
      if (saved_epoch >= config.epochs) {
        throw std::invalid_argument("train_link_prediction: resume_from checkpoint is at epoch " +
                                    std::to_string(saved_epoch) + ", nothing left of the " +
                                    std::to_string(config.epochs) + " configured epochs");
      }
      start_epoch = saved_epoch + 1;
      result.resumed_from_epoch = saved_epoch;
    }
  }

  // ---- master: communication regime ----
  // The hook is installed AFTER replica registration and any checkpoint
  // restore: for compressing hooks set_comm_hook snapshots the current
  // (possibly resumed) parameters as the reference model that compressed
  // model averaging sends deltas against. A kNone hook is installed too so
  // the dense baseline's sync payload is metered for regime comparisons —
  // its collective arithmetic is byte-for-byte the hook-free path.
  if (num_workers > 1) {
    dist::CommHookOptions hook_options;
    hook_options.topk_fraction = config.topk_fraction;
    context.set_comm_hook(dist::make_comm_hook(config.comm_hook, hook_options, num_workers));
    for (std::uint32_t w = 0; w < num_workers; ++w) {
      context.attach_meter(w, &views[w]->meter());
    }
  }

  // ---- master: checkpointing ----
  // The latest full train state (parameters + optimizer moments + epoch) is
  // kept serialized in memory for crash recovery; on-disk copies are written
  // when checkpoint_dir is set. Written only by the master (before spawning)
  // and by barrier serial sections.
  std::atomic<bool> stop_requested{false};
  std::string checkpoint_buffer;
  auto write_checkpoint = [&](std::uint32_t src, std::uint32_t epoch) {
    std::ostringstream out;
    nn::save_train_state(out, *replicas[src], *optimizers[src], epoch);
    checkpoint_buffer = out.str();
    if (config.checkpoint_dir.empty()) return;
    try {
      std::filesystem::create_directories(config.checkpoint_dir);
      nn::save_parameters_file(nn::checkpoint_model_file(config.checkpoint_dir, epoch),
                               *replicas[src]);
      nn::save_train_state_file(nn::checkpoint_state_file(config.checkpoint_dir, epoch),
                                *replicas[src], *optimizers[src], epoch);
      if (config.keep_checkpoints > 0) {
        (void)nn::gc_checkpoints(config.checkpoint_dir, config.keep_checkpoints);
      }
      nn::write_checkpoint_manifest(config.checkpoint_dir);
    } catch (const io::SimulatedCrash&) {
      // Simulated machine death: must kill the run, never be healed. The
      // stop is published here, INSIDE the barrier's serial section, so the
      // workers released by this exception all see it before starting
      // another epoch — a dead machine writes no further checkpoints.
      stop_requested.store(true);
      throw;
    } catch (const std::exception& error) {
      // Self-healing: a failed checkpoint write (full disk, failed rename)
      // degrades durability, not training — the in-memory checkpoint_buffer
      // still holds this state for crash recovery, and AtomicFile guarantees
      // the previous on-disk checkpoint survived intact.
      ++result.fault.checkpoint_write_failures;
      SPLPG_WARN << "checkpoint write for epoch " << epoch
                 << " failed (training continues): " << error.what();
    }
  };
  if (config.checkpoint_every > 0) write_checkpoint(0, start_epoch - 1);

  // Shared per-epoch accumulators (written by workers, read in the barrier's
  // serial section while all other threads are blocked).
  std::vector<double> epoch_loss(num_workers, 0.0);
  std::vector<std::uint64_t> epoch_batches(num_workers, 0);
  std::vector<std::exception_ptr> errors(num_workers);
  result.per_worker_comm.assign(num_workers, dist::CommStats{});
  result.per_worker_fault.assign(num_workers, dist::FaultStats{});
  std::uint32_t evaluations_since_best = 0;  // serial-section only
  // Which replica the most recent evaluation scored (serial-section only,
  // read by the master after join). After a worker-0 crash the survivors'
  // replica and a checkpoint-restored replicas[0] can disagree, so the
  // returned model must be the evaluated one.
  std::uint32_t final_eval_worker = 0;

  // Crash/recovery coordination. A crashed worker publishes its crash,
  // leaves the collectives, and parks until the epoch-boundary serial
  // section restores its replica from the latest checkpoint and rejoins it
  // (or training ends).
  const auto crash_pending = std::make_unique<std::atomic<bool>[]>(num_workers);
  for (std::uint32_t w = 0; w < num_workers; ++w) crash_pending[w].store(false);
  std::mutex recovery_mutex;
  std::condition_variable recovery_cv;
  std::vector<std::uint32_t> resume_epoch(num_workers, 0);
  bool training_done = false;  // guarded by recovery_mutex

  // First worker still participating in collectives — the replica used for
  // evaluation, checkpoints, and LLCG correction (worker 0 on a fault-free
  // run).
  auto first_active = [&context]() -> std::uint32_t {
    for (std::uint32_t w = 0; w < context.num_workers(); ++w) {
      if (context.is_active(w)) return w;
    }
    return 0;
  };

  auto worker_main = [&](std::uint32_t w) {
    try {
      // Route this thread's tensor kernels through the worker's pool (no-op
      // when worker_threads == 1). Scheduling only — bytes are unchanged.
      const tensor::ComputePoolScope compute_scope(worker_pools[w].get());
      util::Rng worker_rng = util::Rng(config.seed).split("worker", w);
      sampling::BatchIterator batches(owned[w], config.batch_size);

      std::uint32_t epoch = start_epoch;
      while (epoch <= config.epochs) {
        const util::Stopwatch epoch_watch;
        util::Rng rng = worker_rng.split("epoch", epoch);
        // Reshuffle per epoch from an epoch-indexed stream: all within-epoch
        // randomness is a pure function of (seed, worker, epoch), which is
        // what makes checkpoint resume (and crash recovery) bit-exact.
        util::Rng shuffle_rng = worker_rng.split("shuffle", epoch);
        batches.reset(shuffle_rng);
        epoch_loss[w] = 0.0;
        epoch_batches[w] = 0;
        // Local-SGD: rounds since the last global correction. Every worker
        // runs the same `rounds` count per epoch, so the counters advance in
        // lockstep and all workers reach each average_models() together.
        std::uint32_t steps_since_sync = 0;

        // Stage 1 of one round: crash check, batch draw, and batch
        // preparation (with the degraded-batch fallback on permanent fetch
        // failure). Shared verbatim by the serial loop and the pipeline
        // producer so both execute identical statements in identical order —
        // the basis of the pipeline's bit-identity.
        auto produce_round = [&](std::uint32_t round) {
          PipelineItem item;
          if (injector && injector->crash_due(w, epoch, round)) {
            item.crash = true;
            return item;
          }
          std::vector<Edge> batch = batches.next();
          if (batch.empty()) {
            batches.reset(shuffle_rng);
            batch = batches.next();
          }
          if (!batch.empty()) {
            try {
              item.prep =
                  prepare_batch(*views[w], sampler, *negative_samplers[w], batch, rng);
            } catch (const dist::RemoteFetchError&) {
              // Permanent fetch failure: finish the batch on local data
              // (local negative candidates, no remote reads) instead of
              // aborting the worker.
              ++views[w]->meter().faults().degraded_batches;
              views[w]->set_degraded(true);
              item.prep =
                  prepare_batch(*views[w], sampler, *fallback_samplers[w], batch, rng);
              views[w]->set_degraded(false);
            }
            item.has_batch = true;
          }
          return item;
        };

        // Stage 2 of one round: compute, synchronize, step. Runs on the
        // worker thread in ascending round order in both modes.
        auto consume_round = [&](PipelineItem item) {
          if (item.error) std::rethrow_exception(item.error);
          if (item.crash) throw WorkerCrashed{};
          if (item.has_batch) {
            epoch_loss[w] += compute_batch(*replicas[w], std::move(item.prep));
            ++epoch_batches[w];
          }
          if (config.sync == dist::SyncMode::kGradientAveraging && num_workers > 1) {
            context.all_reduce_gradients();
          }
          optimizers[w]->step();
          if (config.sync == dist::SyncMode::kLocalSgd && num_workers > 1 &&
              ++steps_since_sync >= config.local_steps) {
            context.average_models();
            steps_since_sync = 0;
          }
        };

        try {
          if (config.pipeline_batches > 0) {
            // Two-stage pipeline: a dedicated producer thread runs stage 1
            // for round i+1 (and ahead, up to the queue bound) while this
            // thread runs stage 2 for round i. All RNG and WorkerView state
            // lives in stage 1 on the single producer thread, in serial
            // round order, so the hand-off cannot perturb any stream. A
            // scheduled crash or producer failure is delivered in-order as a
            // marker item; the producer stops at it, and stage 2 raises it
            // after finishing every earlier round — exactly the serial
            // semantics.
            BoundedQueue queue(config.pipeline_batches);
            std::thread producer([&] {
              for (std::uint32_t round = 0; round < rounds; ++round) {
                PipelineItem item;
                try {
                  item = produce_round(round);
                } catch (...) {
                  item.error = std::current_exception();
                }
                const bool stop = item.crash || item.error != nullptr;
                if (!queue.push(std::move(item)) || stop) return;
              }
            });
            const ProducerGuard guard{queue, producer};
            for (std::uint32_t round = 0; round < rounds; ++round) {
              // The consumer pops at most as many items as the producer
              // pushes (it stops at a crash/error marker), so pop() never
              // drains a finished producer dry: value() always holds.
              consume_round(std::move(queue.pop().value()));
            }
          } else {
            for (std::uint32_t round = 0; round < rounds; ++round) {
              consume_round(produce_round(round));
            }
          }
        } catch (const WorkerCrashed&) {
          // Injected crash: publish, leave the collectives (survivors'
          // barriers shrink), and park until the epoch-boundary recovery
          // respawns this worker from the latest checkpoint.
          views[w]->set_degraded(false);
          ++views[w]->meter().faults().crashes;
          crash_pending[w].store(true, std::memory_order_release);
          SPLPG_WARN << "worker " << w << " crashed (injected) in epoch " << epoch;
          context.leave(w);
          std::unique_lock<std::mutex> lock(recovery_mutex);
          recovery_cv.wait(lock, [&] { return training_done || resume_epoch[w] != 0; });
          if (training_done) return;
          epoch = resume_epoch[w];
          resume_epoch[w] = 0;
          continue;
        }

        if (config.sync == dist::SyncMode::kModelAveraging && num_workers > 1) {
          context.average_models();
        }
        // Local-SGD catch-up: when the epoch's round count is not a multiple
        // of H, correct the straggling local steps now so evaluation and
        // checkpoints below always see the synchronized global model.
        if (config.sync == dist::SyncMode::kLocalSgd && num_workers > 1 &&
            steps_since_sync != 0) {
          context.average_models();
          steps_since_sync = 0;
        }

        // LLCG: server-side correction on the full graph, then broadcast.
        if (uses_global_correction(config.method)) {
          context.run_serial([&] {
            const std::uint32_t src = first_active();
            dist::WorkerPolicy central{true, dist::RemoteAdjacency::kNone,
                                       dist::NegativeScope::kGlobal};
            partition::PartitionResult one_part;
            one_part.num_parts = 1;
            one_part.assignment.assign(store.graph().num_nodes(), 0);
            dist::MasterStore central_store(split.train_graph, &features, std::move(one_part));
            dist::WorkerView central_view(central_store, 0, central);
            std::vector<NodeId> all_nodes(store.graph().num_nodes());
            for (NodeId v = 0; v < all_nodes.size(); ++v) all_nodes[v] = v;
            const auto& train_graph = split.train_graph;
            const sampling::PerSourceNegativeSampler central_negatives(
                std::move(all_nodes),
                [&train_graph](NodeId u, NodeId v) { return train_graph.has_edge(u, v); });
            util::Rng correction_rng = util::Rng(config.seed).split("llcg", epoch);
            nn::Sgd corrector(*replicas[src], config.learning_rate);
            std::vector<Edge> train_edges(split.train_pos.begin(), split.train_pos.end());
            sampling::BatchIterator correction_batches(train_edges, config.batch_size);
            correction_batches.reset(correction_rng);
            for (std::uint32_t b = 0; b < config.llcg_correction_batches; ++b) {
              const auto batch = correction_batches.next();
              if (batch.empty()) break;
              train_batch(central_view, *replicas[src], sampler, central_negatives, batch,
                          correction_rng);
              corrector.step();
            }
            for (std::uint32_t other = 0; other < num_workers; ++other) {
              if (other != src && context.is_active(other)) {
                nn::copy_parameters(*replicas[src], *replicas[other]);
              }
            }
          });
        }

        // Epoch bookkeeping, optional evaluation, checkpointing, and crash
        // recovery (single thread; survivors blocked at the barrier).
        context.run_serial([&] {
          EpochRecord record;
          record.epoch = epoch;
          std::uint64_t batches_total = 0;
          for (std::uint32_t i = 0; i < num_workers; ++i) {
            record.mean_loss += epoch_loss[i];
            batches_total += epoch_batches[i];
            const dist::CommStats epoch_comm = views[i]->meter().drain();
            record.comm_gigabytes += epoch_comm.total_gigabytes();
            record.sync_gigabytes += epoch_comm.sync_gigabytes();
            result.comm += epoch_comm;
            result.per_worker_comm[i] += epoch_comm;
            const dist::FaultStats epoch_fault = views[i]->meter().drain_faults();
            result.fault += epoch_fault;
            result.per_worker_fault[i] += epoch_fault;
          }
          record.mean_loss =
              batches_total > 0 ? record.mean_loss / static_cast<double>(batches_total) : 0.0;
          result.total_batches += batches_total;
          record.seconds = epoch_watch.seconds();

          const std::uint32_t src = first_active();
          const bool evaluate_now =
              (config.eval_every > 0 && epoch % config.eval_every == 0) ||
              epoch == config.epochs;
          if (evaluate_now) {
            const EvalResult eval = evaluator.evaluate(*replicas[src]);
            final_eval_worker = src;
            record.val_hits = eval.val_hits;
            record.test_hits = eval.test_hits;
            record.test_auc = eval.test_auc;
            result.eval_k = eval.k;
            if (eval.val_hits > result.best_val_hits) {
              evaluations_since_best = 0;
            } else {
              ++evaluations_since_best;
            }
            if (eval.val_hits >= result.best_val_hits) {
              result.best_val_hits = eval.val_hits;
              result.test_hits = eval.test_hits;
              result.test_auc = eval.test_auc;
            }
            if (config.patience > 0 && evaluations_since_best >= config.patience) {
              stop_requested.store(true);
            }
          }
          result.history.push_back(record);

          // Per-epoch checkpoint of the synchronized survivor state.
          if (config.checkpoint_every > 0 && epoch % config.checkpoint_every == 0) {
            write_checkpoint(src, epoch);
          }

          // Recovery: restore crashed replicas from the latest checkpoint
          // and rejoin them for the next epoch (or release them if training
          // is over).
          const bool final_epoch = epoch >= config.epochs || stop_requested.load();
          {
            std::lock_guard<std::mutex> lock(recovery_mutex);
            for (std::uint32_t i = 0; i < num_workers; ++i) {
              if (!crash_pending[i].load(std::memory_order_acquire)) continue;
              crash_pending[i].store(false, std::memory_order_relaxed);
              // A respawned worker gets a fresh optimizer, then the full
              // checkpointed train state (parameters + Adam moments) is
              // loaded into it — the respawn continues exactly where the
              // checkpoint left off instead of re-warming moments from zero.
              optimizers[i] = std::make_unique<nn::Adam>(*replicas[i], config.learning_rate);
              if (!checkpoint_buffer.empty()) {
                std::istringstream in(checkpoint_buffer);
                nn::load_train_state(in, *replicas[i], *optimizers[i]);
              } else {
                nn::copy_parameters(*replicas[src], *replicas[i]);
              }
              if (!final_epoch) {
                context.rejoin(i);
                resume_epoch[i] = epoch + 1;
                ++result.fault.recoveries;
                ++result.per_worker_fault[i].recoveries;
                SPLPG_INFO << "worker " << i << " respawned from checkpoint after epoch "
                           << epoch;
              }
            }
            if (final_epoch) training_done = true;
          }
          recovery_cv.notify_all();
        });
        if (stop_requested.load()) break;  // early stop: all workers agree
        ++epoch;
      }
    } catch (...) {
      // A real failure (not an injected fault): record it, leave the
      // collectives so survivors cannot deadlock, and request a stop. The
      // master rethrows after all threads have joined. Workers parked for
      // crash recovery are released too — the recovery serial section may
      // never run again (e.g. a simulated machine death mid-checkpoint).
      errors[w] = std::current_exception();
      SPLPG_ERROR << "worker " << w << " failed; dropping from collectives";
      stop_requested.store(true);
      context.leave(w);
      {
        const std::lock_guard<std::mutex> lock(recovery_mutex);
        training_done = true;
      }
      recovery_cv.notify_all();
    }
  };

  if (num_workers == 1) {
    worker_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_workers);
    for (std::uint32_t w = 0; w < num_workers; ++w) threads.emplace_back(worker_main, w);
    for (auto& thread : threads) thread.join();
  }
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  // Normalize by the epochs actually run — early stopping (patience) can end
  // training with history.size() < config.epochs, and dividing by the
  // configured count would understate the per-epoch cost.
  result.comm_gigabytes_per_epoch =
      result.history.empty()
          ? 0.0
          : result.comm.total_gigabytes() / static_cast<double>(result.history.size());
  result.sync_gigabytes_per_epoch =
      result.history.empty()
          ? 0.0
          : result.comm.sync_gigabytes() / static_cast<double>(result.history.size());
  if (storage_injector) {
    const auto storage_stats = storage_injector->stats();
    result.fault.storage_write_faults += storage_stats.write_faults();
    result.fault.storage_read_faults += storage_stats.read_faults();
  }
  result.train_seconds = total_watch.seconds();
  result.model = replicas[final_eval_worker];
  return result;
}

}  // namespace splpg::core
