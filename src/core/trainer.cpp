#include "core/trainer.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <exception>
#include <memory>
#include <thread>
#include <unordered_map>

#include "dist/worker_view.hpp"
#include "nn/optimizer.hpp"
#include "sampling/negative_sampler.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "sparsify/sparsifier.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace splpg::core {

using graph::Edge;
using graph::NodeId;
using sampling::NodePair;

namespace {

/// One worker's training step on one mini-batch. Returns the loss.
float train_batch(dist::WorkerView& view, nn::LinkPredictionModel& model,
                  const sampling::NeighborSampler& sampler,
                  const sampling::PerSourceNegativeSampler& negatives,
                  std::span<const Edge> positives, util::Rng& rng) {
  view.begin_batch();

  // Per-source uniform negatives, one per positive (balanced batch, §II-B).
  const std::vector<NodePair> negative_pairs = negatives.sample_for_batch(positives, rng);

  std::vector<NodeId> seeds;
  seeds.reserve(2 * (positives.size() + negative_pairs.size()));
  for (const auto& [u, v] : positives) {
    seeds.push_back(u);
    seeds.push_back(v);
  }
  for (const auto& [u, v] : negative_pairs) {
    seeds.push_back(u);
    seeds.push_back(v);
  }

  const auto cg = sampler.sample(view, seeds, rng);
  auto input_features = view.gather_features(cg.input_nodes());
  const auto embeddings = model.encode(cg, std::move(input_features));

  std::unordered_map<NodeId, std::uint32_t> seed_index;
  const auto seed_nodes = cg.seed_nodes();
  seed_index.reserve(seed_nodes.size() * 2);
  for (std::uint32_t i = 0; i < seed_nodes.size(); ++i) seed_index.emplace(seed_nodes[i], i);

  std::vector<nn::PairIndex> pairs;
  std::vector<float> labels;
  pairs.reserve(positives.size() + negative_pairs.size());
  labels.reserve(pairs.capacity());
  for (const auto& [u, v] : positives) {
    pairs.push_back({seed_index.at(u), seed_index.at(v)});
    labels.push_back(1.0F);
  }
  for (const auto& [u, v] : negative_pairs) {
    pairs.push_back({seed_index.at(u), seed_index.at(v)});
    labels.push_back(0.0F);
  }

  const auto logits = model.score(embeddings, pairs);
  auto loss = bce_with_logits(logits, labels);
  model.zero_grad();
  loss.backward();
  return loss.item();
}

}  // namespace

TrainResult train_link_prediction(const sampling::LinkSplit& split,
                                  const graph::FeatureStore& features,
                                  const TrainConfig& config) {
  const util::Stopwatch total_watch;
  TrainResult result;
  result.method = config.method;

  const std::uint32_t num_workers =
      config.method == Method::kCentralized ? 1 : std::max(1U, config.num_partitions);

  // ---- master: partition ----
  util::Rng master_rng = util::Rng(config.seed).split("master");
  const auto partitioner = method_partitioner(config.method, config.super_clusters_per_part);
  partition::PartitionResult parts =
      partitioner->partition(split.train_graph, num_workers, master_rng);
  result.partition_edge_cut = partition::edge_cut(split.train_graph, parts);
  result.partition_balance = partition::balance(split.train_graph, parts);

  dist::MasterStore store(split.train_graph, &features, std::move(parts));

  // ---- master: sparsify (SpLPG only) ----
  if (uses_sparsification(config.method)) {
    const auto sparsifier = sparsify::make_sparsifier(config.sparsifier, config.alpha);
    std::vector<sparsify::SparsifyStats> stats;
    util::Rng sparsify_rng = util::Rng(config.seed).split("sparsify");
    std::vector<std::uint32_t> assignment(store.graph().num_nodes());
    for (NodeId v = 0; v < store.graph().num_nodes(); ++v) assignment[v] = store.part_of(v);
    store.set_sparsified(sparsifier->sparsify_partitions(store.graph(), assignment, num_workers,
                                                         sparsify_rng, &stats));
    for (const auto& s : stats) result.sparsify_seconds += s.elapsed_seconds;
  }

  // ---- master: per-worker state ----
  nn::ModelConfig model_config = config.model;
  if (model_config.in_dim == 0) model_config.in_dim = features.dim();

  const dist::WorkerPolicy policy = worker_policy(config.method);
  std::vector<std::unique_ptr<dist::WorkerView>> views;
  std::vector<std::shared_ptr<nn::LinkPredictionModel>> replicas;
  std::vector<std::unique_ptr<nn::Adam>> optimizers;
  std::vector<std::unique_ptr<sampling::PerSourceNegativeSampler>> negative_samplers;
  std::vector<std::vector<Edge>> owned;
  views.reserve(num_workers);
  for (std::uint32_t w = 0; w < num_workers; ++w) {
    views.push_back(std::make_unique<dist::WorkerView>(store, w, policy));
    replicas.push_back(std::make_shared<nn::LinkPredictionModel>(model_config, config.seed));
    optimizers.push_back(std::make_unique<nn::Adam>(*replicas[w], config.learning_rate));
    // The rejection oracle uses the training graph: a worker always knows the
    // full neighbor list of its own (source) nodes.
    const auto& train_graph = split.train_graph;
    auto candidates = views[w]->negative_candidates();
    auto candidate_weights = sampling::negative_candidate_weights(
        config.negative_distribution, train_graph, candidates);
    negative_samplers.push_back(std::make_unique<sampling::PerSourceNegativeSampler>(
        std::move(candidates),
        [&train_graph](NodeId u, NodeId v) { return train_graph.has_edge(u, v); },
        std::move(candidate_weights)));
    owned.push_back(num_workers == 1
                        ? std::vector<Edge>(split.train_pos.begin(), split.train_pos.end())
                        : views[w]->owned_positive_edges(split.train_pos));
  }

  const auto fanouts = config.fanouts.empty() ? replicas[0]->default_fanouts() : config.fanouts;
  const sampling::NeighborSampler sampler(fanouts);
  const Evaluator evaluator(split, features, fanouts, config.eval_k);

  // Synchronization rounds per epoch: every worker participates in every
  // round; workers with fewer owned edges wrap their iterator.
  std::size_t max_owned = 1;
  for (const auto& edges : owned) max_owned = std::max(max_owned, edges.size());
  std::uint32_t rounds = static_cast<std::uint32_t>(
      (max_owned + config.batch_size - 1) / config.batch_size);
  if (config.max_batches_per_epoch > 0) rounds = std::min(rounds, config.max_batches_per_epoch);

  dist::DistContext context(num_workers);
  for (std::uint32_t w = 0; w < num_workers; ++w) context.register_replica(w, replicas[w].get());

  // Shared per-epoch accumulators (written by workers, read in the barrier's
  // serial section while all other threads are blocked).
  std::vector<double> epoch_loss(num_workers, 0.0);
  std::vector<std::uint64_t> epoch_batches(num_workers, 0);
  std::vector<std::exception_ptr> errors(num_workers);
  result.per_worker_comm.assign(num_workers, dist::CommStats{});
  std::atomic<bool> stop_requested{false};
  std::uint32_t evaluations_since_best = 0;  // serial-section only

  auto worker_main = [&](std::uint32_t w) {
    try {
      util::Rng worker_rng = util::Rng(config.seed).split("worker", w);
      sampling::BatchIterator batches(owned[w], config.batch_size);
      util::Rng shuffle_rng = worker_rng.split("shuffle");
      batches.reset(shuffle_rng);

      for (std::uint32_t epoch = 1; epoch <= config.epochs; ++epoch) {
        const util::Stopwatch epoch_watch;
        util::Rng rng = worker_rng.split("epoch", epoch);
        epoch_loss[w] = 0.0;
        epoch_batches[w] = 0;

        for (std::uint32_t round = 0; round < rounds; ++round) {
          std::vector<Edge> batch = batches.next();
          if (batch.empty()) {
            batches.reset(shuffle_rng);
            batch = batches.next();
          }
          if (!batch.empty()) {
            const float loss = train_batch(*views[w], *replicas[w], sampler,
                                           *negative_samplers[w], batch, rng);
            epoch_loss[w] += loss;
            ++epoch_batches[w];
          }
          if (config.sync == dist::SyncMode::kGradientAveraging && num_workers > 1) {
            context.all_reduce_gradients();
          }
          optimizers[w]->step();
        }

        if (config.sync == dist::SyncMode::kModelAveraging && num_workers > 1) {
          context.average_models();
        }

        // LLCG: server-side correction on the full graph, then broadcast.
        if (uses_global_correction(config.method)) {
          context.run_serial([&] {
            dist::WorkerPolicy central{true, dist::RemoteAdjacency::kNone,
                                       dist::NegativeScope::kGlobal};
            partition::PartitionResult one_part;
            one_part.num_parts = 1;
            one_part.assignment.assign(store.graph().num_nodes(), 0);
            dist::MasterStore central_store(split.train_graph, &features, std::move(one_part));
            dist::WorkerView central_view(central_store, 0, central);
            std::vector<NodeId> all_nodes(store.graph().num_nodes());
            for (NodeId v = 0; v < all_nodes.size(); ++v) all_nodes[v] = v;
            const auto& train_graph = split.train_graph;
            const sampling::PerSourceNegativeSampler central_negatives(
                std::move(all_nodes),
                [&train_graph](NodeId u, NodeId v) { return train_graph.has_edge(u, v); });
            util::Rng correction_rng = util::Rng(config.seed).split("llcg", epoch);
            nn::Sgd corrector(*replicas[0], config.learning_rate);
            std::vector<Edge> train_edges(split.train_pos.begin(), split.train_pos.end());
            sampling::BatchIterator correction_batches(train_edges, config.batch_size);
            correction_batches.reset(correction_rng);
            for (std::uint32_t b = 0; b < config.llcg_correction_batches; ++b) {
              const auto batch = correction_batches.next();
              if (batch.empty()) break;
              train_batch(central_view, *replicas[0], sampler, central_negatives, batch,
                          correction_rng);
              corrector.step();
            }
            for (std::uint32_t other = 1; other < num_workers; ++other) {
              nn::copy_parameters(*replicas[0], *replicas[other]);
            }
          });
        }

        // Epoch bookkeeping + optional evaluation (single thread).
        context.run_serial([&] {
          EpochRecord record;
          record.epoch = epoch;
          std::uint64_t batches_total = 0;
          for (std::uint32_t i = 0; i < num_workers; ++i) {
            record.mean_loss += epoch_loss[i];
            batches_total += epoch_batches[i];
            const dist::CommStats epoch_comm = views[i]->meter().drain();
            record.comm_gigabytes += epoch_comm.total_gigabytes();
            result.comm += epoch_comm;
            result.per_worker_comm[i] += epoch_comm;
          }
          record.mean_loss =
              batches_total > 0 ? record.mean_loss / static_cast<double>(batches_total) : 0.0;
          result.total_batches += batches_total;
          record.seconds = epoch_watch.seconds();

          const bool evaluate_now =
              (config.eval_every > 0 && epoch % config.eval_every == 0) ||
              epoch == config.epochs;
          if (evaluate_now) {
            const EvalResult eval = evaluator.evaluate(*replicas[0]);
            record.val_hits = eval.val_hits;
            record.test_hits = eval.test_hits;
            record.test_auc = eval.test_auc;
            result.eval_k = eval.k;
            if (eval.val_hits > result.best_val_hits) {
              evaluations_since_best = 0;
            } else {
              ++evaluations_since_best;
            }
            if (eval.val_hits >= result.best_val_hits) {
              result.best_val_hits = eval.val_hits;
              result.test_hits = eval.test_hits;
              result.test_auc = eval.test_auc;
            }
            if (config.patience > 0 && evaluations_since_best >= config.patience) {
              stop_requested.store(true);
            }
          }
          result.history.push_back(record);
        });
        if (stop_requested.load()) break;  // early stop: all workers agree
      }
    } catch (...) {
      errors[w] = std::current_exception();
      // A failed worker would deadlock the barrier; fail fast instead.
      SPLPG_ERROR << "worker " << w << " failed; aborting training";
      std::terminate();
    }
  };

  if (num_workers == 1) {
    worker_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_workers);
    for (std::uint32_t w = 0; w < num_workers; ++w) threads.emplace_back(worker_main, w);
    for (auto& thread : threads) thread.join();
  }
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  result.comm_gigabytes_per_epoch =
      config.epochs > 0 ? result.comm.total_gigabytes() / config.epochs : 0.0;
  result.train_seconds = total_watch.seconds();
  result.model = replicas[0];
  return result;
}

}  // namespace splpg::core
