#include "core/method.hpp"

#include <stdexcept>

namespace splpg::core {

using dist::NegativeScope;
using dist::RemoteAdjacency;
using dist::WorkerPolicy;

std::string to_string(Method method) {
  switch (method) {
    case Method::kCentralized: return "centralized";
    case Method::kPsgdPa: return "psgd_pa";
    case Method::kPsgdPaPlus: return "psgd_pa+";
    case Method::kRandomTma: return "random_tma";
    case Method::kRandomTmaPlus: return "random_tma+";
    case Method::kSuperTma: return "super_tma";
    case Method::kSuperTmaPlus: return "super_tma+";
    case Method::kLlcg: return "llcg";
    case Method::kSplpg: return "splpg";
    case Method::kSplpgPlus: return "splpg+";
    case Method::kSplpgMinus: return "splpg-";
    case Method::kSplpgMinusMinus: return "splpg--";
  }
  return "unknown";
}

Method method_from_string(const std::string& name) {
  if (name == "centralized") return Method::kCentralized;
  if (name == "psgd_pa") return Method::kPsgdPa;
  if (name == "psgd_pa+") return Method::kPsgdPaPlus;
  if (name == "random_tma") return Method::kRandomTma;
  if (name == "random_tma+") return Method::kRandomTmaPlus;
  if (name == "super_tma") return Method::kSuperTma;
  if (name == "super_tma+") return Method::kSuperTmaPlus;
  if (name == "llcg") return Method::kLlcg;
  if (name == "splpg") return Method::kSplpg;
  if (name == "splpg+") return Method::kSplpgPlus;
  if (name == "splpg-") return Method::kSplpgMinus;
  if (name == "splpg--") return Method::kSplpgMinusMinus;
  throw std::invalid_argument("unknown method: " + name);
}

WorkerPolicy worker_policy(Method method) {
  switch (method) {
    case Method::kCentralized:
      // Single worker owning everything; policy fields are moot but "full
      // local" keeps every read free.
      return {true, RemoteAdjacency::kNone, NegativeScope::kGlobal};
    case Method::kPsgdPa:
    case Method::kRandomTma:
    case Method::kSuperTma:
    case Method::kLlcg:
    case Method::kSplpgMinusMinus:
      return {false, RemoteAdjacency::kNone, NegativeScope::kLocal};
    case Method::kPsgdPaPlus:
    case Method::kRandomTmaPlus:
    case Method::kSuperTmaPlus:
      return {false, RemoteAdjacency::kFull, NegativeScope::kGlobal};
    case Method::kSplpg:
      return {true, RemoteAdjacency::kSparsified, NegativeScope::kGlobal};
    case Method::kSplpgPlus:
      return {true, RemoteAdjacency::kFull, NegativeScope::kGlobal};
    case Method::kSplpgMinus:
      return {true, RemoteAdjacency::kNone, NegativeScope::kLocal};
  }
  throw std::invalid_argument("unknown method");
}

std::unique_ptr<partition::Partitioner> method_partitioner(Method method,
                                                           std::uint32_t super_clusters_per_part) {
  switch (method) {
    case Method::kRandomTma:
    case Method::kRandomTmaPlus:
      return std::make_unique<partition::RandomPartitioner>();
    case Method::kSuperTma:
    case Method::kSuperTmaPlus:
      return std::make_unique<partition::SuperPartitioner>(super_clusters_per_part);
    default:
      return std::make_unique<partition::MetisLikePartitioner>();
  }
}

bool uses_sparsification(Method method) { return method == Method::kSplpg; }

bool uses_global_correction(Method method) { return method == Method::kLlcg; }

}  // namespace splpg::core
