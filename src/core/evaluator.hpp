// Centralized link-prediction evaluation (the paper's protocol).
//
// Scores validation/test positives against their fixed global-uniform
// negative sets using the FULL training graph for message passing, then
// reports Hits@K (and AUC). Evaluation never touches worker views, so it
// adds nothing to the communication meters.
#pragma once

#include <cstdint>
#include <vector>

#include "eval/metrics.hpp"
#include "graph/features.hpp"
#include "nn/model.hpp"
#include "sampling/edge_split.hpp"

namespace splpg::core {

struct EvalResult {
  double val_hits = 0.0;
  double test_hits = 0.0;
  double val_auc = 0.0;
  double test_auc = 0.0;
  std::size_t k = 0;  // the K actually used
};

class Evaluator {
 public:
  /// `k = 0` selects K automatically as max(10, |negatives| / 30) — at the
  /// paper's scale (3x negatives, Hits@100) that matches roughly the top 3%
  /// threshold; at reduced synthetic scale it keeps the metric equally
  /// discriminative.
  Evaluator(const sampling::LinkSplit& split, const graph::FeatureStore& features,
            std::vector<std::uint32_t> fanouts, std::size_t k = 0,
            std::size_t chunk_size = 512, std::uint64_t seed = 7);

  /// Deterministic: the sampling rng is re-seeded per call.
  [[nodiscard]] EvalResult evaluate(const nn::LinkPredictionModel& model) const;

  /// Scores arbitrary node pairs with the model (exposed for examples).
  [[nodiscard]] std::vector<float> score_pairs(const nn::LinkPredictionModel& model,
                                               std::span<const sampling::NodePair> pairs) const;

 private:
  const sampling::LinkSplit* split_;
  const graph::FeatureStore* features_;
  std::vector<std::uint32_t> fanouts_;
  std::size_t k_;
  std::size_t chunk_size_;
  std::uint64_t seed_;
};

}  // namespace splpg::core
