// Centralized link-prediction evaluation (the paper's protocol).
//
// Scores validation/test positives against their fixed global-uniform
// negative sets using the FULL training graph for message passing, then
// reports Hits@K (and AUC). Evaluation never touches worker views, so it
// adds nothing to the communication meters.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "eval/metrics.hpp"
#include "graph/features.hpp"
#include "nn/model.hpp"
#include "sampling/edge_split.hpp"
#include "util/thread_pool.hpp"

namespace splpg::core {

struct EvalResult {
  double val_hits = 0.0;
  double test_hits = 0.0;
  double val_auc = 0.0;
  double test_auc = 0.0;
  std::size_t k = 0;  // the K actually used
};

class Evaluator {
 public:
  /// `k = 0` selects K automatically as max(10, |negatives| / 30) — at the
  /// paper's scale (3x negatives, Hits@100) that matches roughly the top 3%
  /// threshold; at reduced synthetic scale it keeps the metric equally
  /// discriminative.
  ///
  /// `num_threads != 1` scores eval chunks on an internal ThreadPool
  /// (0 = hardware concurrency). Each chunk samples from its own pre-split
  /// RNG stream, so scores are bit-identical at every thread count.
  Evaluator(const sampling::LinkSplit& split, const graph::FeatureStore& features,
            std::vector<std::uint32_t> fanouts, std::size_t k = 0,
            std::size_t chunk_size = 512, std::uint64_t seed = 7,
            std::size_t num_threads = 1);

  /// Deterministic: the sampling rng is re-seeded per call.
  [[nodiscard]] EvalResult evaluate(const nn::LinkPredictionModel& model) const;

  /// Scores arbitrary node pairs with the model (exposed for examples).
  [[nodiscard]] std::vector<float> score_pairs(const nn::LinkPredictionModel& model,
                                               std::span<const sampling::NodePair> pairs) const;

 private:
  const sampling::LinkSplit* split_;
  const graph::FeatureStore* features_;
  std::vector<std::uint32_t> fanouts_;
  std::size_t k_;
  std::size_t chunk_size_;
  std::uint64_t seed_;
  std::unique_ptr<util::ThreadPool> pool_;  // null = serial scoring
};

}  // namespace splpg::core
