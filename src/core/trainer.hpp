// Distributed (and centralized) link-prediction training — Algorithm 1 and
// all baselines/variants of the paper's evaluation.
//
// The master (calling thread) partitions the training graph, optionally
// sparsifies the partitions (SpLPG), builds one WorkerView + model replica +
// optimizer per worker, and launches one OS thread per worker. Workers run
// mini-batch training with per-batch negative sampling and synchronize via
// gradient averaging (every batch) or model averaging (every epoch).
// Everything is deterministic in config.seed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/method.hpp"
#include "dist/comm_meter.hpp"
#include "dist/fault.hpp"
#include "dist/retry.hpp"
#include "dist/sync.hpp"
#include "graph/features.hpp"
#include "io/storage_fault.hpp"
#include "nn/model.hpp"
#include "sampling/edge_split.hpp"
#include "sampling/negative_sampler.hpp"
#include "sparsify/sparsifier.hpp"

namespace splpg::core {

struct TrainConfig {
  Method method = Method::kSplpg;
  nn::ModelConfig model;                     // model.in_dim set from features if 0
  std::uint32_t num_partitions = 4;          // ignored for kCentralized
  std::uint32_t epochs = 10;
  std::uint32_t batch_size = 256;
  float learning_rate = 1e-3F;
  dist::SyncMode sync = dist::SyncMode::kModelAveraging;  // baselines' setting

  // ---- communication-efficient regimes ----
  /// Compression hook applied inside both collectives (gradient all-reduce
  /// and model averaging), in the barrier's serial section so determinism is
  /// unaffected. kNone (default) keeps the collective arithmetic
  /// byte-for-byte identical to the hook-free path and merely meters the
  /// dense payload; kTopK sends the k largest-magnitude entries per tensor
  /// with per-worker error feedback; kInt8 sends per-tensor symmetric
  /// 8-bit quantized payloads. Exact compressed payload bytes land in
  /// CommStats::sync_bytes per worker.
  dist::CommHookKind comm_hook = dist::CommHookKind::kNone;
  /// Fraction of entries kTopK keeps per tensor, in (0, 1]:
  /// k = clamp(ceil(fraction * n), 1, n).
  float topk_fraction = 0.01F;
  /// Local steps H between global corrections under SyncMode::kLocalSgd:
  /// every worker takes H local optimizer steps, then all replicas are
  /// model-averaged (plus a catch-up average at the epoch boundary when the
  /// epoch's round count is not a multiple of H, so evaluation and
  /// checkpoints always see the corrected global model). Must be >= 1;
  /// ignored by the other sync modes. H=1 averages after every batch.
  std::uint32_t local_steps = 1;
  double alpha = 0.15;                       // sparsification level (SpLPG)
  sparsify::SparsifierKind sparsifier = sparsify::SparsifierKind::kEffectiveResistance;
  sampling::NegativeDistribution negative_distribution =
      sampling::NegativeDistribution::kUniform;  // per-source uniform (paper)
  std::uint32_t super_clusters_per_part = 16;
  std::uint32_t max_batches_per_epoch = 0;   // 0 = run the full epoch
  std::uint32_t eval_every = 0;              // 0 = evaluate only after training
  std::size_t eval_k = 0;                    // 0 = auto (see Evaluator)
  std::uint32_t llcg_correction_batches = 8;
  std::vector<std::uint32_t> fanouts;        // empty = model default
  /// Early stopping: stop when validation Hits@K has not improved for this
  /// many evaluations (requires eval_every > 0). 0 = train all epochs (the
  /// paper's protocol: fixed epochs, report test at best validation).
  std::uint32_t patience = 0;

  // ---- fault tolerance ----
  /// Deterministic fault injection (seeded from `seed`). Default: none (a
  /// perfect cluster). Transient fetch failures are retried per `retry`; a
  /// permanently failed fetch degrades that batch to local data; scheduled
  /// worker crashes are recovered from the latest checkpoint at the next
  /// epoch boundary (survivors keep synchronizing meanwhile).
  dist::FaultPlan faults;
  /// Retry/backoff policy every remote fetch flows through when faults are
  /// injected.
  dist::RetryPolicy retry;
  /// Epochs between checkpoints (kept in memory for crash recovery; also
  /// written to `checkpoint_dir` when set). A checkpoint carries the full
  /// training state — model parameters AND optimizer moments — so a
  /// recovered or resumed worker continues exactly where the checkpoint
  /// left off. 0 disables checkpointing — a crashed worker is then restored
  /// by copying a survivor's replica (with fresh moments).
  std::uint32_t checkpoint_every = 1;
  /// Optional directory for on-disk checkpoints. Each checkpointed epoch
  /// writes `model_epoch_<e>.bin` (parameters only, nn::save_parameters_file
  /// format — the servable artifact) and `state_epoch_<e>.bin` (full train
  /// state, nn::save_train_state_file format — the resumable artifact), every
  /// file through io::AtomicFile (a crash mid-write never leaves a torn file
  /// under a final name), plus a self-checksummed MANIFEST naming the
  /// retained epochs. A failed checkpoint write (full disk, failed rename)
  /// is logged and counted in TrainResult::fault.checkpoint_write_failures;
  /// training continues. Empty = in-memory only.
  std::string checkpoint_dir;
  /// Keep-last-K checkpoint retention for `checkpoint_dir`: after each
  /// checkpoint, epochs beyond the newest K are deleted (and orphaned
  /// AtomicFile temporaries swept). 0 = keep every epoch.
  std::uint32_t keep_checkpoints = 0;
  /// Optional resume source. A path to a `state_epoch_<e>.bin` file resumes
  /// from epoch e + 1 with every replica's parameters and optimizer moments
  /// restored from it. The string "auto" scans `checkpoint_dir` (required)
  /// for the newest checkpoint that validates — corrupt or truncated ones
  /// are skipped epoch-by-epoch (counted in
  /// TrainResult::fault.checkpoints_skipped_invalid) — and starts fresh when
  /// none does. With replica-identical optimizer state (gradient averaging,
  /// or a single worker) the resumed run is bit-identical to one that never
  /// stopped; under model averaging per-worker moments differ and resume
  /// restores the checkpointed worker's moments everywhere. Empty = start
  /// from scratch.
  std::string resume_from;
  /// Deterministic storage fault injection (seeded from `seed`): torn
  /// checkpoint writes, ENOSPC, failed renames, on-disk bit flips. Installed
  /// process-globally for the run (io::StorageFaultScope). Default: none.
  io::StorageFaultPlan storage_faults;

  /// Master-side ThreadPool width for the preprocessing and evaluation hot
  /// paths (partition sparsification, evaluation batch scoring). 1 = serial
  /// (default), 0 = hardware concurrency, N = N pool threads. Results are
  /// bit-identical at every setting; worker-thread count is always
  /// `num_partitions` and unaffected by this knob.
  std::size_t num_threads = 1;

  /// Worker-side ThreadPool width for the per-batch hot paths: chunk-parallel
  /// neighbor-fanout sampling and the row-blocked matmul / edge-aggregation
  /// kernels inside forward/backward. Each worker owns its own pool of this
  /// many threads. 1 = serial (default), 0 = hardware concurrency. Results
  /// are bit-identical at every setting (DESIGN.md §6).
  std::size_t worker_threads = 1;

  /// Intra-worker two-stage batch pipeline depth. When > 0, each worker runs
  /// a dedicated producer thread that samples/fetches batch i+1 (buffering up
  /// to this many prepared batches) while the worker thread trains batch i.
  /// 0 = off (default). Bit-identical to the non-pipelined path: the producer
  /// executes exactly the statements (in exactly the order) the serial loop
  /// would, and the consumer processes rounds in order.
  std::uint32_t pipeline_batches = 0;

  std::uint64_t seed = 1;
};

struct EpochRecord {
  std::uint32_t epoch = 0;
  double mean_loss = 0.0;
  double comm_gigabytes = 0.0;  // graph data (structure + features), this epoch
  double sync_gigabytes = 0.0;  // compressed synchronization payload, this epoch
  double val_hits = -1.0;       // -1 when not evaluated this epoch
  double test_hits = -1.0;
  double test_auc = -1.0;
  double seconds = 0.0;
};

struct TrainResult {
  Method method = Method::kCentralized;
  std::vector<EpochRecord> history;

  /// The trained (synchronized) model — the replica the final evaluation
  /// scored (the lowest-indexed surviving worker; worker 0 unless it
  /// crashed). Use with core::Evaluator for serving/inference — re-evaluating
  /// it reproduces `test_hits` exactly.
  std::shared_ptr<nn::LinkPredictionModel> model;

  // Accuracy: test metrics at the best-validation epoch when per-epoch
  // evaluation ran, else from the single final evaluation.
  double best_val_hits = 0.0;
  double test_hits = 0.0;
  double test_auc = 0.0;
  std::size_t eval_k = 0;

  // Communication, summed over all workers and epochs. `comm` carries both
  // the graph-data metric (total_bytes: structure + features — the paper's
  // definition) and the synchronization payload (sync_bytes: exact
  // compressed gradient/model bytes under the configured comm_hook).
  dist::CommStats comm;
  double comm_gigabytes_per_epoch = 0.0;
  /// sync_bytes normalized by the epochs actually run (early stop aware,
  /// like comm_gigabytes_per_epoch).
  double sync_gigabytes_per_epoch = 0.0;
  /// Per-worker totals (same sum as `comm`) — exposes transfer-load
  /// imbalance across workers, which partitioning quality drives.
  std::vector<dist::CommStats> per_worker_comm;

  // Fault outcomes (all zero on a fault-free run): retries, wasted bytes,
  // degraded batches, crashes, checkpoint recoveries, storage faults,
  // simulated fault time. Bit-deterministic in config.seed like everything
  // else.
  dist::FaultStats fault;
  std::vector<dist::FaultStats> per_worker_fault;

  /// Epoch the run resumed from (resume_from path or "auto"); 0 = started
  /// fresh (or resumed from the epoch-0 initial-state checkpoint).
  std::uint32_t resumed_from_epoch = 0;

  // Preprocessing. `sparsify_seconds` is the master's wall-clock spent in
  // sparsify_partitions; `sparsify_cpu_seconds` sums the per-partition thread
  // CPU time, so cpu/wall > 1 indicates pool speedup (cpu ~ wall when
  // num_threads == 1).
  double sparsify_seconds = 0.0;
  double sparsify_cpu_seconds = 0.0;
  graph::EdgeId partition_edge_cut = 0;
  double partition_balance = 1.0;

  double train_seconds = 0.0;
  std::uint64_t total_batches = 0;
};

[[nodiscard]] TrainResult train_link_prediction(const sampling::LinkSplit& split,
                                                const graph::FeatureStore& features,
                                                const TrainConfig& config);

}  // namespace splpg::core
