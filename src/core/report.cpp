#include "core/report.hpp"

#include <ostream>
#include <stdexcept>

namespace splpg::core {

void write_history_csv(std::ostream& out, const TrainResult& result) {
  out << "epoch,mean_loss,comm_gigabytes,val_hits,test_hits,test_auc,seconds\n";
  for (const auto& record : result.history) {
    out << record.epoch << ',' << record.mean_loss << ',' << record.comm_gigabytes << ','
        << record.val_hits << ',' << record.test_hits << ',' << record.test_auc << ','
        << record.seconds << '\n';
  }
}

void write_summary_csv(std::ostream& out, const std::vector<std::string>& labels,
                       const std::vector<TrainResult>& results) {
  if (labels.size() != results.size()) {
    throw std::invalid_argument("write_summary_csv: labels/results arity mismatch");
  }
  out << "label,method,test_hits,test_auc,eval_k,comm_gigabytes_total,"
         "comm_gigabytes_per_epoch,sparsify_seconds,train_seconds,edge_cut,balance\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << labels[i] << ',' << to_string(r.method) << ',' << r.test_hits << ',' << r.test_auc
        << ',' << r.eval_k << ',' << r.comm.total_gigabytes() << ','
        << r.comm_gigabytes_per_epoch << ',' << r.sparsify_seconds << ',' << r.train_seconds
        << ',' << r.partition_edge_cut << ',' << r.partition_balance << '\n';
  }
}

void write_worker_comm_csv(std::ostream& out, const TrainResult& result) {
  out << "worker,structure_bytes,feature_bytes,structure_fetches,feature_fetches\n";
  for (std::size_t w = 0; w < result.per_worker_comm.size(); ++w) {
    const auto& stats = result.per_worker_comm[w];
    out << w << ',' << stats.structure_bytes << ',' << stats.feature_bytes << ','
        << stats.structure_fetches << ',' << stats.feature_fetches << '\n';
  }
}

}  // namespace splpg::core
