// Spectral partitioning via recursive Fiedler-vector bisection.
//
// A classical alternative to multilevel partitioning: split by the sign
// (median) of the second eigenvector of the graph Laplacian, recursing until
// the requested part count is reached. Uses the dense Jacobi eigensolver, so
// it is O(n^3) — a reference/validation partitioner for small graphs, not a
// production path (MetisLikePartitioner is the production path). Included in
// the partitioner ablation bench as a quality yardstick.
#pragma once

#include "partition/partitioner.hpp"

namespace splpg::partition {

class SpectralPartitioner final : public Partitioner {
 public:
  /// Refuses graphs larger than `max_nodes` (eigendecomposition cost guard).
  explicit SpectralPartitioner(graph::NodeId max_nodes = 4000) : max_nodes_(max_nodes) {}

  [[nodiscard]] PartitionResult partition(const graph::CsrGraph& graph, std::uint32_t num_parts,
                                          util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "spectral"; }

 private:
  graph::NodeId max_nodes_;
};

}  // namespace splpg::partition
