#include "partition/partitioner.hpp"

#include "partition/spectral.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "graph/subgraph.hpp"

namespace splpg::partition {

using graph::CsrGraph;
using graph::EdgeId;
using graph::NodeId;
using util::Rng;

std::vector<std::vector<NodeId>> PartitionResult::part_nodes() const {
  std::vector<std::vector<NodeId>> out(num_parts);
  for (NodeId v = 0; v < assignment.size(); ++v) out[assignment[v]].push_back(v);
  return out;
}

std::vector<NodeId> PartitionResult::part_sizes() const {
  std::vector<NodeId> sizes(num_parts, 0);
  for (const std::uint32_t part : assignment) ++sizes[part];
  return sizes;
}

namespace {

/// Weighted working graph used across coarsening levels.
struct WorkGraph {
  // adj[v] = (neighbor, edge weight); deduplicated, no self-loops.
  std::vector<std::vector<std::pair<NodeId, std::int64_t>>> adj;
  std::vector<std::int64_t> node_weight;

  [[nodiscard]] NodeId size() const noexcept { return static_cast<NodeId>(adj.size()); }
  [[nodiscard]] std::int64_t total_weight() const noexcept {
    return std::accumulate(node_weight.begin(), node_weight.end(), std::int64_t{0});
  }
};

WorkGraph from_csr(const CsrGraph& graph) {
  WorkGraph work;
  work.adj.resize(graph.num_nodes());
  work.node_weight.assign(graph.num_nodes(), 1);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const auto neighbors = graph.neighbors(v);
    work.adj[v].reserve(neighbors.size());
    for (const NodeId w : neighbors) work.adj[v].emplace_back(w, 1);
  }
  return work;
}

/// Heavy-edge matching; returns fine -> coarse map and the coarse node count.
std::pair<std::vector<NodeId>, NodeId> heavy_edge_matching(const WorkGraph& work, Rng& rng) {
  const NodeId n = work.size();
  std::vector<NodeId> match(n, graph::kInvalidNode);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  rng.shuffle(std::span<NodeId>(order));

  for (const NodeId v : order) {
    if (match[v] != graph::kInvalidNode) continue;
    NodeId best = graph::kInvalidNode;
    std::int64_t best_weight = -1;
    for (const auto& [w, weight] : work.adj[v]) {
      if (match[w] == graph::kInvalidNode && weight > best_weight) {
        best = w;
        best_weight = weight;
      }
    }
    if (best != graph::kInvalidNode) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // stays single
    }
  }

  std::vector<NodeId> coarse_of(n, graph::kInvalidNode);
  NodeId next = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (coarse_of[v] != graph::kInvalidNode) continue;
    coarse_of[v] = next;
    if (match[v] != v) coarse_of[match[v]] = next;
    ++next;
  }
  return {std::move(coarse_of), next};
}

WorkGraph contract(const WorkGraph& work, const std::vector<NodeId>& coarse_of,
                   NodeId coarse_count) {
  WorkGraph coarse;
  coarse.adj.resize(coarse_count);
  coarse.node_weight.assign(coarse_count, 0);
  for (NodeId v = 0; v < work.size(); ++v) {
    coarse.node_weight[coarse_of[v]] += work.node_weight[v];
  }
  // Aggregate parallel edges with a scratch map per coarse node.
  std::unordered_map<NodeId, std::int64_t> scratch;
  std::vector<std::vector<NodeId>> members(coarse_count);
  for (NodeId v = 0; v < work.size(); ++v) members[coarse_of[v]].push_back(v);
  for (NodeId cv = 0; cv < coarse_count; ++cv) {
    scratch.clear();
    for (const NodeId v : members[cv]) {
      for (const auto& [w, weight] : work.adj[v]) {
        const NodeId cw = coarse_of[w];
        if (cw == cv) continue;  // collapsed edge
        scratch[cw] += weight;
      }
    }
    coarse.adj[cv].assign(scratch.begin(), scratch.end());
    std::sort(coarse.adj[cv].begin(), coarse.adj[cv].end());
  }
  return coarse;
}

/// Greedy region growing on the coarsest graph.
std::vector<std::uint32_t> initial_partition(const WorkGraph& work, std::uint32_t p, Rng& rng) {
  const NodeId n = work.size();
  std::vector<std::uint32_t> part(n, p - 1);  // leftover nodes go to the last part
  std::vector<bool> assigned(n, false);
  const std::int64_t target = (work.total_weight() + p - 1) / p;

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  rng.shuffle(std::span<NodeId>(order));
  std::size_t seed_cursor = 0;

  for (std::uint32_t g = 0; g + 1 < p; ++g) {
    // Find an unassigned seed.
    while (seed_cursor < order.size() && assigned[order[seed_cursor]]) ++seed_cursor;
    if (seed_cursor >= order.size()) break;
    std::deque<NodeId> queue{order[seed_cursor]};
    std::int64_t weight = 0;
    while (weight < target) {
      NodeId v = graph::kInvalidNode;
      while (!queue.empty()) {
        const NodeId candidate = queue.front();
        queue.pop_front();
        if (!assigned[candidate]) {
          v = candidate;
          break;
        }
      }
      if (v == graph::kInvalidNode) {
        // Region exhausted (disconnected graph): restart from a fresh seed.
        while (seed_cursor < order.size() && assigned[order[seed_cursor]]) ++seed_cursor;
        if (seed_cursor >= order.size()) break;
        queue.push_back(order[seed_cursor]);
        continue;
      }
      assigned[v] = true;
      part[v] = g;
      weight += work.node_weight[v];
      for (const auto& [w, edge_weight] : work.adj[v]) {
        (void)edge_weight;
        if (!assigned[w]) queue.push_back(w);
      }
    }
  }
  return part;
}

/// Boundary FM-style refinement: greedy positive-gain moves under balance.
void refine(const WorkGraph& work, std::uint32_t p, double balance_factor,
            std::uint32_t passes, std::vector<std::uint32_t>& part, Rng& rng) {
  const NodeId n = work.size();
  std::vector<std::int64_t> part_weight(p, 0);
  for (NodeId v = 0; v < n; ++v) part_weight[part[v]] += work.node_weight[v];
  const std::int64_t max_weight = static_cast<std::int64_t>(
      std::ceil(balance_factor * static_cast<double>(work.total_weight()) / p));

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::vector<std::int64_t> link(p, 0);

  for (std::uint32_t pass = 0; pass < passes; ++pass) {
    rng.shuffle(std::span<NodeId>(order));
    bool moved_any = false;
    for (const NodeId v : order) {
      if (work.adj[v].empty()) continue;
      std::fill(link.begin(), link.end(), 0);
      bool boundary = false;
      for (const auto& [w, weight] : work.adj[v]) {
        link[part[w]] += weight;
        if (part[w] != part[v]) boundary = true;
      }
      if (!boundary) continue;
      const std::uint32_t from = part[v];
      std::uint32_t best = from;
      std::int64_t best_gain = 0;
      for (std::uint32_t g = 0; g < p; ++g) {
        if (g == from) continue;
        if (part_weight[g] + work.node_weight[v] > max_weight) continue;
        const std::int64_t gain = link[g] - link[from];
        const bool better =
            gain > best_gain ||
            (gain == best_gain && gain > 0 && part_weight[g] < part_weight[best]);
        if (better) {
          best = g;
          best_gain = gain;
        }
      }
      // Also allow zero-gain moves out of overweight parts.
      if (best == from && part_weight[from] > max_weight) {
        std::uint32_t lightest = from;
        for (std::uint32_t g = 0; g < p; ++g) {
          if (part_weight[g] < part_weight[lightest]) lightest = g;
        }
        if (lightest != from) best = lightest;
      }
      if (best != from) {
        part_weight[from] -= work.node_weight[v];
        part_weight[best] += work.node_weight[v];
        part[v] = best;
        moved_any = true;
      }
    }
    if (!moved_any) break;
  }
}

}  // namespace

PartitionResult MetisLikePartitioner::partition(const CsrGraph& graph, std::uint32_t num_parts,
                                                Rng& rng) const {
  if (num_parts == 0) throw std::invalid_argument("partition: num_parts must be >= 1");
  PartitionResult result;
  result.num_parts = num_parts;
  if (graph.num_nodes() == 0) return result;
  if (num_parts == 1) {
    result.assignment.assign(graph.num_nodes(), 0);
    return result;
  }

  // ---- coarsening ----
  std::vector<WorkGraph> levels;
  std::vector<std::vector<NodeId>> maps;  // maps[i]: level i -> level i+1
  levels.push_back(from_csr(graph));
  const NodeId target =
      std::max<NodeId>(64, options_.coarsen_target_per_part * num_parts);
  while (levels.back().size() > target) {
    auto [coarse_of, coarse_count] = heavy_edge_matching(levels.back(), rng);
    if (coarse_count >= levels.back().size() * 95 / 100) break;  // stalled
    WorkGraph coarse = contract(levels.back(), coarse_of, coarse_count);
    maps.push_back(std::move(coarse_of));
    levels.push_back(std::move(coarse));
  }

  // ---- initial partition on the coarsest level ----
  std::vector<std::uint32_t> part = initial_partition(levels.back(), num_parts, rng);
  refine(levels.back(), num_parts, options_.balance_factor, options_.refine_passes * 2, part,
         rng);

  // ---- uncoarsen + refine ----
  for (std::size_t level = levels.size() - 1; level-- > 0;) {
    const auto& coarse_of = maps[level];
    std::vector<std::uint32_t> fine_part(levels[level].size());
    for (NodeId v = 0; v < fine_part.size(); ++v) fine_part[v] = part[coarse_of[v]];
    part = std::move(fine_part);
    refine(levels[level], num_parts, options_.balance_factor, options_.refine_passes, part,
           rng);
  }

  result.assignment = std::move(part);
  return result;
}

PartitionResult RandomPartitioner::partition(const CsrGraph& graph, std::uint32_t num_parts,
                                             Rng& rng) const {
  if (num_parts == 0) throw std::invalid_argument("partition: num_parts must be >= 1");
  PartitionResult result;
  result.num_parts = num_parts;
  result.assignment.resize(graph.num_nodes());
  for (auto& part : result.assignment) {
    part = static_cast<std::uint32_t>(rng.uniform_u64(num_parts));
  }
  return result;
}

PartitionResult SuperPartitioner::partition(const CsrGraph& graph, std::uint32_t num_parts,
                                            Rng& rng) const {
  if (num_parts == 0) throw std::invalid_argument("partition: num_parts must be >= 1");
  const std::uint32_t clusters = std::max<std::uint32_t>(
      num_parts, std::min<std::uint32_t>(clusters_per_part_ * num_parts,
                                         std::max<std::uint32_t>(1, graph.num_nodes() / 2)));
  const MetisLikePartitioner metis;
  const PartitionResult mini = metis.partition(graph, clusters, rng);

  // Random mini-cluster -> partition assignment (each partition gets an equal
  // share of clusters, in shuffled order).
  std::vector<std::uint32_t> cluster_part(clusters);
  for (std::uint32_t cluster = 0; cluster < clusters; ++cluster) {
    cluster_part[cluster] = cluster % num_parts;
  }
  rng.shuffle(std::span<std::uint32_t>(cluster_part));

  PartitionResult result;
  result.num_parts = num_parts;
  result.assignment.resize(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    result.assignment[v] = cluster_part[mini.assignment[v]];
  }
  return result;
}

std::unique_ptr<Partitioner> make_partitioner(const std::string& name) {
  if (name == "metis_like") return std::make_unique<MetisLikePartitioner>();
  if (name == "random_tma") return std::make_unique<RandomPartitioner>();
  if (name == "super_tma") return std::make_unique<SuperPartitioner>();
  if (name == "spectral") return std::make_unique<SpectralPartitioner>();
  throw std::invalid_argument("unknown partitioner: " + name);
}

EdgeId edge_cut(const CsrGraph& graph, const PartitionResult& parts) {
  EdgeId cut = 0;
  for (const auto& [u, v] : graph.edges()) {
    if (parts.assignment[u] != parts.assignment[v]) ++cut;
  }
  return cut;
}

double balance(const CsrGraph& graph, const PartitionResult& parts) {
  if (graph.num_nodes() == 0 || parts.num_parts == 0) return 1.0;
  const auto sizes = parts.part_sizes();
  const auto max_size = *std::max_element(sizes.begin(), sizes.end());
  const double ideal =
      static_cast<double>(graph.num_nodes()) / static_cast<double>(parts.num_parts);
  return static_cast<double>(max_size) / ideal;
}

double degree_discrepancy(const CsrGraph& graph, const PartitionResult& parts) {
  if (graph.num_nodes() == 0) return 0.0;
  const double global_mean = graph.mean_degree();
  if (global_mean == 0.0) return 0.0;

  // Mean degree of each part-induced subgraph: count intra-part edge ends.
  std::vector<double> intra_degree(parts.num_parts, 0.0);
  std::vector<double> part_size(parts.num_parts, 0.0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) part_size[parts.assignment[v]] += 1.0;
  for (const auto& [u, v] : graph.edges()) {
    if (parts.assignment[u] == parts.assignment[v]) {
      intra_degree[parts.assignment[u]] += 2.0;
    }
  }
  double sum_sq = 0.0;
  std::uint32_t counted = 0;
  for (std::uint32_t g = 0; g < parts.num_parts; ++g) {
    if (part_size[g] == 0.0) continue;
    const double mean = intra_degree[g] / part_size[g];
    const double rel = (mean - global_mean) / global_mean;
    sum_sq += rel * rel;
    ++counted;
  }
  return counted == 0 ? 0.0 : std::sqrt(sum_sq / counted);
}

}  // namespace splpg::partition
