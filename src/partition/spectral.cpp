#include "partition/spectral.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "graph/subgraph.hpp"
#include "tensor/eigen.hpp"

namespace splpg::partition {

using graph::CsrGraph;
using graph::NodeId;

namespace {

/// Splits `nodes` (global ids) by the Fiedler vector of the induced
/// subgraph, putting the `left_count` smallest-valued nodes on the left (so
/// uneven part shares stay balanced). Falls back to an arbitrary ordered
/// split when the subgraph is too small or degenerate.
std::pair<std::vector<NodeId>, std::vector<NodeId>> bisect(const CsrGraph& graph,
                                                           const std::vector<NodeId>& nodes,
                                                           std::size_t left_count) {
  const auto sub = graph::induced_subgraph(graph, nodes);
  const NodeId n = sub.graph.num_nodes();

  std::vector<std::pair<double, NodeId>> keyed;  // (fiedler value, global id)
  keyed.reserve(n);
  if (n >= 3 && sub.graph.num_edges() > 0) {
    // Dense combinatorial Laplacian of the induced subgraph.
    tensor::Matrix laplacian(n, n);
    for (const auto& [u, v] : sub.graph.edges()) {
      laplacian.at(u, v) -= 1.0F;
      laplacian.at(v, u) -= 1.0F;
      laplacian.at(u, u) += 1.0F;
      laplacian.at(v, v) += 1.0F;
    }
    const auto decomposition = tensor::symmetric_eigen(laplacian);
    for (NodeId local = 0; local < n; ++local) {
      keyed.emplace_back(decomposition.eigenvectors.at(local, 1), sub.to_global(local));
    }
  } else {
    for (NodeId local = 0; local < n; ++local) {
      keyed.emplace_back(static_cast<double>(local), sub.to_global(local));
    }
  }
  std::sort(keyed.begin(), keyed.end());

  std::pair<std::vector<NodeId>, std::vector<NodeId>> out;
  for (std::size_t i = 0; i < keyed.size(); ++i) {
    (i < left_count ? out.first : out.second).push_back(keyed[i].second);
  }
  return out;
}

}  // namespace

PartitionResult SpectralPartitioner::partition(const CsrGraph& graph, std::uint32_t num_parts,
                                               util::Rng& rng) const {
  (void)rng;  // deterministic; kept for interface symmetry
  if (num_parts == 0) throw std::invalid_argument("partition: num_parts must be >= 1");
  if (graph.num_nodes() > max_nodes_) {
    throw std::invalid_argument("SpectralPartitioner: graph exceeds max_nodes guard");
  }
  PartitionResult result;
  result.num_parts = num_parts;
  result.assignment.assign(graph.num_nodes(), 0);
  if (graph.num_nodes() == 0 || num_parts == 1) return result;

  // Work queue of (node set, parts to carve out of it); recursive bisection
  // assigns ceil/floor shares so any part count is supported.
  struct Task {
    std::vector<NodeId> nodes;
    std::uint32_t parts;
    std::uint32_t first_part;
  };
  std::vector<NodeId> all(graph.num_nodes());
  std::iota(all.begin(), all.end(), NodeId{0});
  std::vector<Task> queue{{std::move(all), num_parts, 0}};

  while (!queue.empty()) {
    Task task = std::move(queue.back());
    queue.pop_back();
    if (task.parts == 1) {
      for (const NodeId v : task.nodes) result.assignment[v] = task.first_part;
      continue;
    }
    const std::uint32_t left_parts = task.parts / 2;
    const std::uint32_t right_parts = task.parts - left_parts;
    // Cut at the point that gives each side a node share proportional to its
    // part share.
    const auto left_count = static_cast<std::size_t>(
        static_cast<double>(task.nodes.size()) * left_parts / task.parts);
    auto [left, right] = bisect(graph, task.nodes, left_count);
    queue.push_back({std::move(left), left_parts, task.first_part});
    queue.push_back({std::move(right), right_parts, task.first_part + left_parts});
  }
  return result;
}

}  // namespace splpg::partition
