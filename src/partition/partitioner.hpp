// Graph partitioning interfaces and the three strategies the paper studies:
//
//  * MetisLikePartitioner — multilevel k-way partitioning in the spirit of
//    METIS [Karypis & Kumar]: heavy-edge-matching coarsening, greedy region-
//    growing initial partitioning on the coarsest graph, and boundary
//    FM/KL-style refinement during uncoarsening. Minimizes edge cut under a
//    balance constraint, which is exactly the property that causes the data-
//    discrepancy and information-loss effects studied in the paper.
//  * RandomPartitioner — RandomTMA [Zhu et al.]: each node independently
//    uniform over partitions.
//  * SuperPartitioner — SuperTMA: METIS-like partitioning into many mini-
//    clusters, each mini-cluster randomly assigned to a partition.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace splpg::partition {

struct PartitionResult {
  std::uint32_t num_parts = 0;
  std::vector<std::uint32_t> assignment;  // node -> part id

  [[nodiscard]] std::vector<std::vector<graph::NodeId>> part_nodes() const;
  [[nodiscard]] std::vector<graph::NodeId> part_sizes() const;
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Splits `graph` into `num_parts` parts. Deterministic given `rng` state.
  [[nodiscard]] virtual PartitionResult partition(const graph::CsrGraph& graph,
                                                  std::uint32_t num_parts,
                                                  util::Rng& rng) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

class MetisLikePartitioner final : public Partitioner {
 public:
  struct Options {
    /// Stop coarsening when the graph has at most max(coarsen_target_per_part
    /// * p, 64) nodes.
    std::uint32_t coarsen_target_per_part = 30;
    /// Maximum allowed part weight as a multiple of the average (1.05 = 5%).
    double balance_factor = 1.05;
    /// Boundary-refinement passes per uncoarsening level.
    std::uint32_t refine_passes = 4;
  };

  MetisLikePartitioner() = default;
  explicit MetisLikePartitioner(Options options) : options_(options) {}

  [[nodiscard]] PartitionResult partition(const graph::CsrGraph& graph, std::uint32_t num_parts,
                                          util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "metis_like"; }

 private:
  Options options_;
};

class RandomPartitioner final : public Partitioner {
 public:
  [[nodiscard]] PartitionResult partition(const graph::CsrGraph& graph, std::uint32_t num_parts,
                                          util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "random_tma"; }
};

class SuperPartitioner final : public Partitioner {
 public:
  /// `clusters_per_part` mini-clusters are created per final partition.
  explicit SuperPartitioner(std::uint32_t clusters_per_part = 16)
      : clusters_per_part_(clusters_per_part) {}

  [[nodiscard]] PartitionResult partition(const graph::CsrGraph& graph, std::uint32_t num_parts,
                                          util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "super_tma"; }

 private:
  std::uint32_t clusters_per_part_;
};

/// Factory by name: "metis_like" | "random_tma" | "super_tma".
[[nodiscard]] std::unique_ptr<Partitioner> make_partitioner(const std::string& name);

// ---- quality metrics (used by tests and the partitioner ablation bench) ----

/// Number of edges whose endpoints land in different parts.
[[nodiscard]] graph::EdgeId edge_cut(const graph::CsrGraph& graph, const PartitionResult& parts);

/// max part size / ideal part size (1.0 = perfectly balanced).
[[nodiscard]] double balance(const graph::CsrGraph& graph, const PartitionResult& parts);

/// Data-discrepancy proxy: root-mean-square relative deviation of per-part
/// mean degree (computed on part-induced subgraphs) from the global mean
/// degree. Low for random partitioning, high for locality-preserving
/// partitioning — the effect [26] attributes the accuracy drop to.
[[nodiscard]] double degree_discrepancy(const graph::CsrGraph& graph,
                                        const PartitionResult& parts);

}  // namespace splpg::partition
