// Deterministic synchronization of worker model replicas.
//
// Mirrors the paper's two options (§IV-B): gradient averaging (PyTorch
// DDP-style all_reduce after every mini-batch) and model averaging (FedAvg-
// style periodic parameter averaging, used by all baselines).
//
// The reduction runs in the *serial section* of a barrier — exactly one
// thread sums in a fixed replica order — so results are bit-identical across
// runs regardless of scheduling.
//
// Membership is elastic: a crashed worker `leave()`s (its replica stops
// contributing and the barrier drops a party, so survivors' collectives
// complete instead of deadlocking), and a recovered worker `rejoin()`s from
// the next phase onward. Reductions always run over the active replicas in
// fixed worker order, so survivor-only results stay bit-deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "nn/module.hpp"
#include "util/barrier.hpp"

namespace splpg::dist {

enum class SyncMode { kGradientAveraging, kModelAveraging };

class DistContext {
 public:
  explicit DistContext(std::uint32_t num_workers);

  [[nodiscard]] std::uint32_t num_workers() const noexcept {
    return static_cast<std::uint32_t>(replicas_.size());
  }

  /// Workers currently participating in collectives.
  [[nodiscard]] std::uint32_t active_workers() const noexcept;
  [[nodiscard]] bool is_active(std::uint32_t worker) const noexcept {
    return active_[worker].load(std::memory_order_acquire);
  }

  /// Registers worker i's model replica. Must be fully done (all workers)
  /// before any synchronization call; replicas must have identical
  /// parameter lists (same construction seed).
  void register_replica(std::uint32_t worker, nn::Module* replica);

  /// Collective: every worker thread calls this after backward(). On return,
  /// every ACTIVE replica's gradients hold the across-active-worker average.
  /// Workers whose replica has no gradient for a parameter contribute zeros.
  void all_reduce_gradients();

  /// Collective: every worker thread calls this at a model-averaging point.
  /// On return, every ACTIVE replica's parameters hold the average.
  void average_models();

  /// Collective: plain barrier (epoch boundaries, evaluation fences).
  void wait_all() { barrier_.arrive_and_wait(); }

  /// Collective: runs `fn` on exactly one thread while the others wait at
  /// the barrier, then releases everyone. Returns true on the executing
  /// thread. Exception-safe: a throwing `fn` releases the others before the
  /// exception propagates on the executor.
  bool run_serial(const std::function<void()>& fn) { return barrier_.arrive_and_wait(fn); }

  /// A crashed/stopping worker leaves the collective: its replica stops
  /// contributing to reductions and the barrier sheds one party, so the
  /// survivors' next collective completes without it.
  void leave(std::uint32_t worker);

  /// Re-admits a recovered worker (replica restored from checkpoint by the
  /// caller). Safe to call from inside a `run_serial` section; the worker
  /// participates from the next phase onward.
  void rejoin(std::uint32_t worker);

 private:
  util::Barrier barrier_;
  std::vector<nn::Module*> replicas_;
  std::unique_ptr<std::atomic<bool>[]> active_;
};

}  // namespace splpg::dist
