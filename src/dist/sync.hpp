// Deterministic synchronization of worker model replicas.
//
// Mirrors the paper's two options (§IV-B) plus a communication-efficient
// regime: gradient averaging (PyTorch DDP-style all_reduce after every
// mini-batch), model averaging (FedAvg-style periodic parameter averaging,
// used by all baselines), and local-SGD (H local steps per worker followed
// by a global model-average correction — "Learn Locally, Correct Globally"
// shaped; the trainer drives the schedule, the collective is the same
// average_models).
//
// The reduction runs in the *serial section* of a barrier — exactly one
// thread sums in a fixed replica order — so results are bit-identical across
// runs regardless of scheduling. An optional CommHook compresses each
// worker's payload inside that same serial section (same fixed order), so
// compressed runs keep the determinism contract; the exact compressed bytes
// are charged to each worker's CommMeter when one is attached.
//
// Membership is elastic: a crashed worker `leave()`s (its replica stops
// contributing and the barrier drops a party, so survivors' collectives
// complete instead of deadlocking), and a recovered worker `rejoin()`s from
// the next phase onward (its error-feedback residuals, if any, are dropped —
// the caller resyncs the replica from the corrected global model).
// Reductions always run over the active replicas in fixed worker order, so
// survivor-only results stay bit-deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "dist/comm_hook.hpp"
#include "dist/comm_meter.hpp"
#include "nn/module.hpp"
#include "util/barrier.hpp"

namespace splpg::dist {

enum class SyncMode { kGradientAveraging, kModelAveraging, kLocalSgd };

[[nodiscard]] const char* to_string(SyncMode mode) noexcept;

class DistContext {
 public:
  explicit DistContext(std::uint32_t num_workers);

  [[nodiscard]] std::uint32_t num_workers() const noexcept {
    return static_cast<std::uint32_t>(replicas_.size());
  }

  /// Workers currently participating in collectives.
  [[nodiscard]] std::uint32_t active_workers() const noexcept;
  [[nodiscard]] bool is_active(std::uint32_t worker) const noexcept {
    return active_[worker].load(std::memory_order_acquire);
  }

  /// Registers worker i's model replica. Must be fully done (all workers)
  /// before any synchronization call; replicas must have identical
  /// parameter lists (same construction seed). Parameter count and
  /// per-parameter shapes are validated against the first registered
  /// replica — a mismatch throws std::invalid_argument naming the worker,
  /// the parameter index, and both shapes.
  void register_replica(std::uint32_t worker, nn::Module* replica);

  /// Installs a compression hook on the collectives. Call after every
  /// replica is registered (and after any checkpoint restore): the hook
  /// snapshot of the current parameters becomes the reference model that
  /// compressed average_models sends deltas against. Pass the kNone hook to
  /// meter dense payload bytes while keeping the collective arithmetic
  /// byte-for-byte identical to the hook-free path.
  void set_comm_hook(std::unique_ptr<CommHook> hook);
  [[nodiscard]] CommHook* comm_hook() const noexcept { return hook_.get(); }

  /// Attaches worker i's CommMeter: each collective charges the worker's
  /// exact serialized (compressed) payload to it via charge_sync. Optional;
  /// without a meter the collective still runs, just unmetered.
  void attach_meter(std::uint32_t worker, CommMeter* meter);

  /// Collective: every worker thread calls this after backward(). On return,
  /// every ACTIVE replica's gradients hold the across-active-worker average
  /// (of the hook-compressed gradients when a compressing hook is set).
  /// Workers whose replica has no gradient for a parameter contribute zeros.
  void all_reduce_gradients();

  /// Collective: every worker thread calls this at a model-averaging point.
  /// On return, every ACTIVE replica's parameters hold the average. With a
  /// compressing hook, each worker sends the compressed delta against the
  /// shared reference model (error feedback carries what compression drops)
  /// and the reference advances to the new average — see DESIGN.md.
  void average_models();

  /// Collective: plain barrier (epoch boundaries, evaluation fences).
  void wait_all() { barrier_.arrive_and_wait(); }

  /// Collective: runs `fn` on exactly one thread while the others wait at
  /// the barrier, then releases everyone. Returns true on the executing
  /// thread. Exception-safe: a throwing `fn` releases the others before the
  /// exception propagates on the executor.
  bool run_serial(const std::function<void()>& fn) { return barrier_.arrive_and_wait(fn); }

  /// A crashed/stopping worker leaves the collective: its replica stops
  /// contributing to reductions and the barrier sheds one party, so the
  /// survivors' next collective completes without it.
  void leave(std::uint32_t worker);

  /// Re-admits a recovered worker (replica restored from checkpoint by the
  /// caller — under compression that checkpoint IS the corrected global
  /// model, so the resynced worker re-enters consistent with the reference).
  /// Safe to call from inside a `run_serial` section; the worker
  /// participates from the next phase onward. Any error-feedback residual
  /// the hook carried for this worker is dropped.
  void rejoin(std::uint32_t worker);

 private:
  [[nodiscard]] nn::Module* first_active_replica() const noexcept;
  void charge(std::uint32_t worker, std::uint64_t bytes);

  util::Barrier barrier_;
  std::vector<nn::Module*> replicas_;
  std::unique_ptr<std::atomic<bool>[]> active_;
  std::vector<CommMeter*> meters_;
  std::unique_ptr<CommHook> hook_;
  /// Reference model for compressed average_models: the last synchronized
  /// global parameters (snapshot at set_comm_hook, advanced after each
  /// compressed average). Serial-section-only state.
  std::vector<tensor::Matrix> global_ref_;
};

}  // namespace splpg::dist
