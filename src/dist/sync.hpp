// Deterministic synchronization of worker model replicas.
//
// Mirrors the paper's two options (§IV-B): gradient averaging (PyTorch
// DDP-style all_reduce after every mini-batch) and model averaging (FedAvg-
// style periodic parameter averaging, used by all baselines).
//
// The reduction runs in the *serial section* of a barrier — exactly one
// thread sums in a fixed replica order — so results are bit-identical across
// runs regardless of scheduling.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.hpp"
#include "util/barrier.hpp"

namespace splpg::dist {

enum class SyncMode { kGradientAveraging, kModelAveraging };

class DistContext {
 public:
  explicit DistContext(std::uint32_t num_workers);

  [[nodiscard]] std::uint32_t num_workers() const noexcept {
    return static_cast<std::uint32_t>(replicas_.size());
  }

  /// Registers worker i's model replica. Must be fully done (all workers)
  /// before any synchronization call; replicas must have identical
  /// parameter lists (same construction seed).
  void register_replica(std::uint32_t worker, nn::Module* replica);

  /// Collective: every worker thread calls this after backward(). On return,
  /// every replica's gradients hold the across-worker average.
  /// Workers whose replica has no gradient for a parameter contribute zeros.
  void all_reduce_gradients();

  /// Collective: every worker thread calls this at a model-averaging point.
  /// On return, every replica's parameters hold the across-worker average.
  void average_models();

  /// Collective: plain barrier (epoch boundaries, evaluation fences).
  void wait_all() { barrier_.arrive_and_wait(); }

  /// Collective: runs `fn` on exactly one thread while the others wait at
  /// the barrier, then releases everyone. Returns true on the executing
  /// thread.
  bool run_serial(const std::function<void()>& fn) { return barrier_.arrive_and_wait(fn); }

 private:
  util::Barrier barrier_;
  std::vector<nn::Module*> replicas_;
};

}  // namespace splpg::dist
