#include "dist/master_store.hpp"

namespace splpg::dist {

using graph::NodeId;

MasterStore::MasterStore(graph::CsrGraph graph, const graph::FeatureStore* features,
                         partition::PartitionResult parts)
    : graph_(std::move(graph)), features_(features), parts_(std::move(parts)) {
  if (parts_.assignment.size() != graph_.num_nodes()) {
    throw std::invalid_argument("MasterStore: assignment size != node count");
  }
  if (features_ != nullptr && features_->num_nodes() != graph_.num_nodes()) {
    throw std::invalid_argument("MasterStore: feature rows != node count");
  }
  part_nodes_ = parts_.part_nodes();

  halo_.assign(parts_.num_parts, {});
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    const std::uint32_t part = parts_.assignment[v];
    for (const NodeId w : graph_.neighbors(v)) {
      if (parts_.assignment[w] != part) halo_[part].push_back(w);
    }
  }
  for (auto& halo : halo_) {
    std::sort(halo.begin(), halo.end());
    halo.erase(std::unique(halo.begin(), halo.end()), halo.end());
  }
}

void MasterStore::set_sparsified(std::vector<graph::CsrGraph> graphs) {
  if (graphs.size() != parts_.num_parts) {
    throw std::invalid_argument("MasterStore: need one sparsified graph per part");
  }
  sparsified_ = std::move(graphs);
}

}  // namespace splpg::dist
