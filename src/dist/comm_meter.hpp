// Communication accounting for the distributed-training simulation.
//
// The paper's efficiency metric (Figures 4, 8, 9, 13) is the cumulative
// amount of *graph data* — structure (adjacency lists) and node features —
// transferred from the master/shared memory to workers during training.
// Every remote read in WorkerView flows through a CommMeter.
//
// Deduplication is per mini-batch: "the features of the same node need to be
// transferred only once per batch" (§V-C, impact of batch size), and the
// same holds for adjacency lists.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "dist/fault.hpp"
#include "graph/csr_graph.hpp"

namespace splpg::dist {

struct CommStats {
  std::uint64_t structure_bytes = 0;  // adjacency data fetched
  std::uint64_t feature_bytes = 0;    // feature rows fetched
  std::uint64_t structure_fetches = 0;  // deduplicated node-adjacency fetches
  std::uint64_t feature_fetches = 0;    // deduplicated feature-row fetches
  std::uint64_t batches = 0;
  /// Synchronization payload this worker SENT: the exact serialized bytes of
  /// its per-parameter gradient/model payloads under the active CommHook
  /// (dense floats for kNone, indices+values for kTopK, bytes+scale for
  /// kInt8). Broadcast receives are not counted. Kept separate from the
  /// graph-data metric: total_bytes() stays structure + features (the
  /// paper's comm-cost definition).
  std::uint64_t sync_bytes = 0;
  std::uint64_t sync_messages = 0;  // per-parameter payloads sent

  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return structure_bytes + feature_bytes;
  }
  [[nodiscard]] double total_gigabytes() const noexcept {
    return static_cast<double>(total_bytes()) / (1024.0 * 1024.0 * 1024.0);
  }
  [[nodiscard]] double sync_gigabytes() const noexcept {
    return static_cast<double>(sync_bytes) / (1024.0 * 1024.0 * 1024.0);
  }

  CommStats& operator+=(const CommStats& other) noexcept {
    structure_bytes += other.structure_bytes;
    feature_bytes += other.feature_bytes;
    structure_fetches += other.structure_fetches;
    feature_fetches += other.feature_fetches;
    batches += other.batches;
    sync_bytes += other.sync_bytes;
    sync_messages += other.sync_messages;
    return *this;
  }
};

class CommMeter {
 public:
  /// Starts a new mini-batch: clears the per-batch dedup sets. Pass
  /// `count = false` when re-running a batch after a degradation (the batch
  /// was already counted; only the dedup state must reset).
  void begin_batch(bool count = true) {
    batch_structure_.clear();
    batch_features_.clear();
    if (count) ++stats_.batches;
  }

  /// True when `v`'s adjacency was already fetched this batch (a repeat read
  /// is served from the batch cache: no RPC, so no fault can be injected).
  [[nodiscard]] bool structure_cached(graph::NodeId v) const {
    return batch_structure_.contains(v);
  }
  [[nodiscard]] bool features_cached(graph::NodeId v) const {
    return batch_features_.contains(v);
  }

  /// Charges a structure fetch for node `v` unless already fetched in this
  /// batch. Returns true when bytes were charged.
  bool charge_structure(graph::NodeId v, std::uint64_t bytes) {
    if (!batch_structure_.insert(v).second) return false;
    stats_.structure_bytes += bytes;
    ++stats_.structure_fetches;
    return true;
  }

  /// Charges a feature-row fetch for node `v` unless already fetched in this
  /// batch. Returns true when bytes were charged.
  bool charge_features(graph::NodeId v, std::uint64_t bytes) {
    if (!batch_features_.insert(v).second) return false;
    stats_.feature_bytes += bytes;
    ++stats_.feature_fetches;
    return true;
  }

  /// Charges one synchronization payload of `bytes` (compressed size under
  /// the active CommHook). Called from the collectives' barrier serial
  /// section — which may run concurrently with this worker's pipeline
  /// producer charging structure/feature fetches, so the hook path must
  /// touch ONLY the sync fields (distinct members; no shared state with the
  /// fetch-side counters or the dedup sets).
  void charge_sync(std::uint64_t bytes) {
    stats_.sync_bytes += bytes;
    ++stats_.sync_messages;
  }

  [[nodiscard]] const CommStats& stats() const noexcept { return stats_; }

  /// Fault outcomes metered alongside the transfer volume (retries, wasted
  /// bytes, degraded batches, simulated latency/backoff).
  [[nodiscard]] FaultStats& faults() noexcept { return fault_stats_; }
  [[nodiscard]] const FaultStats& faults() const noexcept { return fault_stats_; }

  /// Snapshots and clears the counters (per-epoch reporting).
  CommStats drain() {
    CommStats out = stats_;
    stats_ = CommStats{};
    return out;
  }

  FaultStats drain_faults() {
    FaultStats out = fault_stats_;
    fault_stats_ = FaultStats{};
    return out;
  }

 private:
  CommStats stats_;
  FaultStats fault_stats_;
  std::unordered_set<graph::NodeId> batch_structure_;
  std::unordered_set<graph::NodeId> batch_features_;
};

}  // namespace splpg::dist
