// Network cost model: convert metered graph-data transfer into estimated
// wall-clock transfer time for a target deployment.
//
// The paper evaluates single-machine multi-GPU training and notes SpLPG "can
// be easily extended to the multi-machine multi-GPU scenario" — where the
// byte counts the CommMeter records would cross a real network. This model
// prices a CommStats against a link profile (bandwidth + per-fetch latency),
// letting benches report estimated transfer seconds alongside raw bytes.
#pragma once

#include <string>

#include "dist/comm_meter.hpp"
#include "dist/fault.hpp"

namespace splpg::dist {

struct LinkProfile {
  std::string name;
  double bandwidth_bytes_per_sec = 0.0;  // sustained payload bandwidth
  double latency_sec = 0.0;              // per deduplicated fetch (RPC) overhead
};

/// Common deployment points.
[[nodiscard]] LinkProfile pcie_gen4_link();     // single machine, GPU<->host
[[nodiscard]] LinkProfile datacenter_25g();     // multi-machine, 25 GbE
[[nodiscard]] LinkProfile commodity_1g();       // commodity cluster, 1 GbE

struct CostEstimate {
  double transfer_seconds = 0.0;  // bytes / bandwidth
  double latency_seconds = 0.0;   // fetches * latency
  /// Fault overhead: wasted (re-transferred) bytes, failed-attempt RPC
  /// latencies, injected fetch latency, and simulated retry backoff. Zero
  /// for the base (fault-free) estimate.
  double fault_seconds = 0.0;
  [[nodiscard]] double total_seconds() const noexcept {
    return transfer_seconds + latency_seconds + fault_seconds;
  }
};

/// Prices the metered transfer volume on the given link. Fetch count uses
/// the deduplicated structure+feature fetch counters (one RPC each).
[[nodiscard]] CostEstimate estimate_cost(const CommStats& stats, const LinkProfile& link);

/// Fault-aware estimate: adds the cost of injected faults — wasted bytes of
/// failed attempts on the link's bandwidth, one RPC latency per failed
/// attempt, plus the plan's injected latency and retry backoff seconds.
[[nodiscard]] CostEstimate estimate_cost(const CommStats& stats, const FaultStats& faults,
                                         const LinkProfile& link);

}  // namespace splpg::dist
