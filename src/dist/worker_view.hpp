// A worker's view of the graph data, with locality policy and metering.
//
// The policy axes encode every method variant in the paper:
//
//   full_neighbors:  true  -> the worker locally stores the FULL adjacency
//                             list of each of its core nodes (cross-partition
//                             edges kept, Alg. 1 line 3) plus the features of
//                             those 1-hop halo neighbors;
//                    false -> only the part-induced subgraph and core
//                             features are local (PSGD-PA / RandomTMA /
//                             SuperTMA semantics: cross-partition edges are
//                             ignored locally).
//   remote:          what the shared memory serves for NON-core nodes —
//                    nothing (vanilla, no data sharing), the full graph
//                    (the "+" complete data-sharing strategy), or the
//                    sparsified partition copies (SpLPG).
//   negatives:       per-source negative destinations drawn from the entire
//                    node set (global) or only this worker's partition
//                    (local).
//
// Method mapping:
//   PSGD-PA / RandomTMA / SuperTMA : {false, kNone,       kLocal}
//   PSGD-PA+ / RandomTMA+ / SuperTMA+ : {false, kFull,    kGlobal}
//   SpLPG--                        : {false, kNone,       kLocal}
//   SpLPG-                         : {true,  kNone,       kLocal}
//   SpLPG                          : {true,  kSparsified, kGlobal}
//   SpLPG+                         : {true,  kFull,       kGlobal}
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/comm_meter.hpp"
#include "dist/fault.hpp"
#include "dist/master_store.hpp"
#include "dist/retry.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "tensor/matrix.hpp"

namespace splpg::dist {

enum class RemoteAdjacency { kNone, kFull, kSparsified };
enum class NegativeScope { kLocal, kGlobal };

struct WorkerPolicy {
  bool full_neighbors = false;
  RemoteAdjacency remote = RemoteAdjacency::kNone;
  NegativeScope negatives = NegativeScope::kLocal;
};

[[nodiscard]] std::string to_string(const WorkerPolicy& policy);

class WorkerView final : public sampling::AdjacencyProvider {
 public:
  WorkerView(const MasterStore& store, std::uint32_t part, WorkerPolicy policy);

  [[nodiscard]] std::uint32_t part() const noexcept { return part_; }
  [[nodiscard]] const WorkerPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] CommMeter& meter() noexcept { return meter_; }

  /// Attaches a fault injector (shared by all workers, keyed by this view's
  /// part id) and the retry policy its remote fetches flow through. Pass
  /// nullptr to restore the perfect-cluster default.
  void attach_faults(FaultInjector* injector, RetryPolicy retry) {
    injector_ = injector;
    retry_ = retry;
  }

  /// Attaches the worker's compute pool (owned by the trainer). The sampler
  /// uses it for chunk-parallel fanout picks; concurrent_safe() stays false
  /// because append_neighbors itself is stateful (metering dedup, fault
  /// randomness) and must run serially. nullptr restores serial sampling.
  void attach_pool(util::ThreadPool* pool) noexcept { pool_ = pool; }
  [[nodiscard]] util::ThreadPool* pool() const noexcept { return pool_; }

  /// Degraded mode (set by the trainer after a permanent fetch failure, for
  /// the remainder of the batch): remote adjacency behaves as
  /// RemoteAdjacency::kNone and non-local feature rows are served as zeros,
  /// so the batch completes on local data instead of aborting.
  void set_degraded(bool degraded) noexcept { degraded_ = degraded; }
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }

  /// Must be called at every mini-batch boundary (resets fetch dedup and the
  /// per-batch simulated fault-time budget).
  void begin_batch() {
    meter_.begin_batch(!degraded_);
    if (!degraded_) batch_fault_seconds_ = 0.0;
  }

  /// AdjacencyProvider: serves local reads for free and remote reads
  /// according to the policy, charging the meter.
  void append_neighbors(graph::NodeId v, std::vector<graph::NodeId>& neighbors,
                        std::vector<float>& weights) override;

  /// Gathers feature rows for `nodes` (a computational graph's input
  /// frontier), charging the meter for non-local rows. Throws logic_error
  /// (naming the partition, node, and policy) if a non-local row is
  /// requested under RemoteAdjacency::kNone — by construction that cannot
  /// happen for a correctly configured method. In degraded mode, non-local
  /// rows are zero-filled instead of fetched.
  [[nodiscard]] tensor::Matrix gather_features(std::span<const graph::NodeId> nodes);

  /// Destination candidates for per-source negative sampling.
  [[nodiscard]] std::vector<graph::NodeId> negative_candidates() const;

  /// The positive (training) edges this worker trains on.
  ///
  /// Vanilla methods (no data sharing, induced subgraph) only see INTRA-
  /// partition edges — cross-partition edges are lost, which is precisely
  /// the positive-sample information loss of §III. Full-neighbor methods
  /// keep cross edges locally, and data-sharing methods can fetch whatever
  /// they miss; both train on every edge whose first endpoint is core here
  /// (a dedup rule: each cross edge is owned by exactly one worker).
  [[nodiscard]] std::vector<graph::Edge> owned_positive_edges(
      std::span<const graph::Edge> train_edges) const;

  [[nodiscard]] bool is_core(graph::NodeId v) const noexcept {
    return store_->part_of(v) == part_;
  }
  [[nodiscard]] bool is_local_feature(graph::NodeId v) const noexcept {
    return is_core(v) || (policy_.full_neighbors && store_->in_halo(part_, v));
  }

 private:
  /// Simulates the remote RPC for `bytes` of payload under the fault plan,
  /// retrying per the policy. Returns false on permanent failure. No-op
  /// (returns true) without an injector.
  bool remote_fetch_succeeds(std::uint64_t bytes);

  const MasterStore* store_;
  std::uint32_t part_;
  WorkerPolicy policy_;
  CommMeter meter_;
  FaultInjector* injector_ = nullptr;
  util::ThreadPool* pool_ = nullptr;
  RetryPolicy retry_;
  bool degraded_ = false;
  double batch_fault_seconds_ = 0.0;
};

}  // namespace splpg::dist
