#include "dist/comm_hook.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace splpg::dist {

const char* to_string(CommHookKind kind) noexcept {
  switch (kind) {
    case CommHookKind::kNone: return "none";
    case CommHookKind::kTopK: return "topk";
    case CommHookKind::kInt8: return "int8";
  }
  return "?";
}

CommHookKind comm_hook_from_string(const std::string& text) {
  if (text == "none") return CommHookKind::kNone;
  if (text == "topk") return CommHookKind::kTopK;
  if (text == "int8") return CommHookKind::kInt8;
  throw std::invalid_argument("comm_hook_from_string: unknown hook '" + text +
                              "' (want none|topk|int8)");
}

std::size_t topk_keep_count(float fraction, std::size_t n) noexcept {
  if (n == 0) return 0;
  const auto k = static_cast<std::size_t>(
      std::ceil(static_cast<double>(fraction) * static_cast<double>(n)));
  return std::clamp<std::size_t>(k, 1, n);
}

namespace {

/// Identity hook: the collectives bypass compress() for kNone (keeping the
/// pre-hook arithmetic byte-for-byte); compress is still implemented (and
/// unit-tested) as a plain copy so the interface contract holds everywhere.
class NoneHook final : public CommHook {
 public:
  NoneHook() : CommHook(CommHookKind::kNone) {}

  std::uint64_t compress(std::uint32_t /*worker*/, std::size_t /*slot*/,
                         const tensor::Matrix& in, tensor::Matrix& out) override {
    out = in;
    return payload_bytes(in);
  }

  [[nodiscard]] std::uint64_t payload_bytes(const tensor::Matrix& in) const override {
    return static_cast<std::uint64_t>(in.size()) * sizeof(float);
  }
};

/// Magnitude top-k with per-(worker, slot) error feedback. Selection is
/// deterministic: entries ordered by (|value| descending, flat index
/// ascending), so equal magnitudes always resolve the same way.
class TopKHook final : public CommHook {
 public:
  TopKHook(float fraction, std::uint32_t num_workers)
      : CommHook(CommHookKind::kTopK), fraction_(fraction), residuals_(num_workers) {}

  std::uint64_t compress(std::uint32_t worker, std::size_t slot, const tensor::Matrix& in,
                         tensor::Matrix& out) override {
    auto& slots = residuals_.at(worker);
    if (slot >= slots.size()) slots.resize(slot + 1);
    tensor::Matrix& residual = slots[slot];
    if (residual.empty()) residual.resize(in.rows(), in.cols());
    if (!residual.same_shape(in)) {
      throw std::invalid_argument("TopKHook: parameter slot changed shape mid-run");
    }

    // Fold the carried residual into this round's input.
    tensor::Matrix work = in;
    work.add_inplace(residual);

    const std::size_t n = work.size();
    const std::size_t k = topk_keep_count(fraction_, n);
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), std::size_t{0});
    const auto values = work.data();
    const auto by_magnitude = [values](std::size_t a, std::size_t b) {
      const float ma = std::fabs(values[a]);
      const float mb = std::fabs(values[b]);
      if (ma != mb) return ma > mb;
      return a < b;
    };
    std::nth_element(order_.begin(), order_.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     order_.end(), by_magnitude);
    // nth_element leaves the kept prefix unordered, which is fine: the kept
    // SET is what the comparator's total order pins down deterministically.

    // Kept entries are copied verbatim into `out`; everything else is the
    // new residual. Bitwise: out + residual == work, entry by entry.
    out.resize(in.rows(), in.cols());
    residual = std::move(work);
    auto out_data = out.data();
    auto residual_data = residual.data();
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t flat = order_[i];
      out_data[flat] = residual_data[flat];
      residual_data[flat] = 0.0F;
    }
    return static_cast<std::uint64_t>(k) * (sizeof(std::uint32_t) + sizeof(float));
  }

  [[nodiscard]] std::uint64_t payload_bytes(const tensor::Matrix& in) const override {
    return static_cast<std::uint64_t>(topk_keep_count(fraction_, in.size())) *
           (sizeof(std::uint32_t) + sizeof(float));
  }

  void reset_worker(std::uint32_t worker) override { residuals_.at(worker).clear(); }

 private:
  float fraction_;
  std::vector<std::vector<tensor::Matrix>> residuals_;  // [worker][slot]
  std::vector<std::size_t> order_;                      // selection scratch
};

/// Per-tensor symmetric int8 quantization: scale = amax / 127, q =
/// clamp(round(x / scale), -127, 127), round-trip x' = q * scale. The
/// round-trip error is at most scale / 2 = amax / 254 per entry (plus float
/// slop). Stateless — quantization error is not carried.
class Int8Hook final : public CommHook {
 public:
  Int8Hook() : CommHook(CommHookKind::kInt8) {}

  std::uint64_t compress(std::uint32_t /*worker*/, std::size_t /*slot*/,
                         const tensor::Matrix& in, tensor::Matrix& out) override {
    out.resize(in.rows(), in.cols());
    float amax = 0.0F;
    for (const float x : in.data()) amax = std::max(amax, std::fabs(x));
    if (amax > 0.0F) {
      const float scale = amax / 127.0F;
      const float inv_scale = 127.0F / amax;
      auto out_data = out.data();
      const auto in_data = in.data();
      for (std::size_t i = 0; i < in.size(); ++i) {
        const auto q = std::clamp<long>(std::lroundf(in_data[i] * inv_scale), -127L, 127L);
        out_data[i] = static_cast<float>(q) * scale;
      }
    }
    return payload_bytes(in);
  }

  [[nodiscard]] std::uint64_t payload_bytes(const tensor::Matrix& in) const override {
    return static_cast<std::uint64_t>(in.size()) + sizeof(float);  // bytes + scale
  }
};

}  // namespace

std::unique_ptr<CommHook> make_comm_hook(CommHookKind kind, const CommHookOptions& options,
                                         std::uint32_t num_workers) {
  switch (kind) {
    case CommHookKind::kNone:
      return std::make_unique<NoneHook>();
    case CommHookKind::kTopK:
      if (!(options.topk_fraction > 0.0F) || options.topk_fraction > 1.0F) {
        throw std::invalid_argument("make_comm_hook: topk_fraction must be in (0, 1], got " +
                                    std::to_string(options.topk_fraction));
      }
      return std::make_unique<TopKHook>(options.topk_fraction, num_workers);
    case CommHookKind::kInt8:
      return std::make_unique<Int8Hook>();
  }
  throw std::invalid_argument("make_comm_hook: unknown hook kind");
}

}  // namespace splpg::dist
