// Gradient/model compression hooks for the synchronization collectives.
//
// A CommHook is applied inside DistContext::all_reduce_gradients /
// average_models, in the barrier's *serial section*: exactly one thread
// compresses every active worker's payload in fixed worker order, so the
// fixed-order bit-determinism contract of the collectives survives
// compression unchanged (DESIGN.md "Communication-efficient regimes").
//
// Three hooks, in the spirit of torch/distributed/algorithms comm hooks:
//   kNone  — identity. The collective arithmetic is byte-for-byte the
//            pre-hook code path; the hook only prices the dense payload.
//   kTopK  — magnitude top-k sparsification with per-(worker, slot)
//            error-feedback residual: what a round drops is carried and
//            re-offered next round, so compressed + residual == input
//            exactly (bitwise — kept entries are copied, dropped entries
//            land in the residual untouched).
//   kInt8  — per-tensor symmetric int8 quantization (scale = amax/127,
//            round-to-nearest, clamp to [-127, 127]). No residual; the
//            round-trip error is bounded per entry by amax/254 (plus
//            float-arithmetic slop ~ amax * 1e-6).
//
// Every hook reports the *true serialized payload* its wire format would
// occupy, metered per sending worker through CommMeter::charge_sync:
//   kNone:  4 bytes per float value
//   kTopK:  k * (4-byte index + 4-byte value), k = clamp(ceil(f*n), 1, n)
//   kInt8:  1 byte per value + 4-byte scale
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace splpg::dist {

enum class CommHookKind { kNone, kTopK, kInt8 };

[[nodiscard]] const char* to_string(CommHookKind kind) noexcept;
/// "none" | "topk" | "int8" -> kind. Throws std::invalid_argument otherwise.
[[nodiscard]] CommHookKind comm_hook_from_string(const std::string& text);

struct CommHookOptions {
  /// Fraction of entries kTopK keeps per tensor: k = clamp(ceil(f*n), 1, n).
  /// Must be in (0, 1].
  float topk_fraction = 0.01F;
};

/// Serial-section-only compression state machine. NOT thread-safe: the
/// collectives call it from the barrier's serial section exclusively.
class CommHook {
 public:
  virtual ~CommHook() = default;
  CommHook(const CommHook&) = delete;
  CommHook& operator=(const CommHook&) = delete;

  [[nodiscard]] CommHookKind kind() const noexcept { return kind_; }
  [[nodiscard]] const char* name() const noexcept { return to_string(kind_); }

  /// Compresses `worker`'s tensor for parameter slot `slot` and writes the
  /// receiver-side (decompressed) view into `out` (resized to `in`'s shape).
  /// Error-feedback hooks fold the carried residual for (worker, slot) into
  /// the input first and keep what this round drops. Returns the exact
  /// serialized payload size in bytes (the header formulas above).
  virtual std::uint64_t compress(std::uint32_t worker, std::size_t slot,
                                 const tensor::Matrix& in, tensor::Matrix& out) = 0;

  /// Wire-format payload size for a tensor of `in`'s shape, without
  /// compressing — what `compress` would return. Used to meter the kNone
  /// path (which bypasses compress to stay bitwise-identical to the
  /// pre-hook collectives).
  [[nodiscard]] virtual std::uint64_t payload_bytes(const tensor::Matrix& in) const = 0;

  /// Drops all carried state for `worker` (error-feedback residuals). Called
  /// when a worker rejoins after a crash: its replica was resynced from the
  /// corrected global model, so a stale residual would inject garbage.
  virtual void reset_worker(std::uint32_t /*worker*/) {}

 protected:
  explicit CommHook(CommHookKind kind) noexcept : kind_(kind) {}

 private:
  CommHookKind kind_;
};

/// Builds a hook for `num_workers` senders. Validates options (topk_fraction
/// in (0, 1]) and throws std::invalid_argument on bad values.
[[nodiscard]] std::unique_ptr<CommHook> make_comm_hook(CommHookKind kind,
                                                       const CommHookOptions& options,
                                                       std::uint32_t num_workers);

/// The k kTopK keeps for an n-entry tensor: clamp(ceil(fraction * n), 1, n).
/// Exposed so tests/benches can compute expected payload sizes exactly.
[[nodiscard]] std::size_t topk_keep_count(float fraction, std::size_t n) noexcept;

}  // namespace splpg::dist
