#include "dist/worker_view.hpp"

#include <stdexcept>

namespace splpg::dist {

using graph::Edge;
using graph::NodeId;

namespace {

const char* to_string(RemoteAdjacency remote) {
  switch (remote) {
    case RemoteAdjacency::kNone: return "none";
    case RemoteAdjacency::kFull: return "full";
    case RemoteAdjacency::kSparsified: return "sparsified";
  }
  return "?";
}

}  // namespace

std::string to_string(const WorkerPolicy& policy) {
  std::string out = "{full_neighbors=";
  out += policy.full_neighbors ? "true" : "false";
  out += ", remote=";
  out += to_string(policy.remote);
  out += ", negatives=";
  out += policy.negatives == NegativeScope::kLocal ? "local" : "global";
  out += "}";
  return out;
}

WorkerView::WorkerView(const MasterStore& store, std::uint32_t part, WorkerPolicy policy)
    : store_(&store), part_(part), policy_(policy) {
  if (part >= store.num_parts()) throw std::out_of_range("WorkerView: bad part id");
  if (policy.remote == RemoteAdjacency::kSparsified && !store.has_sparsified()) {
    throw std::logic_error("WorkerView: sparsified graphs not installed in the master store");
  }
}

bool WorkerView::remote_fetch_succeeds(std::uint64_t bytes) {
  if (injector_ == nullptr) return true;
  FaultStats& faults = meter_.faults();
  for (std::uint32_t attempt = 1;; ++attempt) {
    const double latency = injector_->fetch_latency_seconds(part_);
    faults.injected_latency_seconds += latency;
    batch_fault_seconds_ += latency;
    if (!injector_->fetch_attempt_fails(part_)) return true;
    ++faults.transient_failures;
    faults.wasted_bytes += bytes;
    const bool deadline_blown = retry_.batch_deadline_seconds > 0.0 &&
                                batch_fault_seconds_ >= retry_.batch_deadline_seconds;
    if (attempt >= retry_.max_attempts || deadline_blown) {
      ++faults.permanent_failures;
      return false;
    }
    ++faults.retries;
    const double backoff = retry_.backoff_seconds(attempt, injector_->rng(part_));
    faults.backoff_seconds += backoff;
    batch_fault_seconds_ += backoff;
  }
}

void WorkerView::append_neighbors(NodeId v, std::vector<NodeId>& neighbors,
                                  std::vector<float>& weights) {
  const auto& full = store_->graph();
  if (is_core(v)) {
    if (policy_.full_neighbors) {
      // Full adjacency is local ("cross-partition edges are maintained").
      const auto adjacent = full.neighbors(v);
      neighbors.insert(neighbors.end(), adjacent.begin(), adjacent.end());
      weights.insert(weights.end(), adjacent.size(), 1.0F);
      return;
    }
    // Induced local subgraph; the intra-partition share is free.
    std::uint32_t cross = 0;
    for (const NodeId w : full.neighbors(v)) {
      if (store_->part_of(w) == part_) {
        neighbors.push_back(w);
        weights.push_back(1.0F);
      } else {
        ++cross;
      }
    }
    if (policy_.remote == RemoteAdjacency::kFull && cross > 0 && !degraded_) {
      // Complete data sharing: fetch the cross-partition remainder.
      const std::uint64_t bytes =
          static_cast<std::uint64_t>(cross) * sizeof(NodeId) + sizeof(graph::EdgeId);
      if (!meter_.structure_cached(v) && !remote_fetch_succeeds(bytes)) {
        throw RemoteFetchError(part_, v, "structure");
      }
      meter_.charge_structure(v, bytes);
      for (const NodeId w : full.neighbors(v)) {
        if (store_->part_of(w) != part_) {
          neighbors.push_back(w);
          weights.push_back(1.0F);
        }
      }
    }
    return;
  }

  // Remote node. In degraded mode all remote adjacency behaves as kNone: the
  // node stays a leaf of the computational graph for the rest of the batch.
  if (degraded_) return;
  switch (policy_.remote) {
    case RemoteAdjacency::kNone:
      // No data sharing: the node is a leaf of the computational graph.
      return;
    case RemoteAdjacency::kFull: {
      const std::uint64_t bytes = full.structure_bytes(v);
      if (!meter_.structure_cached(v) && !remote_fetch_succeeds(bytes)) {
        throw RemoteFetchError(part_, v, "structure");
      }
      meter_.charge_structure(v, bytes);
      const auto adjacent = full.neighbors(v);
      neighbors.insert(neighbors.end(), adjacent.begin(), adjacent.end());
      weights.insert(weights.end(), adjacent.size(), 1.0F);
      return;
    }
    case RemoteAdjacency::kSparsified: {
      const auto& sparse = store_->sparsified(store_->part_of(v));
      const std::uint64_t bytes = sparse.structure_bytes(v);
      if (!meter_.structure_cached(v) && !remote_fetch_succeeds(bytes)) {
        throw RemoteFetchError(part_, v, "structure");
      }
      meter_.charge_structure(v, bytes);
      const auto adjacent = sparse.neighbors(v);
      const auto adjacent_weights = sparse.neighbor_weights(v);
      neighbors.insert(neighbors.end(), adjacent.begin(), adjacent.end());
      if (adjacent_weights.empty()) {
        weights.insert(weights.end(), adjacent.size(), 1.0F);
      } else {
        weights.insert(weights.end(), adjacent_weights.begin(), adjacent_weights.end());
      }
      return;
    }
  }
}

tensor::Matrix WorkerView::gather_features(std::span<const NodeId> nodes) {
  const auto& features = store_->features();
  tensor::Matrix out(nodes.size(), features.dim());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId v = nodes[i];
    if (!is_local_feature(v)) {
      if (degraded_) continue;  // zero row: feature unavailable this batch
      if (policy_.remote == RemoteAdjacency::kNone) {
        throw std::logic_error("WorkerView: partition " + std::to_string(part_) +
                               " requested remote feature row of node " + std::to_string(v) +
                               " under policy " + dist::to_string(policy_) +
                               " (no data sharing serves non-local rows); the method is "
                               "misconfigured: its sampler/negative scope must stay local");
      }
      const std::uint64_t bytes = features.feature_bytes();
      if (!meter_.features_cached(v) && !remote_fetch_succeeds(bytes)) {
        throw RemoteFetchError(part_, v, "feature");
      }
      meter_.charge_features(v, bytes);
    }
    const auto row = features.row(v);
    std::copy(row.begin(), row.end(), out.row(i).begin());
  }
  return out;
}

std::vector<NodeId> WorkerView::negative_candidates() const {
  if (policy_.negatives == NegativeScope::kLocal) return store_->part_nodes(part_);
  std::vector<NodeId> all(store_->graph().num_nodes());
  for (NodeId v = 0; v < all.size(); ++v) all[v] = v;
  return all;
}

std::vector<Edge> WorkerView::owned_positive_edges(std::span<const Edge> train_edges) const {
  const bool intra_only =
      !policy_.full_neighbors && policy_.remote == RemoteAdjacency::kNone;
  std::vector<Edge> owned;
  for (const Edge& edge : train_edges) {
    if (store_->part_of(edge.u) != part_) continue;
    if (intra_only && store_->part_of(edge.v) != part_) continue;  // cross edge lost
    owned.push_back(edge);
  }
  return owned;
}

}  // namespace splpg::dist
