#include "dist/worker_view.hpp"

#include <stdexcept>

namespace splpg::dist {

using graph::Edge;
using graph::NodeId;

WorkerView::WorkerView(const MasterStore& store, std::uint32_t part, WorkerPolicy policy)
    : store_(&store), part_(part), policy_(policy) {
  if (part >= store.num_parts()) throw std::out_of_range("WorkerView: bad part id");
  if (policy.remote == RemoteAdjacency::kSparsified && !store.has_sparsified()) {
    throw std::logic_error("WorkerView: sparsified graphs not installed in the master store");
  }
}

void WorkerView::append_neighbors(NodeId v, std::vector<NodeId>& neighbors,
                                  std::vector<float>& weights) {
  const auto& full = store_->graph();
  if (is_core(v)) {
    if (policy_.full_neighbors) {
      // Full adjacency is local ("cross-partition edges are maintained").
      const auto adjacent = full.neighbors(v);
      neighbors.insert(neighbors.end(), adjacent.begin(), adjacent.end());
      weights.insert(weights.end(), adjacent.size(), 1.0F);
      return;
    }
    // Induced local subgraph; the intra-partition share is free.
    std::uint32_t cross = 0;
    for (const NodeId w : full.neighbors(v)) {
      if (store_->part_of(w) == part_) {
        neighbors.push_back(w);
        weights.push_back(1.0F);
      } else {
        ++cross;
      }
    }
    if (policy_.remote == RemoteAdjacency::kFull && cross > 0) {
      // Complete data sharing: fetch the cross-partition remainder.
      meter_.charge_structure(v, static_cast<std::uint64_t>(cross) * sizeof(NodeId) +
                                     sizeof(graph::EdgeId));
      for (const NodeId w : full.neighbors(v)) {
        if (store_->part_of(w) != part_) {
          neighbors.push_back(w);
          weights.push_back(1.0F);
        }
      }
    }
    return;
  }

  // Remote node.
  switch (policy_.remote) {
    case RemoteAdjacency::kNone:
      // No data sharing: the node is a leaf of the computational graph.
      return;
    case RemoteAdjacency::kFull: {
      meter_.charge_structure(v, full.structure_bytes(v));
      const auto adjacent = full.neighbors(v);
      neighbors.insert(neighbors.end(), adjacent.begin(), adjacent.end());
      weights.insert(weights.end(), adjacent.size(), 1.0F);
      return;
    }
    case RemoteAdjacency::kSparsified: {
      const auto& sparse = store_->sparsified(store_->part_of(v));
      meter_.charge_structure(v, sparse.structure_bytes(v));
      const auto adjacent = sparse.neighbors(v);
      const auto adjacent_weights = sparse.neighbor_weights(v);
      neighbors.insert(neighbors.end(), adjacent.begin(), adjacent.end());
      if (adjacent_weights.empty()) {
        weights.insert(weights.end(), adjacent.size(), 1.0F);
      } else {
        weights.insert(weights.end(), adjacent_weights.begin(), adjacent_weights.end());
      }
      return;
    }
  }
}

tensor::Matrix WorkerView::gather_features(std::span<const NodeId> nodes) {
  const auto& features = store_->features();
  tensor::Matrix out(nodes.size(), features.dim());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId v = nodes[i];
    if (!is_local_feature(v)) {
      if (policy_.remote == RemoteAdjacency::kNone) {
        throw std::logic_error("WorkerView: remote feature requested with no data sharing");
      }
      meter_.charge_features(v, features.feature_bytes());
    }
    const auto row = features.row(v);
    std::copy(row.begin(), row.end(), out.row(i).begin());
  }
  return out;
}

std::vector<NodeId> WorkerView::negative_candidates() const {
  if (policy_.negatives == NegativeScope::kLocal) return store_->part_nodes(part_);
  std::vector<NodeId> all(store_->graph().num_nodes());
  for (NodeId v = 0; v < all.size(); ++v) all[v] = v;
  return all;
}

std::vector<Edge> WorkerView::owned_positive_edges(std::span<const Edge> train_edges) const {
  const bool intra_only =
      !policy_.full_neighbors && policy_.remote == RemoteAdjacency::kNone;
  std::vector<Edge> owned;
  for (const Edge& edge : train_edges) {
    if (store_->part_of(edge.u) != part_) continue;
    if (intra_only && store_->part_of(edge.v) != part_) continue;  // cross edge lost
    owned.push_back(edge);
  }
  return owned;
}

}  // namespace splpg::dist
