// The master server / shared memory of the distributed simulation.
//
// Holds the full training graph and features, the partition assignment, the
// per-partition halo sets ("the full-neighbor list of each node is fully
// preserved in a partitioned subgraph", Alg. 1 line 3), and — once installed
// — the sparsified copy of every partition (Alg. 1 line 14).
//
// Everything is immutable after setup, so concurrent worker-thread reads
// need no locking. Whether a read is *free* (partition-local) or *metered*
// (remote) is decided by WorkerView, not here.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/features.hpp"
#include "partition/partitioner.hpp"

namespace splpg::dist {

class MasterStore {
 public:
  /// `graph` must be the TRAIN graph (held-out edges removed).
  MasterStore(graph::CsrGraph graph, const graph::FeatureStore* features,
              partition::PartitionResult parts);

  [[nodiscard]] const graph::CsrGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const graph::FeatureStore& features() const noexcept { return *features_; }
  [[nodiscard]] std::uint32_t num_parts() const noexcept { return parts_.num_parts; }

  [[nodiscard]] std::uint32_t part_of(graph::NodeId v) const noexcept {
    return parts_.assignment[v];
  }

  /// Core nodes of a partition (sorted).
  [[nodiscard]] const std::vector<graph::NodeId>& part_nodes(std::uint32_t part) const {
    return part_nodes_[part];
  }

  /// True iff `v` is a 1-hop neighbor of `part`'s core nodes without being a
  /// core node itself. Binary search over the part's sorted halo list —
  /// O(log halo) per query, O(sum of halo sizes) memory rather than the
  /// O(parts * nodes) a per-part bitmap would cost.
  [[nodiscard]] bool in_halo(std::uint32_t part, graph::NodeId v) const {
    const std::vector<graph::NodeId>& halo = halo_[part];
    return std::binary_search(halo.begin(), halo.end(), v);
  }

  /// The sorted halo node list of a partition.
  [[nodiscard]] const std::vector<graph::NodeId>& halo_nodes(std::uint32_t part) const {
    return halo_[part];
  }

  /// Installs the sparsified partition graphs (global id space).
  void set_sparsified(std::vector<graph::CsrGraph> graphs);
  [[nodiscard]] bool has_sparsified() const noexcept { return !sparsified_.empty(); }
  [[nodiscard]] const graph::CsrGraph& sparsified(std::uint32_t part) const {
    if (sparsified_.empty()) throw std::logic_error("MasterStore: sparsified graphs not set");
    return sparsified_[part];
  }

  /// Number of cross-partition neighbors of a core node `v` of `part` — the
  /// adjacency share a worker with an *induced* local subgraph must fetch.
  [[nodiscard]] std::uint32_t cross_partition_degree(std::uint32_t part,
                                                     graph::NodeId v) const noexcept {
    std::uint32_t count = 0;
    for (const graph::NodeId w : graph_.neighbors(v)) {
      if (parts_.assignment[w] != part) ++count;
    }
    return count;
  }

 private:
  graph::CsrGraph graph_;
  const graph::FeatureStore* features_;
  partition::PartitionResult parts_;
  std::vector<std::vector<graph::NodeId>> part_nodes_;
  std::vector<std::vector<graph::NodeId>> halo_;  // per part, sorted + deduplicated
  std::vector<graph::CsrGraph> sparsified_;
};

}  // namespace splpg::dist
