#include "dist/sync.hpp"

#include <stdexcept>
#include <string>

namespace splpg::dist {

const char* to_string(SyncMode mode) noexcept {
  switch (mode) {
    case SyncMode::kGradientAveraging: return "gradient";
    case SyncMode::kModelAveraging: return "model";
    case SyncMode::kLocalSgd: return "local_sgd";
  }
  return "?";
}

DistContext::DistContext(std::uint32_t num_workers)
    : barrier_(num_workers),
      replicas_(num_workers, nullptr),
      active_(std::make_unique<std::atomic<bool>[]>(num_workers)),
      meters_(num_workers, nullptr) {
  if (num_workers == 0) throw std::invalid_argument("DistContext: need >= 1 worker");
  for (std::uint32_t w = 0; w < num_workers; ++w) {
    active_[w].store(true, std::memory_order_relaxed);
  }
}

std::uint32_t DistContext::active_workers() const noexcept {
  std::uint32_t count = 0;
  for (std::uint32_t w = 0; w < num_workers(); ++w) {
    if (active_[w].load(std::memory_order_acquire)) ++count;
  }
  return count;
}

void DistContext::register_replica(std::uint32_t worker, nn::Module* replica) {
  if (worker >= replicas_.size()) throw std::out_of_range("DistContext: bad worker id");
  if (replica != nullptr) {
    for (std::uint32_t w = 0; w < num_workers(); ++w) {
      if (replicas_[w] == nullptr || w == worker) continue;
      const auto& have = replicas_[w]->parameters();
      const auto& incoming = replica->parameters();
      if (have.size() != incoming.size()) {
        throw std::invalid_argument(
            "DistContext: replica for worker " + std::to_string(worker) + " has " +
            std::to_string(incoming.size()) + " parameters, worker " + std::to_string(w) +
            "'s has " + std::to_string(have.size()) +
            " (replicas must be constructed identically)");
      }
      for (std::size_t i = 0; i < have.size(); ++i) {
        const auto& a = have[i].value();
        const auto& b = incoming[i].value();
        if (a.rows() != b.rows() || a.cols() != b.cols()) {
          throw std::invalid_argument(
              "DistContext: replica for worker " + std::to_string(worker) + " parameter " +
              std::to_string(i) + " has shape " + std::to_string(b.rows()) + "x" +
              std::to_string(b.cols()) + ", worker " + std::to_string(w) + "'s is " +
              std::to_string(a.rows()) + "x" + std::to_string(a.cols()) +
              " (replicas must be constructed identically)");
        }
      }
      break;  // all registered replicas already agree with worker w's
    }
  }
  replicas_[worker] = replica;
}

void DistContext::set_comm_hook(std::unique_ptr<CommHook> hook) {
  hook_ = std::move(hook);
  global_ref_.clear();
  if (!hook_ || hook_->kind() == CommHookKind::kNone) return;
  // Snapshot the reference model for delta compression in average_models.
  // All replicas are identical here (same construction seed, or the same
  // restored checkpoint), so any registered one serves.
  const nn::Module* source = nullptr;
  for (const auto* replica : replicas_) {
    if (replica != nullptr) {
      source = replica;
      break;
    }
  }
  if (source == nullptr) {
    throw std::logic_error("DistContext: set_comm_hook before any register_replica");
  }
  global_ref_.reserve(source->parameters().size());
  for (const auto& p : source->parameters()) global_ref_.push_back(p.value());
}

void DistContext::attach_meter(std::uint32_t worker, CommMeter* meter) {
  if (worker >= meters_.size()) throw std::out_of_range("DistContext: bad worker id");
  meters_[worker] = meter;
}

void DistContext::leave(std::uint32_t worker) {
  if (worker >= replicas_.size()) throw std::out_of_range("DistContext: bad worker id");
  active_[worker].store(false, std::memory_order_release);
  barrier_.arrive_and_drop();
}

void DistContext::rejoin(std::uint32_t worker) {
  if (worker >= replicas_.size()) throw std::out_of_range("DistContext: bad worker id");
  if (active_[worker].load(std::memory_order_acquire)) {
    throw std::logic_error("DistContext: rejoin of an active worker");
  }
  if (hook_) hook_->reset_worker(worker);
  active_[worker].store(true, std::memory_order_release);
  barrier_.add_party();
}

nn::Module* DistContext::first_active_replica() const noexcept {
  for (std::uint32_t w = 0; w < num_workers(); ++w) {
    if (is_active(w)) return replicas_[w];
  }
  return nullptr;
}

void DistContext::charge(std::uint32_t worker, std::uint64_t bytes) {
  if (meters_[worker] != nullptr) meters_[worker]->charge_sync(bytes);
}

void DistContext::all_reduce_gradients() {
  barrier_.arrive_and_wait([this] {
    const std::uint32_t n = active_workers();
    if (n == 0) return;
    nn::Module* first = first_active_replica();
    const bool compressing = hook_ && hook_->kind() != CommHookKind::kNone;
    const float inv = 1.0F / static_cast<float>(n);
    const std::size_t num_params = first->parameters().size();
    tensor::Matrix decompressed;
    for (std::size_t i = 0; i < num_params; ++i) {
      // Average in fixed worker order into a scratch buffer...
      tensor::Matrix average(first->parameters()[i].value().rows(),
                             first->parameters()[i].value().cols());
      for (std::uint32_t w = 0; w < num_workers(); ++w) {
        if (!is_active(w)) continue;
        auto& grad = replicas_[w]->parameters()[i].mutable_grad();
        if (grad.empty()) continue;  // this worker skipped the round
        if (compressing) {
          charge(w, hook_->compress(w, i, grad, decompressed));
          average.add_inplace(decompressed);
        } else {
          // The hook-free (and kNone) arithmetic: byte-for-byte the
          // pre-hook collective, so the default regime is a no-op change.
          if (hook_) charge(w, hook_->payload_bytes(grad));
          average.add_inplace(grad);
        }
      }
      average.scale_inplace(inv);
      // ...then distribute to every active replica.
      for (std::uint32_t w = 0; w < num_workers(); ++w) {
        if (!is_active(w)) continue;
        auto& grad = replicas_[w]->parameters()[i].mutable_grad();
        grad = average;
      }
    }
  });
}

void DistContext::average_models() {
  barrier_.arrive_and_wait([this] {
    const std::uint32_t n = active_workers();
    if (n == 0) return;
    nn::Module* first = first_active_replica();
    const bool compressing = hook_ && hook_->kind() != CommHookKind::kNone;
    const float inv = 1.0F / static_cast<float>(n);
    const std::size_t num_params = first->parameters().size();
    if (compressing && global_ref_.size() != num_params) {
      throw std::logic_error(
          "DistContext: compressing hook installed before replicas were registered");
    }
    tensor::Matrix delta;
    tensor::Matrix decompressed;
    for (std::size_t i = 0; i < num_params; ++i) {
      if (compressing) {
        // Each worker sends compress(params_w - reference); the averaged
        // decompressed delta advances the reference, which is then
        // broadcast. Error feedback inside the hook carries whatever the
        // compression dropped into the next round.
        tensor::Matrix& ref = global_ref_[i];
        tensor::Matrix delta_average(ref.rows(), ref.cols());
        for (std::uint32_t w = 0; w < num_workers(); ++w) {
          if (!is_active(w)) continue;
          delta = tensor::sub(replicas_[w]->parameters()[i].value(), ref);
          charge(w, hook_->compress(w, i, delta, decompressed));
          delta_average.add_inplace(decompressed);
        }
        delta_average.scale_inplace(inv);
        ref.add_inplace(delta_average);
        for (std::uint32_t w = 0; w < num_workers(); ++w) {
          if (!is_active(w)) continue;
          replicas_[w]->parameters()[i].mutable_value() = ref;
        }
      } else {
        tensor::Matrix average(first->parameters()[i].value().rows(),
                               first->parameters()[i].value().cols());
        for (std::uint32_t w = 0; w < num_workers(); ++w) {
          if (!is_active(w)) continue;
          if (hook_) charge(w, hook_->payload_bytes(replicas_[w]->parameters()[i].value()));
          average.add_inplace(replicas_[w]->parameters()[i].value());
        }
        average.scale_inplace(inv);
        for (std::uint32_t w = 0; w < num_workers(); ++w) {
          if (!is_active(w)) continue;
          replicas_[w]->parameters()[i].mutable_value() = average;
        }
      }
    }
  });
}

}  // namespace splpg::dist
