#include "dist/sync.hpp"

#include <stdexcept>

namespace splpg::dist {

DistContext::DistContext(std::uint32_t num_workers)
    : barrier_(num_workers),
      replicas_(num_workers, nullptr),
      active_(std::make_unique<std::atomic<bool>[]>(num_workers)) {
  if (num_workers == 0) throw std::invalid_argument("DistContext: need >= 1 worker");
  for (std::uint32_t w = 0; w < num_workers; ++w) {
    active_[w].store(true, std::memory_order_relaxed);
  }
}

std::uint32_t DistContext::active_workers() const noexcept {
  std::uint32_t count = 0;
  for (std::uint32_t w = 0; w < num_workers(); ++w) {
    if (active_[w].load(std::memory_order_acquire)) ++count;
  }
  return count;
}

void DistContext::register_replica(std::uint32_t worker, nn::Module* replica) {
  if (worker >= replicas_.size()) throw std::out_of_range("DistContext: bad worker id");
  replicas_[worker] = replica;
}

void DistContext::leave(std::uint32_t worker) {
  if (worker >= replicas_.size()) throw std::out_of_range("DistContext: bad worker id");
  active_[worker].store(false, std::memory_order_release);
  barrier_.arrive_and_drop();
}

void DistContext::rejoin(std::uint32_t worker) {
  if (worker >= replicas_.size()) throw std::out_of_range("DistContext: bad worker id");
  if (active_[worker].load(std::memory_order_acquire)) {
    throw std::logic_error("DistContext: rejoin of an active worker");
  }
  active_[worker].store(true, std::memory_order_release);
  barrier_.add_party();
}

void DistContext::all_reduce_gradients() {
  barrier_.arrive_and_wait([this] {
    const std::uint32_t n = active_workers();
    if (n == 0) return;
    nn::Module* first = nullptr;
    for (std::uint32_t w = 0; w < num_workers(); ++w) {
      if (is_active(w)) {
        first = replicas_[w];
        break;
      }
    }
    const float inv = 1.0F / static_cast<float>(n);
    const std::size_t num_params = first->parameters().size();
    for (std::size_t i = 0; i < num_params; ++i) {
      // Average in fixed worker order into a scratch buffer...
      tensor::Matrix average(first->parameters()[i].value().rows(),
                             first->parameters()[i].value().cols());
      for (std::uint32_t w = 0; w < num_workers(); ++w) {
        if (!is_active(w)) continue;
        auto& grad = replicas_[w]->parameters()[i].mutable_grad();
        if (grad.empty()) continue;  // this worker skipped the round
        average.add_inplace(grad);
      }
      average.scale_inplace(inv);
      // ...then distribute to every active replica.
      for (std::uint32_t w = 0; w < num_workers(); ++w) {
        if (!is_active(w)) continue;
        auto& grad = replicas_[w]->parameters()[i].mutable_grad();
        grad = average;
      }
    }
  });
}

void DistContext::average_models() {
  barrier_.arrive_and_wait([this] {
    const std::uint32_t n = active_workers();
    if (n == 0) return;
    nn::Module* first = nullptr;
    for (std::uint32_t w = 0; w < num_workers(); ++w) {
      if (is_active(w)) {
        first = replicas_[w];
        break;
      }
    }
    const float inv = 1.0F / static_cast<float>(n);
    const std::size_t num_params = first->parameters().size();
    for (std::size_t i = 0; i < num_params; ++i) {
      tensor::Matrix average(first->parameters()[i].value().rows(),
                             first->parameters()[i].value().cols());
      for (std::uint32_t w = 0; w < num_workers(); ++w) {
        if (!is_active(w)) continue;
        average.add_inplace(replicas_[w]->parameters()[i].value());
      }
      average.scale_inplace(inv);
      for (std::uint32_t w = 0; w < num_workers(); ++w) {
        if (!is_active(w)) continue;
        replicas_[w]->parameters()[i].mutable_value() = average;
      }
    }
  });
}

}  // namespace splpg::dist
