#include "dist/sync.hpp"

#include <stdexcept>

namespace splpg::dist {

DistContext::DistContext(std::uint32_t num_workers)
    : barrier_(num_workers), replicas_(num_workers, nullptr) {
  if (num_workers == 0) throw std::invalid_argument("DistContext: need >= 1 worker");
}

void DistContext::register_replica(std::uint32_t worker, nn::Module* replica) {
  if (worker >= replicas_.size()) throw std::out_of_range("DistContext: bad worker id");
  replicas_[worker] = replica;
}

void DistContext::all_reduce_gradients() {
  barrier_.arrive_and_wait([this] {
    const float inv = 1.0F / static_cast<float>(replicas_.size());
    const std::size_t num_params = replicas_[0]->parameters().size();
    for (std::size_t i = 0; i < num_params; ++i) {
      // Average in fixed worker order into a scratch buffer...
      tensor::Matrix average(replicas_[0]->parameters()[i].value().rows(),
                             replicas_[0]->parameters()[i].value().cols());
      for (nn::Module* replica : replicas_) {
        auto& grad = replica->parameters()[i].mutable_grad();
        if (grad.empty()) continue;  // this worker skipped the round
        average.add_inplace(grad);
      }
      average.scale_inplace(inv);
      // ...then distribute to every replica.
      for (nn::Module* replica : replicas_) {
        auto& grad = replica->parameters()[i].mutable_grad();
        grad = average;
      }
    }
  });
}

void DistContext::average_models() {
  barrier_.arrive_and_wait([this] {
    const float inv = 1.0F / static_cast<float>(replicas_.size());
    const std::size_t num_params = replicas_[0]->parameters().size();
    for (std::size_t i = 0; i < num_params; ++i) {
      tensor::Matrix average(replicas_[0]->parameters()[i].value().rows(),
                             replicas_[0]->parameters()[i].value().cols());
      for (nn::Module* replica : replicas_) {
        average.add_inplace(replica->parameters()[i].value());
      }
      average.scale_inplace(inv);
      for (nn::Module* replica : replicas_) {
        replica->parameters()[i].mutable_value() = average;
      }
    }
  });
}

}  // namespace splpg::dist
