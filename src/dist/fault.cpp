#include "dist/fault.hpp"

#include <stdexcept>
#include <string>
#include <unordered_map>

namespace splpg::dist {

void validate_fault_plan(const FaultPlan& plan, std::uint32_t num_workers) {
  if (plan.transient_fetch_failure_rate < 0.0 || plan.transient_fetch_failure_rate >= 1.0) {
    throw std::invalid_argument("FaultPlan: transient_fetch_failure_rate must be in [0, 1)");
  }
  if (plan.fetch_latency_seconds < 0.0) {
    throw std::invalid_argument("FaultPlan: fetch_latency_seconds must be >= 0");
  }
  if (!plan.straggler_slowdown.empty() && plan.straggler_slowdown.size() != num_workers) {
    throw std::invalid_argument("FaultPlan: straggler_slowdown needs one factor per worker");
  }
  for (const double factor : plan.straggler_slowdown) {
    if (factor < 1.0) throw std::invalid_argument("FaultPlan: straggler factors must be >= 1");
  }
  if (!plan.crashes.empty() && num_workers < 2) {
    throw std::invalid_argument("FaultPlan: crashes need >= 2 workers (a survivor must recover)");
  }
  std::unordered_map<std::uint32_t, std::uint32_t> crashes_per_epoch;
  for (const CrashEvent& crash : plan.crashes) {
    if (crash.worker >= num_workers) {
      throw std::invalid_argument("FaultPlan: crash worker id " + std::to_string(crash.worker) +
                                  " out of range");
    }
    if (crash.epoch == 0) throw std::invalid_argument("FaultPlan: crash epochs are 1-based");
    if (++crashes_per_epoch[crash.epoch] >= num_workers) {
      throw std::invalid_argument("FaultPlan: epoch " + std::to_string(crash.epoch) +
                                  " crashes every worker; no survivor could recover");
    }
  }
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed, std::uint32_t num_workers)
    : plan_(std::move(plan)) {
  validate_fault_plan(plan_, num_workers);
  rngs_.reserve(num_workers);
  const util::Rng root(seed);
  for (std::uint32_t w = 0; w < num_workers; ++w) rngs_.push_back(root.split("fault", w));
}

bool FaultInjector::fetch_attempt_fails(std::uint32_t worker) {
  if (plan_.transient_fetch_failure_rate <= 0.0) return false;
  return rngs_[worker].bernoulli(plan_.transient_fetch_failure_rate);
}

double FaultInjector::fetch_latency_seconds(std::uint32_t worker) const noexcept {
  return plan_.fetch_latency_seconds * straggler_factor(worker);
}

double FaultInjector::straggler_factor(std::uint32_t worker) const noexcept {
  if (worker >= plan_.straggler_slowdown.size()) return 1.0;
  return plan_.straggler_slowdown[worker];
}

bool FaultInjector::crash_due(std::uint32_t worker, std::uint32_t epoch,
                              std::uint32_t batch) const noexcept {
  for (const CrashEvent& crash : plan_.crashes) {
    if (crash.worker == worker && crash.epoch == epoch && crash.batch == batch) return true;
  }
  return false;
}

}  // namespace splpg::dist
