#include "dist/cost_model.hpp"

namespace splpg::dist {

LinkProfile pcie_gen4_link() {
  // ~24 GB/s sustained on x16, negligible per-transfer latency at this
  // granularity (batched device copies).
  return {"pcie-gen4-x16", 24e9, 2e-6};
}

LinkProfile datacenter_25g() {
  // 25 GbE ≈ 3 GB/s payload; ~20 us RPC round-trip overhead per fetch.
  return {"25-gbe", 3e9, 20e-6};
}

LinkProfile commodity_1g() {
  // 1 GbE ≈ 118 MB/s payload; ~100 us per RPC.
  return {"1-gbe", 118e6, 100e-6};
}

CostEstimate estimate_cost(const CommStats& stats, const LinkProfile& link) {
  CostEstimate out;
  if (link.bandwidth_bytes_per_sec > 0.0) {
    out.transfer_seconds =
        static_cast<double>(stats.total_bytes()) / link.bandwidth_bytes_per_sec;
  }
  out.latency_seconds =
      static_cast<double>(stats.structure_fetches + stats.feature_fetches) * link.latency_sec;
  return out;
}

CostEstimate estimate_cost(const CommStats& stats, const FaultStats& faults,
                           const LinkProfile& link) {
  CostEstimate out = estimate_cost(stats, link);
  if (link.bandwidth_bytes_per_sec > 0.0) {
    out.fault_seconds += static_cast<double>(faults.wasted_bytes) / link.bandwidth_bytes_per_sec;
  }
  out.fault_seconds += static_cast<double>(faults.transient_failures) * link.latency_sec;
  out.fault_seconds += faults.injected_latency_seconds + faults.backoff_seconds;
  return out;
}

}  // namespace splpg::dist
