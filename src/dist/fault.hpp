// Deterministic fault injection for the distributed-training simulation.
//
// A FaultPlan describes a cluster's misbehavior: a per-attempt transient
// failure probability for remote fetches, an injected per-fetch latency
// (priced by dist/cost_model), per-worker straggler slowdown factors, and
// scheduled worker crashes at a given (epoch, batch). A FaultInjector draws
// every fault decision from per-worker Rng streams derived from the run
// seed, so fault runs are bit-reproducible regardless of thread scheduling —
// the same guarantee the rest of the trainer gives.
//
// Outcomes are metered in FaultStats (per worker, alongside CommStats in
// CommMeter; aggregated into TrainResult).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace splpg::dist {

/// A scheduled worker crash: the worker dies at the start of batch `batch`
/// (0-based round index) of epoch `epoch` (1-based, like the trainer loop).
struct CrashEvent {
  std::uint32_t worker = 0;
  std::uint32_t epoch = 1;
  std::uint32_t batch = 0;
};

struct FaultPlan {
  /// Probability that a single remote-fetch attempt fails transiently.
  double transient_fetch_failure_rate = 0.0;
  /// Simulated latency of one remote-fetch attempt (seconds). Charged to
  /// FaultStats::injected_latency_seconds and priced by dist::estimate_cost.
  double fetch_latency_seconds = 0.0;
  /// Per-worker slowdown factors (>= 1) multiplying that worker's fetch
  /// latency. Empty = no stragglers; otherwise one entry per worker.
  std::vector<double> straggler_slowdown;
  /// Scheduled worker crashes (recovered at the next epoch boundary).
  std::vector<CrashEvent> crashes;

  [[nodiscard]] bool empty() const noexcept {
    return transient_fetch_failure_rate <= 0.0 && fetch_latency_seconds <= 0.0 &&
           straggler_slowdown.empty() && crashes.empty();
  }
};

/// Throws std::invalid_argument if the plan is malformed for `num_workers`:
/// rates outside [0, 1), negative latencies, slowdown factors < 1 or of the
/// wrong arity, crash ids out of range, crashes with fewer than two workers,
/// or an epoch in which every worker crashes (no survivor could recover).
void validate_fault_plan(const FaultPlan& plan, std::uint32_t num_workers);

/// Metered fault outcomes, accumulated per worker (in CommMeter) and summed
/// in fixed worker order into TrainResult::fault.
struct FaultStats {
  std::uint64_t transient_failures = 0;   // injected failed fetch attempts
  std::uint64_t retries = 0;              // re-attempts after a transient failure
  std::uint64_t permanent_failures = 0;   // fetches that exhausted the retry policy
  std::uint64_t wasted_bytes = 0;         // payload bytes of failed attempts
  std::uint64_t degraded_batches = 0;     // batches completed via local fallback
  std::uint64_t crashes = 0;              // injected worker crashes
  std::uint64_t recoveries = 0;           // checkpoint-restored worker rejoins

  // Storage faults (io::StorageFaultInjector outcomes + the trainer's
  // self-healing around them).
  std::uint64_t storage_write_faults = 0;        // injected ENOSPC/torn/rename faults
  std::uint64_t storage_read_faults = 0;         // injected bit flips / short reads
  std::uint64_t checkpoint_write_failures = 0;   // checkpoint writes that failed (training continued)
  std::uint64_t checkpoints_skipped_invalid = 0; // corrupt checkpoints skipped by auto-resume

  double injected_latency_seconds = 0.0;  // simulated fetch latency (straggler-scaled)
  double backoff_seconds = 0.0;           // simulated retry backoff

  FaultStats& operator+=(const FaultStats& other) noexcept {
    transient_failures += other.transient_failures;
    retries += other.retries;
    permanent_failures += other.permanent_failures;
    wasted_bytes += other.wasted_bytes;
    degraded_batches += other.degraded_batches;
    crashes += other.crashes;
    recoveries += other.recoveries;
    storage_write_faults += other.storage_write_faults;
    storage_read_faults += other.storage_read_faults;
    checkpoint_write_failures += other.checkpoint_write_failures;
    checkpoints_skipped_invalid += other.checkpoints_skipped_invalid;
    injected_latency_seconds += other.injected_latency_seconds;
    backoff_seconds += other.backoff_seconds;
    return *this;
  }
};

/// Draws fault decisions for a plan. One instance is shared by all workers;
/// each worker only touches its own Rng stream, so concurrent use by
/// distinct workers is safe and deterministic.
class FaultInjector {
 public:
  /// Validates the plan (see validate_fault_plan) and derives one stream per
  /// worker: Rng(seed).split("fault", worker).
  FaultInjector(FaultPlan plan, std::uint64_t seed, std::uint32_t num_workers);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// One Bernoulli draw on `worker`'s stream: does this fetch attempt fail?
  [[nodiscard]] bool fetch_attempt_fails(std::uint32_t worker);

  /// Simulated latency of one fetch attempt by `worker` (straggler-scaled).
  [[nodiscard]] double fetch_latency_seconds(std::uint32_t worker) const noexcept;

  [[nodiscard]] double straggler_factor(std::uint32_t worker) const noexcept;

  /// True iff the plan crashes `worker` at the start of (epoch, batch).
  [[nodiscard]] bool crash_due(std::uint32_t worker, std::uint32_t epoch,
                               std::uint32_t batch) const noexcept;

  /// `worker`'s private fault stream (retry jitter draws share it so every
  /// fault decision stays on one deterministic per-worker sequence).
  [[nodiscard]] util::Rng& rng(std::uint32_t worker) noexcept { return rngs_[worker]; }

 private:
  FaultPlan plan_;
  std::vector<util::Rng> rngs_;
};

}  // namespace splpg::dist
