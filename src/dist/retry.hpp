// Retry policy for remote fetches in the distributed simulation.
//
// Every remote structure/feature fetch in WorkerView flows through a
// RetryPolicy: a transiently failed attempt (decided by the FaultInjector)
// is re-tried up to `max_attempts` times with exponential backoff and
// deterministic jitter (drawn from the worker's private fault stream), all
// in *simulated* time — nothing sleeps, the seconds are accumulated in
// FaultStats and priced by dist/cost_model. A fetch that exhausts its
// attempts, or whose batch blows through `batch_deadline_seconds` of
// simulated fault time, fails permanently: WorkerView throws
// RemoteFetchError and the trainer degrades that batch gracefully (local
// negative candidates, no remote reads) instead of aborting.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace splpg::dist {

struct RetryPolicy {
  /// Total tries per fetch (first attempt included). Must be >= 1.
  std::uint32_t max_attempts = 4;
  /// Backoff before retry k (1-based) is
  ///   min(base * multiplier^(k-1), max_backoff) * (1 + jitter * u),
  /// with u drawn uniformly from [0, 1) on the worker's fault stream.
  double base_backoff_seconds = 1e-3;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.1;
  double jitter = 0.1;
  /// Simulated fault-time budget (latency + backoff) per mini-batch; once
  /// exceeded, further failures in the batch are permanent. 0 = no deadline.
  double batch_deadline_seconds = 0.0;

  [[nodiscard]] double backoff_seconds(std::uint32_t retry_index, util::Rng& rng) const {
    double backoff = base_backoff_seconds;
    for (std::uint32_t k = 1; k < retry_index; ++k) backoff *= backoff_multiplier;
    if (backoff > max_backoff_seconds) backoff = max_backoff_seconds;
    return backoff * (1.0 + jitter * rng.uniform());
  }
};

/// A remote fetch that failed permanently (retries exhausted or batch
/// deadline exceeded). Carries the requesting partition and node so the
/// degradation path is debuggable.
class RemoteFetchError : public std::runtime_error {
 public:
  RemoteFetchError(std::uint32_t part, graph::NodeId node, const std::string& what_kind)
      : std::runtime_error("remote " + what_kind + " fetch of node " + std::to_string(node) +
                           " by partition " + std::to_string(part) +
                           " failed permanently (retries exhausted)"),
        part_(part),
        node_(node) {}

  [[nodiscard]] std::uint32_t part() const noexcept { return part_; }
  [[nodiscard]] graph::NodeId node() const noexcept { return node_; }

 private:
  std::uint32_t part_;
  graph::NodeId node_;
};

}  // namespace splpg::dist
