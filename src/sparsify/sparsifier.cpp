#include "sparsify/sparsifier.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>
#include <unordered_map>

#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace splpg::sparsify {

using graph::CsrGraph;
using graph::Edge;
using graph::EdgeId;
using graph::NodeId;
using util::AliasTable;
using util::Rng;

Sparsifier::Sparsifier(double alpha, std::size_t num_threads)
    : alpha_(alpha), num_threads_(num_threads) {
  if (alpha <= 0.0) throw std::invalid_argument("sparsifier: alpha must be > 0");
}

std::pair<std::vector<Edge>, std::vector<float>> Sparsifier::sparsify_edges(
    std::span<const Edge> edges, const std::function<double(NodeId)>& degree_of, Rng& rng,
    SparsifyStats* stats) const {
  std::pair<std::vector<Edge>, std::vector<float>> out;
  if (edges.empty()) return out;

  std::vector<double> importance(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    importance[e] = edge_importance(edges[e], degree_of);
  }
  const AliasTable alias{std::span<const double>(importance)};

  const auto draws = static_cast<EdgeId>(
      std::max<double>(1.0, std::ceil(alpha_ * static_cast<double>(edges.size()))));

  // Accumulate weights per distinct sampled edge index; summing duplicates
  // implements "sum the weights up if an edge is chosen more than once".
  std::unordered_map<std::uint32_t, double> weight_of;
  weight_of.reserve(draws * 2);
  for (EdgeId l = 0; l < draws; ++l) {
    const std::uint32_t e = alias.sample(rng);
    weight_of[e] += 1.0 / (static_cast<double>(draws) * alias.probability(e));
  }

  out.first.reserve(weight_of.size());
  out.second.reserve(weight_of.size());
  for (const auto& [e, weight] : weight_of) {
    out.first.push_back(edges[e]);
    out.second.push_back(static_cast<float>(weight));
  }
  if (stats != nullptr) {
    stats->original_edges = edges.size();
    stats->sampled_draws = draws;
    stats->kept_edges = out.first.size();
    stats->removal_ratio =
        1.0 - static_cast<double>(out.first.size()) / static_cast<double>(edges.size());
  }
  return out;
}

CsrGraph Sparsifier::sparsify(const CsrGraph& graph, Rng& rng, SparsifyStats* stats) const {
  const util::Stopwatch watch;
  auto [edges, weights] = sparsify_edges(
      graph.edges(), [&graph](NodeId v) { return static_cast<double>(graph.degree(v)); }, rng,
      stats);
  CsrGraph out(graph.num_nodes(), std::move(edges), std::move(weights));
  if (stats != nullptr) stats->elapsed_seconds = watch.seconds();
  return out;
}

std::vector<CsrGraph> Sparsifier::sparsify_partitions(
    const CsrGraph& graph, const std::vector<std::uint32_t>& assignment, std::uint32_t num_parts,
    Rng& rng, std::vector<SparsifyStats>* stats) const {
  if (assignment.size() != graph.num_nodes()) {
    throw std::invalid_argument("sparsify_partitions: assignment size mismatch");
  }
  if (stats != nullptr) stats->assign(num_parts, SparsifyStats{});

  // Each partition is independent work over a pre-split RNG stream, so the
  // fan-out below never races and never reorders draws: slot `part` of the
  // output is the same bytes whether computed here or on a pool thread.
  std::vector<CsrGraph> out(num_parts);
  auto process_part = [&](std::size_t part_index) {
    const auto part = static_cast<std::uint32_t>(part_index);
    const util::Stopwatch watch;
    const util::ThreadCpuStopwatch cpu_watch;
    Rng part_rng = rng.split("part", part);

    // Partition subgraph G^i: every edge with at least one endpoint in part i
    // ("cross-partition edges are maintained in both partitions").
    std::vector<Edge> part_edges;
    for (const auto& edge : graph.edges()) {
      if (assignment[edge.u] == part || assignment[edge.v] == part) {
        part_edges.push_back(edge);
      }
    }
    // Degrees *within* G^i.
    std::unordered_map<NodeId, double> degree;
    degree.reserve(part_edges.size() * 2);
    for (const auto& [u, v] : part_edges) {
      degree[u] += 1.0;
      degree[v] += 1.0;
    }

    SparsifyStats part_stats;
    auto [edges, weights] =
        sparsify_edges(std::span<const Edge>(part_edges),
                       [&degree](NodeId v) { return degree.at(v); }, part_rng, &part_stats);
    out[part] = CsrGraph(graph.num_nodes(), std::move(edges), std::move(weights));
    part_stats.elapsed_seconds = watch.seconds();
    part_stats.cpu_seconds = cpu_watch.seconds();
    if (stats != nullptr) (*stats)[part] = part_stats;
  };

  if (num_threads_ != 1 && num_parts > 1) {
    util::ThreadPool pool(num_threads_);
    pool.parallel_for(0, num_parts, process_part);
  } else {
    for (std::uint32_t part = 0; part < num_parts; ++part) process_part(part);
  }
  return out;
}

double EffectiveResistanceSparsifier::edge_importance(
    const Edge& edge, const std::function<double(NodeId)>& degree_of) const {
  return 1.0 / degree_of(edge.u) + 1.0 / degree_of(edge.v);
}

double UniformSparsifier::edge_importance(const Edge& edge,
                                          const std::function<double(NodeId)>& degree_of) const {
  (void)edge;
  (void)degree_of;
  return 1.0;
}

std::unique_ptr<Sparsifier> make_sparsifier(SparsifierKind kind, double alpha) {
  SparsifyConfig config;
  config.alpha = alpha;
  return make_sparsifier(kind, config);
}

std::unique_ptr<Sparsifier> make_sparsifier(SparsifierKind kind, const SparsifyConfig& config) {
  switch (kind) {
    case SparsifierKind::kEffectiveResistance:
      return std::make_unique<EffectiveResistanceSparsifier>(config.alpha, config.num_threads);
    case SparsifierKind::kUniform:
      return std::make_unique<UniformSparsifier>(config.alpha, config.num_threads);
  }
  throw std::invalid_argument("unknown sparsifier kind");
}

}  // namespace splpg::sparsify
