// Effective resistance of graph edges — exact and approximate.
//
// Exact (Eq. (3) of the paper): r(u,v) = (e_u - e_v)^T L+ (e_u - e_v), with
// L+ the pseudo-inverse of the combinatorial Laplacian. O(n^3) — validation
// only.
//
// Approximate (Theorem 2, Lovász): 1/2 (1/du + 1/dv) <= r(u,v) <=
// (1/gamma)(1/du + 1/dv), where gamma is the second-smallest eigenvalue of
// the normalized Laplacian. SpLPG samples edges proportionally to
// (1/du + 1/dv), which needs only node degrees.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "tensor/matrix.hpp"

namespace splpg::util {
class ThreadPool;
}  // namespace splpg::util

namespace splpg::sparsify {

// The dense kernels accept an optional ThreadPool; passing one row-blocks the
// O(n^2) fill loops across it. Results are bit-identical with and without a
// pool (threads own disjoint row/edge blocks; per-element accumulation order
// is unchanged).

/// Combinatorial Laplacian L = D - A as a dense matrix (weights respected).
[[nodiscard]] tensor::Matrix laplacian(const graph::CsrGraph& graph,
                                       util::ThreadPool* pool = nullptr);

/// Symmetric normalized Laplacian D^-1/2 L D^-1/2 (isolated nodes yield zero
/// rows/columns).
[[nodiscard]] tensor::Matrix normalized_laplacian(const graph::CsrGraph& graph,
                                                  util::ThreadPool* pool = nullptr);

/// Exact effective resistance per canonical edge via the Laplacian
/// pseudo-inverse. O(n^3 + m).
[[nodiscard]] std::vector<double> exact_effective_resistance(const graph::CsrGraph& graph,
                                                             util::ThreadPool* pool = nullptr);

/// Degree-based upper-bound proxy per canonical edge: 1/du + 1/dv.
/// This is what SpLPG's sampler uses (Theorem 2). Degree-0 endpoints (which
/// partition-induced subgraphs can produce) contribute 0 instead of dividing
/// by zero.
[[nodiscard]] std::vector<double> approx_effective_resistance(const graph::CsrGraph& graph);

/// Second-smallest eigenvalue of the normalized Laplacian (gamma in
/// Theorem 2). O(n^3) — validation only.
[[nodiscard]] double normalized_laplacian_gamma(const graph::CsrGraph& graph,
                                                util::ThreadPool* pool = nullptr);

}  // namespace splpg::sparsify
