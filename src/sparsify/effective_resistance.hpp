// Effective resistance of graph edges — exact and approximate.
//
// Exact (Eq. (3) of the paper): r(u,v) = (e_u - e_v)^T L+ (e_u - e_v), with
// L+ the pseudo-inverse of the combinatorial Laplacian. O(n^3) — validation
// only.
//
// Approximate (Theorem 2, Lovász): 1/2 (1/du + 1/dv) <= r(u,v) <=
// (1/gamma)(1/du + 1/dv), where gamma is the second-smallest eigenvalue of
// the normalized Laplacian. SpLPG samples edges proportionally to
// (1/du + 1/dv), which needs only node degrees.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "tensor/matrix.hpp"

namespace splpg::sparsify {

/// Combinatorial Laplacian L = D - A as a dense matrix (weights respected).
[[nodiscard]] tensor::Matrix laplacian(const graph::CsrGraph& graph);

/// Symmetric normalized Laplacian D^-1/2 L D^-1/2 (isolated nodes yield zero
/// rows/columns).
[[nodiscard]] tensor::Matrix normalized_laplacian(const graph::CsrGraph& graph);

/// Exact effective resistance per canonical edge via the Laplacian
/// pseudo-inverse. O(n^3 + m).
[[nodiscard]] std::vector<double> exact_effective_resistance(const graph::CsrGraph& graph);

/// Degree-based upper-bound proxy per canonical edge: 1/du + 1/dv.
/// This is what SpLPG's sampler uses (Theorem 2).
[[nodiscard]] std::vector<double> approx_effective_resistance(const graph::CsrGraph& graph);

/// Second-smallest eigenvalue of the normalized Laplacian (gamma in
/// Theorem 2). O(n^3) — validation only.
[[nodiscard]] double normalized_laplacian_gamma(const graph::CsrGraph& graph);

}  // namespace splpg::sparsify
