// Effective resistance of graph edges — exact and approximate.
//
// Exact (Eq. (3) of the paper): r(u,v) = (e_u - e_v)^T L+ (e_u - e_v), with
// L+ the pseudo-inverse of the combinatorial Laplacian. Three solvers
// compute it:
//
//  * kCg (default): per-edge conjugate-gradient solves L x = e_u - e_v on a
//    sparse CSR Laplacian (tensor/sparse.hpp + tensor/cg.hpp), then
//    r = x[u] - x[v]. O(m * nnz * cg_iters) total, double precision —
//    matches the dense pseudo-inverse to solver tolerance and scales to
//    graphs the dense route cannot touch.
//  * kJl: the Spielman–Srivastava Johnson–Lindenstrauss sketch. Project the
//    weighted incidence matrix with k random ±1/sqrt(k) rows, solve one
//    Laplacian system per projection, and read every edge's resistance as a
//    squared distance: r(u,v) ~ sum_i (z_i[u] - z_i[v])^2 with relative
//    error ~jl_epsilon. O(k * nnz * cg_iters) for ALL edges at once —
//    k = O(log n / eps^2) — the only route that is practical on
//    million-edge graphs.
//  * kDense: the original eigendecomposition route
//    (tensor::symmetric_eigen -> symmetric_pseudo_inverse). O(n^3), float
//    eigenvectors. Kept as the small-n cross-check oracle for the sparse
//    solvers; do not use beyond a few hundred nodes.
//
// Approximate (Theorem 2, Lovász): 1/2 (1/du + 1/dv) <= r(u,v) <=
// (1/gamma)(1/du + 1/dv), where gamma is the spectral gap of the normalized
// Laplacian. SpLPG samples edges proportionally to (1/du + 1/dv), which
// needs only node degrees.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "tensor/matrix.hpp"
#include "tensor/sparse.hpp"

namespace splpg::util {
class ThreadPool;
}  // namespace splpg::util

namespace splpg::sparsify {

// The kernels accept an optional ThreadPool. Results are bit-identical with
// and without a pool at every width: dense fills row-block disjoint rows,
// the CG route fans independent per-edge (or per-projection) solves out
// whole, and every reduction keeps its serial accumulation order.

/// Which solver backs exact_effective_resistance.
enum class ErSolver : std::uint8_t {
  kDense,  // O(n^3) eigen pseudo-inverse — small-n oracle
  kCg,     // sparse per-edge conjugate gradients — exact, scalable
  kJl,     // Spielman–Srivastava JL sketch — approximate, fastest
};

/// Round-trips with er_solver_from_string; used by bench/example flags.
[[nodiscard]] std::string er_solver_name(ErSolver solver);
[[nodiscard]] ErSolver er_solver_from_string(const std::string& name);

struct ErSolverOptions {
  ErSolver solver = ErSolver::kCg;
  /// CG termination: ||r|| <= tolerance * ||b|| (see tensor/cg.hpp).
  double tolerance = 1e-10;
  /// CG iteration cap; 0 = auto (10n + 100).
  std::size_t max_iterations = 0;
  /// JL sketch error knob: resistances land within ~(1 ± jl_epsilon) of
  /// exact with high probability. Smaller epsilon -> more projections.
  double jl_epsilon = 0.25;
  /// Number of JL projections k; 0 = auto ceil(4 ln n / jl_epsilon^2).
  std::size_t jl_projections = 0;
  /// Seed of the deterministic ±1 projection streams (one split("jl", i)
  /// stream per projection, so results are bit-identical at every thread
  /// width and independent of how projections are scheduled).
  std::uint64_t jl_seed = 0x5eed;
};

/// Combinatorial Laplacian L = D - A as a dense matrix (weights respected).
/// Duplicate (parallel) edges accumulate, and self-loop entries cancel out
/// of L entirely, so rows always sum to zero.
[[nodiscard]] tensor::Matrix laplacian(const graph::CsrGraph& graph,
                                       util::ThreadPool* pool = nullptr);

/// Combinatorial Laplacian in CSR form (double precision): the operator the
/// iterative solvers run on. nnz <= 2m + n; duplicate adjacency entries are
/// merged, self-loops cancel. Rows sum to zero exactly as in the dense
/// `laplacian`.
[[nodiscard]] tensor::SparseMatrix sparse_laplacian(const graph::CsrGraph& graph);

/// Symmetric normalized Laplacian D^-1/2 L D^-1/2 (isolated nodes yield zero
/// rows/columns).
[[nodiscard]] tensor::Matrix normalized_laplacian(const graph::CsrGraph& graph,
                                                  util::ThreadPool* pool = nullptr);

/// Exact effective resistance per canonical edge via the default solver
/// (CG; see ErSolverOptions). Equivalent to
/// exact_effective_resistance(graph, ErSolverOptions{}, pool).
[[nodiscard]] std::vector<double> exact_effective_resistance(const graph::CsrGraph& graph,
                                                             util::ThreadPool* pool = nullptr);

/// Exact/sketched effective resistance per canonical edge with an explicit
/// solver choice. kDense and kCg agree to solver tolerance; kJl carries the
/// jl_epsilon relative error. An edge's endpoints always share a component,
/// so every per-edge system is consistent even on disconnected graphs.
[[nodiscard]] std::vector<double> exact_effective_resistance(const graph::CsrGraph& graph,
                                                             const ErSolverOptions& options,
                                                             util::ThreadPool* pool = nullptr);

/// Effective resistance of a subset of canonical edges (indices into
/// graph.edges()). kCg solves only the listed edges — the cheap spot-check
/// path on graphs where all-edges solves are not wanted; kDense reads the
/// entries off one pseudo-inverse; kJl (which must sketch every edge anyway)
/// routes to kCg.
[[nodiscard]] std::vector<double> effective_resistance_for_edges(
    const graph::CsrGraph& graph, std::span<const graph::EdgeId> edge_ids,
    const ErSolverOptions& options, util::ThreadPool* pool = nullptr);

/// Degree-based upper-bound proxy per canonical edge: 1/du + 1/dv.
/// This is what SpLPG's sampler uses (Theorem 2). Degree-0 endpoints (which
/// partition-induced subgraphs can produce) contribute 0 instead of dividing
/// by zero.
[[nodiscard]] std::vector<double> approx_effective_resistance(const graph::CsrGraph& graph);

/// Spectral gap gamma of the normalized Laplacian (Theorem 2): the smallest
/// eigenvalue above a noise tolerance. On a connected graph this is the
/// second-smallest eigenvalue; on a disconnected graph the second-smallest
/// is 0 (one zero per component, plus Jacobi noise that can dip negative),
/// so clamping to the smallest *positive* eigenvalue keeps the 1/gamma
/// upper bound finite and meaningful per component. Returns 0.0 (sentinel:
/// "no spectral gap") when no eigenvalue clears the tolerance — e.g. an
/// edgeless graph. O(n^3) — validation only.
[[nodiscard]] double normalized_laplacian_gamma(const graph::CsrGraph& graph,
                                                util::ThreadPool* pool = nullptr);

}  // namespace splpg::sparsify
