#include "sparsify/effective_resistance.hpp"

#include <cmath>
#include <functional>

#include "tensor/eigen.hpp"
#include "util/thread_pool.hpp"

namespace splpg::sparsify {

using graph::CsrGraph;
using graph::NodeId;
using tensor::Matrix;

namespace {

/// Runs fn(i) over [0, n) — on the pool when one is given, inline otherwise.
/// Callers guarantee fn(i) touches state no other i touches, so pooled and
/// inline execution produce identical bytes.
void for_each_index(std::size_t n, util::ThreadPool* pool,
                    const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr && n > 1) {
    pool->parallel_for(0, n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

Matrix laplacian(const CsrGraph& graph, util::ThreadPool* pool) {
  const NodeId n = graph.num_nodes();
  Matrix lap(n, n);
  // Row u depends only on u's adjacency: off-diagonals are -w per neighbor,
  // the diagonal is u's weighted degree. Rows are disjoint, so row blocks
  // parallelize without synchronization.
  for_each_index(n, pool, [&](std::size_t row) {
    const auto u = static_cast<NodeId>(row);
    const auto neighbors = graph.neighbors(u);
    const auto weights = graph.neighbor_weights(u);
    float degree = 0.0F;
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const float w = weights.empty() ? 1.0F : weights[k];
      lap.at(u, neighbors[k]) = -w;
      degree += w;
    }
    lap.at(u, u) = degree;
  });
  return lap;
}

Matrix normalized_laplacian(const CsrGraph& graph, util::ThreadPool* pool) {
  const NodeId n = graph.num_nodes();
  // Weighted degrees.
  std::vector<double> degree(n, 0.0);
  const auto edges = graph.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    const double w = graph.edge_weight(e);
    degree[u] += w;
    degree[v] += w;
  }
  const Matrix lap = laplacian(graph, pool);
  Matrix out(n, n);
  for_each_index(n, pool, [&](std::size_t row) {
    const auto i = static_cast<NodeId>(row);
    const double di = degree[i];
    if (di <= 0.0) return;
    for (NodeId j = 0; j < n; ++j) {
      const double dj = degree[j];
      if (dj <= 0.0) continue;
      out.at(i, j) = static_cast<float>(lap.at(i, j) / std::sqrt(di * dj));
    }
  });
  return out;
}

std::vector<double> exact_effective_resistance(const CsrGraph& graph, util::ThreadPool* pool) {
  const Matrix pinv = tensor::symmetric_pseudo_inverse(laplacian(graph, pool), 1e-8, pool);
  const auto edges = graph.edges();
  std::vector<double> resistance(edges.size());
  for_each_index(edges.size(), pool, [&](std::size_t e) {
    const auto [u, v] = edges[e];
    // (e_u - e_v)^T L+ (e_u - e_v) = L+_uu + L+_vv - 2 L+_uv.
    resistance[e] = static_cast<double>(pinv.at(u, u)) + pinv.at(v, v) - 2.0 * pinv.at(u, v);
  });
  return resistance;
}

std::vector<double> approx_effective_resistance(const CsrGraph& graph) {
  std::vector<double> proxy;
  proxy.reserve(graph.num_edges());
  for (const auto& [u, v] : graph.edges()) {
    const double du = graph.degree(u);
    const double dv = graph.degree(v);
    // Degree-0 endpoints contribute 0 instead of 1/0: partition-induced
    // subgraphs keep the global node set, so callers may hand us graphs
    // whose degree array has holes (a release build must not divide by
    // zero even if the edge list and degrees disagree).
    const double inv_du = du > 0.0 ? 1.0 / du : 0.0;
    const double inv_dv = dv > 0.0 ? 1.0 / dv : 0.0;
    proxy.push_back(inv_du + inv_dv);
  }
  return proxy;
}

double normalized_laplacian_gamma(const CsrGraph& graph, util::ThreadPool* pool) {
  const auto decomposition = tensor::symmetric_eigen(normalized_laplacian(graph, pool));
  if (decomposition.eigenvalues.size() < 2) return 0.0;
  return decomposition.eigenvalues[1];
}

}  // namespace splpg::sparsify
