#include "sparsify/effective_resistance.hpp"

#include <cassert>
#include <cmath>

#include "tensor/eigen.hpp"

namespace splpg::sparsify {

using graph::CsrGraph;
using graph::NodeId;
using tensor::Matrix;

Matrix laplacian(const CsrGraph& graph) {
  const NodeId n = graph.num_nodes();
  Matrix lap(n, n);
  const auto edges = graph.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    const float w = graph.edge_weight(e);
    lap.at(u, v) -= w;
    lap.at(v, u) -= w;
    lap.at(u, u) += w;
    lap.at(v, v) += w;
  }
  return lap;
}

Matrix normalized_laplacian(const CsrGraph& graph) {
  const NodeId n = graph.num_nodes();
  // Weighted degrees.
  std::vector<double> degree(n, 0.0);
  const auto edges = graph.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    const double w = graph.edge_weight(e);
    degree[u] += w;
    degree[v] += w;
  }
  Matrix lap = laplacian(graph);
  Matrix out(n, n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      const double di = degree[i];
      const double dj = degree[j];
      if (di <= 0.0 || dj <= 0.0) continue;
      out.at(i, j) = static_cast<float>(lap.at(i, j) / std::sqrt(di * dj));
    }
  }
  return out;
}

std::vector<double> exact_effective_resistance(const CsrGraph& graph) {
  const Matrix pinv = tensor::symmetric_pseudo_inverse(laplacian(graph));
  std::vector<double> resistance;
  resistance.reserve(graph.num_edges());
  for (const auto& [u, v] : graph.edges()) {
    // (e_u - e_v)^T L+ (e_u - e_v) = L+_uu + L+_vv - 2 L+_uv.
    const double r = static_cast<double>(pinv.at(u, u)) + pinv.at(v, v) - 2.0 * pinv.at(u, v);
    resistance.push_back(r);
  }
  return resistance;
}

std::vector<double> approx_effective_resistance(const CsrGraph& graph) {
  std::vector<double> proxy;
  proxy.reserve(graph.num_edges());
  for (const auto& [u, v] : graph.edges()) {
    const double du = graph.degree(u);
    const double dv = graph.degree(v);
    assert(du > 0 && dv > 0);
    proxy.push_back(1.0 / du + 1.0 / dv);
  }
  return proxy;
}

double normalized_laplacian_gamma(const CsrGraph& graph) {
  const auto decomposition = tensor::symmetric_eigen(normalized_laplacian(graph));
  if (decomposition.eigenvalues.size() < 2) return 0.0;
  return decomposition.eigenvalues[1];
}

}  // namespace splpg::sparsify
