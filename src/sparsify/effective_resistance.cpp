#include "sparsify/effective_resistance.hpp"

#include <cmath>
#include <functional>
#include <numeric>
#include <span>
#include <stdexcept>
#include <utility>

#include "tensor/cg.hpp"
#include "tensor/eigen.hpp"
#include "tensor/vec.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace splpg::sparsify {

using graph::CsrGraph;
using graph::EdgeId;
using graph::NodeId;
using tensor::Matrix;
using tensor::SparseMatrix;

namespace {

/// Runs fn(i) over [0, n) — on the pool when one is given, inline otherwise.
/// Callers guarantee fn(i) touches state no other i touches, so pooled and
/// inline execution produce identical bytes.
void for_each_index(std::size_t n, util::ThreadPool* pool,
                    const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr && n > 1) {
    pool->parallel_for(0, n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

/// The original dense route: eigendecompose L, pseudo-invert, read
/// r = L+_uu + L+_vv - 2 L+_uv per edge. O(n^3) — the small-n oracle the
/// sparse solvers are cross-checked against.
std::vector<double> dense_effective_resistance(const CsrGraph& graph, util::ThreadPool* pool) {
  const Matrix pinv = tensor::symmetric_pseudo_inverse(laplacian(graph, pool), 1e-8, pool);
  const auto edges = graph.edges();
  std::vector<double> resistance(edges.size());
  for_each_index(edges.size(), pool, [&](std::size_t e) {
    const auto [u, v] = edges[e];
    // (e_u - e_v)^T L+ (e_u - e_v) = L+_uu + L+_vv - 2 L+_uv.
    resistance[e] = static_cast<double>(pinv.at(u, u)) + pinv.at(v, v) - 2.0 * pinv.at(u, v);
  });
  return resistance;
}

/// Per-edge CG solves of L x = e_u - e_v for the listed canonical edges.
/// Each edge is independent work, so the fan-out across `pool` is trivially
/// bit-identical to serial; a solve that lands on a pool worker runs its
/// inner spmv inline (ThreadPool nesting semantics), while a solve on the
/// calling thread row-blocks the spmv across the pool.
std::vector<double> cg_resistance_for_edges(const CsrGraph& graph,
                                            std::span<const EdgeId> edge_ids,
                                            const ErSolverOptions& options,
                                            util::ThreadPool* pool) {
  const SparseMatrix lap = sparse_laplacian(graph);
  const std::size_t n = graph.num_nodes();
  const auto edges = graph.edges();
  tensor::CgOptions cg;
  cg.tolerance = options.tolerance;
  cg.max_iterations = options.max_iterations;

  std::vector<double> resistance(edge_ids.size());
  for_each_index(edge_ids.size(), pool, [&](std::size_t i) {
    const auto [u, v] = edges[edge_ids[i]];
    std::vector<double> b(n, 0.0);
    std::vector<double> x(n, 0.0);
    b[u] = 1.0;
    b[v] = -1.0;
    // b sums to zero within u's component (u and v share it — they are an
    // edge's endpoints), so the singular system is consistent and CG
    // converges to the pseudo-inverse solution even on disconnected graphs.
    (void)tensor::pcg_solve(lap, b, x, cg, pool);
    resistance[i] = x[u] - x[v];
  });
  return resistance;
}

/// Spielman–Srivastava sketch: r(u,v) = ||W^1/2 B L+ (e_u - e_v)||^2, with
/// B the m x n signed incidence matrix. Project with k random ±1/sqrt(k)
/// rows Q, solve L z_i = (Q W^1/2 B)_i per row, and every edge's resistance
/// falls out as sum_i (z_i[u] - z_i[v])^2 — within ~(1 ± jl_epsilon) of
/// exact for k = O(log n / eps^2).
std::vector<double> jl_effective_resistance(const CsrGraph& graph,
                                            const ErSolverOptions& options,
                                            util::ThreadPool* pool) {
  const std::size_t n = graph.num_nodes();
  const auto edges = graph.edges();
  const std::size_t m = edges.size();
  if (m == 0) return {};

  std::size_t k = options.jl_projections;
  if (k == 0) {
    const double eps = options.jl_epsilon;
    if (eps <= 0.0) throw std::invalid_argument("jl_epsilon must be > 0");
    k = static_cast<std::size_t>(
        std::ceil(4.0 * std::log(static_cast<double>(std::max<std::size_t>(n, 2))) / (eps * eps)));
  }
  k = std::max<std::size_t>(k, 1);

  const SparseMatrix lap = sparse_laplacian(graph);
  tensor::CgOptions cg;
  cg.tolerance = options.tolerance;
  cg.max_iterations = options.max_iterations;

  // Solve one system per projection. Projection i draws its ±1 signs from
  // its own pre-split stream split("jl", i), so the sketch is a pure
  // function of (jl_seed, i) — bit-identical however the solves are
  // scheduled. Memory: k solution vectors, O(k * n) doubles.
  std::vector<std::vector<double>> z(k);
  const util::Rng base(options.jl_seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(k));
  for_each_index(k, pool, [&](std::size_t i) {
    util::Rng rng = base.split("jl", i);
    // y_i = (Q W^1/2 B)_i: edge e adds ±sqrt(w_e)/sqrt(k) at u and the
    // negation at v. Each term sums to zero inside e's component, so y_i is
    // in range(L) and the solve is consistent.
    std::vector<double> y(n, 0.0);
    for (std::size_t e = 0; e < m; ++e) {
      const double q = (rng.next() & 1ULL) != 0 ? scale : -scale;
      const double sw = q * std::sqrt(static_cast<double>(graph.edge_weight(e)));
      y[edges[e].u] += sw;
      y[edges[e].v] -= sw;
    }
    z[i].assign(n, 0.0);
    (void)tensor::pcg_solve(lap, y, z[i], cg, pool);
  });

  // Transpose the k solution vectors into one node-major block: each edge's
  // sketch distance becomes a contiguous sum of squared differences instead
  // of striding across k separate vectors. Each edge is owned by one task
  // and the scalar backend sums in ascending projection order — the same
  // bytes the projection-major loop produced at every pool width.
  std::vector<double> zt(n * k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::vector<double>& zi = z[i];
    for (std::size_t u = 0; u < n; ++u) zt[u * k + i] = zi[u];
  }
  std::vector<double> resistance(m);
  const tensor::VecKernels& kern = tensor::vec_kernels();
  for_each_index(m, pool, [&](std::size_t e) {
    const auto [u, v] = edges[e];
    resistance[e] = kern.ssd_f64(&zt[u * k], &zt[v * k], k);
  });
  return resistance;
}

}  // namespace

std::string er_solver_name(ErSolver solver) {
  switch (solver) {
    case ErSolver::kDense:
      return "dense";
    case ErSolver::kCg:
      return "cg";
    case ErSolver::kJl:
      return "jl";
  }
  throw std::invalid_argument("unknown ErSolver");
}

ErSolver er_solver_from_string(const std::string& name) {
  if (name == "dense") return ErSolver::kDense;
  if (name == "cg") return ErSolver::kCg;
  if (name == "jl") return ErSolver::kJl;
  throw std::invalid_argument("unknown ER solver '" + name + "' (want dense|cg|jl)");
}

Matrix laplacian(const CsrGraph& graph, util::ThreadPool* pool) {
  const NodeId n = graph.num_nodes();
  Matrix lap(n, n);
  // Row u depends only on u's adjacency: off-diagonals are -w per neighbor,
  // the diagonal is u's weighted degree. Rows are disjoint, so row blocks
  // parallelize without synchronization.
  for_each_index(n, pool, [&](std::size_t row) {
    const auto u = static_cast<NodeId>(row);
    const auto neighbors = graph.neighbors(u);
    const auto weights = graph.neighbor_weights(u);
    float degree = 0.0F;
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const float w = weights.empty() ? 1.0F : weights[k];
      // A self-loop contributes w to A_uu and w to D_uu, so it cancels out
      // of L = D - A entirely: skip both sides. (Defensive — CsrGraph
      // forbids loops today, but the Laplacian must not double-count one if
      // a relaxed loader ever hands one through.)
      if (neighbors[k] == u) continue;
      // Accumulate rather than assign: duplicate (parallel) edges are legal
      // in directly constructed CsrGraphs, and an assignment would keep only
      // the last copy while the degree sums all of them — breaking the
      // row-sums-to-zero invariant.
      lap.at(u, neighbors[k]) -= w;
      degree += w;
    }
    lap.at(u, u) = degree;
  });
  return lap;
}

SparseMatrix sparse_laplacian(const CsrGraph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<std::size_t> offsets;
  std::vector<std::uint32_t> cols;
  std::vector<double> vals;
  offsets.reserve(static_cast<std::size_t>(n) + 1);
  cols.reserve(graph.total_degree() + n);
  vals.reserve(graph.total_degree() + n);
  offsets.push_back(0);

  // Scratch for one row of merged off-diagonal entries.
  std::vector<std::pair<std::uint32_t, double>> row;
  for (NodeId u = 0; u < n; ++u) {
    const auto neighbors = graph.neighbors(u);
    const auto weights = graph.neighbor_weights(u);
    row.clear();
    double degree = 0.0;
    // Neighbor lists are sorted, so duplicate (parallel) edges are adjacent:
    // merge them into one entry whose weight is the sum, mirroring the dense
    // laplacian's accumulation. Self-loops cancel out of L and are skipped.
    std::size_t k = 0;
    while (k < neighbors.size()) {
      const NodeId v = neighbors[k];
      double w = weights.empty() ? 1.0 : weights[k];
      while (k + 1 < neighbors.size() && neighbors[k + 1] == v) {
        ++k;
        w += weights.empty() ? 1.0 : weights[k];
      }
      ++k;
      if (v == u) continue;
      row.emplace_back(v, -w);
      degree += w;
    }
    // Emit in ascending column order with the diagonal spliced in.
    bool diagonal_emitted = false;
    for (const auto& [v, w] : row) {
      if (!diagonal_emitted && v > u) {
        cols.push_back(u);
        vals.push_back(degree);
        diagonal_emitted = true;
      }
      cols.push_back(v);
      vals.push_back(w);
    }
    if (!diagonal_emitted) {
      cols.push_back(u);
      vals.push_back(degree);
    }
    offsets.push_back(cols.size());
  }
  return SparseMatrix(n, n, std::move(offsets), std::move(cols), std::move(vals));
}

Matrix normalized_laplacian(const CsrGraph& graph, util::ThreadPool* pool) {
  const NodeId n = graph.num_nodes();
  // Weighted degrees.
  std::vector<double> degree(n, 0.0);
  const auto edges = graph.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    const double w = graph.edge_weight(e);
    degree[u] += w;
    degree[v] += w;
  }
  const Matrix lap = laplacian(graph, pool);
  Matrix out(n, n);
  for_each_index(n, pool, [&](std::size_t row) {
    const auto i = static_cast<NodeId>(row);
    const double di = degree[i];
    if (di <= 0.0) return;
    for (NodeId j = 0; j < n; ++j) {
      const double dj = degree[j];
      if (dj <= 0.0) continue;
      out.at(i, j) = static_cast<float>(lap.at(i, j) / std::sqrt(di * dj));
    }
  });
  return out;
}

std::vector<double> exact_effective_resistance(const CsrGraph& graph, util::ThreadPool* pool) {
  return exact_effective_resistance(graph, ErSolverOptions{}, pool);
}

std::vector<double> exact_effective_resistance(const CsrGraph& graph,
                                               const ErSolverOptions& options,
                                               util::ThreadPool* pool) {
  switch (options.solver) {
    case ErSolver::kDense:
      return dense_effective_resistance(graph, pool);
    case ErSolver::kCg: {
      std::vector<EdgeId> all(graph.num_edges());
      std::iota(all.begin(), all.end(), EdgeId{0});
      return cg_resistance_for_edges(graph, all, options, pool);
    }
    case ErSolver::kJl:
      return jl_effective_resistance(graph, options, pool);
  }
  throw std::invalid_argument("unknown ErSolver");
}

std::vector<double> effective_resistance_for_edges(const CsrGraph& graph,
                                                   std::span<const EdgeId> edge_ids,
                                                   const ErSolverOptions& options,
                                                   util::ThreadPool* pool) {
  for (const EdgeId e : edge_ids) {
    if (e >= graph.num_edges()) {
      throw std::out_of_range("effective_resistance_for_edges: edge id out of range");
    }
  }
  if (options.solver == ErSolver::kDense) {
    const Matrix pinv = tensor::symmetric_pseudo_inverse(laplacian(graph, pool), 1e-8, pool);
    const auto edges = graph.edges();
    std::vector<double> resistance(edge_ids.size());
    for_each_index(edge_ids.size(), pool, [&](std::size_t i) {
      const auto [u, v] = edges[edge_ids[i]];
      resistance[i] = static_cast<double>(pinv.at(u, u)) + pinv.at(v, v) - 2.0 * pinv.at(u, v);
    });
    return resistance;
  }
  // kCg, and kJl too: the sketch prices every edge at once, so subset
  // queries are cheapest as direct CG solves.
  return cg_resistance_for_edges(graph, edge_ids, options, pool);
}

std::vector<double> approx_effective_resistance(const CsrGraph& graph) {
  std::vector<double> proxy;
  proxy.reserve(graph.num_edges());
  for (const auto& [u, v] : graph.edges()) {
    const double du = graph.degree(u);
    const double dv = graph.degree(v);
    // Degree-0 endpoints contribute 0 instead of 1/0: partition-induced
    // subgraphs keep the global node set, so callers may hand us graphs
    // whose degree array has holes (a release build must not divide by
    // zero even if the edge list and degrees disagree).
    const double inv_du = du > 0.0 ? 1.0 / du : 0.0;
    const double inv_dv = dv > 0.0 ? 1.0 / dv : 0.0;
    proxy.push_back(inv_du + inv_dv);
  }
  return proxy;
}

double normalized_laplacian_gamma(const CsrGraph& graph, util::ThreadPool* pool) {
  const auto decomposition = tensor::symmetric_eigen(normalized_laplacian(graph, pool));
  // The spectrum has one exact zero per connected component (and Jacobi
  // noise can push those slightly negative), so eigenvalues[1] is 0 on any
  // disconnected graph — which would blow up the 1/gamma upper bound.
  // Clamp to the smallest eigenvalue above a noise floor instead; the
  // normalized-Laplacian spectrum lives in [0, 2], so 1e-6 separates real
  // gaps from rotation residue at every graph size we validate on.
  constexpr double kNoiseFloor = 1e-6;
  for (const double value : decomposition.eigenvalues) {
    if (value > kNoiseFloor) return value;
  }
  return 0.0;  // sentinel: no spectral gap at all (e.g. an edgeless graph)
}

}  // namespace splpg::sparsify
