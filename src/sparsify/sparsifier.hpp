// Graph sparsifiers.
//
// EffectiveResistanceSparsifier implements Algorithm 1, lines 4-14: sample
// L = ceil(alpha * |E|) edges *with replacement*, each edge (u,v) drawn with
// probability p ∝ 1/du + 1/dv (the Theorem 2 approximation of effective
// resistance), assign weight 1/(L*p), and sum weights when an edge is drawn
// more than once (Theorem 1, Spielman & Srivastava). All nodes are retained;
// ~85% of edges are removed at the paper's default alpha = 0.15.
//
// UniformSparsifier is the ablation baseline: same sampling budget, but
// edges drawn uniformly — quantifying how much the resistance-proportional
// importance actually buys.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "sparsify/effective_resistance.hpp"
#include "util/rng.hpp"

namespace splpg::sparsify {

struct SparsifyStats {
  graph::EdgeId original_edges = 0;
  graph::EdgeId sampled_draws = 0;   // L
  graph::EdgeId kept_edges = 0;      // distinct edges in the output
  double removal_ratio = 0.0;        // 1 - kept/original
  double elapsed_seconds = 0.0;      // wall time of this partition's processing
  double cpu_seconds = 0.0;          // thread-CPU time of the same work
};

/// Knobs shared by every sparsifier implementation.
struct SparsifyConfig {
  /// Number of draws L = ceil(alpha * |E|).
  double alpha = 0.15;
  /// ThreadPool width for `sparsify_partitions`: 1 = serial on the calling
  /// thread (default), 0 = hardware concurrency, N = N pool threads. Output
  /// is bit-identical at every setting (per-partition pre-split RNG).
  std::size_t num_threads = 1;
  /// Which solver validation tooling (benches, sparsify explorer, quality
  /// gates) uses when it wants *true* effective resistances to compare the
  /// Theorem 2 degree proxy against. The sampling path itself never solves
  /// — it only needs degrees.
  ErSolverOptions er_solver;
};

class Sparsifier {
 public:
  /// `alpha` sets the number of draws L = ceil(alpha * |E|); `num_threads`
  /// sizes the pool `sparsify_partitions` fans out on (see SparsifyConfig).
  explicit Sparsifier(double alpha, std::size_t num_threads = 1);
  virtual ~Sparsifier() = default;

  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] std::size_t num_threads() const noexcept { return num_threads_; }
  [[nodiscard]] virtual std::string name() const = 0;

  /// Returns the sparsified, weighted graph over the same node set.
  /// Deterministic given `rng` state. `stats`, if non-null, receives
  /// bookkeeping (including wall time, for the Table II benchmark).
  [[nodiscard]] graph::CsrGraph sparsify(const graph::CsrGraph& graph, util::Rng& rng,
                                         SparsifyStats* stats = nullptr) const;

  /// Sparsifies every partition subgraph: partition i's subgraph contains
  /// all edges with at least one endpoint assigned to part i (cross-
  /// partition edges are kept in both parts, matching Algorithm 1 line 3).
  /// Returns one weighted graph per part, all in the *global* id space.
  ///
  /// Partitions fan out on a ThreadPool when `num_threads != 1`. Each
  /// partition draws from its own pre-split stream `rng.split("part", p)`
  /// (the parent stream is NOT advanced), so the output is bit-identical
  /// for every thread count, including the serial path.
  [[nodiscard]] std::vector<graph::CsrGraph> sparsify_partitions(
      const graph::CsrGraph& graph, const std::vector<std::uint32_t>& assignment,
      std::uint32_t num_parts, util::Rng& rng,
      std::vector<SparsifyStats>* stats = nullptr) const;

 protected:
  /// Per-edge sampling weight for the edge list being sparsified;
  /// `degree_of(v)` is v's degree within that edge set.
  [[nodiscard]] virtual double edge_importance(
      const graph::Edge& edge, const std::function<double(graph::NodeId)>& degree_of) const = 0;

 private:
  std::pair<std::vector<graph::Edge>, std::vector<float>> sparsify_edges(
      std::span<const graph::Edge> edges,
      const std::function<double(graph::NodeId)>& degree_of, util::Rng& rng,
      SparsifyStats* stats) const;

  double alpha_;
  std::size_t num_threads_;
};

/// Effective-resistance importance (Theorem 2): 1/du + 1/dv.
class EffectiveResistanceSparsifier final : public Sparsifier {
 public:
  explicit EffectiveResistanceSparsifier(double alpha = 0.15, std::size_t num_threads = 1)
      : Sparsifier(alpha, num_threads) {}
  [[nodiscard]] std::string name() const override { return "effective_resistance"; }

 protected:
  [[nodiscard]] double edge_importance(
      const graph::Edge& edge,
      const std::function<double(graph::NodeId)>& degree_of) const override;
};

/// Uniform importance — the ablation baseline.
class UniformSparsifier final : public Sparsifier {
 public:
  explicit UniformSparsifier(double alpha = 0.15, std::size_t num_threads = 1)
      : Sparsifier(alpha, num_threads) {}
  [[nodiscard]] std::string name() const override { return "uniform"; }

 protected:
  [[nodiscard]] double edge_importance(
      const graph::Edge& edge,
      const std::function<double(graph::NodeId)>& degree_of) const override;
};

enum class SparsifierKind { kEffectiveResistance, kUniform };

[[nodiscard]] std::unique_ptr<Sparsifier> make_sparsifier(SparsifierKind kind, double alpha);
[[nodiscard]] std::unique_ptr<Sparsifier> make_sparsifier(SparsifierKind kind,
                                                          const SparsifyConfig& config);

}  // namespace splpg::sparsify
