#include "tensor/parallel.hpp"

namespace splpg::tensor {

namespace {
thread_local util::ThreadPool* active_pool = nullptr;
}  // namespace

util::ThreadPool* compute_pool() noexcept { return active_pool; }

ComputePoolScope::ComputePoolScope(util::ThreadPool* pool) noexcept
    : previous_(active_pool) {
  // A 1-thread pool cannot overlap anything; skip the fan-out overhead.
  active_pool = (pool != nullptr && pool->size() > 1) ? pool : nullptr;
}

ComputePoolScope::~ComputePoolScope() { active_pool = previous_; }

}  // namespace splpg::tensor
