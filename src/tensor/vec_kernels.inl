// SIMD-generic kernel bodies for one vector backend. Included (not compiled
// standalone) by vec_sse2.cpp / vec_avx2.cpp / vec_avx512.cpp AFTER the TU
// has defined, inside namespace splpg::tensor::SPLPG_VEC_NS:
//
//   struct Vecf — fixed-width float vector: kWidth, Mask, load/splat/store,
//     add/sub/mul/div, fma (may contract), min/max/sqrt/floor,
//     pow2i (2^n for integral-valued n), frexp (mantissa in [0.5,1) + int
//     exponent as float), cmp_ge/cmp_lt/cmp_eq, select(mask, a, b),
//     hsum (FIXED pairwise lane order).
//   struct Vecd — fixed-width double vector: kWidth, load/splat/store,
//     add/sub/mul, fma, gather(base, uint32 idx), hsum.
//
// and the macros SPLPG_VEC_NS (namespace token), SPLPG_VEC_NAME (display
// string), SPLPG_VEC_ENUM (VecBackend value).
//
// The scalar backend does NOT use this file: its kernels must stay
// bit-identical to the historical scalar loops (libm exp/log1p, no
// contraction), so vec_scalar.cpp spells them out directly.
//
// Determinism: no kernel here splits work across threads or depends on
// anything but its arguments, so one backend always produces the same bytes
// for the same inputs. Remainder elements (n % kWidth) run through the
// plain scalar expressions — deterministic, though evaluated with libm
// rather than the polynomial (covered by the same documented ULP bounds).
//
// The exp/log polynomials are the classic Cephes single-precision kernels
// (as used by ATen's vec256 and sse_mathfun), accurate to a few ULP over
// the clamped range.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace splpg::tensor {
namespace SPLPG_VEC_NS {

namespace {

// ---- transcendental building blocks ----

inline Vecf vec_expf(Vecf x) {
  // Clamp: beyond these bounds expf over/underflows; the polynomial would
  // produce garbage exponents. Clamping floors the result at ~2^-126
  // instead of a denormal/0 — the documented absolute error floor.
  x = Vecf::min(x, Vecf::splat(88.3762626647950F));
  x = Vecf::max(x, Vecf::splat(-87.3365478515625F));

  // n = round(x / ln 2); r = x - n ln 2 via two-part ln 2 for accuracy.
  Vecf fx = Vecf::floor(Vecf::fma(x, Vecf::splat(1.44269504088896341F), Vecf::splat(0.5F)));
  x = Vecf::fma(fx, Vecf::splat(-0.693359375F), x);
  x = Vecf::fma(fx, Vecf::splat(2.12194440e-4F), x);

  const Vecf z = Vecf::mul(x, x);
  Vecf y = Vecf::splat(1.9875691500e-4F);
  y = Vecf::fma(y, x, Vecf::splat(1.3981999507e-3F));
  y = Vecf::fma(y, x, Vecf::splat(8.3334519073e-3F));
  y = Vecf::fma(y, x, Vecf::splat(4.1665795894e-2F));
  y = Vecf::fma(y, x, Vecf::splat(1.6666665459e-1F));
  y = Vecf::fma(y, x, Vecf::splat(5.0000001201e-1F));
  y = Vecf::fma(y, z, x);
  y = Vecf::add(y, Vecf::splat(1.0F));

  return Vecf::mul(y, Vecf::pow2i(fx));
}

/// log(x) for positive finite x (callers pass arguments in (1, 2]).
inline Vecf vec_logf(Vecf x) {
  Vecf e;
  x = Vecf::frexp(x, &e);  // x in [0.5, 1)

  // Normalize to [sqrt(1/2), sqrt(2)): below sqrt(1/2), double the mantissa
  // and drop the exponent by one.
  const Vecf::Mask low = Vecf::cmp_lt(x, Vecf::splat(0.707106781186547524F));
  e = Vecf::sub(e, Vecf::select(low, Vecf::splat(1.0F), Vecf::splat(0.0F)));
  x = Vecf::add(Vecf::sub(x, Vecf::splat(1.0F)),
                Vecf::select(low, x, Vecf::splat(0.0F)));

  const Vecf z = Vecf::mul(x, x);
  Vecf y = Vecf::splat(7.0376836292e-2F);
  y = Vecf::fma(y, x, Vecf::splat(-1.1514610310e-1F));
  y = Vecf::fma(y, x, Vecf::splat(1.1676998740e-1F));
  y = Vecf::fma(y, x, Vecf::splat(-1.2420140846e-1F));
  y = Vecf::fma(y, x, Vecf::splat(1.4249322787e-1F));
  y = Vecf::fma(y, x, Vecf::splat(-1.6668057665e-1F));
  y = Vecf::fma(y, x, Vecf::splat(2.0000714765e-1F));
  y = Vecf::fma(y, x, Vecf::splat(-2.4999993993e-1F));
  y = Vecf::fma(y, x, Vecf::splat(3.3333331174e-1F));
  y = Vecf::mul(Vecf::mul(y, x), z);
  y = Vecf::fma(e, Vecf::splat(-2.12194440e-4F), y);
  y = Vecf::fma(z, Vecf::splat(-0.5F), y);

  Vecf r = Vecf::add(x, y);
  return Vecf::fma(e, Vecf::splat(0.693359375F), r);
}

/// log(1 + u) for u >= 0, near-full precision even for tiny u: compute
/// log(1 + u) on the rounded sum and correct by u / d where d is the
/// increment that actually survived the rounding (d == 0 => limit u).
inline Vecf vec_log1pf(Vecf u) {
  const Vecf one = Vecf::splat(1.0F);
  const Vecf zp1 = Vecf::add(u, one);
  const Vecf d = Vecf::sub(zp1, one);
  const Vecf::Mask tiny = Vecf::cmp_eq(d, Vecf::splat(0.0F));
  const Vecf safe_d = Vecf::select(tiny, one, d);
  const Vecf r = Vecf::mul(Vecf::div(vec_logf(zp1), safe_d), u);
  return Vecf::select(tiny, u, r);
}

/// 1 / (1 + exp(-x)) via the stable two-branch form: both branches share
/// e = exp(-|x|); numerator is 1 for x >= 0 and e otherwise.
inline Vecf vec_sigmoidf(Vecf x) {
  const Vecf one = Vecf::splat(1.0F);
  const Vecf zero = Vecf::splat(0.0F);
  const Vecf e = vec_expf(Vecf::min(x, Vecf::sub(zero, x)));
  const Vecf numer = Vecf::select(Vecf::cmp_ge(x, zero), one, e);
  return Vecf::div(numer, Vecf::add(one, e));
}

inline float scalar_sigmoid(float x) {
  return x >= 0.0F ? 1.0F / (1.0F + std::exp(-x)) : std::exp(x) / (1.0F + std::exp(x));
}

// ---- kernel table entries ----

void axpy_f32(float* dst, const float* src, float alpha, std::size_t n) {
  constexpr std::size_t kW = Vecf::kWidth;
  const Vecf va = Vecf::splat(alpha);
  std::size_t i = 0;
  for (; i + 2 * kW <= n; i += 2 * kW) {
    Vecf::store(dst + i, Vecf::fma(va, Vecf::load(src + i), Vecf::load(dst + i)));
    Vecf::store(dst + i + kW,
                Vecf::fma(va, Vecf::load(src + i + kW), Vecf::load(dst + i + kW)));
  }
  for (; i + kW <= n; i += kW) {
    Vecf::store(dst + i, Vecf::fma(va, Vecf::load(src + i), Vecf::load(dst + i)));
  }
  for (; i < n; ++i) dst[i] += alpha * src[i];
}

float dot_f32(const float* a, const float* b, std::size_t n) {
  constexpr std::size_t kW = Vecf::kWidth;
  Vecf acc0 = Vecf::splat(0.0F);
  Vecf acc1 = Vecf::splat(0.0F);
  std::size_t i = 0;
  for (; i + 2 * kW <= n; i += 2 * kW) {
    acc0 = Vecf::fma(Vecf::load(a + i), Vecf::load(b + i), acc0);
    acc1 = Vecf::fma(Vecf::load(a + i + kW), Vecf::load(b + i + kW), acc1);
  }
  if (i + kW <= n) {
    acc0 = Vecf::fma(Vecf::load(a + i), Vecf::load(b + i), acc0);
    i += kW;
  }
  float total = Vecf::hsum(Vecf::add(acc0, acc1));
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

void axpy_f64(double* dst, const double* src, double alpha, std::size_t n) {
  constexpr std::size_t kW = Vecd::kWidth;
  const Vecd va = Vecd::splat(alpha);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    Vecd::store(dst + i, Vecd::fma(va, Vecd::load(src + i), Vecd::load(dst + i)));
  }
  for (; i < n; ++i) dst[i] += alpha * src[i];
}

void xpby_f64(double* dst, const double* src, double beta, std::size_t n) {
  // mul + add (no contraction): bit-identical to the scalar backend.
  constexpr std::size_t kW = Vecd::kWidth;
  const Vecd vb = Vecd::splat(beta);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    Vecd::store(dst + i, Vecd::add(Vecd::load(src + i), Vecd::mul(vb, Vecd::load(dst + i))));
  }
  for (; i < n; ++i) dst[i] = src[i] + beta * dst[i];
}

double dot_f64(const double* a, const double* b, std::size_t n) {
  constexpr std::size_t kW = Vecd::kWidth;
  Vecd acc0 = Vecd::splat(0.0);
  Vecd acc1 = Vecd::splat(0.0);
  std::size_t i = 0;
  for (; i + 2 * kW <= n; i += 2 * kW) {
    acc0 = Vecd::fma(Vecd::load(a + i), Vecd::load(b + i), acc0);
    acc1 = Vecd::fma(Vecd::load(a + i + kW), Vecd::load(b + i + kW), acc1);
  }
  if (i + kW <= n) {
    acc0 = Vecd::fma(Vecd::load(a + i), Vecd::load(b + i), acc0);
    i += kW;
  }
  double total = Vecd::hsum(Vecd::add(acc0, acc1));
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

double ssd_f64(const double* a, const double* b, std::size_t n) {
  constexpr std::size_t kW = Vecd::kWidth;
  Vecd acc = Vecd::splat(0.0);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    const Vecd d = Vecd::sub(Vecd::load(a + i), Vecd::load(b + i));
    acc = Vecd::fma(d, d, acc);
  }
  double total = Vecd::hsum(acc);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

double spmv_row_f64(const double* values, const std::uint32_t* cols, const double* x,
                    std::size_t nnz) {
  constexpr std::size_t kW = Vecd::kWidth;
  Vecd acc = Vecd::splat(0.0);
  std::size_t i = 0;
  for (; i + kW <= nnz; i += kW) {
    acc = Vecd::fma(Vecd::load(values + i), Vecd::gather(x, cols + i), acc);
  }
  double total = Vecd::hsum(acc);
  for (; i < nnz; ++i) total += values[i] * x[cols[i]];
  return total;
}

void exp_f32(float* dst, const float* src, std::size_t n) {
  constexpr std::size_t kW = Vecf::kWidth;
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) Vecf::store(dst + i, vec_expf(Vecf::load(src + i)));
  for (; i < n; ++i) dst[i] = std::exp(src[i]);
}

void sigmoid_f32(float* dst, const float* src, std::size_t n) {
  constexpr std::size_t kW = Vecf::kWidth;
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) Vecf::store(dst + i, vec_sigmoidf(Vecf::load(src + i)));
  for (; i < n; ++i) dst[i] = scalar_sigmoid(src[i]);
}

void sigmoid_grad_f32(float* dst, const float* grad, const float* y, std::size_t n) {
  // Same operation sequence as the scalar backend (mul, sub, mul — no
  // contraction): bit-identical on every backend.
  constexpr std::size_t kW = Vecf::kWidth;
  const Vecf one = Vecf::splat(1.0F);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    const Vecf vy = Vecf::load(y + i);
    Vecf::store(dst + i,
                Vecf::mul(Vecf::load(grad + i), Vecf::mul(vy, Vecf::sub(one, vy))));
  }
  for (; i < n; ++i) dst[i] = grad[i] * (y[i] * (1.0F - y[i]));
}

double bce_forward_f64(const float* logits, const float* labels, std::size_t n) {
  constexpr std::size_t kW = Vecf::kWidth;
  const Vecf zero = Vecf::splat(0.0F);
  double total = 0.0;
  std::size_t i = 0;
  alignas(64) float terms[kW];
  for (; i + kW <= n; i += kW) {
    const Vecf z = Vecf::load(logits + i);
    const Vecf y = Vecf::load(labels + i);
    const Vecf base = Vecf::sub(Vecf::max(z, zero), Vecf::mul(z, y));
    const Vecf u = vec_expf(Vecf::min(z, Vecf::sub(zero, z)));  // exp(-|z|)
    const Vecf term = Vecf::add(base, vec_log1pf(u));
    Vecf::store(terms, term);
    // Accumulate in ascending index — the scalar backend's exact order, so
    // the sum differs only by the per-term transcendental bound.
    for (std::size_t j = 0; j < kW; ++j) total += terms[j];
  }
  for (; i < n; ++i) {
    const float z = logits[i];
    total += std::max(z, 0.0F) - z * labels[i] + std::log1p(std::exp(-std::abs(z)));
  }
  return total;
}

void bce_grad_f32(float* dst, const float* logits, const float* labels, float seed,
                  std::size_t n) {
  constexpr std::size_t kW = Vecf::kWidth;
  const Vecf vseed = Vecf::splat(seed);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    const Vecf s = vec_sigmoidf(Vecf::load(logits + i));
    Vecf::store(dst + i, Vecf::mul(vseed, Vecf::sub(s, Vecf::load(labels + i))));
  }
  for (; i < n; ++i) dst[i] = seed * (scalar_sigmoid(logits[i]) - labels[i]);
}

void adam_step_f32(float* value, float* m, float* v, const float* grad, std::size_t n,
                   float beta1, float beta2, float lr, float bias1, float bias2, float eps) {
  // Replicates the scalar update expression-for-expression with plain
  // mul/add/div/sqrt (every one correctly rounded, no contraction), so the
  // update is bit-identical on every backend: checkpoints and resume never
  // depend on SPLPG_VEC.
  constexpr std::size_t kW = Vecf::kWidth;
  const Vecf vb1 = Vecf::splat(beta1);
  const Vecf vb2 = Vecf::splat(beta2);
  const Vecf vc1 = Vecf::splat(1.0F - beta1);
  const Vecf vc2 = Vecf::splat(1.0F - beta2);
  const Vecf vlr = Vecf::splat(lr);
  const Vecf vbias1 = Vecf::splat(bias1);
  const Vecf vbias2 = Vecf::splat(bias2);
  const Vecf veps = Vecf::splat(eps);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    const Vecf g = Vecf::load(grad + i);
    const Vecf vm = Vecf::add(Vecf::mul(vb1, Vecf::load(m + i)), Vecf::mul(vc1, g));
    const Vecf vv = Vecf::add(Vecf::mul(vb2, Vecf::load(v + i)),
                              Vecf::mul(Vecf::mul(vc2, g), g));
    Vecf::store(m + i, vm);
    Vecf::store(v + i, vv);
    const Vecf m_hat = Vecf::div(vm, vbias1);
    const Vecf v_hat = Vecf::div(vv, vbias2);
    const Vecf step = Vecf::div(Vecf::mul(vlr, m_hat),
                                Vecf::add(Vecf::sqrt(v_hat), veps));
    Vecf::store(value + i, Vecf::sub(Vecf::load(value + i), step));
  }
  for (; i < n; ++i) {
    m[i] = beta1 * m[i] + (1.0F - beta1) * grad[i];
    v[i] = beta2 * v[i] + (1.0F - beta2) * grad[i] * grad[i];
    const float m_hat = m[i] / bias1;
    const float v_hat = v[i] / bias2;
    value[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

}  // namespace

const VecKernels kTable = {
    SPLPG_VEC_ENUM,
    SPLPG_VEC_NAME,
    Vecf::kWidth,
    Vecd::kWidth,
    &axpy_f32,
    &dot_f32,
    &axpy_f64,
    &xpby_f64,
    &dot_f64,
    &ssd_f64,
    &spmv_row_f64,
    &exp_f32,
    &sigmoid_f32,
    &sigmoid_grad_f32,
    &bce_forward_f64,
    &bce_grad_f32,
    &adam_step_f32,
};

}  // namespace SPLPG_VEC_NS
}  // namespace splpg::tensor
