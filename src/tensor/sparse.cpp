#include "tensor/sparse.hpp"

#include <cassert>
#include <utility>

#include "tensor/vec.hpp"
#include "util/thread_pool.hpp"

namespace splpg::tensor {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols,
                           std::vector<std::size_t> row_offsets,
                           std::vector<std::uint32_t> col_indices, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_offsets_(std::move(row_offsets)),
      col_indices_(std::move(col_indices)),
      values_(std::move(values)) {
  assert(row_offsets_.size() == rows_ + 1);
  assert(row_offsets_.front() == 0);
  assert(row_offsets_.back() == col_indices_.size());
  assert(col_indices_.size() == values_.size());
#ifndef NDEBUG
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = row_offsets_[r]; i < row_offsets_[r + 1]; ++i) {
      assert(col_indices_[i] < cols_);
      assert(i == row_offsets_[r] || col_indices_[i - 1] < col_indices_[i]);
    }
  }
#endif
}

double SparseMatrix::diagonal(std::size_t r) const noexcept {
  assert(r < rows_);
  const auto [cols, vals] = row(r);
  // Rows are short (node degree) and sorted; a linear scan keeps the common
  // Laplacian case (diagonal present) branch-predictable.
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] == r) return vals[i];
    if (cols[i] > r) break;
  }
  return 0.0;
}

void SparseMatrix::spmv(std::span<const double> x, std::span<double> y,
                        util::ThreadPool* pool) const {
  assert(x.size() == cols_);
  assert(y.size() == rows_);
  assert(x.data() != y.data());
  const VecKernels& kern = vec_kernels();
  auto product_row = [&](std::size_t r) {
    const std::size_t lo = row_offsets_[r];
    // Gathered dot over one CSR row; each y[r] is produced by exactly one
    // kernel call, so pooling still never reorders a row's accumulation.
    y[r] = kern.spmv_row_f64(values_.data() + lo, col_indices_.data() + lo, x.data(),
                             row_offsets_[r + 1] - lo);
  };
  if (pool != nullptr && rows_ > 1) {
    pool->parallel_for(0, rows_, product_row);
  } else {
    for (std::size_t r = 0; r < rows_; ++r) product_row(r);
  }
}

}  // namespace splpg::tensor
