// Int8 per-tensor symmetric quantization entry points for the inference hot
// path (cf. ATen/native/quantized/cpu).
//
// The arithmetic is EXACTLY the PR-9 CommHook int8 scheme (dist/comm_hook):
// scale = amax / 127, q = clamp(lround(x / scale * 127... see below), -127,
// 127), round-trip x' = q * scale — so the serving layer's quantized-weight
// and quantized-embedding paths inherit the same documented round-trip
// bound: |x' - x| <= scale / 2 = amax / 254 per entry (plus float slop
// ~ amax * 1e-5). Values already on the grid {k * scale, |k| <= 127}
// round-trip bit-exactly, which is what the integer-grid exactness tests
// pin.
//
// Scoring kernels accumulate int8 x int8 products in int32 (exact: |q| <=
// 127 so a dot of up to 2^16 terms fits with room to spare) and apply the
// two scales once at the end — one float rounding per pair instead of one
// per element, and 4x less memory traffic than an f32 dot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace splpg::tensor {

/// One symmetric-quantized tensor: int8 payload + a single f32 scale.
struct QuantizedTensor {
  std::size_t rows = 0;
  std::size_t cols = 0;
  float scale = 0.0F;  ///< amax / 127; 0 for an all-zero tensor
  std::vector<std::int8_t> values;

  [[nodiscard]] std::size_t size() const noexcept { return values.size(); }
  /// Serialized wire/cache footprint: 1 byte per value + the 4-byte scale
  /// (the PR-9 CommHook payload formula).
  [[nodiscard]] std::size_t payload_bytes() const noexcept {
    return values.size() + sizeof(float);
  }
};

/// amax / 127 for a span (0 when all entries are 0 — dequantizes to zeros).
[[nodiscard]] float symmetric_scale(std::span<const float> values) noexcept;

/// Quantizes a span with a precomputed scale: q = clamp(lround(x / scale),
/// -127, 127) via the exact inverse-scale multiply the CommHook uses.
void quantize_span(std::span<const float> in, float scale, std::span<std::int8_t> out) noexcept;

/// Dequantizes: out[i] = q[i] * scale.
void dequantize_span(std::span<const std::int8_t> in, float scale,
                     std::span<float> out) noexcept;

/// Per-tensor symmetric quantization of a matrix.
[[nodiscard]] QuantizedTensor quantize_symmetric(const Matrix& in);

/// Round trip back to f32. Error per entry <= scale / 2 = amax / 254.
[[nodiscard]] Matrix dequantize(const QuantizedTensor& in);

/// In-place round trip: replaces `m` with dequantize(quantize_symmetric(m)).
/// Returns the per-entry error bound amax / 254 (0 for an all-zero tensor).
float quantize_dequantize_inplace(Matrix& m);

/// Exact int32 dot of two int8 vectors (the scoring kernel's inner loop).
[[nodiscard]] std::int32_t dot_i8_i32(std::span<const std::int8_t> a,
                                      std::span<const std::int8_t> b) noexcept;

/// Int8 scoring kernel entry point: score(u, v) = (sum_i qu[i] * qv[i]) *
/// scale_u * scale_v — the dot-product edge predictor on quantized
/// embedding rows, with a single float rounding at the end.
[[nodiscard]] float score_dot_i8(std::span<const std::int8_t> qu, float scale_u,
                                 std::span<const std::int8_t> qv, float scale_v) noexcept;

}  // namespace splpg::tensor
