// SSE2 backend: 4-lane float / 2-lane double. Baseline on x86-64 (no extra
// compile flags needed), so this is the narrowest SIMD tier and the one
// guaranteed present whenever the binary runs on x86 at all. No FMA unit at
// this ISA level — Vecf::fma lowers to mul+add, which only tightens the
// documented bounds.

#include "tensor/vec.hpp"

#if defined(__SSE2__) && (defined(__x86_64__) || defined(__i386__))

#include <emmintrin.h>

#include <cstddef>
#include <cstdint>

namespace splpg::tensor {
namespace vec_sse2_impl {

struct Vecf {
  __m128 v;
  using Mask = __m128;
  static constexpr std::size_t kWidth = 4;

  static Vecf load(const float* p) { return {_mm_loadu_ps(p)}; }
  static Vecf splat(float x) { return {_mm_set1_ps(x)}; }
  static void store(float* p, Vecf a) { _mm_storeu_ps(p, a.v); }

  static Vecf add(Vecf a, Vecf b) { return {_mm_add_ps(a.v, b.v)}; }
  static Vecf sub(Vecf a, Vecf b) { return {_mm_sub_ps(a.v, b.v)}; }
  static Vecf mul(Vecf a, Vecf b) { return {_mm_mul_ps(a.v, b.v)}; }
  static Vecf div(Vecf a, Vecf b) { return {_mm_div_ps(a.v, b.v)}; }
  static Vecf fma(Vecf a, Vecf b, Vecf c) { return add(mul(a, b), c); }
  static Vecf min(Vecf a, Vecf b) { return {_mm_min_ps(a.v, b.v)}; }
  static Vecf max(Vecf a, Vecf b) { return {_mm_max_ps(a.v, b.v)}; }
  static Vecf sqrt(Vecf a) { return {_mm_sqrt_ps(a.v)}; }

  /// floor() emulated via truncation + adjust (SSE4.1 round is unavailable).
  static Vecf floor(Vecf a) {
    const __m128 t = _mm_cvtepi32_ps(_mm_cvttps_epi32(a.v));
    const __m128 overshoot = _mm_cmpgt_ps(t, a.v);
    return {_mm_sub_ps(t, _mm_and_ps(overshoot, _mm_set1_ps(1.0F)))};
  }

  /// 2^n for integral-valued n in [-126, 127]: build the exponent field.
  static Vecf pow2i(Vecf n) {
    const __m128i e = _mm_add_epi32(_mm_cvttps_epi32(n.v), _mm_set1_epi32(127));
    return {_mm_castsi128_ps(_mm_slli_epi32(e, 23))};
  }

  /// Mantissa in [0.5, 1) and integral exponent (as float) for positive
  /// finite normal x.
  static Vecf frexp(Vecf x, Vecf* e) {
    const __m128i bits = _mm_castps_si128(x.v);
    const __m128i exp = _mm_sub_epi32(
        _mm_and_si128(_mm_srli_epi32(bits, 23), _mm_set1_epi32(0xFF)), _mm_set1_epi32(126));
    e->v = _mm_cvtepi32_ps(exp);
    const __m128i mant =
        _mm_or_si128(_mm_and_si128(bits, _mm_set1_epi32(0x007FFFFF)), _mm_set1_epi32(0x3F000000));
    return {_mm_castsi128_ps(mant)};
  }

  static Mask cmp_ge(Vecf a, Vecf b) { return _mm_cmpge_ps(a.v, b.v); }
  static Mask cmp_lt(Vecf a, Vecf b) { return _mm_cmplt_ps(a.v, b.v); }
  static Mask cmp_eq(Vecf a, Vecf b) { return _mm_cmpeq_ps(a.v, b.v); }
  static Vecf select(Mask m, Vecf a, Vecf b) {
    return {_mm_or_ps(_mm_and_ps(m, a.v), _mm_andnot_ps(m, b.v))};
  }

  /// Fixed fold order: (l0+l2) + (l1+l3).
  static float hsum(Vecf a) {
    const __m128 hi = _mm_movehl_ps(a.v, a.v);
    const __m128 s = _mm_add_ps(a.v, hi);
    const __m128 s1 = _mm_shuffle_ps(s, s, 0x55);
    return _mm_cvtss_f32(_mm_add_ss(s, s1));
  }
};

struct Vecd {
  __m128d v;
  static constexpr std::size_t kWidth = 2;

  static Vecd load(const double* p) { return {_mm_loadu_pd(p)}; }
  static Vecd splat(double x) { return {_mm_set1_pd(x)}; }
  static void store(double* p, Vecd a) { _mm_storeu_pd(p, a.v); }

  static Vecd add(Vecd a, Vecd b) { return {_mm_add_pd(a.v, b.v)}; }
  static Vecd sub(Vecd a, Vecd b) { return {_mm_sub_pd(a.v, b.v)}; }
  static Vecd mul(Vecd a, Vecd b) { return {_mm_mul_pd(a.v, b.v)}; }
  static Vecd fma(Vecd a, Vecd b, Vecd c) { return add(mul(a, b), c); }

  static Vecd gather(const double* base, const std::uint32_t* idx) {
    return {_mm_set_pd(base[idx[1]], base[idx[0]])};
  }

  static double hsum(Vecd a) {
    const __m128d hi = _mm_unpackhi_pd(a.v, a.v);
    return _mm_cvtsd_f64(_mm_add_sd(a.v, hi));
  }
};

}  // namespace vec_sse2_impl
}  // namespace splpg::tensor

#define SPLPG_VEC_NS vec_sse2_impl
#define SPLPG_VEC_NAME "sse2"
#define SPLPG_VEC_ENUM VecBackend::kSse2
#include "tensor/vec_kernels.inl"
#undef SPLPG_VEC_NS
#undef SPLPG_VEC_NAME
#undef SPLPG_VEC_ENUM

namespace splpg::tensor::detail {
const VecKernels* vec_table_sse2() noexcept { return &vec_sse2_impl::kTable; }
}  // namespace splpg::tensor::detail

#else  // non-x86 build: backend not compiled.

namespace splpg::tensor::detail {
const VecKernels* vec_table_sse2() noexcept { return nullptr; }
}  // namespace splpg::tensor::detail

#endif
