// Weight initialization schemes (deterministic given the Rng stream).
#pragma once

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace splpg::tensor {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
[[nodiscard]] Matrix xavier_uniform(std::size_t fan_in, std::size_t fan_out, util::Rng& rng);

/// Kaiming/He normal: N(0, sqrt(2 / fan_in)) — for ReLU networks.
[[nodiscard]] Matrix he_normal(std::size_t fan_in, std::size_t fan_out, util::Rng& rng);

/// All zeros (biases).
[[nodiscard]] inline Matrix zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 0.0F);
}

/// I.i.d. N(mean, stddev) entries.
[[nodiscard]] Matrix gaussian(std::size_t rows, std::size_t cols, double mean, double stddev,
                              util::Rng& rng);

}  // namespace splpg::tensor
