// Preconditioned conjugate gradients for symmetric positive-semidefinite
// sparse systems — built for graph Laplacians.
//
// L is singular: its null space contains the all-ones vector (one indicator
// per connected component). For a consistent right-hand side (b orthogonal
// to the null space — e.g. b = e_u - e_v with u, v in one component, the
// effective-resistance case) CG converges to the pseudo-inverse solution.
// `deflate_ones` additionally projects the global all-ones component out of
// the residual and the Krylov directions each iteration, killing the
// rounding drift that would otherwise accumulate along the null space. The
// projection shifts iterates by a constant vector at most, which cancels in
// every difference x[u] - x[v] — exactly what resistance reads off.
//
// Preconditioner: Jacobi (inverse diagonal), the standard cheap choice for
// diagonally dominant Laplacians; rows with non-positive diagonal (isolated
// nodes) fall back to the identity.
//
// Determinism: all vector updates and reductions run serially in index
// order; only the spmv row-blocks across the optional pool (bit-identical
// per sparse.hpp), so solutions are the same bytes at every pool width.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/sparse.hpp"

namespace splpg::util {
class ThreadPool;
}  // namespace splpg::util

namespace splpg::tensor {

struct CgOptions {
  /// Terminate when ||r||_2 <= tolerance * ||b||_2.
  double tolerance = 1e-10;
  /// Iteration cap; 0 picks 10 * n + 100 (generous — Jacobi-PCG on the
  /// Laplacians we solve converges in tens to a few hundred iterations).
  std::size_t max_iterations = 0;
  /// Project the all-ones null-space component out of residual and search
  /// directions (see file comment). Keep on for Laplacians; turn off for
  /// nonsingular systems.
  bool deflate_ones = true;
};

struct CgResult {
  std::size_t iterations = 0;
  /// ||r||_2 / ||b||_2 at exit (0 when b == 0).
  double relative_residual = 0.0;
  bool converged = false;
};

/// Solves A x = b for symmetric positive-semidefinite A, starting from the
/// initial guess in `x` (zeros give the standard cold start). `x` and `b`
/// must have a.rows() entries and must not alias. Returns iteration count
/// and the achieved residual; `converged` is false when the iteration cap
/// was hit or CG broke down (p^T A p <= 0, i.e. A was not PSD or the system
/// was inconsistent).
CgResult pcg_solve(const SparseMatrix& a, std::span<const double> b, std::span<double> x,
                   const CgOptions& options = {}, util::ThreadPool* pool = nullptr);

}  // namespace splpg::tensor
