#include "tensor/cg.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "tensor/parallel.hpp"
#include "tensor/vec.hpp"
#include "util/thread_pool.hpp"

namespace splpg::tensor {

namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  return vec_kernels().dot_f64(a.data(), b.data(), a.size());
}

/// Subtracts the mean, projecting out the all-ones component.
void deflate(std::span<double> v) {
  double mean = 0.0;
  for (const double value : v) mean += value;
  mean /= static_cast<double>(v.size());
  for (double& value : v) value -= mean;
}

}  // namespace

CgResult pcg_solve(const SparseMatrix& a, std::span<const double> b, std::span<double> x,
                   const CgOptions& options, util::ThreadPool* pool) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  assert(b.size() == n && x.size() == n);

  CgResult result;
  const double b_norm = std::sqrt(dot(b, b));
  if (b_norm == 0.0) {
    // Consistent only with x in the null space; the zero/constant guess is
    // already a solution.
    result.converged = true;
    return result;
  }

  // Tiny systems would pay more in pool fan-out than the spmv costs; the
  // same flop gate the dense kernels use keeps scheduling (never results)
  // adaptive.
  util::ThreadPool* spmv_pool =
      (pool != nullptr && a.nnz() >= kParallelFlopThreshold) ? pool : nullptr;

  const std::size_t max_iterations =
      options.max_iterations > 0 ? options.max_iterations : 10 * n + 100;
  const double target = options.tolerance * b_norm;

  // Jacobi preconditioner: inverse diagonal, identity on degenerate rows.
  std::vector<double> inv_diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a.diagonal(i);
    inv_diag[i] = d > 0.0 ? 1.0 / d : 1.0;
  }

  std::vector<double> r(n);
  std::vector<double> z(n);
  std::vector<double> p(n);
  std::vector<double> ap(n);

  // r = b - A x.
  a.spmv(x, r, spmv_pool);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  if (options.deflate_ones) deflate(r);

  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  p.assign(z.begin(), z.end());
  double rz = dot(r, z);

  double r_norm = std::sqrt(dot(r, r));
  while (r_norm > target && result.iterations < max_iterations) {
    a.spmv(p, ap, spmv_pool);
    // L maps everything orthogonal to ones; deflating A p removes the
    // rounding-induced ones component before it can feed back into p.
    if (options.deflate_ones) deflate(ap);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0) {
      // Breakdown: A not PSD on the current subspace (or b inconsistent).
      result.relative_residual = r_norm / b_norm;
      return result;
    }
    const double alpha = rz / p_ap;
    const VecKernels& kern = vec_kernels();
    kern.axpy_f64(x.data(), p.data(), alpha, n);
    kern.axpy_f64(r.data(), ap.data(), -alpha, n);
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    kern.xpby_f64(p.data(), z.data(), beta, n);
    ++result.iterations;
    r_norm = std::sqrt(dot(r, r));
  }

  result.relative_residual = r_norm / b_norm;
  result.converged = r_norm <= target;
  return result;
}

}  // namespace splpg::tensor
