// AVX-512F backend: 16-lane float / 8-lane double, mask-register compares.
// Compiled with -mavx512f on this file only; sticks to the F foundation set
// (no DQ/BW instructions) so any AVX-512 machine can run it. Note the
// horizontal sums deliberately reuse the AVX2/SSE fold sequence after
// splitting halves, so reduction order is fixed per backend.

#include "tensor/vec.hpp"

#if defined(__AVX512F__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace splpg::tensor {
namespace vec_avx512_impl {

struct Vecf {
  __m512 v;
  using Mask = __mmask16;
  static constexpr std::size_t kWidth = 16;

  static Vecf load(const float* p) { return {_mm512_loadu_ps(p)}; }
  static Vecf splat(float x) { return {_mm512_set1_ps(x)}; }
  static void store(float* p, Vecf a) { _mm512_storeu_ps(p, a.v); }

  static Vecf add(Vecf a, Vecf b) { return {_mm512_add_ps(a.v, b.v)}; }
  static Vecf sub(Vecf a, Vecf b) { return {_mm512_sub_ps(a.v, b.v)}; }
  static Vecf mul(Vecf a, Vecf b) { return {_mm512_mul_ps(a.v, b.v)}; }
  static Vecf div(Vecf a, Vecf b) { return {_mm512_div_ps(a.v, b.v)}; }
  static Vecf fma(Vecf a, Vecf b, Vecf c) { return {_mm512_fmadd_ps(a.v, b.v, c.v)}; }
  static Vecf min(Vecf a, Vecf b) { return {_mm512_min_ps(a.v, b.v)}; }
  static Vecf max(Vecf a, Vecf b) { return {_mm512_max_ps(a.v, b.v)}; }
  static Vecf sqrt(Vecf a) { return {_mm512_sqrt_ps(a.v)}; }
  /// 0x09 = round toward -inf, suppress exceptions.
  static Vecf floor(Vecf a) { return {_mm512_roundscale_ps(a.v, 0x09)}; }

  static Vecf pow2i(Vecf n) {
    const __m512i e = _mm512_add_epi32(_mm512_cvttps_epi32(n.v), _mm512_set1_epi32(127));
    return {_mm512_castsi512_ps(_mm512_slli_epi32(e, 23))};
  }

  static Vecf frexp(Vecf x, Vecf* e) {
    const __m512i bits = _mm512_castps_si512(x.v);
    const __m512i exp = _mm512_sub_epi32(
        _mm512_and_si512(_mm512_srli_epi32(bits, 23), _mm512_set1_epi32(0xFF)),
        _mm512_set1_epi32(126));
    e->v = _mm512_cvtepi32_ps(exp);
    const __m512i mant = _mm512_or_si512(_mm512_and_si512(bits, _mm512_set1_epi32(0x007FFFFF)),
                                         _mm512_set1_epi32(0x3F000000));
    return {_mm512_castsi512_ps(mant)};
  }

  static Mask cmp_ge(Vecf a, Vecf b) { return _mm512_cmp_ps_mask(a.v, b.v, _CMP_GE_OQ); }
  static Mask cmp_lt(Vecf a, Vecf b) { return _mm512_cmp_ps_mask(a.v, b.v, _CMP_LT_OQ); }
  static Mask cmp_eq(Vecf a, Vecf b) { return _mm512_cmp_ps_mask(a.v, b.v, _CMP_EQ_OQ); }
  static Vecf select(Mask m, Vecf a, Vecf b) { return {_mm512_mask_blend_ps(m, b.v, a.v)}; }

  /// Fixed fold order: 512 -> 256 -> 128 -> pairwise. The 256-bit halves
  /// are extracted through the pd domain because _mm512_extractf32x8_ps
  /// needs AVX-512DQ.
  static float hsum(Vecf a) {
    const __m512d pd = _mm512_castps_pd(a.v);
    const __m256 lo = _mm256_castpd_ps(_mm512_castpd512_pd256(pd));
    const __m256 hi = _mm256_castpd_ps(_mm512_extractf64x4_pd(pd, 1));
    const __m256 o = _mm256_add_ps(lo, hi);
    const __m128 q = _mm_add_ps(_mm256_castps256_ps128(o), _mm256_extractf128_ps(o, 1));
    const __m128 h = _mm_add_ps(q, _mm_movehl_ps(q, q));
    return _mm_cvtss_f32(_mm_add_ss(h, _mm_shuffle_ps(h, h, 0x55)));
  }
};

struct Vecd {
  __m512d v;
  static constexpr std::size_t kWidth = 8;

  static Vecd load(const double* p) { return {_mm512_loadu_pd(p)}; }
  static Vecd splat(double x) { return {_mm512_set1_pd(x)}; }
  static void store(double* p, Vecd a) { _mm512_storeu_pd(p, a.v); }

  static Vecd add(Vecd a, Vecd b) { return {_mm512_add_pd(a.v, b.v)}; }
  static Vecd sub(Vecd a, Vecd b) { return {_mm512_sub_pd(a.v, b.v)}; }
  static Vecd mul(Vecd a, Vecd b) { return {_mm512_mul_pd(a.v, b.v)}; }
  static Vecd fma(Vecd a, Vecd b, Vecd c) { return {_mm512_fmadd_pd(a.v, b.v, c.v)}; }

  /// Hardware gather of 8 doubles by 32-bit indices; full blocks only
  /// (tails run scalar), so no masking needed.
  static Vecd gather(const double* base, const std::uint32_t* idx) {
    const __m256i vi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return {_mm512_i32gather_pd(vi, base, 8)};
  }

  static double hsum(Vecd a) {
    const __m256d lo = _mm512_castpd512_pd256(a.v);
    const __m256d hi = _mm512_extractf64x4_pd(a.v, 1);
    const __m256d o = _mm256_add_pd(lo, hi);
    const __m128d s = _mm_add_pd(_mm256_castpd256_pd128(o), _mm256_extractf128_pd(o, 1));
    return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
  }
};

}  // namespace vec_avx512_impl
}  // namespace splpg::tensor

#define SPLPG_VEC_NS vec_avx512_impl
#define SPLPG_VEC_NAME "avx512"
#define SPLPG_VEC_ENUM VecBackend::kAvx512
#include "tensor/vec_kernels.inl"
#undef SPLPG_VEC_NS
#undef SPLPG_VEC_NAME
#undef SPLPG_VEC_ENUM

namespace splpg::tensor::detail {
const VecKernels* vec_table_avx512() noexcept { return &vec_avx512_impl::kTable; }
}  // namespace splpg::tensor::detail

#else  // compiler/arch cannot target AVX-512F: backend not compiled.

namespace splpg::tensor::detail {
const VecKernels* vec_table_avx512() noexcept { return nullptr; }
}  // namespace splpg::tensor::detail

#endif
