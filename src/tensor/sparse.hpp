// Sparse CSR matrix and matrix-vector product for the iterative Laplacian
// solvers.
//
// The dense `Matrix` is float and sized n*n; graph Laplacians are ~2m+n
// nonzeros, so the O(n^3) eigen route behind exact effective resistance was
// the scaling wall (see ROADMAP "Kill the O(n^3) dense ER bottleneck").
// `SparseMatrix` stores double-precision values — the conjugate-gradient
// solver in cg.hpp iterates on it and accumulates residuals far below float
// epsilon, which is what lets the sparse route *match* the dense
// pseudo-inverse instead of merely approximating it.
//
// Threading contract (DESIGN.md §6): `spmv` row-blocks across an optional
// ThreadPool. Every output row is owned by exactly one task and accumulates
// its dot product serially in column order, so pooled and serial products
// are bit-identical at every pool width.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace splpg::util {
class ThreadPool;
}  // namespace splpg::util

namespace splpg::tensor {

/// Compressed-sparse-row matrix over double. Immutable after construction;
/// column indices within each row must be strictly ascending (checked with
/// assertions) so that products are deterministic and rows can be merged /
/// searched.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Takes ownership of the three CSR arrays. `row_offsets` has rows+1
  /// entries; `col_indices`/`values` are parallel with
  /// `row_offsets.back()` entries, columns strictly ascending per row.
  SparseMatrix(std::size_t rows, std::size_t cols, std::vector<std::size_t> row_offsets,
               std::vector<std::uint32_t> col_indices, std::vector<double> values);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

  [[nodiscard]] std::span<const std::size_t> row_offsets() const noexcept { return row_offsets_; }
  [[nodiscard]] std::span<const std::uint32_t> col_indices() const noexcept {
    return col_indices_;
  }
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }

  /// Entries of row `r` as (col_indices, values) spans.
  [[nodiscard]] std::pair<std::span<const std::uint32_t>, std::span<const double>> row(
      std::size_t r) const noexcept {
    const std::size_t lo = row_offsets_[r];
    const std::size_t hi = row_offsets_[r + 1];
    return {{col_indices_.data() + lo, hi - lo}, {values_.data() + lo, hi - lo}};
  }

  /// The diagonal entry of row `r` (0 when the row has no diagonal entry).
  [[nodiscard]] double diagonal(std::size_t r) const noexcept;

  /// y = A x. `x` must have cols() entries, `y` rows() entries; they must
  /// not alias. Row-blocks across `pool` when given; bit-identical to the
  /// serial product at every pool width (each row accumulates serially in
  /// column order on exactly one thread).
  void spmv(std::span<const double> x, std::span<double> y,
            util::ThreadPool* pool = nullptr) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_offsets_;
  std::vector<std::uint32_t> col_indices_;
  std::vector<double> values_;
};

}  // namespace splpg::tensor
