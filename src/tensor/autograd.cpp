#include "tensor/autograd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "tensor/parallel.hpp"
#include "tensor/vec.hpp"

namespace splpg::tensor {

namespace {

// Stable grouping of edge ids by an endpoint (counting sort): after
// group_edges(keys, n), edges with keys[e] == r occupy
// edges[offsets[r]..offsets[r+1]) in ascending e. Used by the pooled
// spmm_edges paths so each task owns disjoint output rows while the
// per-row, per-element accumulation order stays ascending e — exactly the
// serial loop's order, so the bytes are identical.
struct EdgeGroups {
  std::vector<std::uint32_t> offsets;  // num_keys + 1
  std::vector<std::uint32_t> edges;    // edge ids, grouped by key, stable
};

EdgeGroups group_edges(std::span<const std::uint32_t> keys, std::size_t num_keys) {
  EdgeGroups groups;
  groups.offsets.assign(num_keys + 1, 0);
  for (const std::uint32_t key : keys) ++groups.offsets[key + 1];
  for (std::size_t r = 0; r < num_keys; ++r) groups.offsets[r + 1] += groups.offsets[r];
  groups.edges.resize(keys.size());
  std::vector<std::uint32_t> cursor(groups.offsets.begin(), groups.offsets.end() - 1);
  for (std::size_t e = 0; e < keys.size(); ++e) {
    groups.edges[cursor[keys[e]]++] = static_cast<std::uint32_t>(e);
  }
  return groups;
}

}  // namespace

namespace detail {

void Node::accumulate(const Matrix& delta) {
  if (grad.empty()) grad.resize(value.rows(), value.cols());
  grad.add_inplace(delta);
}

}  // namespace detail

using detail::Node;

Tensor Tensor::parameter(Matrix value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = true;
  return Tensor(std::move(node));
}

Tensor Tensor::constant(Matrix value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = false;
  return Tensor(std::move(node));
}

Tensor make_op(Matrix value, std::vector<Tensor> parents,
               std::function<void(Node&)> backward_fn) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = false;
  for (const auto& parent : parents) {
    if (parent.defined()) {
      node->parents.push_back(parent.node_);
      node->requires_grad = node->requires_grad || parent.node_->requires_grad;
    }
  }
  if (node->requires_grad) node->backward_fn = std::move(backward_fn);
  return Tensor(std::move(node));
}

void Tensor::backward() {
  assert(node_ != nullptr);
  // Iterative post-order DFS to topologically sort the reachable subgraph.
  std::vector<Node*> topo;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, child] = stack.back();
    if (child < node->parents.size()) {
      Node* parent = node->parents[child].get();
      ++child;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      topo.push_back(node);
      stack.pop_back();
    }
  }
  // topo is post-order: parents before children; traverse in reverse so each
  // node's grad is complete before its backward_fn distributes it.
  node_->grad.resize(node_->value.rows(), node_->value.cols());
  node_->grad.fill(1.0F);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && !node->grad.empty()) node->backward_fn(*node);
  }
}

// ---------------------------------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b) {
  Matrix out = matmul(a.value(), b.value());
  return make_op(std::move(out), {a, b}, [a, b](Node& self) {
    // dA += dC * B^T ; dB += A^T * dC
    if (a.requires_grad()) {
      Matrix da(a.rows(), a.cols());
      matmul_nt_acc(self.grad, b.value(), da);
      a.node_ref().accumulate(da);
    }
    if (b.requires_grad()) {
      Matrix db(b.rows(), b.cols());
      matmul_tn_acc(a.value(), self.grad, db);
      b.node_ref().accumulate(db);
    }
  });
}

Tensor add(const Tensor& a, const Tensor& b) {
  const bool broadcast = b.rows() == 1 && a.rows() != 1 && b.cols() == a.cols();
  assert(broadcast || (a.rows() == b.rows() && a.cols() == b.cols()));
  Matrix out = a.value();
  if (broadcast) {
    const auto bias = b.value().row(0);
    for (std::size_t r = 0; r < out.rows(); ++r) {
      const auto row = out.row(r);
      for (std::size_t c = 0; c < out.cols(); ++c) row[c] += bias[c];
    }
  } else {
    out.add_inplace(b.value());
  }
  return make_op(std::move(out), {a, b}, [a, b, broadcast](Node& self) {
    if (a.requires_grad()) a.node_ref().accumulate(self.grad);
    if (b.requires_grad()) {
      if (broadcast) {
        Matrix db(1, self.grad.cols());
        const auto out_row = db.row(0);
        for (std::size_t r = 0; r < self.grad.rows(); ++r) {
          const auto grad_row = self.grad.row(r);
          for (std::size_t c = 0; c < grad_row.size(); ++c) out_row[c] += grad_row[c];
        }
        b.node_ref().accumulate(db);
      } else {
        b.node_ref().accumulate(self.grad);
      }
    }
  });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  const bool broadcast = b.cols() == 1 && a.cols() != 1 && b.rows() == a.rows();
  assert(broadcast || (a.rows() == b.rows() && a.cols() == b.cols()));
  Matrix out(a.rows(), a.cols());
  if (broadcast) {
    for (std::size_t r = 0; r < out.rows(); ++r) {
      const float alpha = b.value().at(r, 0);
      const auto src = a.value().row(r);
      const auto dst = out.row(r);
      for (std::size_t c = 0; c < src.size(); ++c) dst[c] = alpha * src[c];
    }
  } else {
    out = hadamard(a.value(), b.value());
  }
  return make_op(std::move(out), {a, b}, [a, b, broadcast](Node& self) {
    if (broadcast) {
      if (a.requires_grad()) {
        Matrix da(a.rows(), a.cols());
        for (std::size_t r = 0; r < da.rows(); ++r) {
          const float alpha = b.value().at(r, 0);
          const auto grad_row = self.grad.row(r);
          const auto out_row = da.row(r);
          for (std::size_t c = 0; c < grad_row.size(); ++c) out_row[c] = alpha * grad_row[c];
        }
        a.node_ref().accumulate(da);
      }
      if (b.requires_grad()) {
        Matrix db(b.rows(), 1);
        for (std::size_t r = 0; r < db.rows(); ++r) {
          const auto grad_row = self.grad.row(r);
          const auto a_row = a.value().row(r);
          float dot = 0.0F;
          for (std::size_t c = 0; c < grad_row.size(); ++c) dot += grad_row[c] * a_row[c];
          db.at(r, 0) = dot;
        }
        b.node_ref().accumulate(db);
      }
    } else {
      if (a.requires_grad()) a.node_ref().accumulate(hadamard(self.grad, b.value()));
      if (b.requires_grad()) b.node_ref().accumulate(hadamard(self.grad, a.value()));
    }
  });
}

Tensor scale(const Tensor& a, float alpha) {
  Matrix out = a.value();
  out.scale_inplace(alpha);
  return make_op(std::move(out), {a}, [a, alpha](Node& self) {
    if (!a.requires_grad()) return;
    Matrix da = self.grad;
    da.scale_inplace(alpha);
    a.node_ref().accumulate(da);
  });
}

Tensor concat_cols(const Tensor& a, const Tensor& b) {
  assert(a.rows() == b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (std::size_t r = 0; r < out.rows(); ++r) {
    const auto ra = a.value().row(r);
    const auto rb = b.value().row(r);
    const auto ro = out.row(r);
    std::copy(ra.begin(), ra.end(), ro.begin());
    std::copy(rb.begin(), rb.end(), ro.begin() + static_cast<std::ptrdiff_t>(ra.size()));
  }
  const std::size_t a_cols = a.cols();
  return make_op(std::move(out), {a, b}, [a, b, a_cols](Node& self) {
    if (a.requires_grad()) {
      Matrix da(a.rows(), a.cols());
      for (std::size_t r = 0; r < da.rows(); ++r) {
        const auto grad_row = self.grad.row(r);
        std::copy(grad_row.begin(), grad_row.begin() + static_cast<std::ptrdiff_t>(a_cols),
                  da.row(r).begin());
      }
      a.node_ref().accumulate(da);
    }
    if (b.requires_grad()) {
      Matrix db(b.rows(), b.cols());
      for (std::size_t r = 0; r < db.rows(); ++r) {
        const auto grad_row = self.grad.row(r);
        std::copy(grad_row.begin() + static_cast<std::ptrdiff_t>(a_cols), grad_row.end(),
                  db.row(r).begin());
      }
      b.node_ref().accumulate(db);
    }
  });
}

Tensor mean_all(const Tensor& a) {
  const auto count = static_cast<double>(a.value().size());
  double total = 0.0;
  for (const float x : a.value().data()) total += x;
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(count > 0 ? total / count : 0.0);
  return make_op(std::move(out), {a}, [a, count](Node& self) {
    if (!a.requires_grad()) return;
    Matrix da(a.rows(), a.cols(), self.grad.at(0, 0) / static_cast<float>(count));
    a.node_ref().accumulate(da);
  });
}

namespace {

/// Shared unary-activation implementation; `dfn` maps output value -> local
/// derivative (activations chosen so the derivative is a function of y).
Tensor unary_from_output(const Tensor& a, const std::function<float(float)>& fn,
                         std::function<float(float)> dfn) {
  Matrix out = a.value().map(fn);
  return make_op(std::move(out), {a}, [a, dfn = std::move(dfn)](Node& self) {
    if (!a.requires_grad()) return;
    Matrix da(self.value.rows(), self.value.cols());
    const auto grad = self.grad.data();
    const auto value = self.value.data();
    const auto dst = da.data();
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = grad[i] * dfn(value[i]);
    a.node_ref().accumulate(da);
  });
}

}  // namespace

Tensor relu(const Tensor& a) {
  return unary_from_output(
      a, [](float x) { return x > 0.0F ? x : 0.0F; },
      [](float y) { return y > 0.0F ? 1.0F : 0.0F; });
}

Tensor leaky_relu(const Tensor& a, float negative_slope) {
  // Derivative is not a pure function of the output when slope != 0 at x=0,
  // but y > 0 <=> x > 0 for slope in (0, 1), so output-based dispatch works.
  return unary_from_output(
      a, [negative_slope](float x) { return x > 0.0F ? x : negative_slope * x; },
      [negative_slope](float y) { return y > 0.0F ? 1.0F : negative_slope; });
}

Tensor sigmoid(const Tensor& a) {
  // Vectorized epilogue instead of unary_from_output's per-element
  // std::function calls; the scalar backend evaluates the exact historical
  // stable two-branch formula, and the y*(1-y) backward is bit-identical on
  // every backend.
  Matrix out(a.rows(), a.cols());
  vec_kernels().sigmoid_f32(out.data().data(), a.value().data().data(), out.size());
  return make_op(std::move(out), {a}, [a](Node& self) {
    if (!a.requires_grad()) return;
    Matrix da(self.value.rows(), self.value.cols());
    vec_kernels().sigmoid_grad_f32(da.data().data(), self.grad.data().data(),
                                   self.value.data().data(), da.size());
    a.node_ref().accumulate(da);
  });
}

Tensor tanh_op(const Tensor& a) {
  return unary_from_output(a, [](float x) { return std::tanh(x); },
                           [](float y) { return 1.0F - y * y; });
}

Tensor dropout(const Tensor& a, float p, util::Rng& rng, bool training) {
  if (!training || p <= 0.0F) return a;
  assert(p < 1.0F);
  const float keep = 1.0F - p;
  auto mask = std::make_shared<std::vector<float>>(a.value().size());
  Matrix out(a.rows(), a.cols());
  const auto src = a.value().data();
  const auto dst = out.data();
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float m = rng.uniform() < p ? 0.0F : 1.0F / keep;
    (*mask)[i] = m;
    dst[i] = src[i] * m;
  }
  return make_op(std::move(out), {a}, [a, mask](Node& self) {
    if (!a.requires_grad()) return;
    Matrix da(a.rows(), a.cols());
    const auto grad = self.grad.data();
    const auto out_data = da.data();
    for (std::size_t i = 0; i < out_data.size(); ++i) out_data[i] = grad[i] * (*mask)[i];
    a.node_ref().accumulate(da);
  });
}

Tensor gather_rows(const Tensor& a, std::span<const std::uint32_t> indices) {
  Matrix out(indices.size(), a.cols());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    assert(indices[i] < a.rows());
    const auto src = a.value().row(indices[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  auto idx = std::make_shared<std::vector<std::uint32_t>>(indices.begin(), indices.end());
  return make_op(std::move(out), {a}, [a, idx](Node& self) {
    if (!a.requires_grad()) return;
    Matrix da(a.rows(), a.cols());
    for (std::size_t i = 0; i < idx->size(); ++i) {
      const auto grad_row = self.grad.row(i);
      const auto dst = da.row((*idx)[i]);
      for (std::size_t c = 0; c < dst.size(); ++c) dst[c] += grad_row[c];
    }
    a.node_ref().accumulate(da);
  });
}

Tensor slice_cols(const Tensor& a, std::size_t start, std::size_t count) {
  assert(start + count <= a.cols());
  Matrix out(a.rows(), count);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto src = a.value().row(r);
    std::copy(src.begin() + static_cast<std::ptrdiff_t>(start),
              src.begin() + static_cast<std::ptrdiff_t>(start + count), out.row(r).begin());
  }
  return make_op(std::move(out), {a}, [a, start, count](Node& self) {
    if (!a.requires_grad()) return;
    Matrix da(a.rows(), a.cols());
    for (std::size_t r = 0; r < da.rows(); ++r) {
      const auto grad_row = self.grad.row(r);
      const auto dst = da.row(r);
      for (std::size_t c = 0; c < count; ++c) dst[start + c] = grad_row[c];
    }
    a.node_ref().accumulate(da);
  });
}

Tensor spmm_edges(const Tensor& a, const Tensor& coef, std::span<const std::uint32_t> src_idx,
                  std::span<const std::uint32_t> dst_idx, std::size_t num_dst) {
  assert(src_idx.size() == dst_idx.size());
  assert(!coef.defined() ||
         (coef.rows() == src_idx.size() && coef.cols() == 1));
  Matrix out(num_dst, a.cols());
  const VecKernels& kern = vec_kernels();
  const std::size_t flops = sat_mul(src_idx.size(), a.cols());
  if (util::ThreadPool* pool = pool_for(flops)) {
    // Edges sharing a dst row conflict, so group edges by dst (stable) and
    // hand each task disjoint output rows; within a row, edges still run in
    // ascending e, matching the serial loop's per-element order exactly.
    const EdgeGroups by_dst = group_edges(dst_idx, num_dst);
    pool->parallel_for(0, num_dst, [&](std::size_t r) {
      const auto dst = out.row(r);
      for (std::uint32_t i = by_dst.offsets[r]; i < by_dst.offsets[r + 1]; ++i) {
        const std::uint32_t e = by_dst.edges[i];
        assert(src_idx[e] < a.rows());
        const float c = coef.defined() ? coef.value().at(e, 0) : 1.0F;
        kern.axpy_f32(dst.data(), a.value().row(src_idx[e]).data(), c, dst.size());
      }
    });
  } else {
    for (std::size_t e = 0; e < src_idx.size(); ++e) {
      assert(src_idx[e] < a.rows() && dst_idx[e] < num_dst);
      const float c = coef.defined() ? coef.value().at(e, 0) : 1.0F;
      const auto dst = out.row(dst_idx[e]);
      kern.axpy_f32(dst.data(), a.value().row(src_idx[e]).data(), c, dst.size());
    }
  }
  auto srcs = std::make_shared<std::vector<std::uint32_t>>(src_idx.begin(), src_idx.end());
  auto dsts = std::make_shared<std::vector<std::uint32_t>>(dst_idx.begin(), dst_idx.end());
  return make_op(std::move(out), {a, coef}, [a, coef, srcs, dsts](Node& self) {
    const VecKernels& kern = vec_kernels();
    const std::size_t grad_flops = sat_mul(srcs->size(), self.grad.cols());
    if (a.requires_grad()) {
      Matrix da(a.rows(), a.cols());
      if (util::ThreadPool* pool = pool_for(grad_flops)) {
        // Same trick as the forward, with src/dst roles swapped: group by
        // src so each task owns disjoint rows of da.
        const EdgeGroups by_src = group_edges(*srcs, a.rows());
        pool->parallel_for(0, a.rows(), [&](std::size_t r) {
          const auto dst = da.row(r);
          for (std::uint32_t i = by_src.offsets[r]; i < by_src.offsets[r + 1]; ++i) {
            const std::uint32_t e = by_src.edges[i];
            const float c = coef.defined() ? coef.value().at(e, 0) : 1.0F;
            kern.axpy_f32(dst.data(), self.grad.row((*dsts)[e]).data(), c, dst.size());
          }
        });
      } else {
        for (std::size_t e = 0; e < srcs->size(); ++e) {
          const float c = coef.defined() ? coef.value().at(e, 0) : 1.0F;
          const auto dst = da.row((*srcs)[e]);
          kern.axpy_f32(dst.data(), self.grad.row((*dsts)[e]).data(), c, dst.size());
        }
      }
      a.node_ref().accumulate(da);
    }
    if (coef.defined() && coef.requires_grad()) {
      Matrix dc(coef.rows(), 1);
      const auto run_edge = [&](std::size_t e) {
        const auto grad_row = self.grad.row((*dsts)[e]);
        const auto src = a.value().row((*srcs)[e]);
        dc.at(e, 0) = kern.dot_f32(grad_row.data(), src.data(), src.size());
      };
      // Each edge writes its own dc element; no conflicts.
      if (util::ThreadPool* pool = pool_for(grad_flops)) {
        pool->parallel_for(0, srcs->size(), run_edge);
      } else {
        for (std::size_t e = 0; e < srcs->size(); ++e) run_edge(e);
      }
      coef.node_ref().accumulate(dc);
    }
  });
}

Tensor segment_softmax(const Tensor& scores, std::span<const std::uint32_t> dst_idx,
                       std::size_t num_dst) {
  assert(scores.cols() == 1 && scores.rows() == dst_idx.size());
  const std::size_t num_edges = dst_idx.size();

  // Stable per-group softmax: subtract the group max.
  std::vector<float> group_max(num_dst, -std::numeric_limits<float>::infinity());
  for (std::size_t e = 0; e < num_edges; ++e) {
    group_max[dst_idx[e]] = std::max(group_max[dst_idx[e]], scores.value().at(e, 0));
  }
  // Shift, then one vectorized exp over the whole edge column; the group
  // sums still accumulate in ascending e (the serial order).
  std::vector<float> shifted(num_edges);
  for (std::size_t e = 0; e < num_edges; ++e) {
    shifted[e] = scores.value().at(e, 0) - group_max[dst_idx[e]];
  }
  Matrix out(num_edges, 1);
  vec_kernels().exp_f32(out.data().data(), shifted.data(), num_edges);
  std::vector<float> group_sum(num_dst, 0.0F);
  for (std::size_t e = 0; e < num_edges; ++e) {
    group_sum[dst_idx[e]] += out.at(e, 0);
  }
  for (std::size_t e = 0; e < num_edges; ++e) {
    out.at(e, 0) /= group_sum[dst_idx[e]];
  }

  auto dsts = std::make_shared<std::vector<std::uint32_t>>(dst_idx.begin(), dst_idx.end());
  const std::size_t groups = num_dst;
  return make_op(std::move(out), {scores}, [scores, dsts, groups](Node& self) {
    if (!scores.requires_grad()) return;
    // ds_e = y_e * (g_e - sum_{f in group(e)} y_f * g_f)
    std::vector<float> group_dot(groups, 0.0F);
    const std::size_t num_edges = dsts->size();
    for (std::size_t e = 0; e < num_edges; ++e) {
      group_dot[(*dsts)[e]] += self.value.at(e, 0) * self.grad.at(e, 0);
    }
    Matrix ds(num_edges, 1);
    for (std::size_t e = 0; e < num_edges; ++e) {
      ds.at(e, 0) = self.value.at(e, 0) * (self.grad.at(e, 0) - group_dot[(*dsts)[e]]);
    }
    scores.node_ref().accumulate(ds);
  });
}

Tensor rowwise_dot(const Tensor& a, const Tensor& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out(a.rows(), 1);
  const VecKernels& kern = vec_kernels();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto ra = a.value().row(r);
    out.at(r, 0) = kern.dot_f32(ra.data(), b.value().row(r).data(), ra.size());
  }
  return make_op(std::move(out), {a, b}, [a, b](Node& self) {
    if (a.requires_grad()) {
      Matrix da(a.rows(), a.cols());
      for (std::size_t r = 0; r < da.rows(); ++r) {
        const float g = self.grad.at(r, 0);
        const auto rb = b.value().row(r);
        const auto dst = da.row(r);
        for (std::size_t c = 0; c < dst.size(); ++c) dst[c] = g * rb[c];
      }
      a.node_ref().accumulate(da);
    }
    if (b.requires_grad()) {
      Matrix db(b.rows(), b.cols());
      for (std::size_t r = 0; r < db.rows(); ++r) {
        const float g = self.grad.at(r, 0);
        const auto ra = a.value().row(r);
        const auto dst = db.row(r);
        for (std::size_t c = 0; c < dst.size(); ++c) dst[c] = g * ra[c];
      }
      b.node_ref().accumulate(db);
    }
  });
}

Tensor bce_with_logits(const Tensor& logits, std::span<const float> labels) {
  assert(logits.cols() == 1 && logits.rows() == labels.size());
  const std::size_t n = labels.size();
  assert(n > 0);
  // The logits column is contiguous (n x 1); terms are summed into a double
  // accumulator in ascending i on every backend.
  const double total = vec_kernels().bce_forward_f64(logits.value().data().data(),
                                                     labels.data(), n);
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(total / static_cast<double>(n));
  auto label_copy = std::make_shared<std::vector<float>>(labels.begin(), labels.end());
  return make_op(std::move(out), {logits}, [logits, label_copy, n](Node& self) {
    if (!logits.requires_grad()) return;
    const float seed = self.grad.at(0, 0) / static_cast<float>(n);
    Matrix dl(n, 1);
    vec_kernels().bce_grad_f32(dl.data().data(), logits.value().data().data(),
                               label_copy->data(), seed, n);
    logits.node_ref().accumulate(dl);
  });
}

}  // namespace splpg::tensor
