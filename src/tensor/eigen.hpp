// Dense symmetric eigendecomposition (cyclic Jacobi) and pseudo-inverse.
//
// Used by the sparsify module for *exact* effective resistance (Laplacian
// pseudo-inverse, Eq. (3) of the paper) and for the second-smallest
// eigenvalue of the normalized Laplacian (gamma in Theorem 2). O(n^3);
// intended for validation on small graphs, not the training path — the
// production sparsifier uses the Theorem 2 degree approximation.
#pragma once

#include "tensor/matrix.hpp"

namespace splpg::util {
class ThreadPool;
}  // namespace splpg::util

namespace splpg::tensor {

struct EigenDecomposition {
  std::vector<double> eigenvalues;  // ascending
  Matrix eigenvectors;              // column i pairs with eigenvalues[i]
};

/// Eigendecomposition of a symmetric matrix via the cyclic Jacobi method.
/// `a` must be symmetric; asymmetry beyond ~1e-4 is a programming error.
[[nodiscard]] EigenDecomposition symmetric_eigen(const Matrix& a, double tolerance = 1e-10,
                                                 int max_sweeps = 100);

/// Moore-Penrose pseudo-inverse of a symmetric matrix: eigenvalues below
/// `rank_tolerance` (relative to the largest) are treated as zero. The O(n^2)
/// Gram reconstruction A+ = V diag(1/lambda) V^T row-blocks across `pool`
/// when one is given; output is bit-identical with and without a pool (each
/// row is owned by one thread and accumulates in the same eigen order).
[[nodiscard]] Matrix symmetric_pseudo_inverse(const Matrix& a, double rank_tolerance = 1e-8,
                                              util::ThreadPool* pool = nullptr);

}  // namespace splpg::tensor
