// Scalar backend: the reference tier of the two-tier determinism contract.
//
// These loops are spelled out directly (NOT instantiated from
// vec_kernels.inl with width-1 vectors) so that each kernel is trivially,
// auditably the SAME expression sequence as the historical scalar code it
// replaced: libm exp/log1p/abs, sequential ascending-index accumulation, no
// FMA contraction (the build does not pass -ffast-math / -ffp-contract=fast,
// so a*b+c written as separate ops stays separate). The pre-existing
// bit-identity property suites pin this backend to the old kernels.

#include "tensor/vec.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace splpg::tensor {
namespace vec_scalar_impl {
namespace {

inline float scalar_sigmoid(float x) {
  return x >= 0.0F ? 1.0F / (1.0F + std::exp(-x)) : std::exp(x) / (1.0F + std::exp(x));
}

void axpy_f32(float* dst, const float* src, float alpha, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

float dot_f32(const float* a, const float* b, std::size_t n) {
  float total = 0.0F;
  for (std::size_t i = 0; i < n; ++i) total += a[i] * b[i];
  return total;
}

void axpy_f64(double* dst, const double* src, double alpha, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void xpby_f64(double* dst, const double* src, double beta, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] + beta * dst[i];
}

double dot_f64(const double* a, const double* b, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += a[i] * b[i];
  return total;
}

double ssd_f64(const double* a, const double* b, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

double spmv_row_f64(const double* values, const std::uint32_t* cols, const double* x,
                    std::size_t nnz) {
  double total = 0.0;
  for (std::size_t i = 0; i < nnz; ++i) total += values[i] * x[cols[i]];
  return total;
}

void exp_f32(float* dst, const float* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = std::exp(src[i]);
}

void sigmoid_f32(float* dst, const float* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = scalar_sigmoid(src[i]);
}

void sigmoid_grad_f32(float* dst, const float* grad, const float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = grad[i] * (y[i] * (1.0F - y[i]));
}

double bce_forward_f64(const float* logits, const float* labels, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float z = logits[i];
    total += std::max(z, 0.0F) - z * labels[i] + std::log1p(std::exp(-std::abs(z)));
  }
  return total;
}

void bce_grad_f32(float* dst, const float* logits, const float* labels, float seed,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = seed * (scalar_sigmoid(logits[i]) - labels[i]);
  }
}

void adam_step_f32(float* value, float* m, float* v, const float* grad, std::size_t n,
                   float beta1, float beta2, float lr, float bias1, float bias2, float eps) {
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = beta1 * m[i] + (1.0F - beta1) * grad[i];
    v[i] = beta2 * v[i] + (1.0F - beta2) * grad[i] * grad[i];
    const float m_hat = m[i] / bias1;
    const float v_hat = v[i] / bias2;
    value[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

const VecKernels kTable = {
    VecBackend::kScalar,
    "scalar",
    /*width_f32=*/1,
    /*width_f64=*/1,
    &axpy_f32,
    &dot_f32,
    &axpy_f64,
    &xpby_f64,
    &dot_f64,
    &ssd_f64,
    &spmv_row_f64,
    &exp_f32,
    &sigmoid_f32,
    &sigmoid_grad_f32,
    &bce_forward_f64,
    &bce_grad_f32,
    &adam_step_f32,
};

}  // namespace
}  // namespace vec_scalar_impl

namespace detail {
const VecKernels* vec_table_scalar() noexcept { return &vec_scalar_impl::kTable; }
}  // namespace detail

}  // namespace splpg::tensor
