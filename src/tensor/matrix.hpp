// Dense row-major float matrix with the handful of kernels the GNN stack
// needs: GEMM (with transposed variants), elementwise maps, row ops.
//
// Deliberately BLAS-free: the experiments compare training *methods*, not
// kernels, and a self-contained implementation keeps the library dependency-
// free. The GEMM uses an i-k-j loop order so the inner loop streams both B
// and C rows (vectorizable by the compiler).
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace splpg::tensor {

class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0F)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == rows_ * cols_);
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] float& at(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float at(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<float> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

  void fill(float value) noexcept { std::fill(data_.begin(), data_.end(), value); }
  void zero() noexcept { fill(0.0F); }

  /// Resizes (contents become unspecified) — used to size gradient buffers.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0F);
  }

  [[nodiscard]] bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// this += other (shapes must match).
  void add_inplace(const Matrix& other) noexcept;
  /// this += alpha * other.
  void axpy_inplace(float alpha, const Matrix& other) noexcept;
  /// this *= alpha.
  void scale_inplace(float alpha) noexcept;

  /// Frobenius-norm squared.
  [[nodiscard]] double squared_norm() const noexcept;

  /// Applies `fn` to every element, returning a new matrix.
  [[nodiscard]] Matrix map(const std::function<float(float)>& fn) const;

  [[nodiscard]] Matrix transposed() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);
/// C = A^T * B (without materializing A^T).
[[nodiscard]] Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// C = A * B^T (without materializing B^T).
[[nodiscard]] Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// C += A * B (accumulating GEMM; C must be m x n already).
void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c);
/// C += A^T * B.
void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c);
/// C += A * B^T.
void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c);

/// Elementwise sum / difference / product.
[[nodiscard]] Matrix add(const Matrix& a, const Matrix& b);
[[nodiscard]] Matrix sub(const Matrix& a, const Matrix& b);
[[nodiscard]] Matrix hadamard(const Matrix& a, const Matrix& b);

/// Max absolute elementwise difference (test helper).
[[nodiscard]] float max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace splpg::tensor
