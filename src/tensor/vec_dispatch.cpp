// Runtime backend dispatch: probes once which compiled-in backends the CPU
// can execute, resolves SPLPG_VEC on first use, and serves the active
// kernel table. All state is lock-free atomics; switching backends
// (set_vec_backend) is only sequenced against kernels that START after the
// switch — tests and bench sweeps call it between computations.

#include "tensor/vec.hpp"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace splpg::tensor {
namespace {

const VecKernels* table_for(VecBackend backend) noexcept {
  switch (backend) {
    case VecBackend::kScalar:
      return detail::vec_table_scalar();
    case VecBackend::kSse2:
      return detail::vec_table_sse2();
    case VecBackend::kAvx2:
      return detail::vec_table_avx2();
    case VecBackend::kAvx512:
      return detail::vec_table_avx512();
  }
  return nullptr;
}

bool cpu_can_run(VecBackend backend) noexcept {
#if defined(__x86_64__) || defined(__i386__)
  switch (backend) {
    case VecBackend::kScalar:
      return true;
    case VecBackend::kSse2:
      return __builtin_cpu_supports("sse2") != 0;
    case VecBackend::kAvx2:
      return __builtin_cpu_supports("avx2") != 0 && __builtin_cpu_supports("fma") != 0;
    case VecBackend::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
  }
  return false;
#else
  return backend == VecBackend::kScalar;
#endif
}

VecBackend resolve_default() noexcept {
  VecBackend best = vec_best_backend();
  const char* env = std::getenv("SPLPG_VEC");
  if (env == nullptr || *env == '\0') return best;
  VecBackend requested = best;
  if (!parse_vec_backend(env, requested)) {
    std::fprintf(stderr,
                 "splpg: SPLPG_VEC=%s is not a backend name "
                 "(scalar|sse2|avx2|avx512); using %s\n",
                 env, vec_backend_name(best));
    return best;
  }
  if (!vec_backend_supported(requested)) {
    std::fprintf(stderr, "splpg: SPLPG_VEC=%s is not supported on this machine; using %s\n", env,
                 vec_backend_name(best));
    return best;
  }
  return requested;
}

/// Active table; nullptr until first use (resolve SPLPG_VEC lazily so tests
/// can setenv before the first kernel call).
std::atomic<const VecKernels*> g_active{nullptr};

}  // namespace

bool vec_backend_compiled(VecBackend backend) noexcept { return table_for(backend) != nullptr; }

bool vec_backend_supported(VecBackend backend) noexcept {
  return vec_backend_compiled(backend) && cpu_can_run(backend);
}

VecBackend vec_best_backend() noexcept {
  for (VecBackend candidate :
       {VecBackend::kAvx512, VecBackend::kAvx2, VecBackend::kSse2, VecBackend::kScalar}) {
    if (vec_backend_supported(candidate)) return candidate;
  }
  return VecBackend::kScalar;
}

const VecKernels& vec_kernels() noexcept {
  const VecKernels* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = table_for(resolve_default());
    // Several threads may race the first resolution; they all compute the
    // same answer, so the winner is irrelevant.
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

VecBackend vec_active_backend() noexcept { return vec_kernels().backend; }

const VecKernels& vec_kernels_for(VecBackend backend) noexcept {
  const VecKernels* table = table_for(backend);
  assert(table != nullptr && cpu_can_run(backend));
  return *table;
}

bool set_vec_backend(VecBackend backend) noexcept {
  if (!vec_backend_supported(backend)) return false;
  g_active.store(table_for(backend), std::memory_order_release);
  return true;
}

const char* vec_backend_name(VecBackend backend) noexcept {
  switch (backend) {
    case VecBackend::kScalar:
      return "scalar";
    case VecBackend::kSse2:
      return "sse2";
    case VecBackend::kAvx2:
      return "avx2";
    case VecBackend::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool parse_vec_backend(std::string_view text, VecBackend& out) noexcept {
  if (text == "scalar") {
    out = VecBackend::kScalar;
  } else if (text == "sse2") {
    out = VecBackend::kSse2;
  } else if (text == "avx2") {
    out = VecBackend::kAvx2;
  } else if (text == "avx512") {
    out = VecBackend::kAvx512;
  } else {
    return false;
  }
  return true;
}

}  // namespace splpg::tensor
