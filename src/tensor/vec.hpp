// SIMD kernel engine: compile-time-vectorized implementations of the tensor
// hot loops with runtime backend dispatch, in the style of ATen's
// cpu/vec256 / vec512 headers.
//
// Each backend (scalar, SSE2, AVX2, AVX-512) is one translation unit compiled
// with exactly its ISA flags; the rest of the library stays at the baseline
// architecture, and the running CPU is probed once at startup
// (__builtin_cpu_supports) to pick the widest compiled-in backend it can
// execute. `SPLPG_VEC=scalar|sse2|avx2|avx512` pins a backend for testing;
// `set_vec_backend` does the same programmatically (used by the ULP property
// tests and bench_kernels to sweep backends in one process).
//
// Determinism is a TWO-TIER contract (DESIGN.md "Kernel engine"):
//  * The scalar backend is bit-identical to the historical scalar kernels —
//    byte-for-byte, enforced by the pre-existing property suites running
//    under SPLPG_VEC=scalar.
//  * Every SIMD backend is a pure function of its inputs — same backend,
//    same bytes, at every thread count and schedule (kernels never split
//    work across threads themselves; row/edge decomposition happens above
//    them and each output element is produced by exactly one kernel call) —
//    and matches the scalar backend within the documented per-kernel bounds
//    below.
//
// Per-kernel scalar-vs-SIMD bounds (eps = machine epsilon of the element
// type, k = reduction length):
//  * axpy/xpby: elementwise; FMA contraction differs from mul+add by at
//    most 1 ULP per call. Accumulated over a k-deep GEMM update chain the
//    divergence is <= (k + 2) * eps * sum_p |a_p * b_pj|.
//  * dot/ssd/spmv_row: lane-partial accumulation reassociates the sum;
//    |simd - scalar| <= 2 * (k + 2) * eps * sum |terms|.
//  * exp/sigmoid: Cephes polynomial vs libm — <= 16 ULP elementwise, plus
//    an absolute floor of 2^-120 (the polynomial clamps instead of
//    denormal-underflowing at extreme arguments).
//  * bce_forward: per-term transcendental error as above; terms are summed
//    in the scalar order (ascending index), so the sum inherits the
//    elementwise bound: |simd - scalar| <= n * (16 ULP of the largest term
//    + 1e-7 absolute).
//  * sigmoid_grad/adam_step: identical operation sequence, no contraction —
//    bit-identical on EVERY backend.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace splpg::tensor {

enum class VecBackend : int { kScalar = 0, kSse2 = 1, kAvx2 = 2, kAvx512 = 3 };

inline constexpr int kNumVecBackends = 4;

/// Function-pointer table for one backend's kernels. All pointers are
/// non-null in a registered table.
struct VecKernels {
  VecBackend backend = VecBackend::kScalar;
  const char* name = "scalar";
  std::size_t width_f32 = 1;  ///< float lanes per vector op
  std::size_t width_f64 = 1;  ///< double lanes per vector op

  // ---- linear float kernels (GEMM / aggregation inner loops) ----
  /// dst[i] += alpha * src[i]
  void (*axpy_f32)(float* dst, const float* src, float alpha, std::size_t n);
  /// sum_i a[i] * b[i]
  float (*dot_f32)(const float* a, const float* b, std::size_t n);

  // ---- linear double kernels (sparse CSR solvers) ----
  /// dst[i] += alpha * src[i]
  void (*axpy_f64)(double* dst, const double* src, double alpha, std::size_t n);
  /// dst[i] = src[i] + beta * dst[i]
  void (*xpby_f64)(double* dst, const double* src, double beta, std::size_t n);
  /// sum_i a[i] * b[i]
  double (*dot_f64)(const double* a, const double* b, std::size_t n);
  /// sum_i (a[i] - b[i])^2
  double (*ssd_f64)(const double* a, const double* b, std::size_t n);
  /// One CSR row of y = A x: sum_i values[i] * x[cols[i]] (gathered).
  double (*spmv_row_f64)(const double* values, const std::uint32_t* cols, const double* x,
                         std::size_t nnz);

  // ---- transcendental epilogues ----
  /// dst[i] = exp(src[i])
  void (*exp_f32)(float* dst, const float* src, std::size_t n);
  /// dst[i] = 1 / (1 + exp(-src[i])), numerically stable on both branches.
  void (*sigmoid_f32)(float* dst, const float* src, std::size_t n);
  /// dst[i] = grad[i] * (y[i] * (1 - y[i])) — bit-identical on every backend.
  void (*sigmoid_grad_f32)(float* dst, const float* grad, const float* y, std::size_t n);
  /// sum_i max(z,0) - z*y + log1p(exp(-|z|)) accumulated in double,
  /// ascending i (the scalar order on every backend).
  double (*bce_forward_f64)(const float* logits, const float* labels, std::size_t n);
  /// dst[i] = seed * (sigmoid(logits[i]) - labels[i])
  void (*bce_grad_f32)(float* dst, const float* logits, const float* labels, float seed,
                       std::size_t n);

  // ---- optimizer ----
  /// One fused Adam update over n elements. The operation sequence is
  /// exactly the scalar loop's (no FMA contraction), so every backend is
  /// bit-identical — checkpoints and resume runs do not depend on SPLPG_VEC.
  void (*adam_step_f32)(float* value, float* m, float* v, const float* grad, std::size_t n,
                        float beta1, float beta2, float lr, float bias1, float bias2, float eps);
};

/// Backend compiled into this binary? (Non-x86 builds carry only scalar;
/// x86 builds may drop AVX-512 if the compiler cannot target it.)
[[nodiscard]] bool vec_backend_compiled(VecBackend backend) noexcept;

/// Compiled in AND executable on the running CPU (probed at startup)?
[[nodiscard]] bool vec_backend_supported(VecBackend backend) noexcept;

/// Widest supported backend — the startup default when SPLPG_VEC is unset.
[[nodiscard]] VecBackend vec_best_backend() noexcept;

/// The active backend. First call resolves SPLPG_VEC (unknown or
/// unsupported values warn on stderr and fall back to vec_best_backend()).
[[nodiscard]] VecBackend vec_active_backend() noexcept;

/// The active backend's kernel table. Kernels in flight keep the table they
/// captured at entry; see set_vec_backend for switching.
[[nodiscard]] const VecKernels& vec_kernels() noexcept;

/// Kernel table of a specific SUPPORTED backend (asserts otherwise) —
/// lets tests/benches compare backends without switching the process.
[[nodiscard]] const VecKernels& vec_kernels_for(VecBackend backend) noexcept;

/// Switches the active backend; returns false (and changes nothing) if the
/// backend is not supported here. Not synchronized with kernels already
/// executing — call between computations (tests, bench sweeps).
bool set_vec_backend(VecBackend backend) noexcept;

[[nodiscard]] const char* vec_backend_name(VecBackend backend) noexcept;

/// "scalar|sse2|avx2|avx512" -> backend. Returns false on anything else.
[[nodiscard]] bool parse_vec_backend(std::string_view text, VecBackend& out) noexcept;

// ---------------------------------------------------------------------------
// IEEE strictness of the GEMM zero-skip.
//
// matmul_acc / matmul_tn_acc skip an A-row entry when alpha == 0: for finite
// B this is exact (c + 0*b == c except for signed-zero flips the skip also
// avoids), but it masks NaN/Inf in the skipped B row — the IEEE result of
// 0 * NaN is NaN and would propagate into C. The skip is ON by default
// (bit-compatible with the historical kernels and with the sparsity the
// skip exists to exploit); flip it off when NaN poisoning must surface.
// Process-wide, read with relaxed ordering at kernel entry.
// ---------------------------------------------------------------------------

namespace detail {
inline std::atomic<bool> g_kernels_assume_finite{true};
}  // namespace detail

[[nodiscard]] inline bool kernels_assume_finite() noexcept {
  return detail::g_kernels_assume_finite.load(std::memory_order_relaxed);
}

inline void set_kernels_assume_finite(bool value) noexcept {
  detail::g_kernels_assume_finite.store(value, std::memory_order_relaxed);
}

/// RAII toggle for kernels_assume_finite (tests, strict-IEEE sections).
class AssumeFiniteScope {
 public:
  explicit AssumeFiniteScope(bool value) noexcept : previous_(kernels_assume_finite()) {
    set_kernels_assume_finite(value);
  }
  ~AssumeFiniteScope() { set_kernels_assume_finite(previous_); }

  AssumeFiniteScope(const AssumeFiniteScope&) = delete;
  AssumeFiniteScope& operator=(const AssumeFiniteScope&) = delete;

 private:
  bool previous_;
};

namespace detail {
// Per-backend table accessors, defined one per TU (vec_<backend>.cpp);
// nullptr when the backend is not compiled into this binary.
[[nodiscard]] const VecKernels* vec_table_scalar() noexcept;
[[nodiscard]] const VecKernels* vec_table_sse2() noexcept;
[[nodiscard]] const VecKernels* vec_table_avx2() noexcept;
[[nodiscard]] const VecKernels* vec_table_avx512() noexcept;
}  // namespace detail

}  // namespace splpg::tensor
