// AVX2+FMA backend: 8-lane float / 4-lane double, hardware FMA, hardware
// gathers for the CSR spmv row kernel. Compiled with -mavx2 -mfma on this
// file only (src/CMakeLists.txt); the dispatcher never calls into it unless
// __builtin_cpu_supports confirms both features at runtime.

#include "tensor/vec.hpp"

#if defined(__AVX2__) && defined(__FMA__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace splpg::tensor {
namespace vec_avx2_impl {

struct Vecf {
  __m256 v;
  using Mask = __m256;
  static constexpr std::size_t kWidth = 8;

  static Vecf load(const float* p) { return {_mm256_loadu_ps(p)}; }
  static Vecf splat(float x) { return {_mm256_set1_ps(x)}; }
  static void store(float* p, Vecf a) { _mm256_storeu_ps(p, a.v); }

  static Vecf add(Vecf a, Vecf b) { return {_mm256_add_ps(a.v, b.v)}; }
  static Vecf sub(Vecf a, Vecf b) { return {_mm256_sub_ps(a.v, b.v)}; }
  static Vecf mul(Vecf a, Vecf b) { return {_mm256_mul_ps(a.v, b.v)}; }
  static Vecf div(Vecf a, Vecf b) { return {_mm256_div_ps(a.v, b.v)}; }
  static Vecf fma(Vecf a, Vecf b, Vecf c) { return {_mm256_fmadd_ps(a.v, b.v, c.v)}; }
  static Vecf min(Vecf a, Vecf b) { return {_mm256_min_ps(a.v, b.v)}; }
  static Vecf max(Vecf a, Vecf b) { return {_mm256_max_ps(a.v, b.v)}; }
  static Vecf sqrt(Vecf a) { return {_mm256_sqrt_ps(a.v)}; }
  static Vecf floor(Vecf a) { return {_mm256_floor_ps(a.v)}; }

  static Vecf pow2i(Vecf n) {
    const __m256i e = _mm256_add_epi32(_mm256_cvttps_epi32(n.v), _mm256_set1_epi32(127));
    return {_mm256_castsi256_ps(_mm256_slli_epi32(e, 23))};
  }

  static Vecf frexp(Vecf x, Vecf* e) {
    const __m256i bits = _mm256_castps_si256(x.v);
    const __m256i exp = _mm256_sub_epi32(
        _mm256_and_si256(_mm256_srli_epi32(bits, 23), _mm256_set1_epi32(0xFF)),
        _mm256_set1_epi32(126));
    e->v = _mm256_cvtepi32_ps(exp);
    const __m256i mant = _mm256_or_si256(_mm256_and_si256(bits, _mm256_set1_epi32(0x007FFFFF)),
                                         _mm256_set1_epi32(0x3F000000));
    return {_mm256_castsi256_ps(mant)};
  }

  static Mask cmp_ge(Vecf a, Vecf b) { return _mm256_cmp_ps(a.v, b.v, _CMP_GE_OQ); }
  static Mask cmp_lt(Vecf a, Vecf b) { return _mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ); }
  static Mask cmp_eq(Vecf a, Vecf b) { return _mm256_cmp_ps(a.v, b.v, _CMP_EQ_OQ); }
  static Vecf select(Mask m, Vecf a, Vecf b) { return {_mm256_blendv_ps(b.v, a.v, m)}; }

  /// Fixed fold order: halves first, then the SSE pairwise fold.
  static float hsum(Vecf a) {
    const __m128 lo = _mm256_castps256_ps128(a.v);
    const __m128 hi = _mm256_extractf128_ps(a.v, 1);
    const __m128 q = _mm_add_ps(lo, hi);
    const __m128 h = _mm_add_ps(q, _mm_movehl_ps(q, q));
    return _mm_cvtss_f32(_mm_add_ss(h, _mm_shuffle_ps(h, h, 0x55)));
  }
};

struct Vecd {
  __m256d v;
  static constexpr std::size_t kWidth = 4;

  static Vecd load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static Vecd splat(double x) { return {_mm256_set1_pd(x)}; }
  static void store(double* p, Vecd a) { _mm256_storeu_pd(p, a.v); }

  static Vecd add(Vecd a, Vecd b) { return {_mm256_add_pd(a.v, b.v)}; }
  static Vecd sub(Vecd a, Vecd b) { return {_mm256_sub_pd(a.v, b.v)}; }
  static Vecd mul(Vecd a, Vecd b) { return {_mm256_mul_pd(a.v, b.v)}; }
  static Vecd fma(Vecd a, Vecd b, Vecd c) { return {_mm256_fmadd_pd(a.v, b.v, c.v)}; }

  /// Hardware gather of 4 doubles by 32-bit indices. Only ever called with
  /// a full block of kWidth valid indices (tails run scalar), so the
  /// unmasked form never reads an out-of-range index.
  static Vecd gather(const double* base, const std::uint32_t* idx) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    return {_mm256_i32gather_pd(base, vi, 8)};
  }

  static double hsum(Vecd a) {
    const __m128d lo = _mm256_castpd256_pd128(a.v);
    const __m128d hi = _mm256_extractf128_pd(a.v, 1);
    const __m128d s = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
  }
};

}  // namespace vec_avx2_impl
}  // namespace splpg::tensor

#define SPLPG_VEC_NS vec_avx2_impl
#define SPLPG_VEC_NAME "avx2"
#define SPLPG_VEC_ENUM VecBackend::kAvx2
#include "tensor/vec_kernels.inl"
#undef SPLPG_VEC_NS
#undef SPLPG_VEC_NAME
#undef SPLPG_VEC_ENUM

namespace splpg::tensor::detail {
const VecKernels* vec_table_avx2() noexcept { return &vec_avx2_impl::kTable; }
}  // namespace splpg::tensor::detail

#else  // compiler/arch cannot target AVX2: backend not compiled.

namespace splpg::tensor::detail {
const VecKernels* vec_table_avx2() noexcept { return nullptr; }
}  // namespace splpg::tensor::detail

#endif
