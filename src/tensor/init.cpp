#include "tensor/init.hpp"

#include <cmath>

namespace splpg::tensor {

Matrix xavier_uniform(std::size_t fan_in, std::size_t fan_out, util::Rng& rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  Matrix out(fan_in, fan_out);
  for (float& x : out.data()) x = static_cast<float>(rng.uniform(-bound, bound));
  return out;
}

Matrix he_normal(std::size_t fan_in, std::size_t fan_out, util::Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  Matrix out(fan_in, fan_out);
  for (float& x : out.data()) x = static_cast<float>(rng.normal(0.0, stddev));
  return out;
}

Matrix gaussian(std::size_t rows, std::size_t cols, double mean, double stddev, util::Rng& rng) {
  Matrix out(rows, cols);
  for (float& x : out.data()) x = static_cast<float>(rng.normal(mean, stddev));
  return out;
}

}  // namespace splpg::tensor
