// Thread-local compute-pool context for the tensor kernels.
//
// The autograd graph is built and walked by ONE thread (a trainer worker or
// an evaluator chunk task), but the dense kernels inside each op — the
// matmul family and the edge-list aggregation — are row-parallel. Rather
// than threading a pool pointer through every op signature (and every
// backward closure), the executing thread installs its worker pool in a
// thread-local slot for the duration of a forward/backward pass; the
// kernels in matrix.cpp / autograd.cpp consult it and row-block their loops
// when it is set and the problem is large enough to amortize the fan-out.
//
// The determinism contract of DESIGN.md §6 applies: every pooled kernel
// assigns each output row (or edge group) to exactly one task and preserves
// the serial per-element accumulation order, so the bytes are identical at
// every pool width — including none. The size thresholds in the kernels
// affect only scheduling, never results.
#pragma once

#include <limits>

#include "util/thread_pool.hpp"

namespace splpg::tensor {

/// The calling thread's compute pool (nullptr = run kernels serially).
[[nodiscard]] util::ThreadPool* compute_pool() noexcept;

/// Saturating product: SIZE_MAX instead of wrapping. The flop gates feed
/// m*k*n into pool_for; a wrapped product on adversarially large shapes
/// would land BELOW the threshold and silently de-parallelize exactly the
/// kernels that need the pool most.
[[nodiscard]] inline std::size_t sat_mul(std::size_t a, std::size_t b) noexcept {
  std::size_t out = 0;
  return __builtin_mul_overflow(a, b, &out) ? std::numeric_limits<std::size_t>::max() : out;
}

/// Saturating m*k*n for the matmul-family gates.
[[nodiscard]] inline std::size_t sat_flops(std::size_t m, std::size_t k, std::size_t n) noexcept {
  return sat_mul(sat_mul(m, k), n);
}

/// Pooling only pays off once the fan-out cost is amortized; below this many
/// multiply-adds kernels stay serial. Scheduling-only: results are
/// bit-identical either way.
inline constexpr std::size_t kParallelFlopThreshold = 1U << 15U;

/// The calling thread's compute pool when `flops` crosses the threshold,
/// nullptr otherwise (= run this kernel serially).
[[nodiscard]] inline util::ThreadPool* pool_for(std::size_t flops) noexcept {
  util::ThreadPool* pool = compute_pool();
  return (pool != nullptr && flops >= kParallelFlopThreshold) ? pool : nullptr;
}

/// RAII installer: sets the calling thread's compute pool on construction
/// and restores the previous value on destruction. Nesting is allowed.
/// Installing nullptr (or a 1-thread pool) forces serial kernels.
class ComputePoolScope {
 public:
  explicit ComputePoolScope(util::ThreadPool* pool) noexcept;
  ~ComputePoolScope();

  ComputePoolScope(const ComputePoolScope&) = delete;
  ComputePoolScope& operator=(const ComputePoolScope&) = delete;

 private:
  util::ThreadPool* previous_;
};

}  // namespace splpg::tensor
