// Reverse-mode automatic differentiation over Matrix values.
//
// A `Tensor` is a handle to a node in a dynamically built computation DAG.
// Children hold shared ownership of their parents (never the reverse), so the
// graph is acyclic in ownership and frees itself when the loss handle goes
// out of scope. `backward()` topologically sorts the reachable subgraph and
// runs each node's backward closure, accumulating gradients into
// requires-grad leaves (the model parameters).
//
// The op set is exactly what the GNN stack needs, including the three
// graph-specific primitives:
//   * gather_rows      — build a mini-batch's input rows / pick edge endpoints
//   * spmm_edges       — generalized neighborhood aggregation (GCN/SAGE/GAT):
//                        out[dst_idx[e]] += coef[e] * in[src_idx[e]]
//   * segment_softmax  — per-destination softmax over edge scores (GAT/GATv2)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace splpg::tensor {

namespace detail {
struct Node {
  Matrix value;
  Matrix grad;  // allocated on first accumulation
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void(Node&)> backward_fn;  // may be empty (leaf)

  void accumulate(const Matrix& delta);
};
}  // namespace detail

class Tensor {
 public:
  Tensor() = default;

  /// Trainable leaf (model parameter).
  [[nodiscard]] static Tensor parameter(Matrix value);
  /// Non-trainable leaf (inputs, labels).
  [[nodiscard]] static Tensor constant(Matrix value);

  [[nodiscard]] bool defined() const noexcept { return node_ != nullptr; }
  [[nodiscard]] const Matrix& value() const noexcept { return node_->value; }
  [[nodiscard]] Matrix& mutable_value() noexcept { return node_->value; }
  [[nodiscard]] bool requires_grad() const noexcept { return node_->requires_grad; }

  /// Gradient buffer. Zero-shaped until backward touches this node.
  [[nodiscard]] const Matrix& grad() const noexcept { return node_->grad; }
  [[nodiscard]] Matrix& mutable_grad() noexcept { return node_->grad; }

  [[nodiscard]] std::size_t rows() const noexcept { return node_->value.rows(); }
  [[nodiscard]] std::size_t cols() const noexcept { return node_->value.cols(); }

  /// Clears this node's gradient (parameters are cleared by the optimizer).
  void zero_grad() noexcept { node_->grad.zero(); }

  /// Runs reverse-mode AD from this node. The seed gradient is all-ones
  /// (callers invoke it on a 1x1 loss).
  void backward();

  /// Scalar convenience for 1x1 tensors.
  [[nodiscard]] float item() const noexcept { return node_->value.at(0, 0); }

  /// Internal: direct node access for op backward closures.
  [[nodiscard]] detail::Node& node_ref() const noexcept { return *node_; }

 private:
  friend Tensor make_op(Matrix value, std::vector<Tensor> parents,
                        std::function<void(detail::Node&)> backward_fn);
  explicit Tensor(std::shared_ptr<detail::Node> node) : node_(std::move(node)) {}
  std::shared_ptr<detail::Node> node_;
};

/// Internal: creates an op node; exposed for extension ops in tests.
[[nodiscard]] Tensor make_op(Matrix value, std::vector<Tensor> parents,
                             std::function<void(detail::Node&)> backward_fn);

// ---- arithmetic ----

/// C = A * B.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// Elementwise A + B. B may also be a 1 x cols row vector, broadcast over
/// rows (bias add).
[[nodiscard]] Tensor add(const Tensor& a, const Tensor& b);

/// Elementwise A * B (same shapes), or B is N x 1 broadcast over columns.
[[nodiscard]] Tensor mul(const Tensor& a, const Tensor& b);

/// alpha * A.
[[nodiscard]] Tensor scale(const Tensor& a, float alpha);

/// Column-wise concatenation [A | B].
[[nodiscard]] Tensor concat_cols(const Tensor& a, const Tensor& b);

/// Mean over all elements -> 1x1.
[[nodiscard]] Tensor mean_all(const Tensor& a);

// ---- activations ----

[[nodiscard]] Tensor relu(const Tensor& a);
[[nodiscard]] Tensor leaky_relu(const Tensor& a, float negative_slope = 0.2F);
[[nodiscard]] Tensor sigmoid(const Tensor& a);
[[nodiscard]] Tensor tanh_op(const Tensor& a);

/// Inverted dropout. Identity when `training` is false or p == 0.
[[nodiscard]] Tensor dropout(const Tensor& a, float p, util::Rng& rng, bool training);

// ---- graph primitives ----

/// out[i] = a[indices[i]] (row gather). Backward scatter-adds.
[[nodiscard]] Tensor gather_rows(const Tensor& a, std::span<const std::uint32_t> indices);

/// Contiguous column slice: out = a[:, start : start + count]. Backward
/// scatters the gradient into the sliced columns. Used by multi-head
/// attention to address one head's feature block.
[[nodiscard]] Tensor slice_cols(const Tensor& a, std::size_t start, std::size_t count);

/// Generalized sparse aggregation over an edge list:
///   out[dst_idx[e]] += coef[e] * a[src_idx[e]]    for e in [0, E)
/// `coef` may be undefined (all-ones), a constant, or a trainable E x 1
/// tensor (attention weights); gradients flow into both `a` and `coef`.
[[nodiscard]] Tensor spmm_edges(const Tensor& a, const Tensor& coef,
                                std::span<const std::uint32_t> src_idx,
                                std::span<const std::uint32_t> dst_idx, std::size_t num_dst);

/// Softmax over the E x 1 `scores`, normalizing within groups of edges that
/// share a destination (dst_idx). Groups with no edges are untouched.
[[nodiscard]] Tensor segment_softmax(const Tensor& scores,
                                     std::span<const std::uint32_t> dst_idx,
                                     std::size_t num_dst);

/// out[i] = dot(a.row(i), b.row(i)) -> N x 1 (dot-product edge predictor).
[[nodiscard]] Tensor rowwise_dot(const Tensor& a, const Tensor& b);

// ---- losses ----

/// Numerically stable mean binary-cross-entropy with logits:
///   mean_i [ max(z,0) - z*y + log(1 + exp(-|z|)) ]
/// `labels` must have logits.rows() entries in {0, 1} (soft labels allowed).
[[nodiscard]] Tensor bce_with_logits(const Tensor& logits, std::span<const float> labels);

}  // namespace splpg::tensor
