#include "tensor/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/parallel.hpp"
#include "tensor/vec.hpp"

namespace splpg::tensor {

void Matrix::add_inplace(const Matrix& other) noexcept {
  assert(same_shape(other));
  // axpy with alpha = 1: the product is exact, so this is bit-identical to
  // the plain += loop on every backend.
  vec_kernels().axpy_f32(data_.data(), other.data_.data(), 1.0F, data_.size());
}

void Matrix::axpy_inplace(float alpha, const Matrix& other) noexcept {
  assert(same_shape(other));
  vec_kernels().axpy_f32(data_.data(), other.data_.data(), alpha, data_.size());
}

void Matrix::scale_inplace(float alpha) noexcept {
  for (float& x : data_) x *= alpha;
}

double Matrix::squared_norm() const noexcept {
  double total = 0.0;
  for (const float x : data_) total += static_cast<double>(x) * x;
  return total;
}

Matrix Matrix::map(const std::function<float(float)>& fn) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = fn(data_[i]);
  return out;
}

Matrix Matrix::transposed() const {
  // Blocked to keep both the reads and the writes inside a cache-resident
  // tile: the naive loop strides one of the two matrices by `cols_` floats
  // per element, which thrashes once a row exceeds the L1. Pure data
  // movement — bytes are identical to the naive transpose.
  constexpr std::size_t kBlock = 32;
  Matrix out(cols_, rows_);
  for (std::size_t rb = 0; rb < rows_; rb += kBlock) {
    const std::size_t r_end = std::min(rows_, rb + kBlock);
    for (std::size_t cb = 0; cb < cols_; cb += kBlock) {
      const std::size_t c_end = std::min(cols_, cb + kBlock);
      for (std::size_t r = rb; r < r_end; ++r) {
        for (std::size_t c = cb; c < c_end; ++c) out.at(c, r) = at(r, c);
      }
    }
  }
  return out;
}

void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  assert(a.cols() == b.rows());
  assert(c.rows() == a.rows() && c.cols() == b.cols());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  const VecKernels& kern = vec_kernels();
  // Skipping alpha == 0 exploits activation sparsity but masks NaN/Inf in
  // the skipped B row (IEEE says 0 * NaN = NaN); see vec.hpp for the flag.
  const bool skip_zero = kernels_assume_finite();
  const auto run_row = [&](std::size_t i) {
    const auto a_row = a.row(i);
    const auto c_row = c.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const float alpha = a_row[p];
      if (skip_zero && alpha == 0.0F) continue;
      kern.axpy_f32(c_row.data(), b.row(p).data(), alpha, n);
    }
  };
  // Each task owns disjoint rows of C; per-row work is untouched.
  if (util::ThreadPool* pool = pool_for(sat_flops(m, k, n))) {
    pool->parallel_for(0, m, run_row);
  } else {
    for (std::size_t i = 0; i < m; ++i) run_row(i);
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  matmul_acc(a, b, c);
  return c;
}

void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  // C(k x n) += A^T(k x m) * B(m x n): iterate rows of A and B together.
  assert(a.rows() == b.rows());
  assert(c.rows() == a.cols() && c.cols() == b.cols());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  const VecKernels& kern = vec_kernels();
  const bool skip_zero = kernels_assume_finite();
  if (util::ThreadPool* pool = pool_for(sat_flops(m, k, n))) {
    // Row i of A touches EVERY row of C, so the i-loop cannot be split.
    // Parallelize over C rows instead: each task owns disjoint rows p, and
    // for a fixed (p, j) the contributions a(i,p)*b(i,j) still accumulate in
    // ascending i — the exact per-element order of the serial loop below —
    // so the bytes are identical (within one backend).
    pool->parallel_for(0, k, [&](std::size_t p) {
      const auto c_row = c.row(p);
      for (std::size_t i = 0; i < m; ++i) {
        const float alpha = a.at(i, p);
        if (skip_zero && alpha == 0.0F) continue;
        kern.axpy_f32(c_row.data(), b.row(i).data(), alpha, n);
      }
    });
    return;
  }
  for (std::size_t i = 0; i < m; ++i) {
    const auto a_row = a.row(i);
    const auto b_row = b.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const float alpha = a_row[p];
      if (skip_zero && alpha == 0.0F) continue;
      kern.axpy_f32(c.row(p).data(), b_row.data(), alpha, n);
    }
  }
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  matmul_tn_acc(a, b, c);
  return c;
}

void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  // C(m x n) += A(m x k) * B^T(k x n) where B is n x k: dot products of rows.
  assert(a.cols() == b.cols());
  assert(c.rows() == a.rows() && c.cols() == b.rows());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  const VecKernels& kern = vec_kernels();
  const auto run_row = [&](std::size_t i) {
    const auto a_row = a.row(i);
    const auto c_row = c.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      c_row[j] += kern.dot_f32(a_row.data(), b.row(j).data(), k);
    }
  };
  // Each task owns disjoint rows of C; per-row work is untouched.
  if (util::ThreadPool* pool = pool_for(sat_flops(m, k, n))) {
    pool->parallel_for(0, m, run_row);
  } else {
    for (std::size_t i = 0; i < m; ++i) run_row(i);
  }
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  matmul_nt_acc(a, b, c);
  return c;
}

Matrix add(const Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  Matrix c = a;
  c.add_inplace(b);
  return c;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  Matrix c = a;
  c.axpy_inplace(-1.0F, b);
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  Matrix c(a.rows(), a.cols());
  const auto da = a.data();
  const auto db = b.data();
  const auto dc = c.data();
  for (std::size_t i = 0; i < da.size(); ++i) dc[i] = da[i] * db[i];
  return c;
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  float best = 0.0F;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    best = std::max(best, std::abs(da[i] - db[i]));
  }
  return best;
}

}  // namespace splpg::tensor
