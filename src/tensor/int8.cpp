#include "tensor/int8.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace splpg::tensor {

float symmetric_scale(std::span<const float> values) noexcept {
  float amax = 0.0F;
  for (const float x : values) amax = std::max(amax, std::fabs(x));
  return amax > 0.0F ? amax / 127.0F : 0.0F;
}

void quantize_span(std::span<const float> in, float scale, std::span<std::int8_t> out) noexcept {
  assert(in.size() == out.size());
  if (scale <= 0.0F) {
    std::fill(out.begin(), out.end(), std::int8_t{0});
    return;
  }
  // Multiply by the inverse scale (not divide) — the exact arithmetic the
  // PR-9 Int8Hook uses, so both paths share one rounding behavior.
  const float inv_scale = 1.0F / scale;
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = static_cast<std::int8_t>(std::clamp<long>(std::lroundf(in[i] * inv_scale),
                                                       -127L, 127L));
  }
}

void dequantize_span(std::span<const std::int8_t> in, float scale,
                     std::span<float> out) noexcept {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = static_cast<float>(in[i]) * scale;
  }
}

QuantizedTensor quantize_symmetric(const Matrix& in) {
  QuantizedTensor q;
  q.rows = in.rows();
  q.cols = in.cols();
  q.scale = symmetric_scale(in.data());
  q.values.resize(in.size());
  quantize_span(in.data(), q.scale, q.values);
  return q;
}

Matrix dequantize(const QuantizedTensor& in) {
  Matrix out(in.rows, in.cols);
  dequantize_span(in.values, in.scale, out.data());
  return out;
}

float quantize_dequantize_inplace(Matrix& m) {
  const QuantizedTensor q = quantize_symmetric(m);
  dequantize_span(q.values, q.scale, m.data());
  return q.scale * 0.5F;  // amax / 254
}

std::int32_t dot_i8_i32(std::span<const std::int8_t> a, std::span<const std::int8_t> b) noexcept {
  assert(a.size() == b.size());
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return acc;
}

float score_dot_i8(std::span<const std::int8_t> qu, float scale_u,
                   std::span<const std::int8_t> qv, float scale_v) noexcept {
  return static_cast<float>(dot_i8_i32(qu, qv)) * scale_u * scale_v;
}

}  // namespace splpg::tensor
