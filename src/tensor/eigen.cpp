#include "tensor/eigen.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "util/thread_pool.hpp"

namespace splpg::tensor {

EigenDecomposition symmetric_eigen(const Matrix& a, double tolerance, int max_sweeps) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();

  // Work in double precision for numerical robustness.
  std::vector<double> m(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m[i * n + j] = a.at(i, j);
  }
  std::vector<double> vectors(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) vectors[i * n + i] = 1.0;

  auto off_diag_norm = [&] {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) total += m[i * n + j] * m[i * n + j];
    }
    return std::sqrt(total);
  };

  const double scale = std::max(1.0, std::sqrt(std::inner_product(
                                         m.begin(), m.end(), m.begin(), 0.0)));
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diag_norm() <= tolerance * scale) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m[p * n + q];
        if (std::abs(apq) < 1e-300) continue;
        const double app = m[p * n + p];
        const double aqq = m[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m[k * n + p];
          const double mkq = m[k * n + q];
          m[k * n + p] = c * mkp - s * mkq;
          m[k * n + q] = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m[p * n + k];
          const double mqk = m[q * n + k];
          m[p * n + k] = c * mpk - s * mqk;
          m[q * n + k] = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = vectors[k * n + p];
          const double vkq = vectors[k * n + q];
          vectors[k * n + p] = c * vkp - s * vkq;
          vectors[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort ascending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return m[x * n + x] < m[y * n + y]; });

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors.resize(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = m[order[j] * n + order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      out.eigenvectors.at(i, j) = static_cast<float>(vectors[i * n + order[j]]);
    }
  }
  return out;
}

Matrix symmetric_pseudo_inverse(const Matrix& a, double rank_tolerance, util::ThreadPool* pool) {
  const auto decomposition = symmetric_eigen(a);
  const std::size_t n = a.rows();
  double max_abs = 0.0;
  for (const double lambda : decomposition.eigenvalues) {
    max_abs = std::max(max_abs, std::abs(lambda));
  }
  const double cutoff = rank_tolerance * std::max(max_abs, 1e-300);

  std::vector<std::pair<std::size_t, double>> kept;  // (k, 1/lambda_k), k ascending
  kept.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double lambda = decomposition.eigenvalues[k];
    if (std::abs(lambda) > cutoff) kept.emplace_back(k, 1.0 / lambda);
  }

  // A+ = V diag(1/lambda restricted to |lambda| > cutoff) V^T. Row-blocked:
  // each output row i accumulates over k in ascending order regardless of
  // which thread owns it, so pooled and serial fills are bit-identical.
  Matrix out(n, n);
  auto fill_row = [&](std::size_t i) {
    for (const auto& [k, inv] : kept) {
      const double vik = decomposition.eigenvectors.at(i, k);
      if (vik == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        out.at(i, j) += static_cast<float>(inv * vik * decomposition.eigenvectors.at(j, k));
      }
    }
  };
  if (pool != nullptr && n > 1) {
    pool->parallel_for(0, n, fill_row);
  } else {
    for (std::size_t i = 0; i < n; ++i) fill_row(i);
  }
  return out;
}

}  // namespace splpg::tensor
