#include "graph/algorithms.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <numeric>

namespace splpg::graph {

std::vector<NodeId> bfs_order(const CsrGraph& graph, NodeId source) {
  assert(source < graph.num_nodes());
  std::vector<bool> seen(graph.num_nodes(), false);
  std::vector<NodeId> order;
  std::deque<NodeId> queue{source};
  seen[source] = true;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    order.push_back(v);
    for (const NodeId w : graph.neighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        queue.push_back(w);
      }
    }
  }
  return order;
}

std::vector<std::uint32_t> bfs_distances(const CsrGraph& graph, NodeId source) {
  assert(source < graph.num_nodes());
  std::vector<std::uint32_t> dist(graph.num_nodes(), kUnreachable);
  std::deque<NodeId> queue{source};
  dist[source] = 0;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const NodeId w : graph.neighbors(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

std::vector<NodeId> Components::component_sizes() const {
  std::vector<NodeId> sizes(count, 0);
  for (const NodeId c : label) ++sizes[c];
  return sizes;
}

NodeId Components::largest() const {
  const auto sizes = component_sizes();
  if (sizes.empty()) return kInvalidNode;
  return static_cast<NodeId>(std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
}

Components connected_components(const CsrGraph& graph) {
  Components out;
  out.label.assign(graph.num_nodes(), kInvalidNode);
  std::deque<NodeId> queue;
  for (NodeId seed = 0; seed < graph.num_nodes(); ++seed) {
    if (out.label[seed] != kInvalidNode) continue;
    const NodeId component = out.count++;
    out.label[seed] = component;
    queue.push_back(seed);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (const NodeId w : graph.neighbors(v)) {
        if (out.label[w] == kInvalidNode) {
          out.label[w] = component;
          queue.push_back(w);
        }
      }
    }
  }
  return out;
}

std::vector<NodeId> k_hop_neighborhood(const CsrGraph& graph, std::span<const NodeId> seeds,
                                       std::uint32_t k) {
  std::vector<bool> seen(graph.num_nodes(), false);
  std::vector<NodeId> frontier;
  std::vector<NodeId> result;
  for (const NodeId s : seeds) {
    if (!seen[s]) {
      seen[s] = true;
      frontier.push_back(s);
      result.push_back(s);
    }
  }
  for (std::uint32_t hop = 0; hop < k && !frontier.empty(); ++hop) {
    std::vector<NodeId> next;
    for (const NodeId v : frontier) {
      for (const NodeId w : graph.neighbors(v)) {
        if (!seen[w]) {
          seen[w] = true;
          next.push_back(w);
          result.push_back(w);
        }
      }
    }
    frontier = std::move(next);
  }
  std::sort(result.begin(), result.end());
  return result;
}

DegreeStats degree_stats(const CsrGraph& graph) {
  DegreeStats stats;
  const NodeId n = graph.num_nodes();
  if (n == 0) return stats;
  std::vector<NodeId> degrees(n);
  for (NodeId v = 0; v < n; ++v) degrees[v] = graph.degree(v);

  stats.mean = graph.mean_degree();
  stats.min = *std::min_element(degrees.begin(), degrees.end());
  stats.max = *std::max_element(degrees.begin(), degrees.end());

  double sq = 0.0;
  for (const NodeId d : degrees) {
    const double diff = static_cast<double>(d) - stats.mean;
    sq += diff * diff;
  }
  stats.variance = sq / static_cast<double>(n);

  // Gini coefficient over the degree sequence.
  std::sort(degrees.begin(), degrees.end());
  const double total = static_cast<double>(graph.total_degree());
  if (total > 0) {
    double weighted = 0.0;
    for (NodeId i = 0; i < n; ++i) {
      weighted += static_cast<double>(i + 1) * static_cast<double>(degrees[i]);
    }
    stats.gini = (2.0 * weighted) / (static_cast<double>(n) * total) -
                 (static_cast<double>(n) + 1.0) / static_cast<double>(n);
  }
  return stats;
}

std::uint64_t triangle_count(const CsrGraph& graph) {
  // For each edge (u, v), count common neighbors w > v to count each triangle
  // exactly once (u < v < w ordering over canonical edges).
  std::uint64_t triangles = 0;
  for (const auto& [u, v] : graph.edges()) {
    const auto nu = graph.neighbors(u);
    const auto nv = graph.neighbors(v);
    auto iu = std::upper_bound(nu.begin(), nu.end(), v);
    auto iv = std::upper_bound(nv.begin(), nv.end(), v);
    while (iu != nu.end() && iv != nv.end()) {
      if (*iu == *iv) {
        ++triangles;
        ++iu;
        ++iv;
      } else if (*iu < *iv) {
        ++iu;
      } else {
        ++iv;
      }
    }
  }
  return triangles;
}

double global_clustering_coefficient(const CsrGraph& graph) {
  std::uint64_t wedges = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const std::uint64_t d = graph.degree(v);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(triangle_count(graph)) / static_cast<double>(wedges);
}

}  // namespace splpg::graph
