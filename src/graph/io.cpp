#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "util/serialize.hpp"

namespace splpg::graph {

namespace {
constexpr std::uint32_t kMagic = 0x53504C47;  // "SPLG"
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_graph(std::ostream& out, const CsrGraph& graph, const FeatureStore& features) {
  using util::write_pod;
  using util::write_vector;
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod<std::uint32_t>(out, graph.num_nodes());

  std::vector<Edge> edges(graph.edges().begin(), graph.edges().end());
  write_vector(out, edges);
  std::vector<float> weights(graph.edge_weights().begin(), graph.edge_weights().end());
  write_vector(out, weights);

  write_pod<std::uint32_t>(out, features.dim());
  std::vector<float> data(features.data().begin(), features.data().end());
  write_vector(out, data);
  if (!out) throw std::runtime_error("save_graph: write failed");
}

void save_graph_file(const std::string& path, const CsrGraph& graph,
                     const FeatureStore& features) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_graph_file: cannot open " + path);
  save_graph(out, graph, features);
}

GraphBundle load_graph(std::istream& in) {
  using util::read_pod;
  using util::read_vector;
  if (read_pod<std::uint32_t>(in) != kMagic) throw std::runtime_error("load_graph: bad magic");
  if (read_pod<std::uint32_t>(in) != kVersion) {
    throw std::runtime_error("load_graph: unsupported version");
  }
  const auto num_nodes = read_pod<std::uint32_t>(in);
  auto edges = read_vector<Edge>(in);
  auto weights = read_vector<float>(in);
  const auto dim = read_pod<std::uint32_t>(in);
  auto data = read_vector<float>(in);

  GraphBundle bundle;
  bundle.graph = CsrGraph(num_nodes, std::move(edges), std::move(weights));
  if (dim > 0) {
    bundle.features = FeatureStore(num_nodes, dim, std::move(data));
  }
  return bundle;
}

GraphBundle load_graph_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_graph_file: cannot open " + path);
  return load_graph(in);
}

CsrGraph load_edge_list(std::istream& in, bool renumber) {
  std::vector<std::pair<NodeId, NodeId>> raw;
  std::unordered_map<NodeId, NodeId> remap;
  NodeId max_id = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream stream(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(stream >> u >> v)) continue;
    auto map_id = [&](std::uint64_t id) -> NodeId {
      if (!renumber) {
        max_id = std::max(max_id, static_cast<NodeId>(id));
        return static_cast<NodeId>(id);
      }
      const auto [it, inserted] =
          remap.emplace(static_cast<NodeId>(id), static_cast<NodeId>(remap.size()));
      (void)inserted;
      return it->second;
    };
    raw.emplace_back(map_id(u), map_id(v));
  }
  const NodeId num_nodes = renumber ? static_cast<NodeId>(remap.size())
                                    : (raw.empty() ? 0 : max_id + 1);
  GraphBuilder builder(num_nodes);
  for (const auto& [u, v] : raw) builder.add_edge(u, v);
  return builder.build();
}

void save_edge_list(std::ostream& out, const CsrGraph& graph) {
  out << "# nodes=" << graph.num_nodes() << " edges=" << graph.num_edges() << "\n";
  for (const auto& [u, v] : graph.edges()) out << u << " " << v << "\n";
}

}  // namespace splpg::graph
