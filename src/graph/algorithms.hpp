// Classic graph algorithms used across the library: traversal, connectivity,
// k-hop neighborhoods, and degree statistics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace splpg::graph {

/// BFS order (node ids) from `source`; visits only source's component.
[[nodiscard]] std::vector<NodeId> bfs_order(const CsrGraph& graph, NodeId source);

/// BFS distance from `source` to every node; unreachable nodes get
/// kUnreachable.
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const CsrGraph& graph, NodeId source);

/// Component id per node (0-based, dense), plus component count.
struct Components {
  std::vector<NodeId> label;  // per node
  NodeId count = 0;

  [[nodiscard]] std::vector<NodeId> component_sizes() const;
  [[nodiscard]] NodeId largest() const;  // id of the largest component
};
[[nodiscard]] Components connected_components(const CsrGraph& graph);

/// All nodes within `k` hops of `seeds` (including the seeds), as the union
/// of full-neighborhood expansions. Used by tests to cross-check the fanout
/// sampler and by the complete data-sharing strategy.
[[nodiscard]] std::vector<NodeId> k_hop_neighborhood(const CsrGraph& graph,
                                                     std::span<const NodeId> seeds,
                                                     std::uint32_t k);

/// Degree distribution summary used by partition data-discrepancy metrics.
struct DegreeStats {
  double mean = 0.0;
  double variance = 0.0;
  NodeId min = 0;
  NodeId max = 0;
  double gini = 0.0;  // inequality of the degree distribution
};
[[nodiscard]] DegreeStats degree_stats(const CsrGraph& graph);

/// Global clustering coefficient (3 * triangles / wedges). O(sum d^2) via
/// sorted-neighbor-list intersection; intended for small/medium graphs and
/// dataset statistics output.
[[nodiscard]] double global_clustering_coefficient(const CsrGraph& graph);

/// Counts triangles via ordered neighbor intersection.
[[nodiscard]] std::uint64_t triangle_count(const CsrGraph& graph);

}  // namespace splpg::graph
