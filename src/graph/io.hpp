// Graph + feature persistence.
//
// Binary format (magic "SPLG", version 1): node count, canonical edge list,
// optional weights, optional feature matrix. Also reads whitespace-separated
// text edge lists ("u v" per line, '#' comments) for interoperability.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr_graph.hpp"
#include "graph/features.hpp"

namespace splpg::graph {

struct GraphBundle {
  CsrGraph graph;
  FeatureStore features;  // may be empty
};

void save_graph(std::ostream& out, const CsrGraph& graph, const FeatureStore& features);
void save_graph_file(const std::string& path, const CsrGraph& graph,
                     const FeatureStore& features);

[[nodiscard]] GraphBundle load_graph(std::istream& in);
[[nodiscard]] GraphBundle load_graph_file(const std::string& path);

/// Parses a text edge list. Node ids are renumbered densely in first-seen
/// order if `renumber` is true; otherwise ids are used as-is and
/// `num_nodes = max_id + 1`.
[[nodiscard]] CsrGraph load_edge_list(std::istream& in, bool renumber = false);

void save_edge_list(std::ostream& out, const CsrGraph& graph);

}  // namespace splpg::graph
