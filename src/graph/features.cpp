#include "graph/features.hpp"

#include <algorithm>

namespace splpg::graph {

FeatureStore FeatureStore::gather(std::span<const NodeId> nodes) const {
  FeatureStore out(static_cast<NodeId>(nodes.size()), dim_);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto src = row(nodes[i]);
    std::copy(src.begin(), src.end(), out.row(static_cast<NodeId>(i)).begin());
  }
  return out;
}

}  // namespace splpg::graph
