#include "graph/features.hpp"

#include <algorithm>
#include <stdexcept>

namespace splpg::graph {

FeatureStore FeatureStore::gather(std::span<const NodeId> nodes) const {
  FeatureStore out(static_cast<NodeId>(nodes.size()), dim_);
  if (!nodes.empty()) gather_into(nodes, out.mutable_data());
  return out;
}

void FeatureStore::gather_into(std::span<const NodeId> nodes, std::span<float> out) const {
  if (out.size() != nodes.size() * dim_) {
    throw std::invalid_argument("FeatureStore::gather_into: output size mismatch");
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto src = row(nodes[i]);
    std::copy(src.begin(), src.end(), out.begin() + static_cast<std::ptrdiff_t>(i * dim_));
  }
}

}  // namespace splpg::graph
