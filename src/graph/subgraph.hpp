// Subgraph extraction with local<->global id mapping.
//
// Partitioned subgraphs G^i live in local id space; the mapping arrays let
// samplers translate between a worker's local ids and master/global ids.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "graph/csr_graph.hpp"

namespace splpg::graph {

struct Subgraph {
  CsrGraph graph;                           // in local id space
  std::vector<NodeId> local_to_global;      // size graph.num_nodes()
  std::unordered_map<NodeId, NodeId> global_to_local;

  [[nodiscard]] NodeId to_global(NodeId local) const { return local_to_global[local]; }

  /// kInvalidNode when the global node is not present.
  [[nodiscard]] NodeId to_local(NodeId global) const {
    const auto it = global_to_local.find(global);
    return it == global_to_local.end() ? kInvalidNode : it->second;
  }

  [[nodiscard]] bool contains(NodeId global) const {
    return global_to_local.contains(global);
  }
};

/// Node-induced subgraph: keeps `nodes` and every edge with both endpoints in
/// `nodes`. `nodes` must be duplicate-free.
[[nodiscard]] Subgraph induced_subgraph(const CsrGraph& graph, std::span<const NodeId> nodes);

/// Edge subgraph over the *same* node universe: keeps all nodes of `graph`
/// and only the edges whose (canonical) index appears in `edge_mask`.
/// `weights`, if non-empty, supplies the kept edges' weights (parallel to the
/// canonical edge list of the result).
[[nodiscard]] CsrGraph edge_subgraph(const CsrGraph& graph, const std::vector<bool>& edge_mask,
                                     std::span<const float> weights = {});

}  // namespace splpg::graph
