#include "graph/csr_graph.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace splpg::graph {

CsrGraph::CsrGraph(NodeId num_nodes, std::vector<Edge> edges, std::vector<float> weights)
    : num_nodes_(num_nodes), edges_(std::move(edges)), edge_weights_(std::move(weights)) {
  assert(edge_weights_.empty() || edge_weights_.size() == edges_.size());

  // Canonicalize and sort the edge list (builder output is already canonical,
  // but re-sorting keeps the constructor safe for direct use).
  if (edge_weights_.empty()) {
    std::sort(edges_.begin(), edges_.end());
  } else {
    std::vector<std::size_t> order(edges_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return edges_[a] < edges_[b]; });
    std::vector<Edge> sorted_edges(edges_.size());
    std::vector<float> sorted_weights(edges_.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      sorted_edges[i] = edges_[order[i]];
      sorted_weights[i] = edge_weights_[order[i]];
    }
    edges_ = std::move(sorted_edges);
    edge_weights_ = std::move(sorted_weights);
  }

  for (const auto& [u, v] : edges_) {
    if (u >= num_nodes_ || v >= num_nodes_) {
      throw std::out_of_range("CsrGraph: edge endpoint out of range");
    }
    if (u >= v) {
      throw std::invalid_argument("CsrGraph: edges must be canonical (u < v, no self-loops)");
    }
  }

  // Counting sort into CSR.
  offsets_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets_[u + 1];
    ++offsets_[v + 1];
  }
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());

  adjacency_.resize(offsets_.back());
  if (!edge_weights_.empty()) adjacency_weights_.resize(offsets_.back());
  std::vector<EdgeId> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const auto [u, v] = edges_[e];
    adjacency_[cursor[u]] = v;
    adjacency_[cursor[v]] = u;
    if (!edge_weights_.empty()) {
      adjacency_weights_[cursor[u]] = edge_weights_[e];
      adjacency_weights_[cursor[v]] = edge_weights_[e];
    }
    ++cursor[u];
    ++cursor[v];
  }

  // Sort each neighbor list (weights follow their neighbor).
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const auto lo = offsets_[v];
    const auto hi = offsets_[v + 1];
    if (adjacency_weights_.empty()) {
      std::sort(adjacency_.begin() + static_cast<std::ptrdiff_t>(lo),
                adjacency_.begin() + static_cast<std::ptrdiff_t>(hi));
    } else {
      std::vector<std::pair<NodeId, float>> entries;
      entries.reserve(hi - lo);
      for (EdgeId i = lo; i < hi; ++i) entries.emplace_back(adjacency_[i], adjacency_weights_[i]);
      std::sort(entries.begin(), entries.end());
      for (EdgeId i = lo; i < hi; ++i) {
        adjacency_[i] = entries[i - lo].first;
        adjacency_weights_[i] = entries[i - lo].second;
      }
    }
  }
}

bool CsrGraph::has_edge(NodeId u, NodeId v) const noexcept {
  if (u >= num_nodes_ || v >= num_nodes_ || u == v) return false;
  // Search the smaller list.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto list = neighbors(u);
  return std::binary_search(list.begin(), list.end(), v);
}

NodeId CsrGraph::max_degree() const noexcept {
  NodeId best = 0;
  for (NodeId v = 0; v < num_nodes_; ++v) best = std::max(best, degree(v));
  return best;
}

double CsrGraph::mean_degree() const noexcept {
  if (num_nodes_ == 0) return 0.0;
  return static_cast<double>(total_degree()) / static_cast<double>(num_nodes_);
}

void GraphBuilder::add_edge(NodeId u, NodeId v, float weight) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    throw std::out_of_range("GraphBuilder: endpoint out of range");
  }
  if (u == v) return;  // drop self-loops
  if (u > v) std::swap(u, v);
  pending_.push_back(Edge{u, v});
  if (weighted_) pending_weights_.push_back(weight);
  deduped_ = false;
}

void GraphBuilder::dedupe() const {
  if (deduped_) return;
  deduped_edges_.clear();
  deduped_weights_.clear();
  if (pending_.empty()) {
    deduped_ = true;
    return;
  }
  std::vector<std::size_t> order(pending_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return pending_[a] < pending_[b]; });
  deduped_edges_.reserve(pending_.size());
  if (weighted_) deduped_weights_.reserve(pending_.size());
  for (const std::size_t i : order) {
    if (!deduped_edges_.empty() && deduped_edges_.back() == pending_[i]) {
      // Duplicate: sum weights (the sparsifier's "sum weights if an edge is
      // chosen more than once" rule relies on this).
      if (weighted_) deduped_weights_.back() += pending_weights_[i];
      continue;
    }
    deduped_edges_.push_back(pending_[i]);
    if (weighted_) deduped_weights_.push_back(pending_weights_[i]);
  }
  deduped_ = true;
}

EdgeId GraphBuilder::num_edges() const noexcept {
  dedupe();
  return static_cast<EdgeId>(deduped_edges_.size());
}

CsrGraph GraphBuilder::build() {
  dedupe();
  pending_.clear();
  pending_weights_.clear();
  CsrGraph graph(num_nodes_, std::move(deduped_edges_), std::move(deduped_weights_));
  deduped_edges_.clear();
  deduped_weights_.clear();
  deduped_ = true;
  return graph;
}

}  // namespace splpg::graph
