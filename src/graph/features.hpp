// Dense per-node feature storage.
//
// Kept in the graph module (not tensor) so graph/partition/sampling code can
// move feature rows around without depending on the autograd engine. A
// feature row is `dim` floats; `feature_bytes()` is what dist::CommMeter
// charges for shipping one node's features.
//
// A store owns its rows by default. It can instead *view* externally owned
// memory (io::open_feature_store maps a feature file and hands the mapping in
// as `keepalive`), in which case reads are zero-copy and mutation throws —
// every consumer that only reads rows works identically on both backings.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/csr_graph.hpp"

namespace splpg::graph {

class FeatureStore {
 public:
  FeatureStore() = default;

  FeatureStore(NodeId num_nodes, std::uint32_t dim)
      : num_nodes_(num_nodes), dim_(dim),
        data_(static_cast<std::size_t>(num_nodes) * dim, 0.0F) {}

  FeatureStore(NodeId num_nodes, std::uint32_t dim, std::vector<float> data)
      : num_nodes_(num_nodes), dim_(dim), data_(std::move(data)) {
    if (data_.size() != static_cast<std::size_t>(num_nodes) * dim) {
      throw std::invalid_argument("FeatureStore: data size mismatch");
    }
  }

  /// Zero-copy view over externally owned row-major data (e.g. an mmap'ed
  /// feature file). `keepalive` owns the memory; the store shares it so
  /// copies of the store keep the mapping alive. `view` must hold
  /// `num_nodes * dim` floats for the lifetime of `keepalive`.
  FeatureStore(NodeId num_nodes, std::uint32_t dim, const float* view,
               std::shared_ptr<const void> keepalive)
      : num_nodes_(num_nodes), dim_(dim), view_(view), keepalive_(std::move(keepalive)) {
    if (size() > 0 && view_ == nullptr) {
      throw std::invalid_argument("FeatureStore: null view");
    }
  }

  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::uint32_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(num_nodes_) * dim_;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// True when the store reads from externally owned (e.g. mmap'ed) memory.
  [[nodiscard]] bool is_view() const noexcept { return view_ != nullptr; }

  [[nodiscard]] std::span<const float> row(NodeId v) const noexcept {
    return {raw() + static_cast<std::size_t>(v) * dim_, dim_};
  }
  [[nodiscard]] std::span<float> row(NodeId v) {
    if (is_view()) {
      throw std::logic_error("FeatureStore: mutable access to a read-only view");
    }
    return {data_.data() + static_cast<std::size_t>(v) * dim_, dim_};
  }

  [[nodiscard]] std::span<const float> data() const noexcept { return {raw(), size()}; }

  /// Whole-store mutable access (throws on a read-only view, like row()).
  [[nodiscard]] std::span<float> mutable_data() {
    if (is_view()) {
      throw std::logic_error("FeatureStore: mutable access to a read-only view");
    }
    return data_;
  }

  /// Bytes to transmit one node's feature row.
  [[nodiscard]] std::uint64_t feature_bytes() const noexcept {
    return static_cast<std::uint64_t>(dim_) * sizeof(float);
  }

  /// Gathers rows for `nodes` into a new contiguous store (used when
  /// materializing a partition's local feature matrix X^i). The result always
  /// owns its rows, regardless of this store's backing.
  [[nodiscard]] FeatureStore gather(std::span<const NodeId> nodes) const;

  /// Gathers rows for `nodes` into caller-owned row-major storage of
  /// `nodes.size() * dim()` floats — the allocation-free fetch the serving
  /// hot path and the model's per-batch input gather use. Bytes are
  /// identical to gather()'s regardless of this store's backing.
  void gather_into(std::span<const NodeId> nodes, std::span<float> out) const;

 private:
  [[nodiscard]] const float* raw() const noexcept {
    return view_ != nullptr ? view_ : data_.data();
  }

  NodeId num_nodes_ = 0;
  std::uint32_t dim_ = 0;
  std::vector<float> data_;                  // owned storage (empty in view mode)
  const float* view_ = nullptr;              // external storage (view mode only)
  std::shared_ptr<const void> keepalive_;    // owner of `view_`
};

}  // namespace splpg::graph
