// Dense per-node feature storage.
//
// Kept in the graph module (not tensor) so graph/partition/sampling code can
// move feature rows around without depending on the autograd engine. A
// feature row is `dim` floats; `feature_bytes()` is what dist::CommMeter
// charges for shipping one node's features.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/csr_graph.hpp"

namespace splpg::graph {

class FeatureStore {
 public:
  FeatureStore() = default;

  FeatureStore(NodeId num_nodes, std::uint32_t dim)
      : num_nodes_(num_nodes), dim_(dim),
        data_(static_cast<std::size_t>(num_nodes) * dim, 0.0F) {}

  FeatureStore(NodeId num_nodes, std::uint32_t dim, std::vector<float> data)
      : num_nodes_(num_nodes), dim_(dim), data_(std::move(data)) {
    if (data_.size() != static_cast<std::size_t>(num_nodes) * dim) {
      throw std::invalid_argument("FeatureStore: data size mismatch");
    }
  }

  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::uint32_t dim() const noexcept { return dim_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] std::span<const float> row(NodeId v) const noexcept {
    return {data_.data() + static_cast<std::size_t>(v) * dim_, dim_};
  }
  [[nodiscard]] std::span<float> row(NodeId v) noexcept {
    return {data_.data() + static_cast<std::size_t>(v) * dim_, dim_};
  }

  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

  /// Bytes to transmit one node's feature row.
  [[nodiscard]] std::uint64_t feature_bytes() const noexcept {
    return static_cast<std::uint64_t>(dim_) * sizeof(float);
  }

  /// Gathers rows for `nodes` into a new contiguous store (used when
  /// materializing a partition's local feature matrix X^i).
  [[nodiscard]] FeatureStore gather(std::span<const NodeId> nodes) const;

 private:
  NodeId num_nodes_ = 0;
  std::uint32_t dim_ = 0;
  std::vector<float> data_;
};

}  // namespace splpg::graph
