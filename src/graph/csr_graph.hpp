// Core immutable graph type: undirected graph in compressed-sparse-row form.
//
// Neighbor lists are sorted, enabling O(log d) `has_edge` queries (used by the
// negative samplers to reject connected pairs). A canonical edge list (u < v)
// is kept alongside the CSR arrays because several components iterate or
// sample over *edges*: the train/val/test splitter, the positive-sample
// mini-batcher, and the effective-resistance sparsifier.
//
// Graphs may carry per-edge weights (the sparsifier's output re-weights
// sampled edges per Theorem 1); unweighted graphs have an empty weight array
// and an implicit weight of 1.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace splpg::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint64_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Canonical undirected edge with u < v.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from a canonical edge list. `edges` must be deduplicated,
  /// self-loop free, and have u < v for each entry (GraphBuilder guarantees
  /// this). `weights`, if non-empty, is parallel to `edges`.
  CsrGraph(NodeId num_nodes, std::vector<Edge> edges, std::vector<float> weights = {});

  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] EdgeId num_edges() const noexcept { return static_cast<EdgeId>(edges_.size()); }
  [[nodiscard]] bool is_weighted() const noexcept { return !edge_weights_.empty(); }

  /// Degree of node `v` (number of distinct neighbors).
  [[nodiscard]] NodeId degree(NodeId v) const noexcept {
    return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbor list of `v`.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
  }

  /// Weights parallel to `neighbors(v)`. Empty span for unweighted graphs.
  [[nodiscard]] std::span<const float> neighbor_weights(NodeId v) const noexcept {
    if (adjacency_weights_.empty()) return {};
    return {adjacency_weights_.data() + offsets_[v], adjacency_weights_.data() + offsets_[v + 1]};
  }

  /// True iff the undirected edge (u, v) exists. O(log min(du, dv)).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  /// Canonical (u < v) deduplicated edge list.
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }

  /// Per-canonical-edge weights; empty for unweighted graphs.
  [[nodiscard]] std::span<const float> edge_weights() const noexcept { return edge_weights_; }

  /// Weight of canonical edge index `e` (1 for unweighted graphs).
  [[nodiscard]] float edge_weight(EdgeId e) const noexcept {
    return edge_weights_.empty() ? 1.0F : edge_weights_[e];
  }

  /// Sum over nodes of degree (== 2 * num_edges()).
  [[nodiscard]] EdgeId total_degree() const noexcept { return adjacency_.size(); }

  /// Maximum degree over all nodes (0 for the empty graph).
  [[nodiscard]] NodeId max_degree() const noexcept;

  /// Mean degree (0 for the empty graph).
  [[nodiscard]] double mean_degree() const noexcept;

  /// Bytes needed to transmit the adjacency list of `v` (structure only):
  /// degree * sizeof(NodeId) + the offset entry. Used by dist::CommMeter.
  [[nodiscard]] std::uint64_t structure_bytes(NodeId v) const noexcept {
    return static_cast<std::uint64_t>(degree(v)) * sizeof(NodeId) + sizeof(EdgeId);
  }

 private:
  NodeId num_nodes_ = 0;
  std::vector<EdgeId> offsets_;          // size num_nodes_ + 1
  std::vector<NodeId> adjacency_;        // size 2 * |E|, sorted per node
  std::vector<float> adjacency_weights_; // parallel to adjacency_ (may be empty)
  std::vector<Edge> edges_;              // canonical list, sorted
  std::vector<float> edge_weights_;      // parallel to edges_ (may be empty)
};

/// Incremental, order-insensitive graph construction. Deduplicates edges
/// (summing weights of duplicates when weighted) and drops self-loops.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes, bool weighted = false)
      : num_nodes_(num_nodes), weighted_(weighted) {}

  /// Adds an undirected edge; (u, v) and (v, u) are the same edge.
  /// Self-loops are silently ignored. Out-of-range endpoints are an error.
  void add_edge(NodeId u, NodeId v, float weight = 1.0F);

  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }

  /// Number of distinct edges added so far.
  [[nodiscard]] EdgeId num_edges() const noexcept;

  /// Finalizes into an immutable CsrGraph. The builder is left empty.
  [[nodiscard]] CsrGraph build();

 private:
  NodeId num_nodes_;
  bool weighted_;
  std::vector<Edge> pending_;
  std::vector<float> pending_weights_;
  mutable bool deduped_ = true;

  void dedupe() const;
  mutable std::vector<Edge> deduped_edges_;
  mutable std::vector<float> deduped_weights_;
};

}  // namespace splpg::graph
