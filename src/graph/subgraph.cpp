#include "graph/subgraph.hpp"

#include <cassert>
#include <stdexcept>

namespace splpg::graph {

Subgraph induced_subgraph(const CsrGraph& graph, std::span<const NodeId> nodes) {
  Subgraph out;
  out.local_to_global.assign(nodes.begin(), nodes.end());
  out.global_to_local.reserve(nodes.size() * 2);
  for (NodeId local = 0; local < nodes.size(); ++local) {
    const auto [it, inserted] = out.global_to_local.emplace(nodes[local], local);
    (void)it;
    if (!inserted) throw std::invalid_argument("induced_subgraph: duplicate node");
  }

  GraphBuilder builder(static_cast<NodeId>(nodes.size()));
  for (NodeId local = 0; local < nodes.size(); ++local) {
    const NodeId global = nodes[local];
    for (const NodeId neighbor : graph.neighbors(global)) {
      if (neighbor <= global) continue;  // visit each edge once
      const auto it = out.global_to_local.find(neighbor);
      if (it != out.global_to_local.end()) builder.add_edge(local, it->second);
    }
  }
  out.graph = builder.build();
  return out;
}

CsrGraph edge_subgraph(const CsrGraph& graph, const std::vector<bool>& edge_mask,
                       std::span<const float> weights) {
  assert(edge_mask.size() == graph.num_edges());
  std::vector<Edge> kept;
  std::vector<float> kept_weights;
  const auto edges = graph.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (!edge_mask[e]) continue;
    kept.push_back(edges[e]);
    if (!weights.empty()) kept_weights.push_back(weights[e]);
  }
  return CsrGraph(graph.num_nodes(), std::move(kept), std::move(kept_weights));
}

}  // namespace splpg::graph
