#include "embedding/deepwalk.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace splpg::embedding {

using graph::CsrGraph;
using graph::NodeId;
using util::AliasTable;
using util::Rng;

std::vector<std::vector<NodeId>> generate_walks(const CsrGraph& graph, const WalkConfig& config,
                                                Rng& rng) {
  const bool biased = config.return_param != 1.0 || config.inout_param != 1.0;
  const double inv_p = 1.0 / config.return_param;
  const double inv_q = 1.0 / config.inout_param;

  std::vector<std::vector<NodeId>> walks;
  walks.reserve(static_cast<std::size_t>(graph.num_nodes()) * config.walks_per_node);

  std::vector<NodeId> start_order(graph.num_nodes());
  std::iota(start_order.begin(), start_order.end(), NodeId{0});

  std::vector<double> weights;  // scratch for biased steps
  for (std::uint32_t round = 0; round < config.walks_per_node; ++round) {
    rng.shuffle(std::span<NodeId>(start_order));
    for (const NodeId start : start_order) {
      if (graph.degree(start) == 0) continue;
      std::vector<NodeId> walk;
      walk.reserve(config.walk_length);
      walk.push_back(start);
      NodeId previous = graph::kInvalidNode;
      NodeId current = start;
      while (walk.size() < config.walk_length) {
        const auto neighbors = graph.neighbors(current);
        if (neighbors.empty()) break;
        NodeId next = graph::kInvalidNode;
        if (!biased || previous == graph::kInvalidNode) {
          next = neighbors[rng.uniform_u64(neighbors.size())];
        } else {
          // node2vec second-order bias: 1/p to return, 1 to a common
          // neighbor of previous, 1/q otherwise.
          weights.clear();
          weights.reserve(neighbors.size());
          for (const NodeId candidate : neighbors) {
            if (candidate == previous) {
              weights.push_back(inv_p);
            } else if (graph.has_edge(candidate, previous)) {
              weights.push_back(1.0);
            } else {
              weights.push_back(inv_q);
            }
          }
          // Linear-scan weighted choice (neighbor lists are short relative
          // to building an alias table per step).
          const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
          double pick = rng.uniform() * total;
          std::size_t index = 0;
          while (index + 1 < weights.size() && pick >= weights[index]) {
            pick -= weights[index];
            ++index;
          }
          next = neighbors[index];
        }
        walk.push_back(next);
        previous = current;
        current = next;
      }
      walks.push_back(std::move(walk));
    }
  }
  return walks;
}

NodeEmbedding::NodeEmbedding(const CsrGraph& graph, const WalkConfig& walks,
                             const SkipGramConfig& skipgram, Rng& rng)
    : dim_(skipgram.dim), in_(graph.num_nodes(), skipgram.dim),
      out_(graph.num_nodes(), skipgram.dim) {
  // word2vec-style init: in ~ U(-0.5/dim, 0.5/dim), out = 0.
  const float bound = 0.5F / static_cast<float>(dim_);
  for (float& x : in_.data()) x = static_cast<float>(rng.uniform(-bound, bound));

  Rng walk_rng = rng.split("walks");
  const auto corpus = generate_walks(graph, walks, walk_rng);
  Rng train_rng = rng.split("sgns");
  train(graph, corpus, skipgram, train_rng);
}

void NodeEmbedding::train(const CsrGraph& graph, const std::vector<std::vector<NodeId>>& walks,
                          const SkipGramConfig& config, Rng& rng) {
  // Negative distribution ∝ degree^power (the word2vec unigram trick).
  std::vector<double> negative_weights(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    negative_weights[v] = std::pow(static_cast<double>(graph.degree(v)), config.unigram_power);
  }
  const AliasTable negative_table{std::span<const double>(negative_weights)};

  std::vector<float> grad_center(dim_);

  auto sgd_pair = [&](NodeId center, NodeId context, float label, float lr) {
    const auto center_vec = in_.row(center);
    const auto context_vec = out_.row(context);
    float dot = 0.0F;
    for (std::uint32_t d = 0; d < dim_; ++d) dot += center_vec[d] * context_vec[d];
    const float sig = 1.0F / (1.0F + std::exp(-dot));
    const float g = lr * (label - sig);
    for (std::uint32_t d = 0; d < dim_; ++d) {
      grad_center[d] += g * context_vec[d];
      context_vec[d] += g * center_vec[d];
    }
  };

  for (std::uint32_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Linear learning-rate decay across epochs.
    const float lr = config.learning_rate *
                     (1.0F - static_cast<float>(epoch) / static_cast<float>(config.epochs));
    for (const auto& walk : walks) {
      for (std::size_t center_pos = 0; center_pos < walk.size(); ++center_pos) {
        const NodeId center = walk[center_pos];
        const std::size_t lo =
            center_pos >= config.window ? center_pos - config.window : 0;
        const std::size_t hi = std::min(walk.size(), center_pos + config.window + 1);
        for (std::size_t context_pos = lo; context_pos < hi; ++context_pos) {
          if (context_pos == center_pos) continue;
          const NodeId context = walk[context_pos];
          std::fill(grad_center.begin(), grad_center.end(), 0.0F);
          sgd_pair(center, context, 1.0F, lr);
          for (std::uint32_t k = 0; k < config.negatives; ++k) {
            const auto negative = static_cast<NodeId>(negative_table.sample(rng));
            if (negative == context) continue;
            sgd_pair(center, negative, 0.0F, lr);
          }
          const auto center_vec = in_.row(center);
          for (std::uint32_t d = 0; d < dim_; ++d) center_vec[d] += grad_center[d];
        }
      }
    }
  }
}

double NodeEmbedding::score(NodeId u, NodeId v) const noexcept {
  const auto a = in_.row(u);
  const auto b = in_.row(v);
  double dot = 0.0;
  for (std::uint32_t d = 0; d < dim_; ++d) dot += static_cast<double>(a[d]) * b[d];
  return dot;
}

std::vector<float> NodeEmbedding::score_pairs(
    std::span<const std::pair<NodeId, NodeId>> pairs) const {
  std::vector<float> out;
  out.reserve(pairs.size());
  for (const auto& [u, v] : pairs) out.push_back(static_cast<float>(score(u, v)));
  return out;
}

}  // namespace splpg::embedding
