// Random-walk network embeddings: DeepWalk and node2vec (§II-A).
//
// The paper positions these as the classical learning-based alternative to
// GNNs for link prediction: learn node embeddings from random-walk corpora
// via skip-gram with negative sampling (SGNS), then score a pair by the
// similarity of its endpoint embeddings. Implemented here as a baseline
// family for the evaluation harness.
//
// node2vec generalizes DeepWalk with a biased second-order walk controlled
// by the return parameter p and in-out parameter q (p = q = 1 recovers
// DeepWalk's uniform walk).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace splpg::embedding {

struct WalkConfig {
  std::uint32_t walks_per_node = 10;
  std::uint32_t walk_length = 40;
  double return_param = 1.0;  // p: low -> backtrack more
  double inout_param = 1.0;   // q: low -> explore outward (DFS-like)
};

/// Generates walks_per_node walks from every node (shorter walks are emitted
/// when a dead end is reached). Deterministic given rng state.
[[nodiscard]] std::vector<std::vector<graph::NodeId>> generate_walks(
    const graph::CsrGraph& graph, const WalkConfig& config, util::Rng& rng);

struct SkipGramConfig {
  std::uint32_t dim = 64;
  std::uint32_t window = 5;
  std::uint32_t negatives = 5;       // per positive (center, context) pair
  float learning_rate = 0.025F;
  std::uint32_t epochs = 2;
  double unigram_power = 0.75;       // negative distribution ∝ deg^power
};

/// Skip-gram-with-negative-sampling embeddings over a walk corpus.
class NodeEmbedding {
 public:
  /// Trains immediately (walk generation + SGNS). Deterministic in rng.
  NodeEmbedding(const graph::CsrGraph& graph, const WalkConfig& walks,
                const SkipGramConfig& skipgram, util::Rng& rng);

  [[nodiscard]] std::uint32_t dim() const noexcept { return dim_; }

  /// The learned "input" embedding of node v.
  [[nodiscard]] std::span<const float> embedding(graph::NodeId v) const noexcept {
    return in_.row(v);
  }

  /// Link-prediction score: dot(emb(u), emb(v)).
  [[nodiscard]] double score(graph::NodeId u, graph::NodeId v) const noexcept;

  /// Scores a batch of pairs.
  [[nodiscard]] std::vector<float> score_pairs(
      std::span<const std::pair<graph::NodeId, graph::NodeId>> pairs) const;

  /// The full n x dim embedding matrix (input vectors).
  [[nodiscard]] const tensor::Matrix& matrix() const noexcept { return in_; }

 private:
  void train(const graph::CsrGraph& graph, const std::vector<std::vector<graph::NodeId>>& walks,
             const SkipGramConfig& config, util::Rng& rng);

  std::uint32_t dim_ = 0;
  tensor::Matrix in_;   // center-word embeddings
  tensor::Matrix out_;  // context-word embeddings
};

}  // namespace splpg::embedding
