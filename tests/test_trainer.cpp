// Integration tests for core::train_link_prediction: the full distributed
// pipeline across methods, sync modes, and models, plus the paper's
// qualitative claims at miniature scale.
#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "sampling/edge_split.hpp"

namespace splpg::core {
namespace {

struct Problem {
  data::Dataset dataset;
  sampling::LinkSplit split;
};

/// Small shared problem instance (built once; tests are read-only users).
const Problem& problem() {
  static const Problem instance = [] {
    Problem p;
    p.dataset = data::make_dataset("cora", 0.12, 3);
    util::Rng rng = util::Rng(3).split("split");
    p.split = sampling::split_edges(p.dataset.graph, sampling::SplitOptions{}, rng);
    return p;
  }();
  return instance;
}

TrainConfig base_config(Method method, std::uint32_t epochs = 3) {
  TrainConfig config;
  config.method = method;
  config.model.hidden_dim = 32;
  config.model.num_layers = 2;
  config.epochs = epochs;
  config.batch_size = 128;
  config.num_partitions = 4;
  config.max_batches_per_epoch = 4;
  config.seed = 11;
  return config;
}

TEST(Trainer, CentralizedLearnsAboveChance) {
  auto config = base_config(Method::kCentralized, 6);
  config.max_batches_per_epoch = 8;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  EXPECT_GT(result.test_auc, 0.65);  // far above the 0.5 chance level
  EXPECT_GT(result.test_hits, 0.0);
  EXPECT_EQ(result.comm.total_bytes(), 0U);  // single worker: no transfers
  EXPECT_EQ(result.history.size(), 6U);
}

TEST(Trainer, DeterministicAcrossRuns) {
  const auto config = base_config(Method::kSplpg);
  const TrainResult a = train_link_prediction(problem().split, problem().dataset.features,
                                              config);
  const TrainResult b = train_link_prediction(problem().split, problem().dataset.features,
                                              config);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t e = 0; e < a.history.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.history[e].mean_loss, b.history[e].mean_loss);
    EXPECT_DOUBLE_EQ(a.history[e].comm_gigabytes, b.history[e].comm_gigabytes);
  }
  EXPECT_DOUBLE_EQ(a.test_hits, b.test_hits);
  EXPECT_EQ(a.comm.total_bytes(), b.comm.total_bytes());
}

TEST(Trainer, VanillaBaselinesTransferNothing) {
  for (const Method method : {Method::kPsgdPa, Method::kRandomTma, Method::kSuperTma,
                              Method::kSplpgMinus, Method::kSplpgMinusMinus}) {
    const TrainResult result = train_link_prediction(
        problem().split, problem().dataset.features, base_config(method, 2));
    EXPECT_EQ(result.comm.total_bytes(), 0U) << to_string(method);
  }
}

TEST(Trainer, SplpgTransfersLessThanSplpgPlus) {
  const TrainResult splpg = train_link_prediction(problem().split, problem().dataset.features,
                                                  base_config(Method::kSplpg, 2));
  const TrainResult plus = train_link_prediction(problem().split, problem().dataset.features,
                                                 base_config(Method::kSplpgPlus, 2));
  EXPECT_GT(splpg.comm.total_bytes(), 0U);
  EXPECT_LT(static_cast<double>(splpg.comm.total_bytes()),
            0.8 * static_cast<double>(plus.comm.total_bytes()));
}

TEST(Trainer, RandomTmaPlusIsTheMostExpensive) {
  const TrainResult random_plus = train_link_prediction(
      problem().split, problem().dataset.features, base_config(Method::kRandomTmaPlus, 2));
  const TrainResult splpg = train_link_prediction(problem().split, problem().dataset.features,
                                                  base_config(Method::kSplpg, 2));
  EXPECT_GT(random_plus.comm.total_bytes(), splpg.comm.total_bytes());
}

TEST(Trainer, SparsificationRunsOnlyForSplpg) {
  const TrainResult splpg = train_link_prediction(problem().split, problem().dataset.features,
                                                  base_config(Method::kSplpg, 1));
  EXPECT_GT(splpg.sparsify_seconds, 0.0);
  const TrainResult plus = train_link_prediction(problem().split, problem().dataset.features,
                                                 base_config(Method::kSplpgPlus, 1));
  EXPECT_DOUBLE_EQ(plus.sparsify_seconds, 0.0);
}

TEST(Trainer, GradientAveragingKeepsReplicasInSyncAndRuns) {
  auto config = base_config(Method::kPsgdPaPlus, 2);
  config.sync = dist::SyncMode::kGradientAveraging;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  EXPECT_EQ(result.history.size(), 2U);
  EXPECT_GT(result.test_auc, 0.4);
}

TEST(Trainer, LlcgCorrectionStepRuns) {
  auto config = base_config(Method::kLlcg, 2);
  config.llcg_correction_batches = 2;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  EXPECT_EQ(result.history.size(), 2U);
  EXPECT_EQ(result.comm.total_bytes(), 0U);  // correction is server-side
}

TEST(Trainer, PerEpochEvaluationFillsHistory) {
  auto config = base_config(Method::kSplpg, 3);
  config.eval_every = 1;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  for (const auto& record : result.history) {
    EXPECT_GE(record.val_hits, 0.0);
    EXPECT_GE(record.test_hits, 0.0);
  }
}

TEST(Trainer, FinalOnlyEvaluationLeavesEarlyEpochsUnevaluated) {
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   base_config(Method::kSplpg, 3));
  EXPECT_LT(result.history.front().val_hits, 0.0);  // sentinel -1
  EXPECT_GE(result.history.back().val_hits, 0.0);
}

TEST(Trainer, PartitionStatsReported) {
  const TrainResult metis = train_link_prediction(problem().split, problem().dataset.features,
                                                  base_config(Method::kPsgdPa, 1));
  const TrainResult random = train_link_prediction(problem().split, problem().dataset.features,
                                                   base_config(Method::kRandomTma, 1));
  EXPECT_LT(metis.partition_edge_cut, random.partition_edge_cut);
  EXPECT_GE(metis.partition_balance, 1.0);
}

TEST(Trainer, EvalKOverrideRespected) {
  auto config = base_config(Method::kCentralized, 1);
  config.eval_k = 25;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  EXPECT_EQ(result.eval_k, 25U);
}

TEST(Trainer, GcnWithFullNeighborhoodFanouts) {
  auto config = base_config(Method::kSplpg, 2);
  config.model.gnn = nn::GnnKind::kGcn;
  config.model.num_layers = 2;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  EXPECT_EQ(result.history.size(), 2U);
  EXPECT_GT(result.test_auc, 0.4);
}

TEST(Trainer, AttentionModelsTrain) {
  for (const auto gnn : {nn::GnnKind::kGat, nn::GnnKind::kGatv2}) {
    auto config = base_config(Method::kSplpg, 1);
    config.model.gnn = gnn;
    config.model.num_layers = 2;
    config.max_batches_per_epoch = 2;
    const TrainResult result = train_link_prediction(
        problem().split, problem().dataset.features, config);
    EXPECT_EQ(result.history.size(), 1U) << nn::to_string(gnn);
  }
}

TEST(Trainer, DotPredictorWorks) {
  auto config = base_config(Method::kCentralized, 2);
  config.model.predictor = nn::PredictorKind::kDot;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  EXPECT_GT(result.test_auc, 0.5);
}

TEST(Trainer, MoreSparsificationMeansLessCommunication) {
  auto sparse_config = base_config(Method::kSplpg, 2);
  sparse_config.alpha = 0.05;
  auto dense_config = base_config(Method::kSplpg, 2);
  dense_config.alpha = 0.5;
  const TrainResult sparse = train_link_prediction(problem().split, problem().dataset.features,
                                                   sparse_config);
  const TrainResult dense = train_link_prediction(problem().split, problem().dataset.features,
                                                  dense_config);
  EXPECT_LT(sparse.comm.total_bytes(), dense.comm.total_bytes());
}

class PartitionCountTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PartitionCountTest, SplpgRunsAtEveryPaperPartitionCount) {
  auto config = base_config(Method::kSplpg, 1);
  config.num_partitions = GetParam();
  config.max_batches_per_epoch = 2;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  EXPECT_EQ(result.history.size(), 1U);
  EXPECT_GT(result.comm.total_bytes(), 0U);
}

INSTANTIATE_TEST_SUITE_P(PaperPartitionCounts, PartitionCountTest,
                         ::testing::Values(2U, 4U, 8U, 16U));

}  // namespace
}  // namespace splpg::core
