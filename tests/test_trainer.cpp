// Integration tests for core::train_link_prediction: the full distributed
// pipeline across methods, sync modes, and models, plus the paper's
// qualitative claims at miniature scale.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "nn/checkpoint.hpp"
#include "sampling/edge_split.hpp"

namespace splpg::core {
namespace {

struct Problem {
  data::Dataset dataset;
  sampling::LinkSplit split;
};

/// Small shared problem instance (built once; tests are read-only users).
const Problem& problem() {
  static const Problem instance = [] {
    Problem p;
    p.dataset = data::make_dataset("cora", 0.12, 3);
    util::Rng rng = util::Rng(3).split("split");
    p.split = sampling::split_edges(p.dataset.graph, sampling::SplitOptions{}, rng);
    return p;
  }();
  return instance;
}

TrainConfig base_config(Method method, std::uint32_t epochs = 3) {
  TrainConfig config;
  config.method = method;
  config.model.hidden_dim = 32;
  config.model.num_layers = 2;
  config.epochs = epochs;
  config.batch_size = 128;
  config.num_partitions = 4;
  config.max_batches_per_epoch = 4;
  config.seed = 11;
  return config;
}

TEST(Trainer, CentralizedLearnsAboveChance) {
  auto config = base_config(Method::kCentralized, 6);
  config.max_batches_per_epoch = 8;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  EXPECT_GT(result.test_auc, 0.65);  // far above the 0.5 chance level
  EXPECT_GT(result.test_hits, 0.0);
  EXPECT_EQ(result.comm.total_bytes(), 0U);  // single worker: no transfers
  EXPECT_EQ(result.history.size(), 6U);
}

TEST(Trainer, DeterministicAcrossRuns) {
  const auto config = base_config(Method::kSplpg);
  const TrainResult a = train_link_prediction(problem().split, problem().dataset.features,
                                              config);
  const TrainResult b = train_link_prediction(problem().split, problem().dataset.features,
                                              config);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t e = 0; e < a.history.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.history[e].mean_loss, b.history[e].mean_loss);
    EXPECT_DOUBLE_EQ(a.history[e].comm_gigabytes, b.history[e].comm_gigabytes);
  }
  EXPECT_DOUBLE_EQ(a.test_hits, b.test_hits);
  EXPECT_EQ(a.comm.total_bytes(), b.comm.total_bytes());
}

TEST(Trainer, VanillaBaselinesTransferNothing) {
  for (const Method method : {Method::kPsgdPa, Method::kRandomTma, Method::kSuperTma,
                              Method::kSplpgMinus, Method::kSplpgMinusMinus}) {
    const TrainResult result = train_link_prediction(
        problem().split, problem().dataset.features, base_config(method, 2));
    EXPECT_EQ(result.comm.total_bytes(), 0U) << to_string(method);
  }
}

TEST(Trainer, SplpgTransfersLessThanSplpgPlus) {
  const TrainResult splpg = train_link_prediction(problem().split, problem().dataset.features,
                                                  base_config(Method::kSplpg, 2));
  const TrainResult plus = train_link_prediction(problem().split, problem().dataset.features,
                                                 base_config(Method::kSplpgPlus, 2));
  EXPECT_GT(splpg.comm.total_bytes(), 0U);
  EXPECT_LT(static_cast<double>(splpg.comm.total_bytes()),
            0.8 * static_cast<double>(plus.comm.total_bytes()));
}

TEST(Trainer, RandomTmaPlusIsTheMostExpensive) {
  const TrainResult random_plus = train_link_prediction(
      problem().split, problem().dataset.features, base_config(Method::kRandomTmaPlus, 2));
  const TrainResult splpg = train_link_prediction(problem().split, problem().dataset.features,
                                                  base_config(Method::kSplpg, 2));
  EXPECT_GT(random_plus.comm.total_bytes(), splpg.comm.total_bytes());
}

TEST(Trainer, SparsificationRunsOnlyForSplpg) {
  const TrainResult splpg = train_link_prediction(problem().split, problem().dataset.features,
                                                  base_config(Method::kSplpg, 1));
  EXPECT_GT(splpg.sparsify_seconds, 0.0);
  const TrainResult plus = train_link_prediction(problem().split, problem().dataset.features,
                                                 base_config(Method::kSplpgPlus, 1));
  EXPECT_DOUBLE_EQ(plus.sparsify_seconds, 0.0);
}

TEST(Trainer, GradientAveragingKeepsReplicasInSyncAndRuns) {
  auto config = base_config(Method::kPsgdPaPlus, 2);
  config.sync = dist::SyncMode::kGradientAveraging;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  EXPECT_EQ(result.history.size(), 2U);
  EXPECT_GT(result.test_auc, 0.4);
}

TEST(Trainer, LlcgCorrectionStepRuns) {
  auto config = base_config(Method::kLlcg, 2);
  config.llcg_correction_batches = 2;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  EXPECT_EQ(result.history.size(), 2U);
  EXPECT_EQ(result.comm.total_bytes(), 0U);  // correction is server-side
}

TEST(Trainer, PerEpochEvaluationFillsHistory) {
  auto config = base_config(Method::kSplpg, 3);
  config.eval_every = 1;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  for (const auto& record : result.history) {
    EXPECT_GE(record.val_hits, 0.0);
    EXPECT_GE(record.test_hits, 0.0);
  }
}

TEST(Trainer, FinalOnlyEvaluationLeavesEarlyEpochsUnevaluated) {
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   base_config(Method::kSplpg, 3));
  EXPECT_LT(result.history.front().val_hits, 0.0);  // sentinel -1
  EXPECT_GE(result.history.back().val_hits, 0.0);
}

TEST(Trainer, PartitionStatsReported) {
  const TrainResult metis = train_link_prediction(problem().split, problem().dataset.features,
                                                  base_config(Method::kPsgdPa, 1));
  const TrainResult random = train_link_prediction(problem().split, problem().dataset.features,
                                                   base_config(Method::kRandomTma, 1));
  EXPECT_LT(metis.partition_edge_cut, random.partition_edge_cut);
  EXPECT_GE(metis.partition_balance, 1.0);
}

TEST(Trainer, EvalKOverrideRespected) {
  auto config = base_config(Method::kCentralized, 1);
  config.eval_k = 25;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  EXPECT_EQ(result.eval_k, 25U);
}

TEST(Trainer, GcnWithFullNeighborhoodFanouts) {
  auto config = base_config(Method::kSplpg, 2);
  config.model.gnn = nn::GnnKind::kGcn;
  config.model.num_layers = 2;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  EXPECT_EQ(result.history.size(), 2U);
  EXPECT_GT(result.test_auc, 0.4);
}

TEST(Trainer, AttentionModelsTrain) {
  for (const auto gnn : {nn::GnnKind::kGat, nn::GnnKind::kGatv2}) {
    auto config = base_config(Method::kSplpg, 1);
    config.model.gnn = gnn;
    config.model.num_layers = 2;
    config.max_batches_per_epoch = 2;
    const TrainResult result = train_link_prediction(
        problem().split, problem().dataset.features, config);
    EXPECT_EQ(result.history.size(), 1U) << nn::to_string(gnn);
  }
}

TEST(Trainer, DotPredictorWorks) {
  auto config = base_config(Method::kCentralized, 2);
  config.model.predictor = nn::PredictorKind::kDot;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  EXPECT_GT(result.test_auc, 0.5);
}

TEST(Trainer, MoreSparsificationMeansLessCommunication) {
  auto sparse_config = base_config(Method::kSplpg, 2);
  sparse_config.alpha = 0.05;
  auto dense_config = base_config(Method::kSplpg, 2);
  dense_config.alpha = 0.5;
  const TrainResult sparse = train_link_prediction(problem().split, problem().dataset.features,
                                                   sparse_config);
  const TrainResult dense = train_link_prediction(problem().split, problem().dataset.features,
                                                  dense_config);
  EXPECT_LT(sparse.comm.total_bytes(), dense.comm.total_bytes());
}

// ---- fault tolerance ----

/// A lively but survivable cluster: 2% transient fetch failures with injected
/// latency, and worker 1 crashes at the start of epoch 2 (recovered from the
/// epoch-1 checkpoint at the epoch-2 boundary).
TrainConfig faulty_config() {
  auto config = base_config(Method::kSplpg, 4);
  config.faults.transient_fetch_failure_rate = 0.02;
  config.faults.fetch_latency_seconds = 1e-5;
  config.faults.crashes = {{1, 2, 0}};
  return config;
}

TEST(TrainerFaults, CrashedWorkerRecoversAndAccuracySurvives) {
  const TrainResult faulty = train_link_prediction(problem().split, problem().dataset.features,
                                                   faulty_config());
  // Training ran to completion through the crash...
  EXPECT_EQ(faulty.history.size(), 4U);
  EXPECT_EQ(faulty.fault.crashes, 1U);
  EXPECT_EQ(faulty.fault.recoveries, 1U);
  EXPECT_EQ(faulty.per_worker_fault[1].crashes, 1U);
  EXPECT_GT(faulty.fault.transient_failures, 0U);
  EXPECT_GT(faulty.fault.retries, 0U);
  EXPECT_GT(faulty.fault.injected_latency_seconds, 0.0);
  // ...and lands near the fault-free model's accuracy.
  const TrainResult clean = train_link_prediction(problem().split, problem().dataset.features,
                                                  base_config(Method::kSplpg, 4));
  EXPECT_NEAR(faulty.test_auc, clean.test_auc, 0.05);
  EXPECT_NEAR(faulty.test_hits, clean.test_hits, 0.15);
}

TEST(TrainerFaults, FaultStatsBitIdenticalAcrossRuns) {
  const auto config = faulty_config();
  const TrainResult a = train_link_prediction(problem().split, problem().dataset.features,
                                              config);
  const TrainResult b = train_link_prediction(problem().split, problem().dataset.features,
                                              config);
  EXPECT_EQ(a.fault.transient_failures, b.fault.transient_failures);
  EXPECT_EQ(a.fault.retries, b.fault.retries);
  EXPECT_EQ(a.fault.permanent_failures, b.fault.permanent_failures);
  EXPECT_EQ(a.fault.wasted_bytes, b.fault.wasted_bytes);
  EXPECT_EQ(a.fault.degraded_batches, b.fault.degraded_batches);
  EXPECT_EQ(a.fault.crashes, b.fault.crashes);
  EXPECT_EQ(a.fault.recoveries, b.fault.recoveries);
  EXPECT_DOUBLE_EQ(a.fault.injected_latency_seconds, b.fault.injected_latency_seconds);
  EXPECT_DOUBLE_EQ(a.fault.backoff_seconds, b.fault.backoff_seconds);
  ASSERT_EQ(a.per_worker_fault.size(), b.per_worker_fault.size());
  for (std::size_t w = 0; w < a.per_worker_fault.size(); ++w) {
    EXPECT_EQ(a.per_worker_fault[w].transient_failures, b.per_worker_fault[w].transient_failures);
    EXPECT_EQ(a.per_worker_fault[w].wasted_bytes, b.per_worker_fault[w].wasted_bytes);
  }
  // The training trajectory itself also stays bit-identical under faults.
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t e = 0; e < a.history.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.history[e].mean_loss, b.history[e].mean_loss);
  }
  EXPECT_DOUBLE_EQ(a.test_hits, b.test_hits);
  EXPECT_EQ(a.comm.total_bytes(), b.comm.total_bytes());
}

TEST(TrainerFaults, PermanentFailuresDegradeBatchesButTrainingCompletes) {
  auto config = base_config(Method::kSplpgPlus, 2);
  config.faults.transient_fetch_failure_rate = 0.6;
  config.retry.max_attempts = 2;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  EXPECT_EQ(result.history.size(), 2U);
  EXPECT_GT(result.fault.permanent_failures, 0U);
  EXPECT_GT(result.fault.degraded_batches, 0U);
  EXPECT_GT(result.fault.wasted_bytes, 0U);
}

TEST(TrainerFaults, CrashUnderGradientAveragingCompletes) {
  auto config = faulty_config();
  config.sync = dist::SyncMode::kGradientAveraging;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  EXPECT_EQ(result.history.size(), 4U);
  EXPECT_EQ(result.fault.crashes, 1U);
  EXPECT_EQ(result.fault.recoveries, 1U);
}

TEST(TrainerFaults, CheckpointFilesWrittenAndFinalOneMatchesModel) {
  const auto dir = std::filesystem::temp_directory_path() / "splpg_ckpt_test";
  std::filesystem::remove_all(dir);
  auto config = faulty_config();
  config.checkpoint_dir = dir.string();
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  for (std::uint32_t e = 0; e <= 4; ++e) {
    EXPECT_TRUE(std::filesystem::exists(dir / ("model_epoch_" + std::to_string(e) + ".bin")))
        << "epoch " << e;
  }
  // Round trip: the final on-disk checkpoint restores the trained model.
  nn::LinkPredictionModel restored(result.model->config(), 999);
  nn::load_parameters_file((dir / "model_epoch_4.bin").string(), restored);
  const auto& expected = result.model->parameters();
  const auto& actual = restored.parameters();
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const auto& want = expected[i].value();
    const auto& got = actual[i].value();
    ASSERT_EQ(want.rows(), got.rows());
    ASSERT_EQ(want.cols(), got.cols());
    for (std::size_t r = 0; r < want.rows(); ++r) {
      for (std::size_t c = 0; c < want.cols(); ++c) {
        ASSERT_EQ(want.at(r, c), got.at(r, c));
      }
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(TrainerFaults, MalformedFaultPlanRejectedUpFront) {
  auto config = base_config(Method::kSplpg, 1);
  config.faults.transient_fetch_failure_rate = 1.5;
  EXPECT_THROW(train_link_prediction(problem().split, problem().dataset.features, config),
               std::invalid_argument);
}

class PartitionCountTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PartitionCountTest, SplpgRunsAtEveryPaperPartitionCount) {
  auto config = base_config(Method::kSplpg, 1);
  config.num_partitions = GetParam();
  config.max_batches_per_epoch = 2;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  EXPECT_EQ(result.history.size(), 1U);
  EXPECT_GT(result.comm.total_bytes(), 0U);
}

INSTANTIATE_TEST_SUITE_P(PaperPartitionCounts, PartitionCountTest,
                         ::testing::Values(2U, 4U, 8U, 16U));

// ---- regression: per-epoch comm normalization under early stopping ----

TEST(Trainer, EarlyStopNormalizesCommByEpochsRun) {
  // lr = 0 freezes the model, so validation Hits@K never improves after the
  // first evaluation and patience = 1 stops training well before epoch 6.
  auto config = base_config(Method::kSplpg, 6);
  config.learning_rate = 0.0F;
  config.eval_every = 1;
  config.patience = 1;
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  ASSERT_LT(result.history.size(), 6U);
  ASSERT_FALSE(result.history.empty());
  EXPECT_GT(result.comm.total_bytes(), 0U);
  // Normalized by epochs actually run, not the configured count.
  EXPECT_DOUBLE_EQ(
      result.comm_gigabytes_per_epoch,
      result.comm.total_gigabytes() / static_cast<double>(result.history.size()));
}

// ---- regression: returned model is the replica the final evaluation scored ----

TEST(TrainerFaults, ReturnedModelMatchesReportedTestHits) {
  // Worker 0 crashes at the start of the FINAL epoch. The final evaluation
  // then scores the first surviving replica (worker 1) while worker 0 is
  // restored from the stale epoch-2 checkpoint — returning replicas[0] would
  // hand back a model whose metrics differ from the reported ones.
  auto config = base_config(Method::kSplpg, 3);
  config.checkpoint_every = 2;
  config.faults.crashes = {{0, 3, 0}};
  const TrainResult result = train_link_prediction(problem().split, problem().dataset.features,
                                                   config);
  EXPECT_EQ(result.fault.crashes, 1U);
  ASSERT_NE(result.model, nullptr);

  // Re-evaluate the returned model with the trainer's own evaluator setup:
  // it must reproduce the reported test metrics exactly.
  const Evaluator evaluator(problem().split, problem().dataset.features,
                            result.model->default_fanouts(), config.eval_k);
  const EvalResult eval = evaluator.evaluate(*result.model);
  EXPECT_DOUBLE_EQ(eval.test_hits, result.test_hits);
  EXPECT_DOUBLE_EQ(eval.test_auc, result.test_auc);
  EXPECT_DOUBLE_EQ(eval.val_hits, result.best_val_hits);
}

// ---- ThreadPool knob: bit-identical results, metered preprocessing ----

TEST(Trainer, ThreadPoolKnobDoesNotChangeResults) {
  const auto serial_config = base_config(Method::kSplpg, 2);
  auto pooled_config = serial_config;
  pooled_config.num_threads = 4;
  const TrainResult serial = train_link_prediction(problem().split, problem().dataset.features,
                                                   serial_config);
  const TrainResult pooled = train_link_prediction(problem().split, problem().dataset.features,
                                                   pooled_config);
  ASSERT_EQ(serial.history.size(), pooled.history.size());
  for (std::size_t e = 0; e < serial.history.size(); ++e) {
    EXPECT_DOUBLE_EQ(serial.history[e].mean_loss, pooled.history[e].mean_loss);
    EXPECT_DOUBLE_EQ(serial.history[e].comm_gigabytes, pooled.history[e].comm_gigabytes);
  }
  EXPECT_DOUBLE_EQ(serial.test_hits, pooled.test_hits);
  EXPECT_DOUBLE_EQ(serial.test_auc, pooled.test_auc);
  EXPECT_EQ(serial.comm.total_bytes(), pooled.comm.total_bytes());
  // Both meter preprocessing wall and CPU time.
  EXPECT_GT(serial.sparsify_seconds, 0.0);
  EXPECT_GT(pooled.sparsify_seconds, 0.0);
  EXPECT_GT(serial.sparsify_cpu_seconds, 0.0);
  EXPECT_GT(pooled.sparsify_cpu_seconds, 0.0);
}

TEST(Evaluator, ParallelScoringBitIdenticalToSerial) {
  nn::ModelConfig model_config;
  model_config.in_dim = problem().dataset.features.dim();
  model_config.hidden_dim = 16;
  model_config.num_layers = 2;
  const nn::LinkPredictionModel model(model_config, 5);
  const auto fanouts = model.default_fanouts();

  // Small chunk size so several chunks are in flight on the pool.
  const Evaluator serial(problem().split, problem().dataset.features, fanouts, 0, 64, 7, 1);
  const Evaluator pooled(problem().split, problem().dataset.features, fanouts, 0, 64, 7, 4);

  std::vector<sampling::NodePair> pairs(problem().split.val_neg.begin(),
                                        problem().split.val_neg.end());
  const auto serial_scores = serial.score_pairs(model, pairs);
  const auto pooled_scores = pooled.score_pairs(model, pairs);
  ASSERT_EQ(serial_scores.size(), pooled_scores.size());
  for (std::size_t i = 0; i < serial_scores.size(); ++i) {
    EXPECT_EQ(serial_scores[i], pooled_scores[i]) << "pair " << i;  // bit-exact
  }

  const EvalResult a = serial.evaluate(model);
  const EvalResult b = pooled.evaluate(model);
  EXPECT_DOUBLE_EQ(a.val_hits, b.val_hits);
  EXPECT_DOUBLE_EQ(a.test_hits, b.test_hits);
  EXPECT_DOUBLE_EQ(a.val_auc, b.val_auc);
  EXPECT_DOUBLE_EQ(a.test_auc, b.test_auc);
}

}  // namespace
}  // namespace splpg::core
