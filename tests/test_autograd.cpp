// Numerical gradient verification for every autograd op, plus DAG mechanics
// (gradient accumulation through shared subexpressions, topological order).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/autograd.hpp"
#include "tensor/init.hpp"
#include "util/rng.hpp"

namespace splpg::tensor {
namespace {

using util::Rng;

/// Scalar-valued function of one parameter tensor; checks d(loss)/d(param)
/// against central finite differences.
void check_gradient(Tensor& param, const std::function<Tensor()>& loss_fn, double tolerance = 2e-2,
                    double epsilon = 1e-3) {
  Tensor loss = loss_fn();
  ASSERT_EQ(loss.rows(), 1U);
  ASSERT_EQ(loss.cols(), 1U);
  param.zero_grad();
  param.mutable_grad().resize(0, 0);
  loss.backward();
  ASSERT_FALSE(param.grad().empty()) << "no gradient reached the parameter";
  const Matrix analytic = param.grad();

  auto& value = param.mutable_value();
  for (std::size_t r = 0; r < value.rows(); ++r) {
    for (std::size_t c = 0; c < value.cols(); ++c) {
      const float saved = value.at(r, c);
      value.at(r, c) = saved + static_cast<float>(epsilon);
      const double up = loss_fn().item();
      value.at(r, c) = saved - static_cast<float>(epsilon);
      const double down = loss_fn().item();
      value.at(r, c) = saved;
      const double numeric = (up - down) / (2.0 * epsilon);
      EXPECT_NEAR(analytic.at(r, c), numeric, tolerance * std::max(1.0, std::abs(numeric)))
          << "at (" << r << ", " << c << ")";
    }
  }
}

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng, double scale = 1.0) {
  Matrix out(rows, cols);
  for (float& x : out.data()) x = static_cast<float>(rng.normal(0.0, scale));
  return out;
}

TEST(Autograd, MatmulGradLeft) {
  Rng rng(1);
  Tensor a = Tensor::parameter(random_matrix(3, 4, rng));
  const Tensor b = Tensor::constant(random_matrix(4, 5, rng));
  check_gradient(a, [&] { return mean_all(matmul(a, b)); });
}

TEST(Autograd, MatmulGradRight) {
  Rng rng(2);
  const Tensor a = Tensor::constant(random_matrix(3, 4, rng));
  Tensor b = Tensor::parameter(random_matrix(4, 5, rng));
  check_gradient(b, [&] { return mean_all(matmul(a, b)); });
}

TEST(Autograd, AddElementwiseGrad) {
  Rng rng(3);
  Tensor a = Tensor::parameter(random_matrix(4, 3, rng));
  const Tensor b = Tensor::constant(random_matrix(4, 3, rng));
  check_gradient(a, [&] { return mean_all(add(a, b)); });
}

TEST(Autograd, AddBroadcastBiasGrad) {
  Rng rng(4);
  const Tensor a = Tensor::constant(random_matrix(5, 3, rng));
  Tensor bias = Tensor::parameter(random_matrix(1, 3, rng));
  check_gradient(bias, [&] { return mean_all(sigmoid(add(a, bias))); });
}

TEST(Autograd, MulElementwiseGradBoth) {
  Rng rng(5);
  Tensor a = Tensor::parameter(random_matrix(3, 3, rng));
  Tensor b = Tensor::parameter(random_matrix(3, 3, rng));
  check_gradient(a, [&] { return mean_all(mul(a, b)); });
  check_gradient(b, [&] { return mean_all(mul(a, b)); });
}

TEST(Autograd, MulBroadcastColumnGrad) {
  Rng rng(6);
  Tensor a = Tensor::parameter(random_matrix(4, 3, rng));
  Tensor s = Tensor::parameter(random_matrix(4, 1, rng));
  check_gradient(a, [&] { return mean_all(mul(a, s)); });
  check_gradient(s, [&] { return mean_all(mul(a, s)); });
}

TEST(Autograd, ScaleGrad) {
  Rng rng(7);
  Tensor a = Tensor::parameter(random_matrix(3, 4, rng));
  check_gradient(a, [&] { return mean_all(scale(a, -2.5F)); });
}

TEST(Autograd, ConcatColsGradBoth) {
  Rng rng(8);
  Tensor a = Tensor::parameter(random_matrix(3, 2, rng));
  Tensor b = Tensor::parameter(random_matrix(3, 4, rng));
  const Tensor w = Tensor::constant(random_matrix(6, 1, rng));
  check_gradient(a, [&] { return mean_all(matmul(concat_cols(a, b), w)); });
  check_gradient(b, [&] { return mean_all(matmul(concat_cols(a, b), w)); });
}

TEST(Autograd, ReluGrad) {
  Rng rng(9);
  Tensor a = Tensor::parameter(random_matrix(4, 4, rng));
  // Keep entries away from the kink for finite differences.
  for (float& x : a.mutable_value().data()) {
    if (std::abs(x) < 0.05F) x += 0.2F;
  }
  check_gradient(a, [&] { return mean_all(relu(a)); });
}

TEST(Autograd, LeakyReluGrad) {
  Rng rng(10);
  Tensor a = Tensor::parameter(random_matrix(4, 4, rng));
  for (float& x : a.mutable_value().data()) {
    if (std::abs(x) < 0.05F) x += 0.2F;
  }
  check_gradient(a, [&] { return mean_all(leaky_relu(a, 0.2F)); });
}

TEST(Autograd, SigmoidGrad) {
  Rng rng(11);
  Tensor a = Tensor::parameter(random_matrix(3, 5, rng));
  check_gradient(a, [&] { return mean_all(sigmoid(a)); });
}

TEST(Autograd, TanhGrad) {
  Rng rng(12);
  Tensor a = Tensor::parameter(random_matrix(3, 5, rng));
  check_gradient(a, [&] { return mean_all(tanh_op(a)); });
}

TEST(Autograd, GatherRowsGrad) {
  Rng rng(13);
  Tensor a = Tensor::parameter(random_matrix(5, 3, rng));
  const std::vector<std::uint32_t> idx = {0, 2, 2, 4, 1};
  check_gradient(a, [&] { return mean_all(gather_rows(a, idx)); });
}

TEST(Autograd, SpmmEdgesGradFeatures) {
  Rng rng(14);
  Tensor feats = Tensor::parameter(random_matrix(6, 3, rng));
  const std::vector<std::uint32_t> src = {0, 1, 2, 3, 4, 5, 1};
  const std::vector<std::uint32_t> dst = {0, 0, 1, 1, 2, 2, 2};
  const Tensor coef = Tensor::constant(random_matrix(7, 1, rng));
  check_gradient(
      feats, [&] { return mean_all(spmm_edges(feats, coef, src, dst, 3)); });
}

TEST(Autograd, SpmmEdgesGradCoefficients) {
  Rng rng(15);
  const Tensor feats = Tensor::constant(random_matrix(6, 3, rng));
  const std::vector<std::uint32_t> src = {0, 1, 2, 3, 4, 5};
  const std::vector<std::uint32_t> dst = {0, 0, 1, 1, 2, 2};
  Tensor coef = Tensor::parameter(random_matrix(6, 1, rng));
  check_gradient(coef,
                 [&] { return mean_all(spmm_edges(feats, coef, src, dst, 3)); });
}

TEST(Autograd, SpmmEdgesUndefinedCoefIsAllOnes) {
  Rng rng(16);
  const Matrix feats_value = random_matrix(4, 2, rng);
  const Tensor feats = Tensor::constant(feats_value);
  const std::vector<std::uint32_t> src = {0, 1, 2, 3};
  const std::vector<std::uint32_t> dst = {0, 0, 1, 1};
  const Tensor out = spmm_edges(feats, Tensor{}, src, dst, 2);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_FLOAT_EQ(out.value().at(0, c), feats_value.at(0, c) + feats_value.at(1, c));
    EXPECT_FLOAT_EQ(out.value().at(1, c), feats_value.at(2, c) + feats_value.at(3, c));
  }
}

TEST(Autograd, SegmentSoftmaxForwardSumsToOnePerGroup) {
  Rng rng(17);
  Tensor scores = Tensor::parameter(random_matrix(7, 1, rng));
  const std::vector<std::uint32_t> dst = {0, 0, 0, 1, 1, 2, 2};
  const Tensor soft = segment_softmax(scores, dst, 3);
  std::vector<double> sums(3, 0.0);
  for (std::size_t e = 0; e < 7; ++e) sums[dst[e]] += soft.value().at(e, 0);
  for (const double s : sums) EXPECT_NEAR(s, 1.0, 1e-5);
}

TEST(Autograd, SegmentSoftmaxGrad) {
  Rng rng(18);
  Tensor scores = Tensor::parameter(random_matrix(7, 1, rng));
  const std::vector<std::uint32_t> dst = {0, 0, 0, 1, 1, 2, 2};
  const Tensor weights = Tensor::constant(random_matrix(7, 1, rng));
  check_gradient(scores, [&] {
    return mean_all(mul(segment_softmax(scores, dst, 3), weights));
  });
}

TEST(Autograd, RowwiseDotGradBoth) {
  Rng rng(19);
  Tensor a = Tensor::parameter(random_matrix(4, 3, rng));
  Tensor b = Tensor::parameter(random_matrix(4, 3, rng));
  check_gradient(a, [&] { return mean_all(rowwise_dot(a, b)); });
  check_gradient(b, [&] { return mean_all(rowwise_dot(a, b)); });
}

TEST(Autograd, BceWithLogitsGrad) {
  Rng rng(20);
  Tensor logits = Tensor::parameter(random_matrix(6, 1, rng, 2.0));
  const std::vector<float> labels = {1.0F, 0.0F, 1.0F, 0.0F, 1.0F, 0.0F};
  check_gradient(logits, [&] { return bce_with_logits(logits, labels); });
}

TEST(Autograd, BceWithLogitsValueMatchesDefinition) {
  Matrix z(2, 1);
  z.at(0, 0) = 1.3F;
  z.at(1, 0) = -0.7F;
  const Tensor logits = Tensor::constant(z);
  const std::vector<float> labels = {1.0F, 0.0F};
  const double expected =
      0.5 * (std::log1p(std::exp(-1.3)) + std::log1p(std::exp(-0.7)));
  EXPECT_NEAR(bce_with_logits(logits, labels).item(), expected, 1e-6);
}

TEST(Autograd, BceWithLogitsStableForExtremeLogits) {
  Matrix z(2, 1);
  z.at(0, 0) = 80.0F;
  z.at(1, 0) = -80.0F;
  const Tensor logits = Tensor::constant(z);
  const std::vector<float> labels = {1.0F, 0.0F};
  const float loss = bce_with_logits(logits, labels).item();
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-6);
}

TEST(Autograd, SharedSubexpressionAccumulatesGradients) {
  // loss = mean(a * a): d/da = 2a / n.
  Rng rng(21);
  Tensor a = Tensor::parameter(random_matrix(3, 3, rng));
  Tensor loss = mean_all(mul(a, a));
  loss.backward();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(a.grad().at(r, c), 2.0F * a.value().at(r, c) / 9.0F, 1e-5);
    }
  }
}

TEST(Autograd, DiamondGraphGradient) {
  // b = 2a; c = 3a; loss = mean(b + c) -> d/da = 5/n (two paths sum).
  Rng rng(22);
  Tensor a = Tensor::parameter(random_matrix(2, 2, rng));
  Tensor loss = mean_all(add(scale(a, 2.0F), scale(a, 3.0F)));
  loss.backward();
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) EXPECT_NEAR(a.grad().at(i, j), 5.0F / 4.0F, 1e-5);
  }
}

TEST(Autograd, DeepChainGradient) {
  // 20 chained scalings by 1.1: gradient = 1.1^20 / n.
  Rng rng(23);
  Tensor a = Tensor::parameter(random_matrix(2, 2, rng));
  Tensor h = a;
  for (int i = 0; i < 20; ++i) h = scale(h, 1.1F);
  Tensor loss = mean_all(h);
  loss.backward();
  const double expected = std::pow(1.1, 20) / 4.0;
  EXPECT_NEAR(a.grad().at(0, 0), expected, 1e-3);
}

TEST(Autograd, ConstantsReceiveNoGradient) {
  Rng rng(24);
  const Tensor a = Tensor::constant(random_matrix(2, 2, rng));
  Tensor b = Tensor::parameter(random_matrix(2, 2, rng));
  Tensor loss = mean_all(mul(a, b));
  loss.backward();
  EXPECT_TRUE(a.grad().empty());
  EXPECT_FALSE(b.grad().empty());
}

TEST(Autograd, ZeroGradClears) {
  Rng rng(25);
  Tensor a = Tensor::parameter(random_matrix(2, 2, rng));
  mean_all(a).backward();
  EXPECT_FALSE(a.grad().empty());
  const float before = a.grad().at(0, 0);
  EXPECT_NE(before, 0.0F);
  a.zero_grad();
  EXPECT_FLOAT_EQ(a.grad().at(0, 0), 0.0F);
}

TEST(Autograd, BackwardTwiceAccumulates) {
  Rng rng(26);
  Tensor a = Tensor::parameter(random_matrix(2, 2, rng));
  mean_all(a).backward();
  const float once = a.grad().at(0, 0);
  mean_all(a).backward();
  EXPECT_NEAR(a.grad().at(0, 0), 2.0F * once, 1e-6);
}

TEST(Autograd, DropoutTrainingMasksAndScales) {
  Rng rng(27);
  Matrix ones(50, 50, 1.0F);
  const Tensor a = Tensor::constant(std::move(ones));
  Rng dropout_rng(5);
  const Tensor dropped = dropout(a, 0.5F, dropout_rng, /*training=*/true);
  std::size_t zeros = 0;
  for (const float x : dropped.value().data()) {
    EXPECT_TRUE(x == 0.0F || std::abs(x - 2.0F) < 1e-6);
    if (x == 0.0F) ++zeros;
  }
  const double drop_rate = static_cast<double>(zeros) / 2500.0;
  EXPECT_NEAR(drop_rate, 0.5, 0.05);
}

TEST(Autograd, DropoutEvalIsIdentity) {
  Rng rng(28);
  Tensor a = Tensor::parameter(random_matrix(3, 3, rng));
  Rng dropout_rng(5);
  const Tensor out = dropout(a, 0.5F, dropout_rng, /*training=*/false);
  EXPECT_EQ(&out.value(), &a.value());  // same node handed back
}

TEST(Autograd, DropoutGradRoutesThroughMask) {
  Rng rng(29);
  Tensor a = Tensor::parameter(random_matrix(8, 8, rng));
  Rng dropout_rng(11);
  Tensor out = dropout(a, 0.3F, dropout_rng, true);
  Matrix mask = out.value();  // zero where dropped
  mean_all(out).backward();
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      if (mask.at(i, j) == 0.0F && a.value().at(i, j) != 0.0F) {
        EXPECT_FLOAT_EQ(a.grad().at(i, j), 0.0F);
      }
    }
  }
}

// Composite: a 2-layer MLP-ish expression exercising many ops together.
TEST(Autograd, CompositeExpressionGradCheck) {
  Rng rng(30);
  Tensor w1 = Tensor::parameter(random_matrix(4, 6, rng, 0.5));
  Tensor w2 = Tensor::parameter(random_matrix(6, 1, rng, 0.5));
  const Tensor x = Tensor::constant(random_matrix(5, 4, rng));
  const std::vector<float> labels = {1, 0, 1, 1, 0};
  auto loss_fn = [&] { return bce_with_logits(matmul(relu(matmul(x, w1)), w2), labels); };
  check_gradient(w1, loss_fn);
  check_gradient(w2, loss_fn);
}

}  // namespace
}  // namespace splpg::tensor
