// Cross-module integration properties that tie the full pipeline together.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/evaluator.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "sampling/edge_split.hpp"

namespace splpg {
namespace {

struct Problem {
  data::Dataset dataset;
  sampling::LinkSplit split;
};

const Problem& problem() {
  static const Problem instance = [] {
    Problem p;
    p.dataset = data::make_dataset("citeseer", 0.12, 17);
    util::Rng rng = util::Rng(17).split("split");
    p.split = sampling::split_edges(p.dataset.graph, sampling::SplitOptions{}, rng);
    return p;
  }();
  return instance;
}

core::TrainConfig config_for(core::Method method) {
  core::TrainConfig config;
  config.method = method;
  config.model.hidden_dim = 24;
  config.model.num_layers = 2;
  config.epochs = 3;
  config.batch_size = 128;
  config.num_partitions = 4;
  config.max_batches_per_epoch = 3;
  config.sync = dist::SyncMode::kGradientAveraging;
  config.seed = 5;
  return config;
}

TEST(Integration, HistoryCommSumsToTotal) {
  const auto result = core::train_link_prediction(problem().split, problem().dataset.features,
                                                  config_for(core::Method::kSplpg));
  double history_total = 0.0;
  for (const auto& record : result.history) history_total += record.comm_gigabytes;
  EXPECT_NEAR(history_total, result.comm.total_gigabytes(), 1e-9);
}

TEST(Integration, ReturnedModelReproducesRecordedMetrics) {
  auto config = config_for(core::Method::kSplpg);
  config.eval_every = 1;
  const auto result =
      core::train_link_prediction(problem().split, problem().dataset.features, config);
  ASSERT_NE(result.model, nullptr);
  const auto fanouts = result.model->default_fanouts();
  const core::Evaluator evaluator(problem().split, problem().dataset.features, fanouts);
  const auto eval = evaluator.evaluate(*result.model);
  EXPECT_DOUBLE_EQ(eval.val_hits, result.history.back().val_hits);
  EXPECT_DOUBLE_EQ(eval.test_hits, result.history.back().test_hits);
}

TEST(Integration, GradientAveragingKeepsCommIndependentOfSyncMode) {
  auto gradient = config_for(core::Method::kSplpg);
  gradient.sync = dist::SyncMode::kGradientAveraging;
  auto model_avg = config_for(core::Method::kSplpg);
  model_avg.sync = dist::SyncMode::kModelAveraging;
  const auto a =
      core::train_link_prediction(problem().split, problem().dataset.features, gradient);
  const auto b =
      core::train_link_prediction(problem().split, problem().dataset.features, model_avg);
  // Graph-data transfer is driven by sampling, which is rng-identical across
  // sync modes; only parameter traffic (not metered) differs.
  EXPECT_EQ(a.comm.total_bytes(), b.comm.total_bytes());
}

TEST(Integration, LargerBatchesReduceCommPerEpoch) {
  // Fig. 13's mechanism: per-batch dedup amortizes better with larger batches.
  auto small = config_for(core::Method::kSplpg);
  small.batch_size = 32;
  small.max_batches_per_epoch = 0;
  auto large = config_for(core::Method::kSplpg);
  large.batch_size = 256;
  large.max_batches_per_epoch = 0;
  const auto small_result =
      core::train_link_prediction(problem().split, problem().dataset.features, small);
  const auto large_result =
      core::train_link_prediction(problem().split, problem().dataset.features, large);
  EXPECT_LT(large_result.comm.total_bytes(), small_result.comm.total_bytes());
}

TEST(Integration, SparsifiedRemoteReadsNeverExceedFullReads) {
  // Per-epoch structure bytes of SpLPG <= SpLPG+ (same seeds, same batches;
  // sparsified adjacency is a subset).
  const auto splpg = core::train_link_prediction(problem().split, problem().dataset.features,
                                                 config_for(core::Method::kSplpg));
  const auto plus = core::train_link_prediction(problem().split, problem().dataset.features,
                                                config_for(core::Method::kSplpgPlus));
  EXPECT_LE(splpg.comm.structure_bytes, plus.comm.structure_bytes);
}

TEST(Integration, EvaluatorIsDeterministic) {
  const auto result = core::train_link_prediction(problem().split, problem().dataset.features,
                                                  config_for(core::Method::kCentralized));
  const core::Evaluator evaluator(problem().split, problem().dataset.features, {5, 10});
  const auto a = evaluator.evaluate(*result.model);
  const auto b = evaluator.evaluate(*result.model);
  EXPECT_DOUBLE_EQ(a.test_hits, b.test_hits);
  EXPECT_DOUBLE_EQ(a.test_auc, b.test_auc);
}

TEST(Integration, ScorePairsMatchesEvaluatePositives) {
  const auto result = core::train_link_prediction(problem().split, problem().dataset.features,
                                                  config_for(core::Method::kCentralized));
  const core::Evaluator evaluator(problem().split, problem().dataset.features, {5, 10});
  std::vector<sampling::NodePair> pairs;
  for (const auto& [u, v] : problem().split.test_pos) pairs.push_back({u, v});
  const auto scores = evaluator.score_pairs(*result.model, pairs);
  EXPECT_EQ(scores.size(), pairs.size());
  for (const float s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(Integration, SeedChangesEverything) {
  auto config = config_for(core::Method::kSplpg);
  const auto a =
      core::train_link_prediction(problem().split, problem().dataset.features, config);
  config.seed = 6;
  const auto b =
      core::train_link_prediction(problem().split, problem().dataset.features, config);
  EXPECT_NE(a.history.front().mean_loss, b.history.front().mean_loss);
}

TEST(Integration, TotalBatchesAccounting) {
  auto config = config_for(core::Method::kSplpg);
  config.epochs = 2;
  config.max_batches_per_epoch = 3;
  const auto result =
      core::train_link_prediction(problem().split, problem().dataset.features, config);
  // 4 workers x 3 rounds x 2 epochs, every worker has work at this scale.
  EXPECT_EQ(result.total_batches, 4ULL * 3 * 2);
}

}  // namespace
}  // namespace splpg
