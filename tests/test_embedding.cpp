// Tests for the DeepWalk / node2vec embedding baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "data/generators.hpp"
#include "embedding/deepwalk.hpp"
#include "eval/metrics.hpp"
#include "sampling/edge_split.hpp"

namespace splpg::embedding {
namespace {

using graph::CsrGraph;
using graph::GraphBuilder;
using graph::NodeId;
using util::Rng;

CsrGraph community_graph(std::uint64_t seed = 1) {
  data::SbmParams params;
  params.num_nodes = 300;
  params.num_edges = 2400;
  params.num_communities = 6;
  params.intra_prob = 0.92;
  Rng rng(seed);
  return data::generate_sbm(params, rng);
}

TEST(RandomWalks, CountAndLength) {
  const CsrGraph graph = community_graph();
  WalkConfig config;
  config.walks_per_node = 3;
  config.walk_length = 12;
  Rng rng(2);
  const auto walks = generate_walks(graph, config, rng);
  // Every node has degree >= 1 w.h.p. in this generator; at most n*walks.
  EXPECT_LE(walks.size(), static_cast<std::size_t>(graph.num_nodes()) * 3);
  EXPECT_GT(walks.size(), static_cast<std::size_t>(graph.num_nodes()) * 2);
  for (const auto& walk : walks) {
    EXPECT_LE(walk.size(), 12U);
    EXPECT_GE(walk.size(), 1U);
  }
}

TEST(RandomWalks, StepsFollowEdges) {
  const CsrGraph graph = community_graph();
  WalkConfig config;
  config.walks_per_node = 1;
  config.walk_length = 20;
  Rng rng(3);
  for (const auto& walk : generate_walks(graph, config, rng)) {
    for (std::size_t i = 1; i < walk.size(); ++i) {
      EXPECT_TRUE(graph.has_edge(walk[i - 1], walk[i]));
    }
  }
}

TEST(RandomWalks, IsolatedNodesSkipped) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);  // 2, 3 isolated
  const CsrGraph graph = builder.build();
  WalkConfig config;
  config.walks_per_node = 2;
  Rng rng(4);
  const auto walks = generate_walks(graph, config, rng);
  for (const auto& walk : walks) {
    EXPECT_NE(walk.front(), 2U);
    EXPECT_NE(walk.front(), 3U);
  }
}

TEST(RandomWalks, DeterministicGivenRng) {
  const CsrGraph graph = community_graph();
  WalkConfig config;
  Rng rng1(5);
  Rng rng2(5);
  const auto a = generate_walks(graph, config, rng1);
  const auto b = generate_walks(graph, config, rng2);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a.back(), b.back());
}

TEST(RandomWalks, LowInOutParamExploresFurther) {
  // node2vec: q << 1 biases outward (DFS-like) -> more distinct nodes per
  // walk than q >> 1 (BFS-like, stays near the start).
  const CsrGraph graph = community_graph();
  WalkConfig dfs;
  dfs.walks_per_node = 2;
  dfs.walk_length = 30;
  dfs.inout_param = 0.25;
  WalkConfig bfs = dfs;
  bfs.inout_param = 4.0;

  auto mean_distinct = [&](const WalkConfig& config, std::uint64_t seed) {
    Rng rng(seed);
    double total = 0.0;
    const auto walks = generate_walks(graph, config, rng);
    for (const auto& walk : walks) {
      std::unordered_set<NodeId> distinct(walk.begin(), walk.end());
      total += static_cast<double>(distinct.size());
    }
    return total / static_cast<double>(walks.size());
  };
  EXPECT_GT(mean_distinct(dfs, 6), mean_distinct(bfs, 6));
}

TEST(RandomWalks, LowReturnParamBacktracksMore) {
  const CsrGraph graph = community_graph();
  WalkConfig backtracky;
  backtracky.walks_per_node = 2;
  backtracky.walk_length = 30;
  backtracky.return_param = 0.1;
  WalkConfig forward = backtracky;
  forward.return_param = 10.0;

  auto backtrack_rate = [&](const WalkConfig& config, std::uint64_t seed) {
    Rng rng(seed);
    std::size_t backtracks = 0;
    std::size_t steps = 0;
    for (const auto& walk : generate_walks(graph, config, rng)) {
      for (std::size_t i = 2; i < walk.size(); ++i) {
        ++steps;
        if (walk[i] == walk[i - 2]) ++backtracks;
      }
    }
    return static_cast<double>(backtracks) / static_cast<double>(std::max<std::size_t>(1, steps));
  };
  EXPECT_GT(backtrack_rate(backtracky, 7), 2.0 * backtrack_rate(forward, 7));
}

TEST(NodeEmbedding, LearnsLinkStructure) {
  const CsrGraph graph = community_graph();
  Rng split_rng(8);
  const auto split = sampling::split_edges(graph, sampling::SplitOptions{}, split_rng);

  WalkConfig walks;
  walks.walks_per_node = 6;
  walks.walk_length = 20;
  SkipGramConfig skipgram;
  skipgram.dim = 32;
  skipgram.epochs = 2;
  Rng rng(9);
  const NodeEmbedding embedding(split.train_graph, walks, skipgram, rng);

  std::vector<float> positive_scores;
  for (const auto& [u, v] : split.test_pos) {
    positive_scores.push_back(static_cast<float>(embedding.score(u, v)));
  }
  std::vector<float> negative_scores;
  for (const auto& [u, v] : split.test_neg) {
    negative_scores.push_back(static_cast<float>(embedding.score(u, v)));
  }
  EXPECT_GT(eval::auc(positive_scores, negative_scores), 0.75);
}

TEST(NodeEmbedding, DimensionsAndDeterminism) {
  const CsrGraph graph = community_graph();
  WalkConfig walks;
  walks.walks_per_node = 1;
  walks.walk_length = 10;
  SkipGramConfig skipgram;
  skipgram.dim = 16;
  skipgram.epochs = 1;
  Rng rng1(10);
  Rng rng2(10);
  const NodeEmbedding a(graph, walks, skipgram, rng1);
  const NodeEmbedding b(graph, walks, skipgram, rng2);
  EXPECT_EQ(a.dim(), 16U);
  EXPECT_EQ(a.matrix().rows(), graph.num_nodes());
  EXPECT_DOUBLE_EQ(a.score(0, 1), b.score(0, 1));
  EXPECT_DOUBLE_EQ(a.score(5, 9), b.score(5, 9));
}

TEST(NodeEmbedding, ScorePairsMatchesScore) {
  const CsrGraph graph = community_graph();
  WalkConfig walks;
  walks.walks_per_node = 1;
  SkipGramConfig skipgram;
  skipgram.dim = 8;
  skipgram.epochs = 1;
  Rng rng(11);
  const NodeEmbedding embedding(graph, walks, skipgram, rng);
  const std::vector<std::pair<NodeId, NodeId>> pairs{{0, 1}, {2, 3}};
  const auto scores = embedding.score_pairs(pairs);
  ASSERT_EQ(scores.size(), 2U);
  EXPECT_FLOAT_EQ(scores[0], static_cast<float>(embedding.score(0, 1)));
  EXPECT_FLOAT_EQ(scores[1], static_cast<float>(embedding.score(2, 3)));
}

}  // namespace
}  // namespace splpg::embedding
