// Tests for multi-head GAT/GATv2 attention and the slice_cols op.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/gnn_layers.hpp"
#include "nn/model.hpp"
#include "tensor/autograd.hpp"
#include "tensor/init.hpp"

namespace splpg::nn {
namespace {

using sampling::Block;
using tensor::Matrix;
using tensor::Tensor;
using util::Rng;

Block test_block() {
  Block block;
  block.src_nodes = {0, 1, 2, 3, 4};
  block.dst_count = 2;
  block.edge_src = {2, 3, 4, 3};
  block.edge_dst = {0, 0, 1, 1};
  block.edge_weight = {1, 1, 1, 1};
  return block;
}

TEST(SliceCols, ForwardAndGradient) {
  Rng rng(1);
  Tensor a = Tensor::parameter(tensor::gaussian(3, 6, 0.0, 1.0, rng));
  const Tensor sliced = slice_cols(a, 2, 3);
  EXPECT_EQ(sliced.rows(), 3U);
  EXPECT_EQ(sliced.cols(), 3U);
  EXPECT_FLOAT_EQ(sliced.value().at(1, 0), a.value().at(1, 2));

  mean_all(sliced).backward();
  // Gradient hits only columns [2, 5); each gets 1/9.
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_FLOAT_EQ(a.grad().at(r, 0), 0.0F);
    EXPECT_FLOAT_EQ(a.grad().at(r, 1), 0.0F);
    EXPECT_NEAR(a.grad().at(r, 3), 1.0F / 9.0F, 1e-6);
    EXPECT_FLOAT_EQ(a.grad().at(r, 5), 0.0F);
  }
}

class MultiHeadKind : public ::testing::TestWithParam<GnnKind> {};

TEST_P(MultiHeadKind, HeadsMustDivideOutDim) {
  Rng rng(2);
  EXPECT_THROW((void)make_gnn_layer(GetParam(), 4, 6, rng, 4), std::invalid_argument);
}

TEST_P(MultiHeadKind, OutputShapeIndependentOfHeads) {
  const Block block = test_block();
  Rng feats_rng(3);
  const Tensor x = Tensor::constant(tensor::gaussian(5, 3, 0.0, 1.0, feats_rng));
  for (const std::uint32_t heads : {1U, 2U, 4U}) {
    Rng rng(4);
    const auto layer = make_gnn_layer(GetParam(), 3, 8, rng, heads);
    const Tensor out = layer->forward(block, x);
    EXPECT_EQ(out.rows(), 2U);
    EXPECT_EQ(out.cols(), 8U);
  }
}

TEST_P(MultiHeadKind, GradientsReachEveryHeadParameter) {
  const Block block = test_block();
  Rng feats_rng(5);
  const Tensor x = Tensor::constant(tensor::gaussian(5, 3, 0.0, 1.0, feats_rng));
  Rng rng(6);
  const auto layer = make_gnn_layer(GetParam(), 3, 6, rng, 3);
  Tensor loss = mean_all(layer->forward(block, x));
  loss.backward();
  for (std::size_t i = 0; i < layer->parameters().size(); ++i) {
    EXPECT_FALSE(layer->parameters()[i].grad().empty()) << "parameter " << i;
  }
}

TEST_P(MultiHeadKind, PerHeadAttentionSumsToOne) {
  // Regardless of head count, each head's attention (including the implicit
  // self-edge) is a distribution per destination, so with W frozen to a
  // constant column the output stays within the inputs' convex hull.
  const Block block = test_block();
  Matrix ones(5, 2, 1.0F);
  for (std::size_t r = 0; r < 5; ++r) ones.at(r, 0) = static_cast<float>(r);
  const Tensor x = Tensor::constant(std::move(ones));
  Rng rng(7);
  const auto layer = make_gnn_layer(GetParam(), 2, 4, rng, 2);
  const Tensor out = layer->forward(block, x);
  for (const float v : out.value().data()) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(Kinds, MultiHeadKind,
                         ::testing::Values(GnnKind::kGat, GnnKind::kGatv2));

TEST(MultiHeadModel, TrainsEndToEnd) {
  ModelConfig config;
  config.gnn = GnnKind::kGat;
  config.num_heads = 2;
  config.in_dim = 4;
  config.hidden_dim = 8;
  config.num_layers = 2;
  const LinkPredictionModel model(config, 11);

  sampling::ComputationGraph cg;
  cg.blocks.push_back(test_block());
  Block top;
  top.src_nodes = {0, 1};
  top.dst_count = 2;
  top.edge_src = {1, 0};
  top.edge_dst = {0, 1};
  top.edge_weight = {1, 1};
  cg.blocks.push_back(top);

  Rng rng(12);
  const Tensor embeddings = model.encode(cg, tensor::gaussian(5, 4, 0.0, 1.0, rng));
  const std::vector<PairIndex> pairs{{0, 1}};
  Tensor loss = bce_with_logits(model.score(embeddings, pairs), std::vector<float>{1.0F});
  loss.backward();
  std::size_t with_grad = 0;
  for (const auto& p : model.parameters()) {
    if (!p.grad().empty()) ++with_grad;
  }
  EXPECT_EQ(with_grad, model.parameters().size());
}

TEST(MultiHeadModel, SingleHeadMatchesLegacyParameterCount) {
  // heads = 1 must reproduce the original parameterization exactly:
  // W + a_src + a_dst + bias per GAT layer.
  Rng rng(13);
  const auto layer = make_gnn_layer(GnnKind::kGat, 4, 8, rng, 1);
  EXPECT_EQ(layer->parameters().size(), 4U);
  EXPECT_EQ(layer->parameters()[1].value().rows(), 8U);  // a_src: out x 1
}

}  // namespace
}  // namespace splpg::nn
