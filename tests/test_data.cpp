// Tests for the synthetic dataset generators and the Table-I registry.
#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "graph/algorithms.hpp"

namespace splpg::data {
namespace {

using graph::CsrGraph;
using graph::NodeId;
using util::Rng;

TEST(Sbm, ProducesRequestedSize) {
  SbmParams params;
  params.num_nodes = 500;
  params.num_edges = 2500;
  params.num_communities = 10;
  Rng rng(1);
  const CsrGraph graph = generate_sbm(params, rng);
  EXPECT_EQ(graph.num_nodes(), 500U);
  // Edge target may fall slightly short on dense/small communities.
  EXPECT_GE(graph.num_edges(), 2400U);
  EXPECT_LE(graph.num_edges(), 2500U);
}

TEST(Sbm, CommunitiesAreBalancedAndCover) {
  SbmParams params;
  params.num_nodes = 300;
  params.num_edges = 1200;
  params.num_communities = 6;
  Rng rng(2);
  std::vector<std::uint32_t> communities;
  (void)generate_sbm(params, rng, &communities);
  ASSERT_EQ(communities.size(), 300U);
  std::vector<int> sizes(6, 0);
  for (const auto c : communities) {
    ASSERT_LT(c, 6U);
    ++sizes[c];
  }
  for (const int s : sizes) EXPECT_EQ(s, 50);
}

TEST(Sbm, IntraCommunityEdgesDominate) {
  SbmParams params;
  params.num_nodes = 400;
  params.num_edges = 2000;
  params.num_communities = 8;
  params.intra_prob = 0.9;
  Rng rng(3);
  std::vector<std::uint32_t> communities;
  const CsrGraph graph = generate_sbm(params, rng, &communities);
  std::size_t intra = 0;
  for (const auto& [u, v] : graph.edges()) {
    if (communities[u] == communities[v]) ++intra;
  }
  const double fraction = static_cast<double>(intra) / static_cast<double>(graph.num_edges());
  EXPECT_GT(fraction, 0.8);
}

TEST(Sbm, DeterministicGivenRngState) {
  SbmParams params;
  params.num_nodes = 200;
  params.num_edges = 800;
  Rng rng1(7);
  Rng rng2(7);
  const CsrGraph a = generate_sbm(params, rng1);
  const CsrGraph b = generate_sbm(params, rng2);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t e = 0; e < a.num_edges(); ++e) EXPECT_EQ(a.edges()[e], b.edges()[e]);
}

TEST(Sbm, HeavyTailedDegrees) {
  SbmParams params;
  params.num_nodes = 2000;
  params.num_edges = 10000;
  params.pareto_shape = 2.0;
  Rng rng(4);
  const CsrGraph graph = generate_sbm(params, rng);
  const auto stats = graph::degree_stats(graph);
  // Pareto weights should give substantially more inequality than uniform
  // endpoint selection would (ER Gini ~ 0.2 at this density).
  EXPECT_GT(stats.gini, 0.3);
  EXPECT_GT(stats.max, 4 * stats.mean);
}

TEST(BarabasiAlbert, SizeAndConnectivity) {
  Rng rng(5);
  const CsrGraph graph = generate_barabasi_albert(500, 3, rng);
  EXPECT_EQ(graph.num_nodes(), 500U);
  EXPECT_GT(graph.num_edges(), 1400U);  // ~ (n - m0) * m
  const auto components = graph::connected_components(graph);
  EXPECT_EQ(components.count, 1U);  // preferential attachment keeps it connected
}

TEST(BarabasiAlbert, HubsEmerge) {
  Rng rng(6);
  const CsrGraph graph = generate_barabasi_albert(2000, 2, rng);
  EXPECT_GT(graph.max_degree(), 20U);  // scale-free tail
}

TEST(ErdosRenyi, ExactEdgeCount) {
  Rng rng(7);
  const CsrGraph graph = generate_erdos_renyi(300, 1000, rng);
  EXPECT_EQ(graph.num_nodes(), 300U);
  EXPECT_EQ(graph.num_edges(), 1000U);
}

TEST(ErdosRenyi, TooManyEdgesThrows) {
  Rng rng(8);
  EXPECT_THROW(generate_erdos_renyi(4, 100, rng), std::invalid_argument);
}

TEST(WattsStrogatz, ZeroBetaIsRingLattice) {
  Rng rng(9);
  const CsrGraph graph = generate_watts_strogatz(50, 4, 0.0, rng);
  for (NodeId v = 0; v < 50; ++v) EXPECT_EQ(graph.degree(v), 4U);
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_TRUE(graph.has_edge(0, 2));
  EXPECT_FALSE(graph.has_edge(0, 3));
}

TEST(WattsStrogatz, RewiringReducesClustering) {
  Rng rng(10);
  const CsrGraph lattice = generate_watts_strogatz(400, 6, 0.0, rng);
  const CsrGraph rewired = generate_watts_strogatz(400, 6, 0.9, rng);
  EXPECT_GT(graph::global_clustering_coefficient(lattice),
            graph::global_clustering_coefficient(rewired) + 0.1);
}

TEST(Features, CommunityCorrelation) {
  // Nodes in the same community must be closer in feature space on average.
  Rng rng(11);
  std::vector<std::uint32_t> communities(200);
  for (std::size_t i = 0; i < communities.size(); ++i) communities[i] = i % 4;
  const auto features = generate_features(200, 32, communities, 1.0, 0.5, rng);

  auto distance = [&](NodeId a, NodeId b) {
    double sum = 0.0;
    const auto ra = features.row(a);
    const auto rb = features.row(b);
    for (std::size_t d = 0; d < ra.size(); ++d) {
      const double diff = ra[d] - rb[d];
      sum += diff * diff;
    }
    return std::sqrt(sum);
  };
  double same = 0.0;
  double cross = 0.0;
  int same_count = 0;
  int cross_count = 0;
  for (NodeId a = 0; a < 50; ++a) {
    for (NodeId b = a + 1; b < 50; ++b) {
      if (communities[a] == communities[b]) {
        same += distance(a, b);
        ++same_count;
      } else {
        cross += distance(a, b);
        ++cross_count;
      }
    }
  }
  EXPECT_LT(same / same_count, cross / cross_count);
}

TEST(Features, NoCommunitiesIsPureNoise) {
  Rng rng(12);
  const auto features = generate_features(100, 16, {}, 1.0, 1.0, rng);
  EXPECT_EQ(features.num_nodes(), 100U);
  EXPECT_EQ(features.dim(), 16U);
  double sum = 0.0;
  for (const float x : features.data()) sum += x;
  EXPECT_NEAR(sum / static_cast<double>(features.data().size()), 0.0, 0.1);
}

TEST(Registry, HasAllNineDatasets) {
  const auto& registry = dataset_registry();
  ASSERT_EQ(registry.size(), 9U);
  EXPECT_EQ(registry.front().name, "citeseer");
  EXPECT_EQ(registry.back().name, "ppa");
  EXPECT_EQ(registry.back().paper_edges, 30'326'273U);
}

TEST(Registry, LookupByNameAndUnknownThrows) {
  EXPECT_EQ(dataset_config("cora").paper_nodes, 2'708U);
  EXPECT_THROW(dataset_config("imagenet"), std::out_of_range);
}

TEST(MakeDataset, ScalesNodeAndEdgeCounts) {
  const Dataset full = make_dataset("citeseer", 1.0, 1);
  const Dataset small = make_dataset("citeseer", 0.25, 1);
  EXPECT_GT(full.graph.num_nodes(), 3000U);
  EXPECT_LT(small.graph.num_nodes(), 1000U);
  EXPECT_GT(small.graph.num_nodes(), 500U);
  EXPECT_EQ(small.features.num_nodes(), small.graph.num_nodes());
}

TEST(MakeDataset, DeterministicInSeed) {
  const Dataset a = make_dataset("cora", 0.2, 5);
  const Dataset b = make_dataset("cora", 0.2, 5);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.features.row(3)[0], b.features.row(3)[0]);
  const Dataset c = make_dataset("cora", 0.2, 6);
  EXPECT_NE(a.features.row(3)[0], c.features.row(3)[0]);
}

TEST(MakeDataset, BadScaleThrows) {
  EXPECT_THROW(make_dataset("cora", 0.0, 1), std::invalid_argument);
  EXPECT_THROW(make_dataset("cora", 1.5, 1), std::invalid_argument);
}

}  // namespace
}  // namespace splpg::data
