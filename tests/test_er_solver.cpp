// Tests for the sparse effective-resistance solver stack: CSR Laplacian
// construction (multigraph / self-loop / disconnected regressions), the
// deflated Jacobi-PCG solver, and the three ER routes (dense oracle, per-edge
// CG, Spielman–Srivastava JL sketch) — including the repo's
// bit-identical-across-thread-widths contract and a ≥100k-edge run the dense
// O(n^3) path could never attempt.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "data/generators.hpp"
#include "graph/algorithms.hpp"
#include "sparsify/effective_resistance.hpp"
#include "tensor/cg.hpp"
#include "tensor/sparse.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace splpg::sparsify {
namespace {

using graph::CsrGraph;
using graph::Edge;
using graph::EdgeId;
using graph::GraphBuilder;
using graph::NodeId;
using tensor::SparseMatrix;
using util::Rng;

CsrGraph path(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId v = 0; v + 1 < n; ++v) builder.add_edge(v, v + 1);
  return builder.build();
}

CsrGraph complete(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) builder.add_edge(u, v);
  }
  return builder.build();
}

/// Two disjoint triangles: {0,1,2} and {3,4,5}.
CsrGraph two_triangles() {
  GraphBuilder builder(6);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(0, 2);
  builder.add_edge(3, 4);
  builder.add_edge(4, 5);
  builder.add_edge(3, 5);
  return builder.build();
}

ErSolverOptions with_solver(ErSolver solver) {
  ErSolverOptions options;
  options.solver = solver;
  return options;
}

// ---- sparse Laplacian construction ----

TEST(SparseLaplacian, MatchesDenseOnSimpleGraph) {
  data::SbmParams params;
  params.num_nodes = 50;
  params.num_edges = 220;
  Rng rng(1);
  const CsrGraph graph = data::generate_sbm(params, rng);
  const auto dense = laplacian(graph);
  const auto sparse = sparse_laplacian(graph);
  ASSERT_EQ(sparse.rows(), graph.num_nodes());
  for (NodeId i = 0; i < graph.num_nodes(); ++i) {
    std::vector<double> dense_row(graph.num_nodes(), 0.0);
    for (NodeId j = 0; j < graph.num_nodes(); ++j) dense_row[j] = dense.at(i, j);
    std::vector<double> sparse_row(graph.num_nodes(), 0.0);
    const auto [cols, vals] = sparse.row(i);
    for (std::size_t k = 0; k < cols.size(); ++k) sparse_row[cols[k]] = vals[k];
    for (NodeId j = 0; j < graph.num_nodes(); ++j) {
      EXPECT_NEAR(dense_row[j], sparse_row[j], 1e-6) << "entry (" << i << ", " << j << ")";
    }
  }
}

TEST(SparseLaplacian, DuplicateEdgesAccumulate) {
  // Parallel edges are legal in directly constructed CsrGraphs (relaxed io
  // loads, sparsifier output before weight-summing). Regression: the dense
  // laplacian used to *assign* -w per adjacency entry, so the last copy won
  // while the degree summed all of them — rows stopped summing to zero.
  const CsrGraph graph(3, {{0, 1}, {0, 1}, {1, 2}}, {2.0F, 3.0F, 1.0F});
  const auto dense = laplacian(graph);
  EXPECT_FLOAT_EQ(dense.at(0, 1), -5.0F);  // 2 + 3 accumulated, not 3 overwritten
  EXPECT_FLOAT_EQ(dense.at(0, 0), 5.0F);
  EXPECT_FLOAT_EQ(dense.at(1, 1), 6.0F);
  for (NodeId i = 0; i < 3; ++i) {
    double row_sum = 0.0;
    for (NodeId j = 0; j < 3; ++j) row_sum += dense.at(i, j);
    EXPECT_NEAR(row_sum, 0.0, 1e-6) << "row " << i;
  }

  // The CSR Laplacian merges the duplicates into one entry with the same sum.
  const auto sparse = sparse_laplacian(graph);
  EXPECT_EQ(sparse.nnz(), 3U + 4U);  // 3 diagonals + {0-1, 1-0, 1-2, 2-1}
  for (NodeId i = 0; i < 3; ++i) {
    const auto [cols, vals] = sparse.row(i);
    double row_sum = 0.0;
    for (const double v : vals) row_sum += v;
    EXPECT_NEAR(row_sum, 0.0, 1e-12) << "row " << i;
    std::vector<double> expanded(3, 0.0);
    for (std::size_t k = 0; k < cols.size(); ++k) expanded[cols[k]] = vals[k];
    for (NodeId j = 0; j < 3; ++j) EXPECT_NEAR(expanded[j], dense.at(i, j), 1e-6);
  }
}

TEST(SparseLaplacian, UnweightedDuplicateEdgesCountMultiplicity) {
  const CsrGraph graph(3, {{0, 1}, {0, 1}, {1, 2}});
  const auto dense = laplacian(graph);
  EXPECT_FLOAT_EQ(dense.at(0, 1), -2.0F);
  EXPECT_FLOAT_EQ(dense.at(0, 0), 2.0F);
  const auto sparse = sparse_laplacian(graph);
  const auto [cols, vals] = sparse.row(0);
  ASSERT_EQ(cols.size(), 2U);  // diagonal + merged (0,1)
  EXPECT_EQ(cols[0], 0U);
  EXPECT_NEAR(vals[0], 2.0, 1e-12);
  EXPECT_EQ(cols[1], 1U);
  EXPECT_NEAR(vals[1], -2.0, 1e-12);
}

TEST(SparseLaplacian, SelfLoopsCancelOutOfLaplacian) {
  // GraphBuilder drops self-loops before the CsrGraph ever sees them; the
  // Laplacian of a graph built with loop requests equals the loop-free one
  // (a loop adds w to both A_uu and D_uu, cancelling out of L = D - A).
  GraphBuilder with_loops(3);
  with_loops.add_edge(0, 1);
  with_loops.add_edge(1, 1);  // dropped
  with_loops.add_edge(2, 2);  // dropped
  with_loops.add_edge(1, 2);
  GraphBuilder without(3);
  without.add_edge(0, 1);
  without.add_edge(1, 2);
  const auto lap_a = laplacian(with_loops.build());
  const auto lap_b = laplacian(without.build());
  for (NodeId i = 0; i < 3; ++i) {
    for (NodeId j = 0; j < 3; ++j) EXPECT_EQ(lap_a.at(i, j), lap_b.at(i, j));
  }
}

TEST(SparseLaplacian, DisconnectedRowSumsAreZero) {
  const CsrGraph graph = two_triangles();
  const auto dense = laplacian(graph);
  const auto sparse = sparse_laplacian(graph);
  for (NodeId i = 0; i < graph.num_nodes(); ++i) {
    double dense_sum = 0.0;
    for (NodeId j = 0; j < graph.num_nodes(); ++j) dense_sum += dense.at(i, j);
    EXPECT_NEAR(dense_sum, 0.0, 1e-6);
    const auto [cols, vals] = sparse.row(i);
    double sparse_sum = 0.0;
    for (const double v : vals) sparse_sum += v;
    EXPECT_NEAR(sparse_sum, 0.0, 1e-12);
  }
}

TEST(SparseLaplacian, IsolatedNodeRowIsSingleZeroDiagonal) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  const auto sparse = sparse_laplacian(builder.build());
  const auto [cols, vals] = sparse.row(3);
  ASSERT_EQ(cols.size(), 1U);
  EXPECT_EQ(cols[0], 3U);
  EXPECT_EQ(vals[0], 0.0);
  EXPECT_EQ(sparse.diagonal(3), 0.0);
}

// ---- SparseMatrix / PCG ----

TEST(SparseCg, SpmvPooledIsBitIdenticalToSerial) {
  data::SbmParams params;
  params.num_nodes = 400;
  params.num_edges = 3000;
  Rng rng(2);
  const CsrGraph graph = data::generate_sbm(params, rng);
  const auto lap = sparse_laplacian(graph);
  std::vector<double> x(lap.cols());
  Rng vec_rng(3);
  for (double& value : x) value = vec_rng.normal();
  std::vector<double> serial(lap.rows());
  std::vector<double> pooled(lap.rows());
  lap.spmv(x, serial);
  for (const std::size_t width : {2U, 4U, 7U}) {
    util::ThreadPool pool(width);
    lap.spmv(x, pooled, &pool);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i], pooled[i]) << "row " << i << " width " << width;
    }
  }
}

TEST(SparseCg, SolvesDiagonallyDominantSystem) {
  // 3x3 SPD system with known solution: A = tridiag(-1, 4, -1), b = A * [1,2,3].
  const SparseMatrix a(3, 3, {0, 2, 5, 7}, {0, 1, 0, 1, 2, 1, 2},
                       {4.0, -1.0, -1.0, 4.0, -1.0, -1.0, 4.0});
  const std::vector<double> b = {2.0, 4.0, 10.0};
  std::vector<double> x(3, 0.0);
  tensor::CgOptions options;
  options.deflate_ones = false;  // nonsingular system
  const auto result = tensor::pcg_solve(a, b, x, options);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
  EXPECT_NEAR(x[2], 3.0, 1e-9);
}

TEST(SparseCg, ZeroRhsConvergesImmediately) {
  const auto lap = sparse_laplacian(path(5));
  const std::vector<double> b(5, 0.0);
  std::vector<double> x(5, 0.0);
  const auto result = tensor::pcg_solve(lap, b, x);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0U);
  for (const double value : x) EXPECT_EQ(value, 0.0);
}

TEST(SparseCg, LaplacianSolveReportsConvergence) {
  const auto lap = sparse_laplacian(path(16));
  std::vector<double> b(16, 0.0);
  b[0] = 1.0;
  b[15] = -1.0;
  std::vector<double> x(16, 0.0);
  const auto result = tensor::pcg_solve(lap, b, x);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.relative_residual, 1e-10);
  // End-to-end resistance of a 15-edge unit path is 15 Ohm.
  EXPECT_NEAR(x[0] - x[15], 15.0, 1e-8);
}

TEST(SparseCg, IterationCapReportsNotConverged) {
  const auto lap = sparse_laplacian(path(64));
  std::vector<double> b(64, 0.0);
  b[0] = 1.0;
  b[63] = -1.0;
  std::vector<double> x(64, 0.0);
  tensor::CgOptions options;
  options.max_iterations = 2;  // a 63-edge path needs ~n iterations
  const auto result = tensor::pcg_solve(lap, b, x, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 2U);
  EXPECT_GT(result.relative_residual, 0.0);
}

// ---- exact effective resistance: CG vs analytic vs dense ----

TEST(ErSolver, CgMatchesAnalyticValues) {
  // Tree edges are bridges (r = 1); triangle = 2/3; 4-cycle = 3/4; K_n = 2/n.
  for (const double r : exact_effective_resistance(path(6), with_solver(ErSolver::kCg))) {
    EXPECT_NEAR(r, 1.0, 1e-8);
  }
  for (const double r : exact_effective_resistance(complete(3), with_solver(ErSolver::kCg))) {
    EXPECT_NEAR(r, 2.0 / 3.0, 1e-8);
  }
  GraphBuilder square(4);
  square.add_edge(0, 1);
  square.add_edge(1, 2);
  square.add_edge(2, 3);
  square.add_edge(0, 3);
  for (const double r :
       exact_effective_resistance(square.build(), with_solver(ErSolver::kCg))) {
    EXPECT_NEAR(r, 0.75, 1e-8);
  }
  for (const double r : exact_effective_resistance(complete(8), with_solver(ErSolver::kCg))) {
    EXPECT_NEAR(r, 0.25, 1e-8);
  }
}

TEST(ErSolver, CgHonorsEdgeWeights) {
  // Two parallel routes between 0 and 1: a direct 2-Ohm conductance edge
  // (weight 2 => resistance 1/2) in parallel with a unit edge through node 2
  // (resistance 2) -> 1 / (2 + 1/2) = 0.4.
  GraphBuilder builder(3, /*weighted=*/true);
  builder.add_edge(0, 1, 2.0F);
  builder.add_edge(0, 2, 1.0F);
  builder.add_edge(1, 2, 1.0F);
  const auto resistance =
      exact_effective_resistance(builder.build(), with_solver(ErSolver::kCg));
  // Canonical edge order: (0,1), (0,2), (1,2).
  EXPECT_NEAR(resistance[0], 0.4, 1e-8);
}

TEST(ErSolver, CgMatchesDensePseudoInverseOnSeededGraphs) {
  // Randomized property test: on seeded SBM graphs the CG route agrees with
  // the dense pseudo-inverse oracle to 1e-6 relative — which is the oracle's
  // own float-eigenvector noise floor; CG itself is validated to 1e-8
  // against analytic values above. Pooled runs at widths {2, 4, 7} must
  // reproduce the serial bytes exactly.
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL, 14ULL}) {
    data::SbmParams params;
    params.num_nodes = 70;
    params.num_edges = 280;
    params.num_communities = 4;
    Rng rng(seed);
    const CsrGraph graph = data::generate_sbm(params, rng);
    const auto dense = exact_effective_resistance(graph, with_solver(ErSolver::kDense));
    const auto cg = exact_effective_resistance(graph, with_solver(ErSolver::kCg));
    ASSERT_EQ(dense.size(), cg.size());
    for (std::size_t e = 0; e < dense.size(); ++e) {
      EXPECT_NEAR(cg[e] / dense[e], 1.0, 1e-6)
          << "seed " << seed << " edge " << e << " dense=" << dense[e] << " cg=" << cg[e];
    }
    for (const std::size_t width : {2U, 4U, 7U}) {
      util::ThreadPool pool(width);
      const auto pooled = exact_effective_resistance(graph, with_solver(ErSolver::kCg), &pool);
      for (std::size_t e = 0; e < cg.size(); ++e) {
        ASSERT_EQ(cg[e], pooled[e]) << "seed " << seed << " edge " << e << " width " << width;
      }
    }
  }
}

TEST(ErSolver, CgBitIdenticalAcrossThreadWidths) {
  // The repo-wide determinism contract: pooled solves are the same bytes as
  // serial at widths {1, 2, 4, 7}, for CG and JL alike.
  data::SbmParams params;
  params.num_nodes = 150;
  params.num_edges = 700;
  Rng rng(21);
  const CsrGraph graph = data::generate_sbm(params, rng);
  const auto cg_serial = exact_effective_resistance(graph, with_solver(ErSolver::kCg));
  const auto jl_serial = exact_effective_resistance(graph, with_solver(ErSolver::kJl));
  for (const std::size_t width : {2U, 4U, 7U}) {
    util::ThreadPool pool(width);
    const auto cg_pooled =
        exact_effective_resistance(graph, with_solver(ErSolver::kCg), &pool);
    const auto jl_pooled =
        exact_effective_resistance(graph, with_solver(ErSolver::kJl), &pool);
    ASSERT_EQ(cg_pooled.size(), cg_serial.size());
    ASSERT_EQ(jl_pooled.size(), jl_serial.size());
    for (std::size_t e = 0; e < cg_serial.size(); ++e) {
      ASSERT_EQ(cg_serial[e], cg_pooled[e]) << "cg edge " << e << " width " << width;
      ASSERT_EQ(jl_serial[e], jl_pooled[e]) << "jl edge " << e << " width " << width;
    }
  }
}

TEST(ErSolver, CgHandlesDisconnectedGraphs) {
  // Every edge's endpoints share a component, so each per-edge system is
  // consistent; both triangles read 2/3 like a lone triangle would.
  const auto resistance =
      exact_effective_resistance(two_triangles(), with_solver(ErSolver::kCg));
  ASSERT_EQ(resistance.size(), 6U);
  for (const double r : resistance) EXPECT_NEAR(r, 2.0 / 3.0, 1e-8);
}

TEST(ErSolver, CgHandlesMultigraphEdges) {
  // Two unit parallel edges between 0 and 1: conductances add, r = 1/2 for
  // both canonical copies. The pre-fix Laplacian (assignment instead of
  // accumulation) made this graph's rows non-singular-consistent.
  const CsrGraph graph(2, {{0, 1}, {0, 1}});
  const auto resistance = exact_effective_resistance(graph, with_solver(ErSolver::kCg));
  ASSERT_EQ(resistance.size(), 2U);
  EXPECT_NEAR(resistance[0], 0.5, 1e-8);
  EXPECT_NEAR(resistance[1], 0.5, 1e-8);
}

TEST(ErSolver, FosterSumMatchesNodesMinusComponents) {
  // Foster's theorem: sum of edge effective resistances = n - #components.
  data::SbmParams params;
  params.num_nodes = 120;
  params.num_edges = 520;
  params.num_communities = 3;
  Rng rng(31);
  const CsrGraph graph = data::generate_sbm(params, rng);
  const auto components = graph::connected_components(graph);
  const auto resistance = exact_effective_resistance(graph, with_solver(ErSolver::kCg));
  const double total = std::accumulate(resistance.begin(), resistance.end(), 0.0);
  EXPECT_NEAR(total, static_cast<double>(graph.num_nodes()) - components.count, 1e-5);
}

TEST(ErSolver, SubsetQueriesMatchFullSolve) {
  data::SbmParams params;
  params.num_nodes = 90;
  params.num_edges = 400;
  Rng rng(41);
  const CsrGraph graph = data::generate_sbm(params, rng);
  const auto full = exact_effective_resistance(graph, with_solver(ErSolver::kCg));
  const std::vector<EdgeId> ids = {0, 5, 17, graph.num_edges() - 1};
  const auto subset = effective_resistance_for_edges(graph, ids, with_solver(ErSolver::kCg));
  ASSERT_EQ(subset.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(subset[i], full[ids[i]]) << "edge id " << ids[i];
  }
  // JL subset queries route to CG (the sketch prices all edges at once).
  const auto via_jl = effective_resistance_for_edges(graph, ids, with_solver(ErSolver::kJl));
  for (std::size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(via_jl[i], subset[i]);
  EXPECT_THROW((void)effective_resistance_for_edges(graph, {{graph.num_edges()}},
                                                    with_solver(ErSolver::kCg)),
               std::out_of_range);
}

// ---- JL sketch ----

TEST(ErSolver, JlSketchTracksCgWithinEpsilon) {
  data::SbmParams params;
  params.num_nodes = 250;
  params.num_edges = 1800;
  params.num_communities = 4;
  Rng rng(51);
  const CsrGraph graph = data::generate_sbm(params, rng);
  const auto cg = exact_effective_resistance(graph, with_solver(ErSolver::kCg));
  ErSolverOptions jl = with_solver(ErSolver::kJl);
  jl.jl_epsilon = 0.25;  // auto k = ceil(4 ln n / eps^2)
  const auto sketch = exact_effective_resistance(graph, jl);
  ASSERT_EQ(sketch.size(), cg.size());
  double max_rel = 0.0;
  for (std::size_t e = 0; e < cg.size(); ++e) {
    max_rel = std::max(max_rel, std::abs(sketch[e] / cg[e] - 1.0));
  }
  // Per-edge sketch error is ~sqrt(2/k) ≈ 7% std; the max over ~1.8k edges
  // stays well inside 2*epsilon for this seed (and the bound's intent).
  EXPECT_LT(max_rel, 2.0 * jl.jl_epsilon);
}

TEST(ErSolver, JlSketchIsDeterministicInSeed) {
  data::SbmParams params;
  params.num_nodes = 80;
  params.num_edges = 300;
  Rng rng(61);
  const CsrGraph graph = data::generate_sbm(params, rng);
  ErSolverOptions jl = with_solver(ErSolver::kJl);
  jl.jl_projections = 32;
  const auto a = exact_effective_resistance(graph, jl);
  const auto b = exact_effective_resistance(graph, jl);
  for (std::size_t e = 0; e < a.size(); ++e) ASSERT_EQ(a[e], b[e]);
  jl.jl_seed = 123;
  const auto c = exact_effective_resistance(graph, jl);
  EXPECT_FALSE(std::equal(a.begin(), a.end(), c.begin()));
}

TEST(ErSolver, JlFosterSumOnHundredThousandEdgeGraph) {
  // The point of the sparse route: a 100k-edge graph whose dense Laplacian
  // would hold 12.5k x 12.5k floats and whose Jacobi eigendecomposition
  // (O(n^3)) is infeasible, solved end to end by the JL sketch. The sum of
  // all edge resistances concentrates around n - #components with relative
  // std ~sqrt(2 / (k * n)) — far tighter than per-edge error — so Foster's
  // theorem makes a sharp whole-graph correctness check. A CG spot-check
  // pins individual edges.
  data::SbmParams params;
  params.num_nodes = 12'500;
  params.num_edges = 100'000;
  params.num_communities = 25;
  Rng rng(71);
  const CsrGraph graph = data::generate_sbm(params, rng);
  ASSERT_GE(graph.num_edges(), 100'000U);

  ErSolverOptions jl = with_solver(ErSolver::kJl);
  jl.jl_projections = 96;
  jl.tolerance = 1e-8;
  util::ThreadPool pool(4);
  const auto sketch = exact_effective_resistance(graph, jl, &pool);
  ASSERT_EQ(sketch.size(), graph.num_edges());
  for (const double r : sketch) {
    ASSERT_TRUE(std::isfinite(r));
    ASSERT_GT(r, 0.0);
  }

  const auto components = graph::connected_components(graph);
  const double expected = static_cast<double>(graph.num_nodes()) - components.count;
  const double total = std::accumulate(sketch.begin(), sketch.end(), 0.0);
  EXPECT_NEAR(total / expected, 1.0, 0.02);

  // Spot-check a spread of edges against exact CG solves: per-edge sketch
  // error at k = 96 is ~14% std, so 50% relative slack is ~3.5 sigma.
  ErSolverOptions cg = with_solver(ErSolver::kCg);
  cg.tolerance = 1e-8;
  std::vector<EdgeId> ids;
  for (EdgeId e = 0; e < graph.num_edges(); e += graph.num_edges() / 12) ids.push_back(e);
  const auto exact = effective_resistance_for_edges(graph, ids, cg, &pool);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_NEAR(sketch[ids[i]] / exact[i], 1.0, 0.5) << "edge id " << ids[i];
  }
}

// ---- gamma regressions ----

TEST(ErSolver, GammaClampsToSmallestPositiveEigenvalueWhenDisconnected) {
  // Two triangles: normalized-Laplacian spectrum {0, 0, 1.5, 1.5, 1.5, 1.5}.
  // The raw second-smallest eigenvalue is 0 (pre-fix return value, which
  // poisoned the 1/gamma proxy); the clamped gamma is the in-component gap.
  EXPECT_NEAR(normalized_laplacian_gamma(two_triangles()), 1.5, 1e-4);
}

TEST(ErSolver, GammaReturnsSentinelWithoutSpectralGap) {
  // Edgeless graph: every eigenvalue is 0 -> documented 0.0 sentinel.
  EXPECT_EQ(normalized_laplacian_gamma(CsrGraph(5, {})), 0.0);
}

TEST(ErSolver, GammaBoundsHoldOnDisconnectedGraph) {
  // With the clamped gamma, Theorem 2's upper bound holds per component on a
  // disconnected graph (pre-fix it was a division by ~0).
  const CsrGraph graph = two_triangles();
  const double gamma = normalized_laplacian_gamma(graph);
  ASSERT_GT(gamma, 0.0);
  const auto exact = exact_effective_resistance(graph, with_solver(ErSolver::kCg));
  const auto proxy = approx_effective_resistance(graph);
  for (std::size_t e = 0; e < exact.size(); ++e) {
    EXPECT_GE(exact[e] + 1e-9, 0.5 * proxy[e]);
    EXPECT_LE(exact[e] - 1e-9, proxy[e] / gamma);
  }
}

TEST(ErSolver, SolverNamesRoundTrip) {
  for (const ErSolver solver : {ErSolver::kDense, ErSolver::kCg, ErSolver::kJl}) {
    EXPECT_EQ(er_solver_from_string(er_solver_name(solver)), solver);
  }
  EXPECT_THROW((void)er_solver_from_string("qr"), std::invalid_argument);
}

}  // namespace
}  // namespace splpg::sparsify
