// Tests for the partition module: METIS-like multilevel partitioning,
// RandomTMA, SuperTMA, and the quality metrics the paper's analysis rests on.
#include <gtest/gtest.h>

#include "data/generators.hpp"
#include "partition/partitioner.hpp"

namespace splpg::partition {
namespace {

using graph::CsrGraph;
using graph::GraphBuilder;
using graph::NodeId;
using util::Rng;

CsrGraph community_graph(NodeId nodes = 600, graph::EdgeId edges = 3600,
                         std::uint32_t communities = 6, std::uint64_t seed = 1) {
  data::SbmParams params;
  params.num_nodes = nodes;
  params.num_edges = edges;
  params.num_communities = communities;
  params.intra_prob = 0.9;
  Rng rng(seed);
  return data::generate_sbm(params, rng);
}

void expect_valid_assignment(const PartitionResult& parts, NodeId nodes,
                             std::uint32_t num_parts) {
  ASSERT_EQ(parts.num_parts, num_parts);
  ASSERT_EQ(parts.assignment.size(), nodes);
  for (const auto part : parts.assignment) EXPECT_LT(part, num_parts);
}

class PartitionerContract
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint32_t>> {};

TEST_P(PartitionerContract, AssignsEveryNodeToAValidPart) {
  const auto& [name, p] = GetParam();
  const CsrGraph graph = community_graph();
  Rng rng(3);
  const auto partitioner = make_partitioner(name);
  const PartitionResult parts = partitioner->partition(graph, p, rng);
  expect_valid_assignment(parts, graph.num_nodes(), p);
}

TEST_P(PartitionerContract, DeterministicGivenRngState) {
  const auto& [name, p] = GetParam();
  const CsrGraph graph = community_graph();
  const auto partitioner = make_partitioner(name);
  Rng rng1(9);
  Rng rng2(9);
  const auto a = partitioner->partition(graph, p, rng1);
  const auto b = partitioner->partition(graph, p, rng2);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST_P(PartitionerContract, ReasonablyBalanced) {
  const auto& [name, p] = GetParam();
  const CsrGraph graph = community_graph();
  Rng rng(5);
  const auto parts = make_partitioner(name)->partition(graph, p, rng);
  // Even the random partitioner should stay within 40% of ideal at n=600.
  EXPECT_LT(balance(graph, parts), 1.4);
}

INSTANTIATE_TEST_SUITE_P(
    AllPartitioners, PartitionerContract,
    ::testing::Combine(::testing::Values("metis_like", "random_tma", "super_tma"),
                       ::testing::Values(2U, 4U, 8U)));

TEST(MetisLike, CutsFarFewerEdgesThanRandom) {
  const CsrGraph graph = community_graph();
  Rng rng(7);
  const auto metis = MetisLikePartitioner().partition(graph, 4, rng);
  const auto random = RandomPartitioner().partition(graph, 4, rng);
  // Random cuts ~75% of edges on a 4-way split; METIS-like should exploit
  // the community structure and do far better.
  EXPECT_LT(edge_cut(graph, metis), edge_cut(graph, random) / 2);
}

TEST(MetisLike, SinglePartIsTrivial) {
  const CsrGraph graph = community_graph(100, 400, 4);
  Rng rng(8);
  const auto parts = MetisLikePartitioner().partition(graph, 1, rng);
  expect_valid_assignment(parts, 100, 1);
  EXPECT_EQ(edge_cut(graph, parts), 0U);
}

TEST(MetisLike, ZeroPartsThrows) {
  const CsrGraph graph = community_graph(100, 400, 4);
  Rng rng(8);
  EXPECT_THROW(MetisLikePartitioner().partition(graph, 0, rng), std::invalid_argument);
}

TEST(MetisLike, HandlesDisconnectedGraph) {
  GraphBuilder builder(20);
  for (NodeId v = 0; v + 1 < 10; ++v) builder.add_edge(v, v + 1);
  for (NodeId v = 10; v + 1 < 20; ++v) builder.add_edge(v, v + 1);
  const CsrGraph graph = builder.build();
  Rng rng(9);
  const auto parts = MetisLikePartitioner().partition(graph, 2, rng);
  expect_valid_assignment(parts, 20, 2);
  EXPECT_LT(balance(graph, parts), 1.3);
}

TEST(MetisLike, HandlesTinyGraph) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  const CsrGraph graph = builder.build();
  Rng rng(10);
  const auto parts = MetisLikePartitioner().partition(graph, 2, rng);
  expect_valid_assignment(parts, 3, 2);
}

TEST(RandomTma, EliminatesDegreeDiscrepancy) {
  const CsrGraph graph = community_graph(1200, 7200, 8);
  Rng rng(11);
  const auto metis = MetisLikePartitioner().partition(graph, 4, rng);
  const auto random = RandomPartitioner().partition(graph, 4, rng);
  // The effect [26] relies on: random partitioning gives every part the
  // same *local* degree distribution (relative to the global mean each part
  // keeps ~1/p of each node's neighbors, uniformly), whereas METIS-like
  // parts retain most of their internal edges.
  // Discrepancy here measures deviation of per-part mean intra-degree from
  // the global mean: METIS parts stay near the global mean, random parts
  // lose (p-1)/p of their edges.
  EXPECT_GT(degree_discrepancy(graph, random), degree_discrepancy(graph, metis));
}

TEST(SuperTma, GroupsMiniClustersNotNodes) {
  const CsrGraph graph = community_graph();
  Rng rng(12);
  const auto super = SuperPartitioner(8).partition(graph, 4, rng);
  const auto random = RandomPartitioner().partition(graph, 4, rng);
  expect_valid_assignment(super, graph.num_nodes(), 4);
  // Mini-cluster grouping preserves more locality than per-node random
  // assignment: fewer cut edges.
  EXPECT_LT(edge_cut(graph, super), edge_cut(graph, random));
}

TEST(SuperTma, MoreClustersApproachRandom) {
  const CsrGraph graph = community_graph();
  Rng rng(13);
  const auto coarse = SuperPartitioner(2).partition(graph, 4, rng);
  const auto fine = SuperPartitioner(32).partition(graph, 4, rng);
  EXPECT_LE(edge_cut(graph, coarse), edge_cut(graph, fine));
}

TEST(Metrics, EdgeCutHandComputed) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(2, 3);
  builder.add_edge(1, 2);
  const CsrGraph graph = builder.build();
  PartitionResult parts;
  parts.num_parts = 2;
  parts.assignment = {0, 0, 1, 1};
  EXPECT_EQ(edge_cut(graph, parts), 1U);
  EXPECT_DOUBLE_EQ(balance(graph, parts), 1.0);
}

TEST(Metrics, PartNodesRoundTrip) {
  PartitionResult parts;
  parts.num_parts = 3;
  parts.assignment = {0, 1, 2, 0, 1, 0};
  const auto nodes = parts.part_nodes();
  EXPECT_EQ(nodes[0], (std::vector<NodeId>{0, 3, 5}));
  EXPECT_EQ(nodes[1], (std::vector<NodeId>{1, 4}));
  EXPECT_EQ(nodes[2], (std::vector<NodeId>{2}));
  EXPECT_EQ(parts.part_sizes(), (std::vector<NodeId>{3, 2, 1}));
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(make_partitioner("karger"), std::invalid_argument);
}

}  // namespace
}  // namespace splpg::partition
