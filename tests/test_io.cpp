// Dataset I/O: edge-list parsers (text + binary), feature/label files, the
// mmap-backed zero-copy feature store, dataset-directory round-trips, the
// save->load->train differential harness, and a randomized round-trip
// property test. Every malformed-input path must raise io::FormatError with
// a descriptive message — never an assert or a garbage read.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "io/dataset_io.hpp"
#include "io/edge_list.hpp"
#include "io/feature_file.hpp"
#include "io/mmap_file.hpp"
#include "sampling/edge_split.hpp"
#include "util/serialize.hpp"

namespace splpg {
namespace {

namespace fs = std::filesystem;

void expect_graphs_identical(const graph::CsrGraph& a, const graph::CsrGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.is_weighted(), b.is_weighted());
  for (graph::EdgeId e = 0; e < a.num_edges(); ++e) {
    ASSERT_EQ(a.edges()[e], b.edges()[e]) << "edge " << e;
    ASSERT_EQ(a.edge_weight(e), b.edge_weight(e)) << "edge weight " << e;
  }
}

void expect_features_identical(const graph::FeatureStore& a, const graph::FeatureStore& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.dim(), b.dim());
  const auto lhs = a.data();
  const auto rhs = b.data();
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    ASSERT_EQ(lhs[i], rhs[i]) << "feature element " << i;
  }
}

void expect_splits_identical(const sampling::LinkSplit& a, const sampling::LinkSplit& b) {
  expect_graphs_identical(a.train_graph, b.train_graph);
  ASSERT_EQ(a.train_pos, b.train_pos);
  ASSERT_EQ(a.val_pos, b.val_pos);
  ASSERT_EQ(a.test_pos, b.test_pos);
  ASSERT_EQ(a.val_neg, b.val_neg);
  ASSERT_EQ(a.test_neg, b.test_neg);
}

/// EXPECT_THROW + assert the message mentions `fragment` (descriptive errors
/// are part of the contract, not just the throw).
template <typename Callable>
void expect_format_error(Callable&& callable, const std::string& fragment) {
  try {
    (void)callable();
    FAIL() << "expected io::FormatError mentioning '" << fragment << "'";
  } catch (const io::FormatError& error) {
    EXPECT_NE(std::string(error.what()).find(fragment), std::string::npos)
        << "message was: " << error.what();
  }
}

class TempDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("splpg_io_" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

// ---- text edge lists ----

TEST(IoEdgeListText, RoundTripsUnweightedGraph) {
  util::Rng rng(7);
  const auto graph = data::generate_erdos_renyi(50, 120, rng);
  std::stringstream stream;
  io::write_edge_list_text(stream, graph);
  const auto loaded = io::read_edge_list_text(stream, {.expected_nodes = 50});
  expect_graphs_identical(graph, loaded);
}

TEST(IoEdgeListText, RoundTripsWeightedGraphExactly) {
  graph::GraphBuilder builder(6, /*weighted=*/true);
  builder.add_edge(0, 1, 0.123456789F);
  builder.add_edge(1, 2, 3.0e-7F);
  builder.add_edge(2, 5, 1.0F / 3.0F);
  const auto graph = builder.build();
  std::stringstream stream;
  io::write_edge_list_text(stream, graph);
  const auto loaded = io::read_edge_list_text(stream, {.expected_nodes = 6});
  expect_graphs_identical(graph, loaded);  // %.9g round-trips floats bit-exactly
}

TEST(IoEdgeListText, SkipsCommentsAndBlankLines) {
  std::istringstream in("# a comment\n\n0 1\n  \t\n# another\n1 2\n");
  const auto graph = io::read_edge_list_text(in);
  EXPECT_EQ(graph.num_nodes(), 3U);
  EXPECT_EQ(graph.num_edges(), 2U);
}

TEST(IoEdgeListText, RenumbersSparseIdsDensely) {
  std::istringstream in("1000 2000\n2000 3000\n");
  const auto graph = io::read_edge_list_text(in, {.renumber = true});
  EXPECT_EQ(graph.num_nodes(), 3U);
  EXPECT_EQ(graph.num_edges(), 2U);
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_TRUE(graph.has_edge(1, 2));
}

TEST(IoEdgeListText, NonNumericTokenIsDescriptiveError) {
  std::istringstream in("0 1\nfoo 2\n");
  expect_format_error([&] { return io::read_edge_list_text(in); }, "line 2");
}

TEST(IoEdgeListText, MissingTargetIsDescriptiveError) {
  std::istringstream in("0 1\n2\n");
  expect_format_error([&] { return io::read_edge_list_text(in); }, "missing target id");
}

TEST(IoEdgeListText, TrailingTokensAreAnError) {
  std::istringstream in("0 1 2.5 surprise\n");
  expect_format_error([&] { return io::read_edge_list_text(in); }, "trailing tokens");
}

TEST(IoEdgeListText, OutOfRangeNodeIdIsDescriptiveError) {
  std::istringstream in("0 1\n1 9\n");
  expect_format_error([&] { return io::read_edge_list_text(in, {.expected_nodes = 5}); },
                      "out of range");
}

TEST(IoEdgeListText, SelfLoopRejectedInStrictMode) {
  std::istringstream in("0 1\n3 3\n");
  expect_format_error([&] { return io::read_edge_list_text(in); }, "self-loop");
}

TEST(IoEdgeListText, DuplicateEdgeRejectedInStrictMode) {
  std::istringstream in("0 1\n1 2\n1 0\n");  // (1,0) duplicates (0,1)
  expect_format_error([&] { return io::read_edge_list_text(in); }, "duplicate edge");
}

TEST(IoEdgeListText, RelaxedModeMergesDuplicatesAndDropsSelfLoops) {
  std::istringstream in("0 1\n1 0\n2 2\n1 2\n");
  const auto graph = io::read_edge_list_text(in, {.strict = false});
  EXPECT_EQ(graph.num_edges(), 2U);  // (0,1) deduped, (2,2) dropped
}

TEST(IoEdgeListText, MissingFileIsDescriptiveError) {
  expect_format_error([] { return io::read_edge_list_text_file("/nonexistent/edges.txt"); },
                      "cannot open");
}

// ---- binary edge lists ----

TEST(IoEdgeListBinary, RoundTripsGraph) {
  util::Rng rng(11);
  const auto graph = data::generate_barabasi_albert(80, 3, rng);
  std::stringstream stream;
  io::write_edge_list_binary(stream, graph);
  const auto loaded = io::read_edge_list_binary(stream);
  expect_graphs_identical(graph, loaded);
}

TEST(IoEdgeListBinary, RoundTripsWeightedGraph) {
  graph::GraphBuilder builder(4, /*weighted=*/true);
  builder.add_edge(0, 1, 2.25F);
  builder.add_edge(1, 3, 0.5F);
  const auto graph = builder.build();
  std::stringstream stream;
  io::write_edge_list_binary(stream, graph);
  expect_graphs_identical(graph, io::read_edge_list_binary(stream));
}

TEST(IoEdgeListBinary, BadMagicIsDescriptiveError) {
  std::istringstream in("this is definitely not an SPGE file");
  expect_format_error([&] { return io::read_edge_list_binary(in); }, "bad magic");
}

TEST(IoEdgeListBinary, UnsupportedVersionIsDescriptiveError) {
  util::Rng rng(1);
  const auto graph = data::generate_erdos_renyi(10, 12, rng);
  std::stringstream stream;
  io::write_edge_list_binary(stream, graph);
  std::string bytes = stream.str();
  bytes[4] = 99;  // version field follows the 4-byte magic
  std::istringstream in(bytes);
  expect_format_error([&] { return io::read_edge_list_binary(in); }, "unsupported version");
}

TEST(IoEdgeListBinary, TruncatedHeaderIsDescriptiveError) {
  util::Rng rng(1);
  const auto graph = data::generate_erdos_renyi(10, 12, rng);
  std::stringstream stream;
  io::write_edge_list_binary(stream, graph);
  std::istringstream in(stream.str().substr(0, 10));
  expect_format_error([&] { return io::read_edge_list_binary(in); }, "truncated header");
}

TEST(IoEdgeListBinary, TruncatedPayloadIsDescriptiveError) {
  util::Rng rng(1);
  const auto graph = data::generate_erdos_renyi(40, 60, rng);
  std::stringstream stream;
  io::write_edge_list_binary(stream, graph);
  const std::string full = stream.str();
  std::istringstream in(full.substr(0, full.size() - 8));
  expect_format_error([&] { return io::read_edge_list_binary(in); }, "truncated");
}

TEST(IoEdgeListBinary, OutOfRangeNodeIdIsDescriptiveError) {
  std::stringstream stream;
  util::write_pod<std::uint32_t>(stream, 0x53504745);  // magic
  util::write_pod<std::uint32_t>(stream, 1);           // version
  util::write_pod<std::uint32_t>(stream, 0);           // flags
  util::write_pod<std::uint32_t>(stream, 4);           // num_nodes
  util::write_pod<std::uint64_t>(stream, 1);           // num_edges
  util::write_pod<std::uint32_t>(stream, 2);           // u
  util::write_pod<std::uint32_t>(stream, 9);           // v >= num_nodes
  expect_format_error([&] { return io::read_edge_list_binary(stream); }, "out of range");
}

TEST(IoEdgeListBinary, SelfLoopAndDuplicateRejectedInStrictMode) {
  auto craft = [](std::uint32_t u1, std::uint32_t v1, std::uint32_t u2, std::uint32_t v2) {
    auto stream = std::make_unique<std::stringstream>();
    util::write_pod<std::uint32_t>(*stream, 0x53504745);
    util::write_pod<std::uint32_t>(*stream, 1);
    util::write_pod<std::uint32_t>(*stream, 0);
    util::write_pod<std::uint32_t>(*stream, 8);
    util::write_pod<std::uint64_t>(*stream, 2);
    for (const std::uint32_t id : {u1, v1, u2, v2}) util::write_pod(*stream, id);
    return stream;
  };
  auto self_loop = craft(3, 3, 0, 1);
  expect_format_error([&] { return io::read_edge_list_binary(*self_loop); }, "self-loop");
  auto duplicate = craft(0, 1, 1, 0);
  expect_format_error([&] { return io::read_edge_list_binary(*duplicate); }, "duplicate edge");
}

TEST(IoEdgeListBinary, HeaderNodeCountMismatchIsDescriptiveError) {
  util::Rng rng(1);
  const auto graph = data::generate_erdos_renyi(10, 12, rng);
  std::stringstream stream;
  io::write_edge_list_binary(stream, graph);
  expect_format_error(
      [&] { return io::read_edge_list_binary(stream, {.expected_nodes = 99}); },
      "expected 99");
}

// ---- feature + label files ----

class IoFeatureFile : public TempDirTest {};

TEST_F(IoFeatureFile, BufferedRoundTripIsBitExact) {
  util::Rng rng(5);
  std::vector<std::uint32_t> communities(30, 0);
  const auto features = data::generate_features(30, 12, communities, 1.0, 0.7, rng);
  io::write_features_file(path("features.bin"), features);
  const auto loaded = io::read_features_file(path("features.bin"), io::FeatureBackend::kBuffered);
  EXPECT_FALSE(loaded.is_view());
  expect_features_identical(features, loaded);
}

TEST_F(IoFeatureFile, MmapBackendServesIdenticalRowsZeroCopy) {
  util::Rng rng(5);
  std::vector<std::uint32_t> communities(30, 0);
  const auto features = data::generate_features(30, 12, communities, 1.0, 0.7, rng);
  io::write_features_file(path("features.bin"), features);
  const auto mapped = io::read_features_file(path("features.bin"), io::FeatureBackend::kMmap);
  expect_features_identical(features, mapped);
  if (io::MappedFile::supported()) {
    EXPECT_TRUE(mapped.is_view());
    // A view store refuses mutation but gathers into an owned store.
    auto mutable_copy = mapped;
    EXPECT_THROW((void)mutable_copy.row(0), std::logic_error);
    const std::vector<graph::NodeId> nodes = {3, 1, 7};
    const auto gathered = mapped.gather(nodes);
    EXPECT_FALSE(gathered.is_view());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto want = features.row(nodes[i]);
      const auto got = gathered.row(static_cast<graph::NodeId>(i));
      for (std::uint32_t d = 0; d < features.dim(); ++d) ASSERT_EQ(want[d], got[d]);
    }
  }
}

TEST_F(IoFeatureFile, MmapViewOutlivesOriginalStoreCopy) {
  util::Rng rng(5);
  std::vector<std::uint32_t> communities(10, 0);
  const auto features = data::generate_features(10, 4, communities, 1.0, 0.5, rng);
  io::write_features_file(path("features.bin"), features);
  graph::FeatureStore copy;
  {
    const auto mapped = io::read_features_file(path("features.bin"), io::FeatureBackend::kMmap);
    copy = mapped;  // shares the keepalive; mapping must survive `mapped`
  }
  expect_features_identical(features, copy);
}

TEST_F(IoFeatureFile, TruncatedFeatureFileIsDescriptiveError) {
  util::Rng rng(5);
  std::vector<std::uint32_t> communities(30, 0);
  const auto features = data::generate_features(30, 12, communities, 1.0, 0.7, rng);
  io::write_features_file(path("features.bin"), features);
  fs::resize_file(path("features.bin"), fs::file_size(path("features.bin")) / 2);
  for (const auto backend : {io::FeatureBackend::kBuffered, io::FeatureBackend::kMmap}) {
    expect_format_error([&] { return io::read_features_file(path("features.bin"), backend); },
                        "truncated");
  }
}

TEST_F(IoFeatureFile, BadMagicIsDescriptiveError) {
  std::ofstream(path("features.bin")) << "totally not a feature file, sorry";
  expect_format_error(
      [&] { return io::read_features_file(path("features.bin"), io::FeatureBackend::kBuffered); },
      "bad magic");
}

TEST_F(IoFeatureFile, LabelRoundTripAndErrors) {
  const std::vector<std::uint32_t> labels = {4, 1, 2, 2, 0};
  io::write_labels_file(path("labels.bin"), labels);
  EXPECT_EQ(io::read_labels_file(path("labels.bin")), labels);
  std::ofstream(path("bad.bin")) << "nope";
  expect_format_error([&] { return io::read_labels_file(path("bad.bin")); }, "label file");
  fs::resize_file(path("labels.bin"), 10);
  expect_format_error([&] { return io::read_labels_file(path("labels.bin")); }, "truncated");
}

// ---- dataset directories ----

class IoDataset : public TempDirTest {};

TEST_F(IoDataset, BinaryDirectoryRoundTripIsExact) {
  const auto dataset = data::make_dataset("citeseer", 0.06, 17);
  io::save_dataset(dir_.string(), dataset, io::EdgeFormat::kBinary);
  const auto loaded = io::load_dataset(dir_.string());
  EXPECT_EQ(loaded.name, dataset.name);
  EXPECT_EQ(loaded.batch_size, dataset.batch_size);
  expect_graphs_identical(dataset.graph, loaded.graph);
  expect_features_identical(dataset.features, loaded.features);
  EXPECT_EQ(loaded.communities, dataset.communities);
}

TEST_F(IoDataset, TextDirectoryRoundTripIsExact) {
  const auto dataset = data::make_dataset("citeseer", 0.06, 17);
  io::save_dataset(dir_.string(), dataset, io::EdgeFormat::kText);
  const auto loaded = io::load_dataset(dir_.string());
  expect_graphs_identical(dataset.graph, loaded.graph);
  expect_features_identical(dataset.features, loaded.features);
  EXPECT_EQ(loaded.communities, dataset.communities);
}

TEST_F(IoDataset, MissingManifestKeyIsDescriptiveError) {
  const auto dataset = data::make_dataset("citeseer", 0.06, 17);
  io::save_dataset(dir_.string(), dataset);
  std::ofstream(path("meta.txt")) << "name=broken\n";  // everything else missing
  expect_format_error([&] { return io::load_dataset(dir_.string()); }, "missing key");
}

TEST_F(IoDataset, NonNumericManifestValueIsDescriptiveError) {
  const auto dataset = data::make_dataset("citeseer", 0.06, 17);
  io::save_dataset(dir_.string(), dataset);
  std::ofstream(path("meta.txt"))
      << "name=broken\nbatch_size=many\nnum_nodes=1\nnum_edges=1\nfeature_dim=1\n"
         "edge_format=binary\nhas_labels=0\n";
  expect_format_error([&] { return io::load_dataset(dir_.string()); }, "not a number");
}

TEST_F(IoDataset, EdgeCountMismatchIsDescriptiveError) {
  const auto dataset = data::make_dataset("citeseer", 0.06, 17);
  io::save_dataset(dir_.string(), dataset);
  // Rewrite the manifest with an edge count that contradicts edges.bin.
  std::ofstream(path("meta.txt"))
      << "name=" << dataset.name << "\nbatch_size=" << dataset.batch_size
      << "\nnum_nodes=" << dataset.graph.num_nodes() << "\nnum_edges=123456"
      << "\nfeature_dim=" << dataset.features.dim() << "\nedge_format=binary\nhas_labels=1\n";
  expect_format_error([&] { return io::load_dataset(dir_.string()); }, "123456");
}

TEST_F(IoDataset, MissingDirectoryIsDescriptiveError) {
  expect_format_error([&] { return io::load_dataset(path("not_there")); }, "cannot open");
}

// ---- the differential harness: save -> load -> train must be bit-identical ----

class IoDifferentialTraining : public TempDirTest {
 protected:
  static core::TrainConfig train_config(std::uint32_t batch_size) {
    core::TrainConfig config;
    config.method = core::Method::kSplpg;
    config.model.hidden_dim = 16;
    config.model.num_layers = 2;
    config.epochs = 2;
    config.batch_size = batch_size;
    config.num_partitions = 2;
    config.max_batches_per_epoch = 3;
    config.sync = dist::SyncMode::kGradientAveraging;
    config.seed = 23;
    return config;
  }

  static core::TrainResult train(const data::Dataset& dataset) {
    util::Rng rng = util::Rng(23).split("split");
    const auto split = sampling::split_edges(dataset.graph, sampling::SplitOptions{}, rng);
    return core::train_link_prediction(split, dataset.features,
                                       train_config(dataset.batch_size));
  }

  static void expect_results_identical(const core::TrainResult& a, const core::TrainResult& b) {
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t e = 0; e < a.history.size(); ++e) {
      EXPECT_DOUBLE_EQ(a.history[e].mean_loss, b.history[e].mean_loss) << "epoch " << e;
      EXPECT_DOUBLE_EQ(a.history[e].comm_gigabytes, b.history[e].comm_gigabytes);
    }
    EXPECT_DOUBLE_EQ(a.test_hits, b.test_hits);
    EXPECT_DOUBLE_EQ(a.test_auc, b.test_auc);
    ASSERT_NE(a.model, nullptr);
    ASSERT_NE(b.model, nullptr);
    const auto& want = a.model->parameters();
    const auto& got = b.model->parameters();
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      const auto lhs = want[i].value().data();
      const auto rhs = got[i].value().data();
      ASSERT_EQ(lhs.size(), rhs.size());
      for (std::size_t j = 0; j < lhs.size(); ++j) {
        ASSERT_EQ(lhs[j], rhs[j]) << "parameter " << i << " element " << j;
      }
    }
  }
};

TEST_F(IoDifferentialTraining, LoadedDatasetTrainsBitIdenticallyInAllFormatBackendCombos) {
  const auto dataset = data::make_dataset("cora", 0.08, 23);
  const auto reference = train(dataset);

  for (const auto format : {io::EdgeFormat::kBinary, io::EdgeFormat::kText}) {
    io::save_dataset(dir_.string(), dataset, format);
    for (const auto backend : {io::FeatureBackend::kBuffered, io::FeatureBackend::kMmap}) {
      io::DatasetLoadOptions options;
      options.feature_backend = backend;
      const auto loaded = io::load_dataset(dir_.string(), options);
      expect_graphs_identical(dataset.graph, loaded.graph);
      expect_features_identical(dataset.features, loaded.features);
      const auto result = train(loaded);
      expect_results_identical(reference, result);
    }
  }
}

// ---- property test: random round-trips preserve everything ----

TEST(IoPropertyRoundTrip, RandomDatasetsSurviveSaveLoadExactly) {
  const auto dir = fs::temp_directory_path() / "splpg_io_property";
  fs::remove_all(dir);
  for (std::uint64_t iteration = 0; iteration < 24; ++iteration) {
    util::Rng rng = util::Rng(1234).split("property", iteration);
    data::SbmParams params;
    params.num_nodes = static_cast<graph::NodeId>(64 + rng.uniform_u64(300));
    params.num_edges = 4 * params.num_nodes + rng.uniform_u64(4 * params.num_nodes);
    params.num_communities = static_cast<std::uint32_t>(2 + rng.uniform_u64(12));
    params.intra_prob = rng.uniform(0.6, 0.95);

    data::Dataset dataset;
    dataset.name = "prop_" + std::to_string(iteration);
    dataset.batch_size = static_cast<std::uint32_t>(32 + rng.uniform_u64(256));
    dataset.graph = data::generate_sbm(params, rng, &dataset.communities);
    const auto dim = static_cast<std::uint32_t>(4 + rng.uniform_u64(28));
    dataset.features = data::generate_features(dataset.graph.num_nodes(), dim,
                                               dataset.communities, 1.0, 0.7, rng);

    const auto format =
        iteration % 2 == 0 ? io::EdgeFormat::kBinary : io::EdgeFormat::kText;
    const auto backend = iteration % 3 == 0 ? io::FeatureBackend::kMmap
                                            : io::FeatureBackend::kBuffered;
    io::save_dataset(dir.string(), dataset, format);
    io::DatasetLoadOptions options;
    options.feature_backend = backend;
    const auto loaded = io::load_dataset(dir.string(), options);

    SCOPED_TRACE("iteration " + std::to_string(iteration) + " nodes=" +
                 std::to_string(params.num_nodes));
    EXPECT_EQ(loaded.name, dataset.name);
    EXPECT_EQ(loaded.batch_size, dataset.batch_size);
    expect_graphs_identical(dataset.graph, loaded.graph);
    expect_features_identical(dataset.features, loaded.features);
    EXPECT_EQ(loaded.communities, dataset.communities);

    // Eval splits derived from the loaded graph match the original's exactly.
    util::Rng split_a = util::Rng(99).split("split", iteration);
    util::Rng split_b = util::Rng(99).split("split", iteration);
    const auto original_split =
        sampling::split_edges(dataset.graph, sampling::SplitOptions{}, split_a);
    const auto loaded_split =
        sampling::split_edges(loaded.graph, sampling::SplitOptions{}, split_b);
    expect_splits_identical(original_split, loaded_split);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace splpg
