// Tests for the sampling module: link splits, negative samplers, batch
// iteration, and the k-hop block sampler.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "data/generators.hpp"
#include "graph/algorithms.hpp"
#include "sampling/edge_split.hpp"
#include "sampling/negative_sampler.hpp"
#include "sampling/neighbor_sampler.hpp"

namespace splpg::sampling {
namespace {

using graph::CsrGraph;
using graph::Edge;
using graph::GraphBuilder;
using graph::NodeId;
using util::Rng;

CsrGraph test_graph(NodeId nodes = 300, graph::EdgeId edges = 1800, std::uint64_t seed = 1) {
  data::SbmParams params;
  params.num_nodes = nodes;
  params.num_edges = edges;
  params.num_communities = 6;
  Rng rng(seed);
  return data::generate_sbm(params, rng);
}

TEST(EdgeSplit, FractionsRespected) {
  const CsrGraph graph = test_graph();
  Rng rng(2);
  const LinkSplit split = split_edges(graph, SplitOptions{}, rng);
  const auto total = graph.num_edges();
  EXPECT_NEAR(static_cast<double>(split.train_pos.size()) / total, 0.8, 0.01);
  EXPECT_NEAR(static_cast<double>(split.val_pos.size()) / total, 0.1, 0.01);
  EXPECT_EQ(split.train_pos.size() + split.val_pos.size() + split.test_pos.size(), total);
}

TEST(EdgeSplit, PartsAreDisjointAndCover) {
  const CsrGraph graph = test_graph();
  Rng rng(3);
  const LinkSplit split = split_edges(graph, SplitOptions{}, rng);
  std::set<Edge> all;
  for (const auto& e : split.train_pos) all.insert(e);
  for (const auto& e : split.val_pos) all.insert(e);
  for (const auto& e : split.test_pos) all.insert(e);
  EXPECT_EQ(all.size(), graph.num_edges());
}

TEST(EdgeSplit, TrainGraphContainsOnlyTrainEdges) {
  const CsrGraph graph = test_graph();
  Rng rng(4);
  const LinkSplit split = split_edges(graph, SplitOptions{}, rng);
  EXPECT_EQ(split.train_graph.num_edges(), split.train_pos.size());
  for (const auto& [u, v] : split.val_pos) EXPECT_FALSE(split.train_graph.has_edge(u, v));
  for (const auto& [u, v] : split.test_pos) EXPECT_FALSE(split.train_graph.has_edge(u, v));
}

TEST(EdgeSplit, EvalNegativesAreThreeXAndNonEdges) {
  const CsrGraph graph = test_graph();
  Rng rng(5);
  const LinkSplit split = split_edges(graph, SplitOptions{}, rng);
  EXPECT_EQ(split.val_neg.size(), 3 * split.val_pos.size());
  EXPECT_EQ(split.test_neg.size(), 3 * split.test_pos.size());
  for (const auto& [u, v] : split.test_neg) {
    EXPECT_NE(u, v);
    EXPECT_FALSE(graph.has_edge(u, v));  // not even a held-out positive
  }
}

TEST(EdgeSplit, DeterministicGivenRngState) {
  const CsrGraph graph = test_graph();
  Rng rng1(6);
  Rng rng2(6);
  const LinkSplit a = split_edges(graph, SplitOptions{}, rng1);
  const LinkSplit b = split_edges(graph, SplitOptions{}, rng2);
  EXPECT_EQ(a.train_pos, b.train_pos);
  ASSERT_EQ(a.test_neg.size(), b.test_neg.size());
  for (std::size_t i = 0; i < a.test_neg.size(); ++i) EXPECT_EQ(a.test_neg[i], b.test_neg[i]);
}

TEST(EdgeSplit, TinyGraphThrows) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  const CsrGraph graph = builder.build();
  Rng rng(7);
  EXPECT_THROW(split_edges(graph, SplitOptions{}, rng), std::invalid_argument);
}

TEST(GlobalNegatives, DistinctWithinCall) {
  const CsrGraph graph = test_graph(100, 300);
  Rng rng(8);
  const auto negatives = sample_global_negatives(graph, 200, rng);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& [u, v] : negatives) {
    EXPECT_TRUE(seen.emplace(std::min(u, v), std::max(u, v)).second);
  }
}

TEST(PerSourceSampler, NeverReturnsNeighborOrSelf) {
  const CsrGraph graph = test_graph();
  std::vector<NodeId> candidates(graph.num_nodes());
  for (NodeId v = 0; v < candidates.size(); ++v) candidates[v] = v;
  const PerSourceNegativeSampler sampler(
      candidates, [&graph](NodeId u, NodeId v) { return graph.has_edge(u, v); });
  Rng rng(9);
  for (NodeId source = 0; source < 50; ++source) {
    for (int trial = 0; trial < 10; ++trial) {
      const NodeId dst = sampler.sample_destination(source, rng);
      EXPECT_NE(dst, source);
      EXPECT_FALSE(graph.has_edge(source, dst));
    }
  }
}

TEST(PerSourceSampler, RestrictedCandidateScope) {
  const CsrGraph graph = test_graph();
  // Candidates limited to nodes 0..9.
  std::vector<NodeId> candidates{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const PerSourceNegativeSampler sampler(
      candidates, [&graph](NodeId u, NodeId v) { return graph.has_edge(u, v); });
  Rng rng(10);
  for (int trial = 0; trial < 100; ++trial) {
    EXPECT_LT(sampler.sample_destination(200, rng), 10U);
  }
}

TEST(PerSourceSampler, BatchPairsSourceFromPositives) {
  const CsrGraph graph = test_graph();
  std::vector<NodeId> candidates(graph.num_nodes());
  for (NodeId v = 0; v < candidates.size(); ++v) candidates[v] = v;
  const PerSourceNegativeSampler sampler(
      candidates, [&graph](NodeId u, NodeId v) { return graph.has_edge(u, v); });
  const std::vector<Edge> positives(graph.edges().begin(), graph.edges().begin() + 20);
  Rng rng(11);
  const auto negatives = sampler.sample_for_batch(positives, rng);
  ASSERT_EQ(negatives.size(), positives.size());
  for (std::size_t i = 0; i < negatives.size(); ++i) {
    EXPECT_EQ(negatives[i].u, positives[i].u);  // per-source: same source node
    EXPECT_FALSE(graph.has_edge(negatives[i].u, negatives[i].v));
  }
}

TEST(PerSourceSampler, TooFewCandidatesThrows) {
  EXPECT_THROW(PerSourceNegativeSampler({5}, [](NodeId, NodeId) { return false; }),
               std::invalid_argument);
}

TEST(PerSourceSampler, NearCliqueFallsBackToValidCandidate) {
  // K6 minus the edge (0, 5): from source 0 the only valid negative is 5.
  // With max_tries = 1, rejection sampling almost always exhausts on a
  // neighbor (or 0 itself); the fallback scan must still find 5 rather than
  // hand back a rejected draw as a "negative".
  GraphBuilder builder(6);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) {
      if (u == 0 && v == 5) continue;
      builder.add_edge(u, v);
    }
  }
  const CsrGraph graph = builder.build();
  std::vector<NodeId> candidates{0, 1, 2, 3, 4, 5};
  const PerSourceNegativeSampler sampler(
      candidates, [&graph](NodeId u, NodeId v) { return graph.has_edge(u, v); });
  Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    EXPECT_EQ(sampler.sample_destination(0, rng, 1), 5U);
  }
}

TEST(BatchIterator, CoversAllEdgesOncePerEpoch) {
  const CsrGraph graph = test_graph(100, 400);
  const std::vector<Edge> edges(graph.edges().begin(), graph.edges().end());
  BatchIterator iterator(edges, 64);
  Rng rng(12);
  iterator.reset(rng);
  std::set<Edge> seen;
  std::size_t batches = 0;
  for (auto batch = iterator.next(); !batch.empty(); batch = iterator.next()) {
    ++batches;
    EXPECT_LE(batch.size(), 64U);
    for (const auto& e : batch) EXPECT_TRUE(seen.insert(e).second);
  }
  EXPECT_EQ(seen.size(), edges.size());
  EXPECT_EQ(batches, iterator.batches_per_epoch());
}

TEST(BatchIterator, ReshufflesAcrossEpochs) {
  const CsrGraph graph = test_graph(100, 400);
  const std::vector<Edge> edges(graph.edges().begin(), graph.edges().end());
  BatchIterator iterator(edges, 1000);
  Rng rng(13);
  iterator.reset(rng);
  const auto first = iterator.next();
  iterator.reset(rng);
  const auto second = iterator.next();
  EXPECT_NE(first, second);  // same multiset, different order w.h.p.
}

TEST(NeighborSampler, BlockStructureInvariants) {
  const CsrGraph graph = test_graph();
  GraphProvider provider(graph);
  const NeighborSampler sampler({5, 10, 25});
  Rng rng(14);
  const std::vector<NodeId> seeds{1, 2, 3, 4, 5, 2, 1};  // duplicates allowed
  const auto cg = sampler.sample(provider, seeds, rng);
  ASSERT_EQ(cg.blocks.size(), 3U);

  // Seeds dedupe in first-seen order.
  const auto seed_nodes = cg.seed_nodes();
  ASSERT_EQ(seed_nodes.size(), 5U);
  EXPECT_EQ(seed_nodes[0], 1U);

  for (std::size_t layer = 0; layer < 3; ++layer) {
    const Block& block = cg.blocks[layer];
    ASSERT_GE(block.src_nodes.size(), block.dst_count);
    // dst prefix property.
    for (std::size_t d = 0; d < block.dst_count; ++d) {
      EXPECT_EQ(block.src_nodes[d], block.dst_nodes()[d]);
    }
    // Edge indices in range; every edge is a real graph edge.
    ASSERT_EQ(block.edge_src.size(), block.edge_dst.size());
    ASSERT_EQ(block.edge_weight.size(), block.edge_src.size());
    for (std::size_t e = 0; e < block.num_edges(); ++e) {
      ASSERT_LT(block.edge_src[e], block.src_nodes.size());
      ASSERT_LT(block.edge_dst[e], block.dst_count);
      EXPECT_TRUE(graph.has_edge(block.src_nodes[block.edge_src[e]],
                                 block.src_nodes[block.edge_dst[e]]));
    }
  }
  // Layer chaining: layer k's src set is layer k-1's dst set.
  for (std::size_t layer = 1; layer < 3; ++layer) {
    EXPECT_EQ(cg.blocks[layer - 1].dst_count, cg.blocks[layer].src_nodes.size());
    for (std::size_t i = 0; i < cg.blocks[layer].src_nodes.size(); ++i) {
      EXPECT_EQ(cg.blocks[layer - 1].src_nodes[i], cg.blocks[layer].src_nodes[i]);
    }
  }
}

TEST(NeighborSampler, FanoutCapsSampledNeighbors) {
  const CsrGraph graph = test_graph();
  GraphProvider provider(graph);
  const NeighborSampler sampler({3});
  Rng rng(15);
  const std::vector<NodeId> seeds{0, 10, 20};
  const auto cg = sampler.sample(provider, seeds, rng);
  std::vector<int> in_degree(cg.blocks[0].dst_count, 0);
  for (const auto dst : cg.blocks[0].edge_dst) ++in_degree[dst];
  for (std::size_t d = 0; d < cg.blocks[0].dst_count; ++d) {
    EXPECT_LE(in_degree[d], 3);
    EXPECT_EQ(in_degree[d],
              std::min<NodeId>(3, graph.degree(cg.blocks[0].src_nodes[d])));
  }
}

TEST(NeighborSampler, SampledNeighborsAreDistinct) {
  const CsrGraph graph = test_graph();
  GraphProvider provider(graph);
  const NeighborSampler sampler({4});
  Rng rng(16);
  const std::vector<NodeId> seeds{7};
  const auto cg = sampler.sample(provider, seeds, rng);
  std::unordered_set<std::uint32_t> sources;
  for (const auto src : cg.blocks[0].edge_src) EXPECT_TRUE(sources.insert(src).second);
}

TEST(NeighborSampler, FullFanoutMatchesKHopNeighborhood) {
  const CsrGraph graph = test_graph(120, 500, 3);
  GraphProvider provider(graph);
  const NeighborSampler sampler({0, 0});  // full 2-hop expansion
  Rng rng(17);
  const std::vector<NodeId> seeds{3, 8};
  const auto cg = sampler.sample(provider, seeds, rng);
  auto inputs = std::vector<NodeId>(cg.input_nodes().begin(), cg.input_nodes().end());
  std::sort(inputs.begin(), inputs.end());
  const auto expected = graph::k_hop_neighborhood(graph, seeds, 2);
  EXPECT_EQ(inputs, expected);
}

TEST(NeighborSampler, WeightedGraphPropagatesWeights) {
  GraphBuilder builder(3, true);
  builder.add_edge(0, 1, 2.5F);
  builder.add_edge(0, 2, 0.5F);
  const CsrGraph graph = builder.build();
  GraphProvider provider(graph);
  const NeighborSampler sampler({0});
  Rng rng(18);
  const std::vector<NodeId> seeds{0};
  const auto cg = sampler.sample(provider, seeds, rng);
  ASSERT_EQ(cg.blocks[0].num_edges(), 2U);
  float total = 0.0F;
  for (const float w : cg.blocks[0].edge_weight) total += w;
  EXPECT_FLOAT_EQ(total, 3.0F);
}

TEST(NeighborSampler, DeterministicGivenRngState) {
  const CsrGraph graph = test_graph();
  GraphProvider provider(graph);
  const NeighborSampler sampler({5, 5});
  Rng rng1(19);
  Rng rng2(19);
  const std::vector<NodeId> seeds{1, 2, 3};
  const auto a = sampler.sample(provider, seeds, rng1);
  const auto b = sampler.sample(provider, seeds, rng2);
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t layer = 0; layer < a.blocks.size(); ++layer) {
    EXPECT_EQ(a.blocks[layer].src_nodes, b.blocks[layer].src_nodes);
    EXPECT_EQ(a.blocks[layer].edge_src, b.blocks[layer].edge_src);
  }
}

TEST(NeighborSampler, EmptySeedsThrows) {
  const CsrGraph graph = test_graph(64, 200);
  GraphProvider provider(graph);
  const NeighborSampler sampler({5});
  Rng rng(20);
  EXPECT_THROW(sampler.sample(provider, {}, rng), std::invalid_argument);
}

TEST(NeighborSampler, IsolatedSeedYieldsLeafBlock) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);  // node 2 isolated
  const CsrGraph graph = builder.build();
  GraphProvider provider(graph);
  const NeighborSampler sampler({5});
  Rng rng(21);
  const std::vector<NodeId> seeds{2};
  const auto cg = sampler.sample(provider, seeds, rng);
  EXPECT_EQ(cg.blocks[0].num_edges(), 0U);
  EXPECT_EQ(cg.blocks[0].src_nodes.size(), 1U);
}

}  // namespace
}  // namespace splpg::sampling
