// Trainer-level exact-resume regression tests: training interrupted at a
// checkpoint and resumed via TrainConfig::resume_from must be bit-identical
// to a run that never stopped. This holds because checkpoints carry the full
// train state (parameters + Adam moments + epoch) and per-epoch worker
// randomness is a pure function of (seed, worker, epoch).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "sampling/edge_split.hpp"
#include "tensor/matrix.hpp"

namespace splpg {
namespace {

namespace fs = std::filesystem;
using core::Method;
using core::TrainConfig;
using core::TrainResult;

struct Problem {
  data::Dataset dataset;
  sampling::LinkSplit split;
};

const Problem& problem() {
  static const Problem instance = [] {
    Problem p;
    p.dataset = data::make_dataset("cora", 0.12, 3);
    util::Rng rng = util::Rng(3).split("split");
    p.split = sampling::split_edges(p.dataset.graph, sampling::SplitOptions{}, rng);
    return p;
  }();
  return instance;
}

TrainConfig base_config(Method method, std::uint32_t epochs) {
  TrainConfig config;
  config.method = method;
  config.model.hidden_dim = 32;
  config.model.num_layers = 2;
  config.epochs = epochs;
  config.batch_size = 128;
  config.num_partitions = 4;
  config.max_batches_per_epoch = 4;
  config.seed = 11;
  // Replica-identical optimizer state — the configuration under which resume
  // guarantees bit-identity (see TrainConfig::resume_from).
  config.sync = dist::SyncMode::kGradientAveraging;
  return config;
}

TrainResult run(const TrainConfig& config) {
  return core::train_link_prediction(problem().split, problem().dataset.features, config);
}

void expect_models_bit_identical(const TrainResult& a, const TrainResult& b) {
  ASSERT_NE(a.model, nullptr);
  ASSERT_NE(b.model, nullptr);
  const auto& want = a.model->parameters();
  const auto& got = b.model->parameters();
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(tensor::max_abs_diff(want[i].value(), got[i].value()), 0.0F)
        << "parameter " << i;
  }
}

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("splpg_resume_" + std::string(::testing::UnitTest::GetInstance()
                                              ->current_test_info()
                                              ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string state_path(std::uint32_t epoch) const {
    return (dir_ / ("state_epoch_" + std::to_string(epoch) + ".bin")).string();
  }

  fs::path dir_;
};

TEST_F(ResumeTest, SplpgResumeIsBitIdenticalToUninterruptedRun) {
  // Reference: 4 epochs straight through.
  const TrainResult reference = run(base_config(Method::kSplpg, 4));

  // Interrupted: stop after epoch 2 (checkpointing to disk), then resume the
  // remaining 2 epochs from the state file.
  auto first_half = base_config(Method::kSplpg, 2);
  first_half.checkpoint_every = 1;
  first_half.checkpoint_dir = dir_.string();
  const TrainResult partial = run(first_half);
  ASSERT_TRUE(fs::exists(state_path(2)));

  auto second_half = base_config(Method::kSplpg, 4);
  second_half.resume_from = state_path(2);
  const TrainResult resumed = run(second_half);

  // The resumed run's history covers epochs 3..4 and must match the
  // reference's records for those epochs bit-for-bit.
  ASSERT_EQ(reference.history.size(), 4U);
  ASSERT_EQ(resumed.history.size(), 2U);
  for (const auto& record : resumed.history) {
    const auto& ref = reference.history.at(record.epoch - 1);
    ASSERT_EQ(ref.epoch, record.epoch);
    EXPECT_DOUBLE_EQ(ref.mean_loss, record.mean_loss) << "epoch " << record.epoch;
    EXPECT_DOUBLE_EQ(ref.comm_gigabytes, record.comm_gigabytes) << "epoch " << record.epoch;
  }
  EXPECT_DOUBLE_EQ(reference.test_hits, resumed.test_hits);
  EXPECT_DOUBLE_EQ(reference.test_auc, resumed.test_auc);
  expect_models_bit_identical(reference, resumed);
  // Sanity: the half-run really did stop early (different model state).
  ASSERT_EQ(partial.history.size(), 2U);
}

TEST_F(ResumeTest, CentralizedResumeIsBitIdenticalToUninterruptedRun) {
  const TrainResult reference = run(base_config(Method::kCentralized, 3));

  auto first_part = base_config(Method::kCentralized, 1);
  first_part.checkpoint_every = 1;
  first_part.checkpoint_dir = dir_.string();
  (void)run(first_part);

  auto rest = base_config(Method::kCentralized, 3);
  rest.resume_from = state_path(1);
  const TrainResult resumed = run(rest);

  EXPECT_DOUBLE_EQ(reference.test_hits, resumed.test_hits);
  EXPECT_DOUBLE_EQ(reference.test_auc, resumed.test_auc);
  expect_models_bit_identical(reference, resumed);
}

TEST_F(ResumeTest, CheckpointDirWritesBothModelAndStateFiles) {
  auto config = base_config(Method::kSplpg, 2);
  config.checkpoint_every = 1;
  config.checkpoint_dir = dir_.string();
  (void)run(config);
  // Epoch 0 is the pre-training snapshot; 1 and 2 are epoch boundaries.
  for (std::uint32_t epoch = 0; epoch <= 2; ++epoch) {
    EXPECT_TRUE(fs::exists(dir_ / ("model_epoch_" + std::to_string(epoch) + ".bin")))
        << "epoch " << epoch;
    EXPECT_TRUE(fs::exists(state_path(epoch))) << "epoch " << epoch;
  }
}

TEST_F(ResumeTest, ResumePastConfiguredEpochsThrows) {
  auto config = base_config(Method::kSplpg, 2);
  config.checkpoint_every = 1;
  config.checkpoint_dir = dir_.string();
  (void)run(config);

  auto bad = base_config(Method::kSplpg, 2);
  bad.resume_from = state_path(2);  // checkpoint already at the final epoch
  EXPECT_THROW((void)run(bad), std::invalid_argument);
}

TEST_F(ResumeTest, ResumeFromMissingFileThrows) {
  auto config = base_config(Method::kSplpg, 2);
  config.resume_from = state_path(9);
  EXPECT_THROW((void)run(config), std::runtime_error);
}

}  // namespace
}  // namespace splpg
