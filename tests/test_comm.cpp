// Tests for the communication-efficient training regimes: CommHook
// compression (kNone/kTopK/kInt8) properties, collective-level bit-identity
// and metering exactness, and trainer-level regime determinism/convergence
// (local-SGD, elastic crash recovery under compression, early-stop
// normalization).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "dist/comm_hook.hpp"
#include "dist/comm_meter.hpp"
#include "dist/sync.hpp"
#include "nn/model.hpp"
#include "sampling/edge_split.hpp"
#include "tensor/matrix.hpp"
#include "tensor/vec.hpp"
#include "util/rng.hpp"

namespace splpg::dist {
namespace {

tensor::Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng) {
  tensor::Matrix m(rows, cols);
  for (float& x : m.data()) x = static_cast<float>(rng.normal());
  return m;
}

// ---- CommHook unit properties ----

TEST(CommHook, KindStringsRoundTrip) {
  for (const auto kind : {CommHookKind::kNone, CommHookKind::kTopK, CommHookKind::kInt8}) {
    EXPECT_EQ(comm_hook_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW((void)comm_hook_from_string("gzip"), std::invalid_argument);
}

TEST(CommHook, TopkKeepCountFormula) {
  EXPECT_EQ(topk_keep_count(0.01F, 100), 1U);
  EXPECT_EQ(topk_keep_count(0.5F, 7), 4U);    // ceil(3.5)
  EXPECT_EQ(topk_keep_count(1.0F, 5), 5U);
  EXPECT_EQ(topk_keep_count(1e-9F, 1000), 1U);  // floor of 1
  EXPECT_EQ(topk_keep_count(0.3F, 0), 0U);
}

TEST(CommHook, MakeHookValidatesFraction) {
  CommHookOptions options;
  for (const float bad : {0.0F, -0.5F, 1.5F}) {
    options.topk_fraction = bad;
    EXPECT_THROW((void)make_comm_hook(CommHookKind::kTopK, options, 2),
                 std::invalid_argument)
        << bad;
  }
  options.topk_fraction = 1.0F;
  EXPECT_NE(make_comm_hook(CommHookKind::kTopK, options, 2), nullptr);
}

TEST(CommHook, NoneIsIdentityAndPricesDensePayload) {
  const auto hook = make_comm_hook(CommHookKind::kNone, {}, 2);
  util::Rng rng(5);
  const tensor::Matrix in = random_matrix(6, 7, rng);
  tensor::Matrix out;
  const std::uint64_t bytes = hook->compress(0, 0, in, out);
  EXPECT_EQ(bytes, 6U * 7U * 4U);
  EXPECT_EQ(hook->payload_bytes(in), bytes);
  EXPECT_EQ(tensor::max_abs_diff(in, out), 0.0F);
}

TEST(CommHook, TopKKeepsExactlyTheKLargestMagnitudes) {
  CommHookOptions options;
  options.topk_fraction = 0.25F;
  const auto hook = make_comm_hook(CommHookKind::kTopK, options, 1);
  util::Rng rng(17);
  const tensor::Matrix in = random_matrix(8, 5, rng);
  const std::size_t n = in.size();
  const std::size_t k = topk_keep_count(options.topk_fraction, n);

  tensor::Matrix out;
  EXPECT_EQ(hook->compress(0, 0, in, out), k * 8U);

  // Expected kept set: the same (|value| desc, index asc) total order the
  // hook sorts by, computed independently with a full sort.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  const auto values = in.data();
  std::sort(order.begin(), order.end(), [values](std::size_t a, std::size_t b) {
    const float ma = std::fabs(values[a]);
    const float mb = std::fabs(values[b]);
    if (ma != mb) return ma > mb;
    return a < b;
  });
  std::vector<bool> kept(n, false);
  for (std::size_t i = 0; i < k; ++i) kept[order[i]] = true;

  const auto out_values = out.data();
  for (std::size_t i = 0; i < n; ++i) {
    if (kept[i]) {
      // First round: no residual, so kept entries are the input verbatim.
      EXPECT_EQ(out_values[i], values[i]) << i;
    } else {
      EXPECT_EQ(out_values[i], 0.0F) << i;
    }
  }
}

TEST(CommHook, TopKErrorFeedbackAccountsEveryEntryBitwise) {
  // Feed one tensor, then zeros: each round the residual re-offers what was
  // dropped, entries are emitted verbatim (never re-scaled), so after
  // ceil(n/k) rounds the sum of all emissions equals the input EXACTLY.
  CommHookOptions options;
  options.topk_fraction = 0.15F;
  const auto hook = make_comm_hook(CommHookKind::kTopK, options, 1);
  util::Rng rng(23);
  const tensor::Matrix in = random_matrix(7, 9, rng);
  const std::size_t n = in.size();
  const std::size_t k = topk_keep_count(options.topk_fraction, n);
  const std::size_t rounds = (n + k - 1) / k;

  tensor::Matrix zeros(in.rows(), in.cols());
  tensor::Matrix emitted(in.rows(), in.cols());
  tensor::Matrix out;
  (void)hook->compress(0, 0, in, out);
  emitted.add_inplace(out);
  for (std::size_t r = 1; r < rounds; ++r) {
    (void)hook->compress(0, 0, zeros, out);
    emitted.add_inplace(out);
  }
  EXPECT_EQ(tensor::max_abs_diff(emitted, in), 0.0F);

  // The residual is now fully drained: one more zero round emits zeros.
  (void)hook->compress(0, 0, zeros, out);
  for (const float x : out.data()) EXPECT_EQ(x, 0.0F);
}

TEST(CommHook, TopKResidualsArePerWorkerAndDroppedOnReset) {
  CommHookOptions options;
  options.topk_fraction = 0.1F;
  const auto hook = make_comm_hook(CommHookKind::kTopK, options, 2);
  util::Rng rng(31);
  const tensor::Matrix in = random_matrix(5, 8, rng);
  const tensor::Matrix zeros(5, 8);
  tensor::Matrix out;

  (void)hook->compress(0, 0, in, out);   // worker 0 carries a residual
  (void)hook->compress(1, 0, zeros, out);  // worker 1's stream is independent
  for (const float x : out.data()) EXPECT_EQ(x, 0.0F);

  hook->reset_worker(0);  // crash recovery: stale residual must not survive
  (void)hook->compress(0, 0, zeros, out);
  for (const float x : out.data()) EXPECT_EQ(x, 0.0F);
}

TEST(CommHook, TopKRejectsShapeChangeMidRun) {
  const auto hook = make_comm_hook(CommHookKind::kTopK, {}, 1);
  util::Rng rng(2);
  const tensor::Matrix a = random_matrix(3, 3, rng);
  const tensor::Matrix b = random_matrix(2, 5, rng);
  tensor::Matrix out;
  (void)hook->compress(0, 0, a, out);
  EXPECT_THROW((void)hook->compress(0, 0, b, out), std::invalid_argument);
}

TEST(CommHook, Int8RoundTripWithinDocumentedBound) {
  const auto hook = make_comm_hook(CommHookKind::kInt8, {}, 1);
  util::Rng rng(41);
  tensor::Matrix in = random_matrix(9, 11, rng);
  in.data()[3] = 4.5F;  // pin a known amax
  float amax = 0.0F;
  for (const float x : in.data()) amax = std::max(amax, std::fabs(x));

  tensor::Matrix out;
  EXPECT_EQ(hook->compress(0, 0, in, out), static_cast<std::uint64_t>(in.size()) + 4U);
  const float bound = amax / 254.0F + amax * 1e-5F;
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_LE(std::fabs(out.data()[i] - in.data()[i]), bound) << i;
  }
}

TEST(CommHook, Int8IsExactOnIntegerGridAndZeros) {
  const auto hook = make_comm_hook(CommHookKind::kInt8, {}, 1);
  // amax = 127 -> scale = 1: integer values in [-127, 127] survive exactly.
  tensor::Matrix in(1, 5);
  in.data()[0] = -127.0F;
  in.data()[1] = -3.0F;
  in.data()[2] = 0.0F;
  in.data()[3] = 64.0F;
  in.data()[4] = 127.0F;
  tensor::Matrix out;
  (void)hook->compress(0, 0, in, out);
  EXPECT_EQ(tensor::max_abs_diff(in, out), 0.0F);

  tensor::Matrix zeros(4, 4);
  (void)hook->compress(0, 0, zeros, out);
  for (const float x : out.data()) EXPECT_EQ(x, 0.0F);
}

// ---- collective-level: bit-identity, determinism, metering ----

class CommSyncFixture {
 public:
  explicit CommSyncFixture(std::uint32_t workers, std::uint64_t model_seed = 99)
      : context_(workers) {
    nn::ModelConfig config;
    config.in_dim = 4;
    config.hidden_dim = 8;
    config.num_layers = 2;
    config.predictor = nn::PredictorKind::kDot;
    for (std::uint32_t w = 0; w < workers; ++w) {
      replicas_.push_back(std::make_unique<nn::LinkPredictionModel>(config, model_seed));
      context_.register_replica(w, replicas_.back().get());
      meters_.emplace_back(std::make_unique<CommMeter>());
      context_.attach_meter(w, meters_.back().get());
    }
  }

  /// Deterministic per-(worker, param) gradients, identical across fixtures.
  void fill_gradients(std::uint64_t seed) {
    for (std::uint32_t w = 0; w < context_.num_workers(); ++w) {
      util::Rng rng = util::Rng(seed).split("grad", w);
      for (auto& param : replicas_[w]->parameters()) {
        auto& grad = param.mutable_grad();
        grad.resize(param.value().rows(), param.value().cols());
        for (float& x : grad.data()) x = static_cast<float>(rng.normal());
      }
    }
  }

  /// Deterministic per-worker parameter perturbation (replicas diverge, as
  /// after local steps).
  void perturb_values(std::uint64_t seed) {
    for (std::uint32_t w = 0; w < context_.num_workers(); ++w) {
      util::Rng rng = util::Rng(seed).split("value", w);
      for (auto& param : replicas_[w]->parameters()) {
        for (float& x : param.mutable_value().data()) {
          x += static_cast<float>(rng.normal() * 0.01);
        }
      }
    }
  }

  /// Every active worker calls `fn` concurrently (collectives need all
  /// parties at the barrier).
  void run_collective(void (DistContext::*fn)()) {
    std::vector<std::thread> threads;
    for (std::uint32_t w = 0; w < context_.num_workers(); ++w) {
      if (!context_.is_active(w)) continue;
      threads.emplace_back([this, fn] { (context_.*fn)(); });
    }
    for (auto& t : threads) t.join();
  }

  [[nodiscard]] float max_param_diff(const CommSyncFixture& other) const {
    float worst = 0.0F;
    for (std::uint32_t w = 0; w < context_.num_workers(); ++w) {
      const auto& mine = replicas_[w]->parameters();
      const auto& theirs = other.replicas_[w]->parameters();
      for (std::size_t i = 0; i < mine.size(); ++i) {
        worst = std::max(worst, tensor::max_abs_diff(mine[i].value(), theirs[i].value()));
      }
    }
    return worst;
  }

  [[nodiscard]] float max_grad_diff(const CommSyncFixture& other) const {
    float worst = 0.0F;
    for (std::uint32_t w = 0; w < context_.num_workers(); ++w) {
      const auto& mine = replicas_[w]->parameters();
      const auto& theirs = other.replicas_[w]->parameters();
      for (std::size_t i = 0; i < mine.size(); ++i) {
        worst = std::max(worst, tensor::max_abs_diff(mine[i].grad(), theirs[i].grad()));
      }
    }
    return worst;
  }

  void install_hook(CommHookKind kind, float fraction = 0.25F) {
    CommHookOptions options;
    options.topk_fraction = fraction;
    context_.set_comm_hook(make_comm_hook(kind, options, context_.num_workers()));
  }

  DistContext context_;
  std::vector<std::unique_ptr<nn::LinkPredictionModel>> replicas_;
  std::vector<std::unique_ptr<CommMeter>> meters_;
};

TEST(CommSync, NoneHookIsBitIdenticalToUnhookedCollectives) {
  CommSyncFixture hooked(3);
  CommSyncFixture plain(3);
  hooked.install_hook(CommHookKind::kNone);

  hooked.fill_gradients(7);
  plain.fill_gradients(7);
  hooked.run_collective(&DistContext::all_reduce_gradients);
  plain.run_collective(&DistContext::all_reduce_gradients);
  EXPECT_EQ(hooked.max_grad_diff(plain), 0.0F);

  hooked.perturb_values(8);
  plain.perturb_values(8);
  hooked.run_collective(&DistContext::average_models);
  plain.run_collective(&DistContext::average_models);
  EXPECT_EQ(hooked.max_param_diff(plain), 0.0F);

  // The kNone hook still meters the dense payload it would have sent.
  std::uint64_t param_bytes = 0;
  for (const auto& p : hooked.replicas_[0]->parameters()) {
    param_bytes += static_cast<std::uint64_t>(p.value().size()) * 4U;
  }
  for (std::uint32_t w = 0; w < 3; ++w) {
    EXPECT_EQ(hooked.meters_[w]->stats().sync_bytes, 2U * param_bytes) << w;
    EXPECT_EQ(plain.meters_[w]->stats().sync_bytes, 0U) << w;  // no hook, no charge
  }
}

TEST(CommSync, MeteringEqualsSerializedPayloadPerHook) {
  const float fraction = 0.2F;
  for (const auto kind : {CommHookKind::kNone, CommHookKind::kTopK, CommHookKind::kInt8}) {
    CommSyncFixture fixture(2);
    fixture.install_hook(kind, fraction);
    fixture.fill_gradients(13);
    fixture.run_collective(&DistContext::all_reduce_gradients);

    std::uint64_t expected = 0;
    std::uint64_t messages = 0;
    for (const auto& p : fixture.replicas_[0]->parameters()) {
      const std::size_t n = p.value().size();
      switch (kind) {
        case CommHookKind::kNone: expected += 4U * n; break;
        case CommHookKind::kTopK: expected += topk_keep_count(fraction, n) * 8U; break;
        case CommHookKind::kInt8: expected += n + 4U; break;
      }
      ++messages;
    }
    for (std::uint32_t w = 0; w < 2; ++w) {
      EXPECT_EQ(fixture.meters_[w]->stats().sync_bytes, expected) << to_string(kind);
      EXPECT_EQ(fixture.meters_[w]->stats().sync_messages, messages) << to_string(kind);
      // Sync payload is NOT part of the paper's graph-data metric.
      EXPECT_EQ(fixture.meters_[w]->stats().total_bytes(), 0U) << to_string(kind);
    }
  }
}

TEST(CommSync, CompressedCollectivesAreDeterministicAcrossRuns) {
  for (const auto kind : {CommHookKind::kTopK, CommHookKind::kInt8}) {
    CommSyncFixture a(3);
    CommSyncFixture b(3);
    a.install_hook(kind);
    b.install_hook(kind);
    for (int round = 0; round < 3; ++round) {
      a.fill_gradients(100 + static_cast<std::uint64_t>(round));
      b.fill_gradients(100 + static_cast<std::uint64_t>(round));
      a.run_collective(&DistContext::all_reduce_gradients);
      b.run_collective(&DistContext::all_reduce_gradients);
      a.perturb_values(200 + static_cast<std::uint64_t>(round));
      b.perturb_values(200 + static_cast<std::uint64_t>(round));
      a.run_collective(&DistContext::average_models);
      b.run_collective(&DistContext::average_models);
    }
    EXPECT_EQ(a.max_grad_diff(b), 0.0F) << to_string(kind);
    EXPECT_EQ(a.max_param_diff(b), 0.0F) << to_string(kind);
    EXPECT_EQ(a.meters_[0]->stats().sync_bytes, b.meters_[0]->stats().sync_bytes);
  }
}

TEST(CommSync, CompressedAverageEqualizesReplicasOnSharedReference) {
  // All replicas agree after a compressed average: every worker receives the
  // same advanced reference model regardless of hook lossiness.
  for (const auto kind : {CommHookKind::kTopK, CommHookKind::kInt8}) {
    CommSyncFixture fixture(3);
    fixture.install_hook(kind);
    fixture.perturb_values(55);
    fixture.run_collective(&DistContext::average_models);
    const auto& first = fixture.replicas_[0]->parameters();
    for (std::uint32_t w = 1; w < 3; ++w) {
      const auto& other = fixture.replicas_[w]->parameters();
      for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(tensor::max_abs_diff(first[i].value(), other[i].value()), 0.0F)
            << to_string(kind) << " worker " << w << " param " << i;
      }
    }
  }
}

TEST(CommSync, LeaveAndRejoinUnderEachHookStaysDeterministic) {
  for (const auto kind : {CommHookKind::kNone, CommHookKind::kTopK, CommHookKind::kInt8}) {
    auto run_once = [kind](CommSyncFixture& fixture) {
      fixture.install_hook(kind);
      fixture.perturb_values(71);
      fixture.run_collective(&DistContext::average_models);  // full membership
      fixture.context_.leave(2);
      fixture.perturb_values(72);
      fixture.run_collective(&DistContext::average_models);  // survivors only
      // Recovery: resync the dead replica from a survivor (the trainer
      // restores from the checkpoint of the corrected global model), then
      // rejoin — the hook drops any stale residual.
      nn::copy_parameters(*fixture.replicas_[0], *fixture.replicas_[2]);
      fixture.context_.rejoin(2);
      fixture.perturb_values(73);
      fixture.run_collective(&DistContext::average_models);  // full again
    };
    CommSyncFixture a(3);
    CommSyncFixture b(3);
    run_once(a);
    run_once(b);
    EXPECT_EQ(a.max_param_diff(b), 0.0F) << to_string(kind);
    EXPECT_EQ(a.context_.active_workers(), 3U);
  }
}

TEST(CommSync, RegisterReplicaValidatesParameterShapes) {
  nn::ModelConfig config;
  config.in_dim = 4;
  config.hidden_dim = 8;
  config.num_layers = 2;
  nn::LinkPredictionModel base(config, 1);

  DistContext context(2);
  context.register_replica(0, &base);

  nn::ModelConfig wrong_shape = config;
  wrong_shape.hidden_dim = 16;  // same parameter count, different shapes
  nn::LinkPredictionModel shape_model(wrong_shape, 1);
  try {
    context.register_replica(1, &shape_model);
    FAIL() << "shape mismatch not detected";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("parameter"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("worker 1"), std::string::npos);
  }

  nn::ModelConfig wrong_count = config;
  wrong_count.num_layers = 1;  // fewer parameters
  nn::LinkPredictionModel count_model(wrong_count, 1);
  EXPECT_THROW(context.register_replica(1, &count_model), std::invalid_argument);

  nn::LinkPredictionModel good(config, 2);  // different seed is fine
  context.register_replica(1, &good);
}

TEST(CommSync, SetCommHookBeforeRegistrationThrows) {
  DistContext context(2);
  CommHookOptions options;
  EXPECT_THROW(context.set_comm_hook(make_comm_hook(CommHookKind::kTopK, options, 2)),
               std::logic_error);
}

}  // namespace
}  // namespace splpg::dist

// ---- trainer-level regimes ----

namespace splpg::core {
namespace {

struct Problem {
  data::Dataset dataset;
  sampling::LinkSplit split;
};

const Problem& problem() {
  static const Problem instance = [] {
    Problem p;
    p.dataset = data::make_dataset("cora", 0.12, 3);
    util::Rng rng = util::Rng(3).split("split");
    p.split = sampling::split_edges(p.dataset.graph, sampling::SplitOptions{}, rng);
    return p;
  }();
  return instance;
}

TrainConfig regime_config(dist::SyncMode sync, dist::CommHookKind hook,
                          std::uint32_t local_steps = 1, std::uint32_t epochs = 3) {
  TrainConfig config;
  config.method = Method::kSplpgPlus;  // no sparsification cost in these tests
  config.model.hidden_dim = 32;
  config.model.num_layers = 2;
  config.epochs = epochs;
  config.batch_size = 128;
  config.num_partitions = 4;
  config.max_batches_per_epoch = 4;
  config.seed = 11;
  config.sync = sync;
  config.comm_hook = hook;
  config.topk_fraction = 0.05F;
  config.local_steps = local_steps;
  return config;
}

void expect_same_result(const TrainResult& a, const TrainResult& b, const char* what) {
  ASSERT_EQ(a.history.size(), b.history.size()) << what;
  for (std::size_t e = 0; e < a.history.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.history[e].mean_loss, b.history[e].mean_loss) << what << " epoch " << e;
    EXPECT_DOUBLE_EQ(a.history[e].sync_gigabytes, b.history[e].sync_gigabytes)
        << what << " epoch " << e;
  }
  EXPECT_DOUBLE_EQ(a.test_auc, b.test_auc) << what;
  EXPECT_EQ(a.comm.sync_bytes, b.comm.sync_bytes) << what;
  EXPECT_EQ(a.comm.total_bytes(), b.comm.total_bytes()) << what;
}

TEST(CommRegime, InvalidKnobsThrow) {
  auto bad_steps = regime_config(dist::SyncMode::kLocalSgd, dist::CommHookKind::kNone, 1);
  bad_steps.local_steps = 0;
  EXPECT_THROW((void)train_link_prediction(problem().split, problem().dataset.features,
                                           bad_steps),
               std::invalid_argument);

  auto bad_fraction =
      regime_config(dist::SyncMode::kGradientAveraging, dist::CommHookKind::kTopK);
  bad_fraction.topk_fraction = 0.0F;
  EXPECT_THROW((void)train_link_prediction(problem().split, problem().dataset.features,
                                           bad_fraction),
               std::invalid_argument);
}

TEST(CommRegime, EveryRegimeIsDeterministicAcrossRuns) {
  const struct {
    dist::SyncMode sync;
    dist::CommHookKind hook;
    std::uint32_t local_steps;
  } regimes[] = {
      {dist::SyncMode::kGradientAveraging, dist::CommHookKind::kNone, 1},
      {dist::SyncMode::kGradientAveraging, dist::CommHookKind::kTopK, 1},
      {dist::SyncMode::kGradientAveraging, dist::CommHookKind::kInt8, 1},
      {dist::SyncMode::kLocalSgd, dist::CommHookKind::kNone, 2},
      {dist::SyncMode::kLocalSgd, dist::CommHookKind::kTopK, 3},
  };
  for (const auto& regime : regimes) {
    const auto config = regime_config(regime.sync, regime.hook, regime.local_steps, 2);
    const TrainResult a =
        train_link_prediction(problem().split, problem().dataset.features, config);
    const TrainResult b =
        train_link_prediction(problem().split, problem().dataset.features, config);
    expect_same_result(a, b, dist::to_string(regime.hook));
    EXPECT_GT(a.comm.sync_bytes, 0U);
  }
}

TEST(CommRegime, DeterministicAcrossThreadWidthsAndPipeline) {
  // The hook runs in the barrier's serial section on whole gradient tensors,
  // so worker-pool width and pipelining must not perturb compressed runs.
  auto config = regime_config(dist::SyncMode::kLocalSgd, dist::CommHookKind::kTopK, 2, 2);
  const TrainResult baseline =
      train_link_prediction(problem().split, problem().dataset.features, config);
  for (const std::size_t width : {2UL, 4UL, 7UL}) {
    auto wide = config;
    wide.worker_threads = width;
    const TrainResult result =
        train_link_prediction(problem().split, problem().dataset.features, wide);
    expect_same_result(baseline, result,
                       ("worker_threads=" + std::to_string(width)).c_str());
  }
  auto piped = config;
  piped.pipeline_batches = 2;
  const TrainResult result =
      train_link_prediction(problem().split, problem().dataset.features, piped);
  expect_same_result(baseline, result, "pipeline_batches=2");
}

TEST(CommRegime, DeterministicUnderVecBackendPins) {
  const tensor::VecBackend original = tensor::vec_active_backend();
  auto config = regime_config(dist::SyncMode::kGradientAveraging,
                              dist::CommHookKind::kInt8, 1, 2);
  for (const auto backend :
       {tensor::VecBackend::kScalar, tensor::VecBackend::kSse2, tensor::VecBackend::kAvx2,
        tensor::VecBackend::kAvx512}) {
    if (!tensor::vec_backend_supported(backend)) continue;
    ASSERT_TRUE(tensor::set_vec_backend(backend));
    const TrainResult a =
        train_link_prediction(problem().split, problem().dataset.features, config);
    const TrainResult b =
        train_link_prediction(problem().split, problem().dataset.features, config);
    expect_same_result(a, b, tensor::vec_backend_name(backend));
  }
  ASSERT_TRUE(tensor::set_vec_backend(original));
}

TEST(CommRegime, CompressionReducesSyncBytesAgainstDenseBaseline) {
  const auto dense = regime_config(dist::SyncMode::kGradientAveraging,
                                   dist::CommHookKind::kNone, 1, 2);
  const TrainResult none =
      train_link_prediction(problem().split, problem().dataset.features, dense);
  const TrainResult topk = train_link_prediction(
      problem().split, problem().dataset.features,
      regime_config(dist::SyncMode::kGradientAveraging, dist::CommHookKind::kTopK, 1, 2));
  const TrainResult int8 = train_link_prediction(
      problem().split, problem().dataset.features,
      regime_config(dist::SyncMode::kGradientAveraging, dist::CommHookKind::kInt8, 1, 2));

  ASSERT_GT(none.comm.sync_bytes, 0U);
  // int8: ~4x reduction; top-k at 5%: ~10x reduction.
  EXPECT_LT(int8.comm.sync_bytes, none.comm.sync_bytes / 3);
  EXPECT_LT(topk.comm.sync_bytes, int8.comm.sync_bytes);
  // Same number of per-parameter payloads either way.
  EXPECT_EQ(none.comm.sync_messages, topk.comm.sync_messages);
  EXPECT_EQ(none.comm.sync_messages, int8.comm.sync_messages);
  // The graph-data metric is untouched by the sync regime.
  EXPECT_EQ(none.comm.total_bytes(), topk.comm.total_bytes());
}

TEST(CommRegime, LocalSgdReducesSyncRounds) {
  // H = 1 averages after every round; H larger than any epoch degenerates to
  // exactly one catch-up average per epoch. The byte ratio between the two
  // is therefore exactly the per-epoch round count.
  const TrainResult h1 = train_link_prediction(
      problem().split, problem().dataset.features,
      regime_config(dist::SyncMode::kLocalSgd, dist::CommHookKind::kNone, 1, 2));
  const TrainResult hbig = train_link_prediction(
      problem().split, problem().dataset.features,
      regime_config(dist::SyncMode::kLocalSgd, dist::CommHookKind::kNone, 1000, 2));
  ASSERT_GT(hbig.comm.sync_bytes, 0U);
  ASSERT_EQ(h1.comm.sync_messages % hbig.comm.sync_messages, 0U);
  const std::uint64_t rounds_per_epoch = h1.comm.sync_messages / hbig.comm.sync_messages;
  EXPECT_GT(rounds_per_epoch, 1U);
  EXPECT_EQ(hbig.comm.sync_bytes * rounds_per_epoch, h1.comm.sync_bytes);
}

TEST(CommRegime, LocalSgdConvergesCloseToExactSync) {
  auto exact = regime_config(dist::SyncMode::kGradientAveraging,
                             dist::CommHookKind::kNone, 1, 5);
  exact.max_batches_per_epoch = 8;
  const TrainResult baseline =
      train_link_prediction(problem().split, problem().dataset.features, exact);
  EXPECT_GT(baseline.test_auc, 0.55);
  for (const std::uint32_t h : {2U, 8U}) {
    auto config = regime_config(dist::SyncMode::kLocalSgd, dist::CommHookKind::kNone, h, 5);
    config.max_batches_per_epoch = 8;
    const TrainResult result =
        train_link_prediction(problem().split, problem().dataset.features, config);
    // Golden tolerance: infrequent averaging may trail exact sync slightly at
    // this miniature scale, but must stay in the same accuracy regime.
    EXPECT_NEAR(result.test_auc, baseline.test_auc, 0.15) << "H=" << h;
    EXPECT_GT(result.test_auc, 0.5) << "H=" << h;
  }
}

TEST(CommRegime, CrashRecoveryUnderEachHookIsDeterministic) {
  for (const auto hook :
       {dist::CommHookKind::kNone, dist::CommHookKind::kTopK, dist::CommHookKind::kInt8}) {
    auto config = regime_config(dist::SyncMode::kLocalSgd, hook, 2, 3);
    config.faults.crashes.push_back({.worker = 1, .epoch = 2, .batch = 1});
    const TrainResult a =
        train_link_prediction(problem().split, problem().dataset.features, config);
    EXPECT_EQ(a.fault.crashes, 1U) << dist::to_string(hook);
    EXPECT_EQ(a.fault.recoveries, 1U) << dist::to_string(hook);
    EXPECT_EQ(a.history.size(), 3U) << dist::to_string(hook);
    const TrainResult b =
        train_link_prediction(problem().split, problem().dataset.features, config);
    expect_same_result(a, b, dist::to_string(hook));
  }
}

TEST(CommRegime, PerEpochNormalizationSurvivesEarlyStop) {
  // PR 2 regression, extended to the sync metric: per-epoch averages divide
  // by the epochs actually run, not the configured count.
  auto config = regime_config(dist::SyncMode::kGradientAveraging,
                              dist::CommHookKind::kTopK, 1, 8);
  config.eval_every = 1;
  config.patience = 1;
  const TrainResult result =
      train_link_prediction(problem().split, problem().dataset.features, config);
  ASSERT_FALSE(result.history.empty());
  const auto epochs = static_cast<double>(result.history.size());
  EXPECT_DOUBLE_EQ(result.comm_gigabytes_per_epoch, result.comm.total_gigabytes() / epochs);
  EXPECT_DOUBLE_EQ(result.sync_gigabytes_per_epoch, result.comm.sync_gigabytes() / epochs);

  // Per-epoch records sum back to the totals.
  double sync_sum = 0.0;
  for (const auto& record : result.history) sync_sum += record.sync_gigabytes;
  EXPECT_NEAR(sync_sum, result.comm.sync_gigabytes(), 1e-12);
}

TEST(CommRegime, SingleWorkerRunsAreUnmetered) {
  auto config = regime_config(dist::SyncMode::kGradientAveraging,
                              dist::CommHookKind::kTopK, 1, 2);
  config.method = Method::kCentralized;
  const TrainResult result =
      train_link_prediction(problem().split, problem().dataset.features, config);
  EXPECT_EQ(result.comm.sync_bytes, 0U);
  EXPECT_DOUBLE_EQ(result.sync_gigabytes_per_epoch, 0.0);
}

}  // namespace
}  // namespace splpg::core
