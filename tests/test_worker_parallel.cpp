// Worker-side parallelism: the DESIGN.md §6 determinism contract applied to
// the per-worker hot paths. The tentpole guarantee under test: a full
// training run's observable result — loss curve, metrics, communication
// bytes, fault outcomes, and final parameters — is BIT-identical for every
// worker pool width and pipeline depth, across sync modes and under injected
// faults. Plus direct bit-identity of the chunked neighbor sampler and
// in-order crash delivery through the pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "sampling/edge_split.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "tensor/vec.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace splpg::core {
namespace {

void expect_same_matrix(const tensor::Matrix& a, const tensor::Matrix& b,
                        const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_TRUE(std::equal(a.data().begin(), a.data().end(), b.data().begin())) << what;
}

/// Full bitwise equality of everything a training run reports.
void expect_same_result(const TrainResult& a, const TrainResult& b,
                        const std::string& what) {
  ASSERT_EQ(a.history.size(), b.history.size()) << what;
  for (std::size_t e = 0; e < a.history.size(); ++e) {
    EXPECT_EQ(a.history[e].mean_loss, b.history[e].mean_loss) << what << " epoch " << e;
    EXPECT_EQ(a.history[e].comm_gigabytes, b.history[e].comm_gigabytes)
        << what << " epoch " << e;
    EXPECT_EQ(a.history[e].val_hits, b.history[e].val_hits) << what << " epoch " << e;
    EXPECT_EQ(a.history[e].test_hits, b.history[e].test_hits) << what << " epoch " << e;
  }
  EXPECT_EQ(a.best_val_hits, b.best_val_hits) << what;
  EXPECT_EQ(a.test_hits, b.test_hits) << what;
  EXPECT_EQ(a.test_auc, b.test_auc) << what;
  EXPECT_EQ(a.comm.total_bytes(), b.comm.total_bytes()) << what;
  ASSERT_EQ(a.per_worker_comm.size(), b.per_worker_comm.size()) << what;
  for (std::size_t w = 0; w < a.per_worker_comm.size(); ++w) {
    EXPECT_EQ(a.per_worker_comm[w].total_bytes(), b.per_worker_comm[w].total_bytes())
        << what << " worker " << w;
  }
  EXPECT_EQ(a.fault.transient_failures, b.fault.transient_failures) << what;
  EXPECT_EQ(a.fault.retries, b.fault.retries) << what;
  EXPECT_EQ(a.fault.permanent_failures, b.fault.permanent_failures) << what;
  EXPECT_EQ(a.fault.wasted_bytes, b.fault.wasted_bytes) << what;
  EXPECT_EQ(a.fault.degraded_batches, b.fault.degraded_batches) << what;
  EXPECT_EQ(a.fault.crashes, b.fault.crashes) << what;
  EXPECT_EQ(a.fault.recoveries, b.fault.recoveries) << what;
  EXPECT_EQ(a.total_batches, b.total_batches) << what;
  const auto& pa = a.model->parameters();
  const auto& pb = b.model->parameters();
  ASSERT_EQ(pa.size(), pb.size()) << what;
  for (std::size_t p = 0; p < pa.size(); ++p) {
    expect_same_matrix(pa[p].value(), pb[p].value(), what + " param " + std::to_string(p));
  }
}

void expect_same_graph(const sampling::ComputationGraph& a,
                       const sampling::ComputationGraph& b, const std::string& what) {
  ASSERT_EQ(a.blocks.size(), b.blocks.size()) << what;
  for (std::size_t l = 0; l < a.blocks.size(); ++l) {
    EXPECT_EQ(a.blocks[l].src_nodes, b.blocks[l].src_nodes) << what << " layer " << l;
    EXPECT_EQ(a.blocks[l].dst_count, b.blocks[l].dst_count) << what << " layer " << l;
    EXPECT_EQ(a.blocks[l].edge_src, b.blocks[l].edge_src) << what << " layer " << l;
    EXPECT_EQ(a.blocks[l].edge_dst, b.blocks[l].edge_dst) << what << " layer " << l;
    EXPECT_EQ(a.blocks[l].edge_weight, b.blocks[l].edge_weight) << what << " layer " << l;
  }
}

// ---- chunked neighbor sampling ----

TEST(WorkerParallelSampling, PooledSampleIsBitIdenticalAtEveryWidth) {
  const auto dataset = data::make_dataset("cora", 0.15, 9);
  util::Rng split_rng = util::Rng(9).split("split");
  const auto split = sampling::split_edges(dataset.graph, sampling::SplitOptions{}, split_rng);
  sampling::GraphProvider provider(split.train_graph);
  const sampling::NeighborSampler sampler({10, 5});

  std::vector<graph::NodeId> seeds;
  util::Rng seed_rng(17);
  for (int i = 0; i < 300; ++i) {
    seeds.push_back(
        static_cast<graph::NodeId>(seed_rng.uniform_u64(split.train_graph.num_nodes())));
  }

  util::Rng rng_serial(5);
  const auto serial = sampler.sample(provider, seeds, rng_serial);
  const std::uint64_t after_one_draw = rng_serial.next();
  for (const std::size_t threads : {2U, 4U, 7U}) {
    util::ThreadPool pool(threads);
    util::Rng rng_pooled(5);
    const auto pooled = sampler.sample(provider, seeds, rng_pooled, &pool);
    expect_same_graph(serial, pooled, "threads=" + std::to_string(threads));
    // The caller-visible stream must advance identically too (one draw).
    EXPECT_EQ(after_one_draw, rng_pooled.next());
  }
}

TEST(WorkerParallelSampling, AdvancesCallerRngByExactlyOneDraw) {
  const auto dataset = data::make_dataset("citeseer", 0.1, 4);
  sampling::GraphProvider provider(dataset.graph);
  const sampling::NeighborSampler sampler({3, 3, 3});
  const std::vector<graph::NodeId> seeds{0, 1, 2, 3};

  util::Rng rng(42);
  util::Rng reference(42);
  (void)sampler.sample(provider, seeds, rng);
  (void)reference.next();
  // Consumption is constant — independent of how many nodes were expanded —
  // so back-to-back sample() calls stay aligned across configurations.
  EXPECT_EQ(rng.next(), reference.next());
}

// ---- randomized bit-identity property over full training runs ----

struct IterationPlan {
  std::string dataset;
  double scale = 0.1;
  std::uint64_t seed = 1;
  std::uint32_t partitions = 2;
  dist::SyncMode sync = dist::SyncMode::kGradientAveraging;
  bool faults = false;
  bool crash = false;
  std::size_t threads = 2;
};

TrainConfig plan_config(const IterationPlan& plan) {
  TrainConfig config;
  config.method = Method::kSplpg;
  config.model.hidden_dim = 8;
  config.model.num_layers = 2;
  config.epochs = 2;
  config.batch_size = 32;
  config.num_partitions = plan.partitions;
  config.max_batches_per_epoch = 2;
  config.sync = plan.sync;
  config.seed = plan.seed;
  if (plan.faults) {
    config.faults.transient_fetch_failure_rate = 0.3;
    config.faults.fetch_latency_seconds = 1e-4;
    config.retry.max_attempts = 2;
    if (plan.crash && plan.partitions >= 2) {
      // Round 0 of epoch 1 always exists, however small the random graph.
      config.faults.crashes.push_back(dist::CrashEvent{plan.partitions - 1, 1, 0});
    }
  }
  return config;
}

/// ~20 randomized configurations; each asserts the run is bit-identical
/// between the serial baseline and (pooled, pooled+pipelined) variants. The
/// thread width cycles through {2, 4, 7} so widths both below and above the
/// per-partition work-chunk count get exercised.
TEST(WorkerParallelProperty, RandomizedRunsAreBitIdenticalAcrossThreadsAndPipeline) {
  util::Rng meta_rng(20260806);
  const std::size_t widths[] = {2, 4, 7};
  for (int iteration = 0; iteration < 20; ++iteration) {
    IterationPlan plan;
    plan.dataset = (iteration % 2 == 0) ? "cora" : "citeseer";
    plan.scale = 0.06 + 0.04 * meta_rng.uniform();
    plan.seed = meta_rng.next();
    plan.partitions = 1 + static_cast<std::uint32_t>(meta_rng.uniform_u64(3));
    plan.sync = (meta_rng.uniform() < 0.5) ? dist::SyncMode::kGradientAveraging
                                           : dist::SyncMode::kModelAveraging;
    plan.faults = iteration % 2 == 1;
    // Crash recovery needs a surviving peer, so only claim it with >= 2 parts.
    plan.crash = (meta_rng.uniform() < 0.5) && plan.faults && plan.partitions >= 2;
    plan.threads = widths[iteration % 3];

    const auto dataset = data::make_dataset(plan.dataset, plan.scale, plan.seed);
    util::Rng split_rng = util::Rng(plan.seed).split("split");
    const auto split =
        sampling::split_edges(dataset.graph, sampling::SplitOptions{}, split_rng);
    const TrainConfig base = plan_config(plan);

    const std::string tag = "iter=" + std::to_string(iteration) + " " + plan.dataset +
                            " parts=" + std::to_string(plan.partitions) +
                            " threads=" + std::to_string(plan.threads) +
                            (plan.faults ? " faults" : "") + (plan.crash ? "+crash" : "");
    SCOPED_TRACE(tag);

    const TrainResult baseline = train_link_prediction(split, dataset.features, base);
    if (plan.crash) {
      EXPECT_GE(baseline.fault.crashes, 1U);
    }

    TrainConfig pooled = base;
    pooled.worker_threads = plan.threads;
    expect_same_result(baseline, train_link_prediction(split, dataset.features, pooled),
                       "pooled");

    TrainConfig pipelined = pooled;
    pipelined.pipeline_batches = 2;
    expect_same_result(baseline, train_link_prediction(split, dataset.features, pipelined),
                       "pipelined");
  }
}

/// The full width x depth matrix on one fixed configuration per sync mode.
TEST(WorkerParallelProperty, FullMatrixOnFixedConfig) {
  const auto dataset = data::make_dataset("cora", 0.1, 77);
  util::Rng split_rng = util::Rng(77).split("split");
  const auto split = sampling::split_edges(dataset.graph, sampling::SplitOptions{}, split_rng);

  for (const auto sync :
       {dist::SyncMode::kGradientAveraging, dist::SyncMode::kModelAveraging}) {
    IterationPlan plan;
    plan.seed = 77;
    plan.partitions = 2;
    plan.sync = sync;
    const TrainConfig base = plan_config(plan);
    const TrainResult baseline = train_link_prediction(split, dataset.features, base);
    for (const std::size_t threads : {1U, 2U, 4U, 7U}) {
      for (const std::uint32_t depth : {0U, 2U}) {
        if (threads == 1 && depth == 0) continue;
        TrainConfig variant = base;
        variant.worker_threads = threads;
        variant.pipeline_batches = depth;
        expect_same_result(baseline,
                           train_link_prediction(split, dataset.features, variant),
                           "sync=" + std::to_string(static_cast<int>(sync)) +
                               " threads=" + std::to_string(threads) +
                               " pipeline=" + std::to_string(depth));
      }
    }
  }
}

/// The same matrix pinned to the scalar kernel backend — the in-process
/// equivalent of a `SPLPG_VEC=scalar` run. The width/depth bit-identity
/// contract must hold on every backend, including the legacy-exact one.
TEST(WorkerParallelProperty, FullMatrixHoldsOnScalarBackend) {
  const tensor::VecBackend previous = tensor::vec_active_backend();
  ASSERT_TRUE(tensor::set_vec_backend(tensor::VecBackend::kScalar));

  const auto dataset = data::make_dataset("citeseer", 0.1, 88);
  util::Rng split_rng = util::Rng(88).split("split");
  const auto split = sampling::split_edges(dataset.graph, sampling::SplitOptions{}, split_rng);

  IterationPlan plan;
  plan.seed = 88;
  plan.partitions = 2;
  const TrainConfig base = plan_config(plan);
  const TrainResult baseline = train_link_prediction(split, dataset.features, base);
  for (const std::size_t threads : {1U, 2U, 4U, 7U}) {
    for (const std::uint32_t depth : {0U, 2U}) {
      if (threads == 1 && depth == 0) continue;
      TrainConfig variant = base;
      variant.worker_threads = threads;
      variant.pipeline_batches = depth;
      expect_same_result(baseline, train_link_prediction(split, dataset.features, variant),
                         "scalar threads=" + std::to_string(threads) +
                             " pipeline=" + std::to_string(depth));
    }
  }

  tensor::set_vec_backend(previous);
}

// ---- pipeline crash semantics ----

TEST(WorkerPipeline, CrashDuringPipelinedEpochRecoversIdentically) {
  const auto dataset = data::make_dataset("cora", 0.1, 13);
  util::Rng split_rng = util::Rng(13).split("split");
  const auto split = sampling::split_edges(dataset.graph, sampling::SplitOptions{}, split_rng);

  IterationPlan plan;
  plan.seed = 13;
  plan.partitions = 3;
  plan.faults = true;
  plan.crash = true;
  TrainConfig base = plan_config(plan);
  base.epochs = 3;
  base.max_batches_per_epoch = 3;
  // A crash in the middle of epoch 2's rounds: with pipeline depth > rounds
  // the producer has prepared every remaining round before the consumer
  // reaches the crash marker — the marker must still be delivered in order.
  base.faults.crashes.clear();
  base.faults.crashes.push_back(dist::CrashEvent{1, 2, 1});

  const TrainResult baseline = train_link_prediction(split, dataset.features, base);
  EXPECT_EQ(baseline.fault.crashes, 1U);
  EXPECT_EQ(baseline.fault.recoveries, 1U);

  for (const std::uint32_t depth : {1U, 2U, 8U}) {
    TrainConfig pipelined = base;
    pipelined.worker_threads = 2;
    pipelined.pipeline_batches = depth;
    expect_same_result(baseline, train_link_prediction(split, dataset.features, pipelined),
                       "pipeline=" + std::to_string(depth));
  }
}

TEST(WorkerPipeline, DeepPipelineOnSingleWorkerRuns) {
  const auto dataset = data::make_dataset("citeseer", 0.08, 21);
  util::Rng split_rng = util::Rng(21).split("split");
  const auto split = sampling::split_edges(dataset.graph, sampling::SplitOptions{}, split_rng);

  IterationPlan plan;
  plan.seed = 21;
  plan.partitions = 1;
  TrainConfig base = plan_config(plan);
  base.method = Method::kCentralized;
  const TrainResult baseline = train_link_prediction(split, dataset.features, base);

  TrainConfig pipelined = base;
  pipelined.pipeline_batches = 16;  // far deeper than the round count
  expect_same_result(baseline, train_link_prediction(split, dataset.features, pipelined),
                     "deep pipeline");
}

}  // namespace
}  // namespace splpg::core
