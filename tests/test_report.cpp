// Tests for the CSV result exporters.
#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"

namespace splpg::core {
namespace {

TrainResult sample_result() {
  TrainResult result;
  result.method = Method::kSplpg;
  result.test_hits = 0.25;
  result.test_auc = 0.8;
  result.eval_k = 13;
  result.comm.structure_bytes = 1024;
  result.comm.feature_bytes = 2048;
  result.comm_gigabytes_per_epoch = 1e-6;
  result.partition_edge_cut = 42;
  result.partition_balance = 1.05;
  EpochRecord record;
  record.epoch = 1;
  record.mean_loss = 0.69;
  record.comm_gigabytes = 1e-6;
  record.val_hits = 0.2;
  record.test_hits = 0.25;
  record.test_auc = 0.8;
  record.seconds = 0.5;
  result.history.push_back(record);
  record.epoch = 2;
  record.val_hits = -1.0;  // unevaluated epoch
  result.history.push_back(record);
  dist::CommStats w0;
  w0.structure_bytes = 1000;
  w0.structure_fetches = 3;
  result.per_worker_comm = {w0, dist::CommStats{}};
  return result;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::stringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

TEST(Report, HistoryCsvShape) {
  std::stringstream out;
  write_history_csv(out, sample_result());
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3U);  // header + 2 epochs
  EXPECT_EQ(lines[0], "epoch,mean_loss,comm_gigabytes,val_hits,test_hits,test_auc,seconds");
  EXPECT_EQ(lines[1].substr(0, 2), "1,");
  EXPECT_NE(lines[2].find(",-1,"), std::string::npos);  // sentinel preserved
}

TEST(Report, SummaryCsvShapeAndContent) {
  std::stringstream out;
  write_summary_csv(out, {"cora/p=4"}, {sample_result()});
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2U);
  EXPECT_NE(lines[1].find("cora/p=4,splpg,0.25,0.8,13,"), std::string::npos);
  EXPECT_NE(lines[1].find(",42,1.05"), std::string::npos);
}

TEST(Report, SummaryCsvArityMismatchThrows) {
  std::stringstream out;
  EXPECT_THROW(write_summary_csv(out, {"a", "b"}, {sample_result()}), std::invalid_argument);
}

TEST(Report, WorkerCommCsv) {
  std::stringstream out;
  write_worker_comm_csv(out, sample_result());
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3U);
  EXPECT_EQ(lines[1], "0,1000,0,3,0");
  EXPECT_EQ(lines[2], "1,0,0,0,0");
}

}  // namespace
}  // namespace splpg::core
