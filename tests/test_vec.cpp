// Kernel-engine tests: backend registry/dispatch, per-backend known-answer
// checks, randomized scalar-vs-SIMD bound property tests (the documented
// ULP bounds from vec.hpp), the bit-identical-on-every-backend kernels
// (adam_step, sigmoid_grad, xpby, alpha=1 axpy), and a per-backend
// end-to-end training determinism matrix across thread widths {1,2,4,7} x
// pipeline depths {0,2}.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "sampling/edge_split.hpp"
#include "tensor/vec.hpp"
#include "util/rng.hpp"

namespace splpg::tensor {
namespace {

constexpr VecBackend kAllBackends[] = {VecBackend::kScalar, VecBackend::kSse2,
                                       VecBackend::kAvx2, VecBackend::kAvx512};

std::vector<VecBackend> supported_backends() {
  std::vector<VecBackend> out;
  for (const VecBackend backend : kAllBackends) {
    if (vec_backend_supported(backend)) out.push_back(backend);
  }
  return out;
}

std::vector<VecBackend> simd_backends() {
  std::vector<VecBackend> out = supported_backends();
  out.erase(std::remove(out.begin(), out.end(), VecBackend::kScalar), out.end());
  return out;
}

/// Restores the process-wide active backend on scope exit.
class BackendGuard {
 public:
  BackendGuard() : previous_(vec_active_backend()) {}
  ~BackendGuard() { set_vec_backend(previous_); }

 private:
  VecBackend previous_;
};

/// Array sizes straddling every backend's vector width, its 2x-unrolled
/// stride, and ragged tails — including the {1, 2, 4, 7} widths the
/// training-level matrix uses as thread counts.
constexpr std::size_t kSizes[] = {1, 2, 4, 7, 8, 15, 16, 17, 31, 33, 64, 257, 1003};

std::vector<float> random_f32(std::size_t n, util::Rng& rng, float lo, float hi) {
  std::vector<float> out(n);
  for (float& x : out) x = lo + (hi - lo) * static_cast<float>(rng.uniform());
  return out;
}

std::vector<double> random_f64(std::size_t n, util::Rng& rng, double lo, double hi) {
  std::vector<double> out(n);
  for (double& x : out) x = lo + (hi - lo) * rng.uniform();
  return out;
}

// ---- registry / dispatch ----

TEST(VecBackendRegistry, ScalarIsAlwaysCompiledAndSupported) {
  EXPECT_TRUE(vec_backend_compiled(VecBackend::kScalar));
  EXPECT_TRUE(vec_backend_supported(VecBackend::kScalar));
  const VecKernels& kern = vec_kernels_for(VecBackend::kScalar);
  EXPECT_EQ(kern.backend, VecBackend::kScalar);
  EXPECT_EQ(kern.width_f32, 1U);
  EXPECT_EQ(kern.width_f64, 1U);
}

TEST(VecBackendRegistry, NamesRoundTripThroughParse) {
  for (const VecBackend backend : kAllBackends) {
    VecBackend parsed = VecBackend::kScalar;
    ASSERT_TRUE(parse_vec_backend(vec_backend_name(backend), parsed))
        << vec_backend_name(backend);
    EXPECT_EQ(parsed, backend);
  }
  VecBackend parsed = VecBackend::kScalar;
  EXPECT_FALSE(parse_vec_backend("", parsed));
  EXPECT_FALSE(parse_vec_backend("avx", parsed));
  EXPECT_FALSE(parse_vec_backend("AVX2", parsed));
  EXPECT_FALSE(parse_vec_backend("neon", parsed));
}

TEST(VecBackendRegistry, SupportedTablesAreComplete) {
  for (const VecBackend backend : supported_backends()) {
    const VecKernels& kern = vec_kernels_for(backend);
    EXPECT_EQ(kern.backend, backend);
    EXPECT_STREQ(kern.name, vec_backend_name(backend));
    EXPECT_GE(kern.width_f32, 1U);
    EXPECT_GE(kern.width_f64, 1U);
    EXPECT_NE(kern.axpy_f32, nullptr);
    EXPECT_NE(kern.dot_f32, nullptr);
    EXPECT_NE(kern.axpy_f64, nullptr);
    EXPECT_NE(kern.xpby_f64, nullptr);
    EXPECT_NE(kern.dot_f64, nullptr);
    EXPECT_NE(kern.ssd_f64, nullptr);
    EXPECT_NE(kern.spmv_row_f64, nullptr);
    EXPECT_NE(kern.exp_f32, nullptr);
    EXPECT_NE(kern.sigmoid_f32, nullptr);
    EXPECT_NE(kern.sigmoid_grad_f32, nullptr);
    EXPECT_NE(kern.bce_forward_f64, nullptr);
    EXPECT_NE(kern.bce_grad_f32, nullptr);
    EXPECT_NE(kern.adam_step_f32, nullptr);
  }
}

TEST(VecBackendRegistry, BestBackendIsSupportedAndWidest) {
  const VecBackend best = vec_best_backend();
  EXPECT_TRUE(vec_backend_supported(best));
  for (const VecBackend backend : supported_backends()) {
    EXPECT_LE(vec_kernels_for(backend).width_f32, vec_kernels_for(best).width_f32);
  }
}

TEST(VecBackendRegistry, SetBackendSwitchesActiveTable) {
  BackendGuard guard;
  for (const VecBackend backend : supported_backends()) {
    ASSERT_TRUE(set_vec_backend(backend));
    EXPECT_EQ(vec_active_backend(), backend);
    EXPECT_EQ(vec_kernels().backend, backend);
  }
  for (const VecBackend backend : kAllBackends) {
    if (vec_backend_supported(backend)) continue;
    const VecBackend before = vec_active_backend();
    EXPECT_FALSE(set_vec_backend(backend));
    EXPECT_EQ(vec_active_backend(), before);  // unchanged on failure
  }
}

// ---- known-answer tests (exact integer arithmetic: every backend must be
// exact, not just close) ----

TEST(VecKnownAnswer, AxpyF32) {
  for (const VecBackend backend : supported_backends()) {
    const VecKernels& kern = vec_kernels_for(backend);
    std::vector<float> dst(19);
    std::vector<float> src(19);
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i] = static_cast<float>(i);
      src[i] = static_cast<float>(2 * i + 1);
    }
    kern.axpy_f32(dst.data(), src.data(), 3.0F, dst.size());
    for (std::size_t i = 0; i < dst.size(); ++i) {
      EXPECT_EQ(dst[i], static_cast<float>(i + 3 * (2 * i + 1))) << kern.name << " i=" << i;
    }
  }
}

TEST(VecKnownAnswer, DotF32) {
  for (const VecBackend backend : supported_backends()) {
    const VecKernels& kern = vec_kernels_for(backend);
    std::vector<float> a(23);
    std::vector<float> b(23);
    float expected = 0.0F;
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<float>(i % 5) - 2.0F;
      b[i] = static_cast<float>(i % 7) - 3.0F;
      expected += a[i] * b[i];
    }
    // Small integers: every association of the sum is exact.
    EXPECT_EQ(kern.dot_f32(a.data(), b.data(), a.size()), expected) << kern.name;
    EXPECT_EQ(kern.dot_f32(a.data(), b.data(), 0), 0.0F) << kern.name;
  }
}

TEST(VecKnownAnswer, DoubleKernels) {
  for (const VecBackend backend : supported_backends()) {
    const VecKernels& kern = vec_kernels_for(backend);
    std::vector<double> a(13);
    std::vector<double> b(13);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<double>(i) - 6.0;
      b[i] = static_cast<double>(2 * i);
    }
    double dot = 0.0;
    double ssd = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      dot += a[i] * b[i];
      const double d = a[i] - b[i];
      ssd += d * d;
    }
    EXPECT_EQ(kern.dot_f64(a.data(), b.data(), a.size()), dot) << kern.name;
    EXPECT_EQ(kern.ssd_f64(a.data(), b.data(), a.size()), ssd) << kern.name;

    std::vector<double> dst = a;
    kern.axpy_f64(dst.data(), b.data(), 0.5, dst.size());
    for (std::size_t i = 0; i < dst.size(); ++i) EXPECT_EQ(dst[i], a[i] + 0.5 * b[i]);

    dst = a;
    kern.xpby_f64(dst.data(), b.data(), 2.0, dst.size());
    for (std::size_t i = 0; i < dst.size(); ++i) EXPECT_EQ(dst[i], b[i] + 2.0 * a[i]);
  }
}

TEST(VecKnownAnswer, SpmvRowGathers) {
  // x indexed out of order, with repeats — exercises the gather path.
  const std::vector<double> x{10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0};
  const std::vector<std::uint32_t> cols{8, 0, 3, 3, 1, 7, 2, 5, 6, 4, 0};
  std::vector<double> vals(cols.size());
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = static_cast<double>(i + 1);
  double expected = 0.0;
  for (std::size_t i = 0; i < vals.size(); ++i) expected += vals[i] * x[cols[i]];
  for (const VecBackend backend : supported_backends()) {
    const VecKernels& kern = vec_kernels_for(backend);
    EXPECT_EQ(kern.spmv_row_f64(vals.data(), cols.data(), x.data(), vals.size()), expected)
        << kern.name;
    EXPECT_EQ(kern.spmv_row_f64(vals.data(), cols.data(), x.data(), 0), 0.0) << kern.name;
  }
}

TEST(VecKnownAnswer, ExpAndSigmoidFixedPoints) {
  for (const VecBackend backend : supported_backends()) {
    const VecKernels& kern = vec_kernels_for(backend);
    // 32 zeros so the vector path (not just the tail) is exercised.
    std::vector<float> src(32, 0.0F);
    std::vector<float> dst(32, -1.0F);
    kern.exp_f32(dst.data(), src.data(), src.size());
    for (const float y : dst) EXPECT_EQ(y, 1.0F) << kern.name;  // exp(0) exact
    kern.sigmoid_f32(dst.data(), src.data(), src.size());
    for (const float y : dst) EXPECT_EQ(y, 0.5F) << kern.name;  // sigmoid(0) exact

    const std::vector<float> extremes(32, 40.0F);
    kern.sigmoid_f32(dst.data(), extremes.data(), extremes.size());
    for (const float y : dst) EXPECT_EQ(y, 1.0F) << kern.name;  // saturated high
    std::vector<float> negated(32, -40.0F);
    kern.sigmoid_f32(dst.data(), negated.data(), negated.size());
    for (const float y : dst) {
      EXPECT_GE(y, 0.0F) << kern.name;
      EXPECT_LT(y, 1e-15F) << kern.name;  // saturated low, never negative
    }
  }
}

TEST(VecKnownAnswer, BceForwardMatchesClosedForm) {
  // z = 0, y = 0.5: every term is exactly log(2); n * log(2) within float
  // rounding of the per-term transcendental.
  const std::size_t n = 40;
  const std::vector<float> logits(n, 0.0F);
  const std::vector<float> labels(n, 0.5F);
  const double expected = static_cast<double>(n) * std::log(2.0);
  for (const VecBackend backend : supported_backends()) {
    const VecKernels& kern = vec_kernels_for(backend);
    EXPECT_NEAR(kern.bce_forward_f64(logits.data(), labels.data(), n), expected, 1e-5)
        << kern.name;
  }
}

// ---- scalar-vs-SIMD bound property tests ----

TEST(VecUlpProperty, DotF32WithinReassociationBound) {
  const VecKernels& scalar = vec_kernels_for(VecBackend::kScalar);
  util::Rng rng(101);
  for (const VecBackend backend : simd_backends()) {
    const VecKernels& kern = vec_kernels_for(backend);
    for (const std::size_t n : kSizes) {
      for (int round = 0; round < 4; ++round) {
        const auto a = random_f32(n, rng, -2.0F, 2.0F);
        const auto b = random_f32(n, rng, -2.0F, 2.0F);
        double magnitude = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          magnitude += std::abs(static_cast<double>(a[i]) * b[i]);
        }
        const double eps = std::numeric_limits<float>::epsilon();
        const double bound = 2.0 * (static_cast<double>(n) + 2.0) * eps * magnitude + 1e-12;
        const double got = kern.dot_f32(a.data(), b.data(), n);
        const double ref = scalar.dot_f32(a.data(), b.data(), n);
        EXPECT_LE(std::abs(got - ref), bound) << kern.name << " n=" << n;
      }
    }
  }
}

TEST(VecUlpProperty, DoubleReductionsWithinReassociationBound) {
  const VecKernels& scalar = vec_kernels_for(VecBackend::kScalar);
  util::Rng rng(103);
  for (const VecBackend backend : simd_backends()) {
    const VecKernels& kern = vec_kernels_for(backend);
    for (const std::size_t n : kSizes) {
      const auto a = random_f64(n, rng, -3.0, 3.0);
      const auto b = random_f64(n, rng, -3.0, 3.0);
      const double eps = std::numeric_limits<double>::epsilon();

      double dot_mag = 0.0;
      double ssd_mag = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        dot_mag += std::abs(a[i] * b[i]);
        ssd_mag += (a[i] - b[i]) * (a[i] - b[i]);
      }
      const double k = static_cast<double>(n) + 2.0;
      EXPECT_LE(std::abs(kern.dot_f64(a.data(), b.data(), n) -
                         scalar.dot_f64(a.data(), b.data(), n)),
                2.0 * k * eps * dot_mag + 1e-300)
          << kern.name << " dot n=" << n;
      EXPECT_LE(std::abs(kern.ssd_f64(a.data(), b.data(), n) -
                         scalar.ssd_f64(a.data(), b.data(), n)),
                2.0 * k * eps * ssd_mag + 1e-300)
          << kern.name << " ssd n=" << n;

      // spmv row: gather indices into a shared x.
      std::vector<std::uint32_t> cols(n);
      for (std::size_t i = 0; i < n; ++i) {
        cols[i] = static_cast<std::uint32_t>(rng.uniform_u64(n));
      }
      double spmv_mag = 0.0;
      for (std::size_t i = 0; i < n; ++i) spmv_mag += std::abs(a[i] * b[cols[i]]);
      EXPECT_LE(std::abs(kern.spmv_row_f64(a.data(), cols.data(), b.data(), n) -
                         scalar.spmv_row_f64(a.data(), cols.data(), b.data(), n)),
                2.0 * k * eps * spmv_mag + 1e-300)
          << kern.name << " spmv n=" << n;
    }
  }
}

TEST(VecUlpProperty, ExpF32WithinTranscendentalBound) {
  const VecKernels& scalar = vec_kernels_for(VecBackend::kScalar);
  util::Rng rng(107);
  for (const VecBackend backend : simd_backends()) {
    const VecKernels& kern = vec_kernels_for(backend);
    for (const std::size_t n : kSizes) {
      // Full finite range including the clamp regions at both ends.
      auto x = random_f32(n, rng, -95.0F, 85.0F);
      std::vector<float> got(n);
      std::vector<float> ref(n);
      kern.exp_f32(got.data(), x.data(), n);
      scalar.exp_f32(ref.data(), x.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        const double diff = std::abs(static_cast<double>(got[i]) - ref[i]);
        // 16 ULP relative, plus the documented 2^-120 absolute floor where
        // the polynomial clamps instead of denormal-underflowing.
        const double bound = 16.0 * std::numeric_limits<float>::epsilon() *
                                 std::abs(static_cast<double>(ref[i])) +
                             std::ldexp(1.0, -120);
        EXPECT_LE(diff, bound) << kern.name << " x=" << x[i];
        EXPECT_GE(got[i], 0.0F) << kern.name << " x=" << x[i];
      }
    }
  }
}

TEST(VecUlpProperty, SigmoidF32WithinTranscendentalBound) {
  const VecKernels& scalar = vec_kernels_for(VecBackend::kScalar);
  util::Rng rng(109);
  for (const VecBackend backend : simd_backends()) {
    const VecKernels& kern = vec_kernels_for(backend);
    for (const std::size_t n : kSizes) {
      auto x = random_f32(n, rng, -60.0F, 60.0F);
      std::vector<float> got(n);
      std::vector<float> ref(n);
      kern.sigmoid_f32(got.data(), x.data(), n);
      scalar.sigmoid_f32(ref.data(), x.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        const double bound = 16.0 * std::numeric_limits<float>::epsilon() *
                                 std::abs(static_cast<double>(ref[i])) +
                             std::ldexp(1.0, -120);
        EXPECT_LE(std::abs(static_cast<double>(got[i]) - ref[i]), bound)
            << kern.name << " x=" << x[i];
      }
    }
  }
}

TEST(VecUlpProperty, BceForwardWithinSummedBound) {
  const VecKernels& scalar = vec_kernels_for(VecBackend::kScalar);
  util::Rng rng(113);
  for (const VecBackend backend : simd_backends()) {
    const VecKernels& kern = vec_kernels_for(backend);
    for (const std::size_t n : kSizes) {
      const auto logits = random_f32(n, rng, -30.0F, 30.0F);
      auto labels = random_f32(n, rng, 0.0F, 1.0F);
      for (float& y : labels) y = y < 0.5F ? 0.0F : 1.0F;
      const double got = kern.bce_forward_f64(logits.data(), labels.data(), n);
      const double ref = scalar.bce_forward_f64(logits.data(), labels.data(), n);
      double max_term = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        max_term = std::max(max_term, std::abs(static_cast<double>(logits[i])) + 1.0);
      }
      // Terms are summed in the same (ascending) order on every backend, so
      // the sum inherits the per-term transcendental bound.
      const double bound =
          static_cast<double>(n) *
          (16.0 * std::numeric_limits<float>::epsilon() * max_term + 1e-7);
      EXPECT_LE(std::abs(got - ref), bound) << kern.name << " n=" << n;
    }
  }
}

TEST(VecUlpProperty, BceGradWithinElementwiseBound) {
  const VecKernels& scalar = vec_kernels_for(VecBackend::kScalar);
  util::Rng rng(127);
  for (const VecBackend backend : simd_backends()) {
    const VecKernels& kern = vec_kernels_for(backend);
    for (const std::size_t n : kSizes) {
      const auto logits = random_f32(n, rng, -30.0F, 30.0F);
      const auto labels = random_f32(n, rng, 0.0F, 1.0F);
      const float seed = 1.0F / 64.0F;
      std::vector<float> got(n);
      std::vector<float> ref(n);
      kern.bce_grad_f32(got.data(), logits.data(), labels.data(), seed, n);
      scalar.bce_grad_f32(ref.data(), logits.data(), labels.data(), seed, n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(got[i], ref[i], 1e-6F * std::abs(seed) + 1e-9F)
            << kern.name << " i=" << i;
      }
    }
  }
}

// ---- bit-identical-on-every-backend kernels ----

TEST(VecBitIdentity, AdamStepIdenticalOnEveryBackend) {
  const VecKernels& scalar = vec_kernels_for(VecBackend::kScalar);
  util::Rng rng(131);
  for (const std::size_t n : kSizes) {
    const auto grad = random_f32(n, rng, -1.0F, 1.0F);
    const auto value0 = random_f32(n, rng, -1.0F, 1.0F);
    const auto m0 = random_f32(n, rng, -0.1F, 0.1F);
    const auto v0 = random_f32(n, rng, 0.0F, 0.1F);
    auto value_ref = value0;
    auto m_ref = m0;
    auto v_ref = v0;
    scalar.adam_step_f32(value_ref.data(), m_ref.data(), v_ref.data(), grad.data(), n, 0.9F,
                         0.999F, 1e-2F, 0.1F, 0.001F, 1e-8F);
    for (const VecBackend backend : simd_backends()) {
      const VecKernels& kern = vec_kernels_for(backend);
      auto value = value0;
      auto m = m0;
      auto v = v0;
      kern.adam_step_f32(value.data(), m.data(), v.data(), grad.data(), n, 0.9F, 0.999F,
                         1e-2F, 0.1F, 0.001F, 1e-8F);
      EXPECT_EQ(0, std::memcmp(value.data(), value_ref.data(), n * sizeof(float)))
          << kern.name << " n=" << n;
      EXPECT_EQ(0, std::memcmp(m.data(), m_ref.data(), n * sizeof(float)))
          << kern.name << " n=" << n;
      EXPECT_EQ(0, std::memcmp(v.data(), v_ref.data(), n * sizeof(float)))
          << kern.name << " n=" << n;
    }
  }
}

TEST(VecBitIdentity, SigmoidGradIdenticalOnEveryBackend) {
  const VecKernels& scalar = vec_kernels_for(VecBackend::kScalar);
  util::Rng rng(137);
  for (const std::size_t n : kSizes) {
    const auto grad = random_f32(n, rng, -2.0F, 2.0F);
    const auto y = random_f32(n, rng, 0.0F, 1.0F);
    std::vector<float> ref(n);
    scalar.sigmoid_grad_f32(ref.data(), grad.data(), y.data(), n);
    for (const VecBackend backend : simd_backends()) {
      const VecKernels& kern = vec_kernels_for(backend);
      std::vector<float> got(n);
      kern.sigmoid_grad_f32(got.data(), grad.data(), y.data(), n);
      EXPECT_EQ(0, std::memcmp(got.data(), ref.data(), n * sizeof(float)))
          << kern.name << " n=" << n;
    }
  }
}

TEST(VecBitIdentity, XpbyAndUnitAxpyIdenticalOnEveryBackend) {
  const VecKernels& scalar = vec_kernels_for(VecBackend::kScalar);
  util::Rng rng(139);
  for (const std::size_t n : kSizes) {
    const auto src64 = random_f64(n, rng, -2.0, 2.0);
    const auto dst64 = random_f64(n, rng, -2.0, 2.0);
    const auto src32 = random_f32(n, rng, -2.0F, 2.0F);
    const auto dst32 = random_f32(n, rng, -2.0F, 2.0F);

    auto ref64 = dst64;
    scalar.xpby_f64(ref64.data(), src64.data(), 0.37, n);
    auto ref32 = dst32;
    scalar.axpy_f32(ref32.data(), src32.data(), 1.0F, n);

    for (const VecBackend backend : simd_backends()) {
      const VecKernels& kern = vec_kernels_for(backend);
      auto got64 = dst64;
      kern.xpby_f64(got64.data(), src64.data(), 0.37, n);
      EXPECT_EQ(0, std::memcmp(got64.data(), ref64.data(), n * sizeof(double)))
          << kern.name << " xpby n=" << n;
      // alpha = 1 products are exact, so even the FMA backends agree.
      auto got32 = dst32;
      kern.axpy_f32(got32.data(), src32.data(), 1.0F, n);
      EXPECT_EQ(0, std::memcmp(got32.data(), ref32.data(), n * sizeof(float)))
          << kern.name << " axpy1 n=" << n;
    }
  }
}

TEST(VecBitIdentity, SameBackendIsDeterministicCallToCall) {
  util::Rng rng(149);
  const std::size_t n = 257;
  const auto a = random_f32(n, rng, -5.0F, 5.0F);
  const auto b = random_f32(n, rng, -5.0F, 5.0F);
  for (const VecBackend backend : supported_backends()) {
    const VecKernels& kern = vec_kernels_for(backend);
    const float dot1 = kern.dot_f32(a.data(), b.data(), n);
    const float dot2 = kern.dot_f32(a.data(), b.data(), n);
    EXPECT_EQ(0, std::memcmp(&dot1, &dot2, sizeof(float))) << kern.name;
    std::vector<float> out1(n);
    std::vector<float> out2(n);
    kern.sigmoid_f32(out1.data(), a.data(), n);
    kern.sigmoid_f32(out2.data(), a.data(), n);
    EXPECT_EQ(0, std::memcmp(out1.data(), out2.data(), n * sizeof(float))) << kern.name;
  }
}

// ---- end-to-end: per-backend training determinism matrix ----

void expect_bitwise_same_training(const core::TrainResult& a, const core::TrainResult& b,
                                  const std::string& what) {
  ASSERT_EQ(a.history.size(), b.history.size()) << what;
  for (std::size_t e = 0; e < a.history.size(); ++e) {
    EXPECT_EQ(a.history[e].mean_loss, b.history[e].mean_loss) << what << " epoch " << e;
    EXPECT_EQ(a.history[e].val_hits, b.history[e].val_hits) << what << " epoch " << e;
  }
  EXPECT_EQ(a.test_hits, b.test_hits) << what;
  EXPECT_EQ(a.test_auc, b.test_auc) << what;
  const auto& pa = a.model->parameters();
  const auto& pb = b.model->parameters();
  ASSERT_EQ(pa.size(), pb.size()) << what;
  for (std::size_t p = 0; p < pa.size(); ++p) {
    const auto da = pa[p].value().data();
    const auto db = pb[p].value().data();
    ASSERT_EQ(da.size(), db.size()) << what;
    EXPECT_EQ(0, std::memcmp(da.data(), db.data(), da.size() * sizeof(float)))
        << what << " param " << p;
  }
}

/// Same backend + same seed must give the same bytes at EVERY thread width
/// and pipeline depth — the second tier of the determinism contract, checked
/// end to end through sampling, GEMM, aggregation, loss, and Adam.
TEST(VecTrainingMatrix, EveryBackendIsDeterministicAcrossWidthsAndDepths) {
  BackendGuard guard;
  const auto dataset = data::make_dataset("cora", 0.08, 5150);
  util::Rng split_rng = util::Rng(5150).split("split");
  const auto split = sampling::split_edges(dataset.graph, sampling::SplitOptions{}, split_rng);

  core::TrainConfig base;
  base.method = core::Method::kSplpg;
  base.model.hidden_dim = 8;
  base.model.num_layers = 2;
  base.epochs = 2;
  base.batch_size = 32;
  base.num_partitions = 2;
  base.max_batches_per_epoch = 2;
  base.seed = 5150;

  for (const VecBackend backend : supported_backends()) {
    ASSERT_TRUE(set_vec_backend(backend));
    const std::string name = vec_backend_name(backend);
    const core::TrainResult baseline =
        core::train_link_prediction(split, dataset.features, base);
    for (const std::size_t threads : {1U, 2U, 4U, 7U}) {
      for (const std::uint32_t depth : {0U, 2U}) {
        if (threads == 1 && depth == 0) continue;
        core::TrainConfig variant = base;
        variant.worker_threads = threads;
        variant.pipeline_batches = depth;
        expect_bitwise_same_training(
            baseline, core::train_link_prediction(split, dataset.features, variant),
            name + " threads=" + std::to_string(threads) +
                " depth=" + std::to_string(depth));
      }
    }
  }
}

/// Scalar and SIMD runs see the same data and make the same decisions; the
/// float results may differ only within accumulated kernel bounds. Loose
/// end-to-end sanity: losses track closely, metrics are sane.
TEST(VecTrainingMatrix, SimdLossTracksScalarLoss) {
  BackendGuard guard;
  const auto dataset = data::make_dataset("citeseer", 0.08, 86);
  util::Rng split_rng = util::Rng(86).split("split");
  const auto split = sampling::split_edges(dataset.graph, sampling::SplitOptions{}, split_rng);

  core::TrainConfig config;
  config.method = core::Method::kCentralized;
  config.model.hidden_dim = 8;
  config.model.num_layers = 2;
  config.epochs = 2;
  config.batch_size = 32;
  config.num_partitions = 1;
  config.max_batches_per_epoch = 2;
  config.seed = 86;

  ASSERT_TRUE(set_vec_backend(VecBackend::kScalar));
  const core::TrainResult scalar_run =
      core::train_link_prediction(split, dataset.features, config);
  for (const VecBackend backend : simd_backends()) {
    ASSERT_TRUE(set_vec_backend(backend));
    const core::TrainResult simd_run =
        core::train_link_prediction(split, dataset.features, config);
    ASSERT_EQ(scalar_run.history.size(), simd_run.history.size());
    for (std::size_t e = 0; e < scalar_run.history.size(); ++e) {
      EXPECT_NEAR(scalar_run.history[e].mean_loss, simd_run.history[e].mean_loss, 1e-3)
          << vec_backend_name(backend) << " epoch " << e;
    }
  }
}

}  // namespace
}  // namespace splpg::tensor
