// Parameterized property sweeps across module boundaries:
//  * CsrGraph structural invariants on random graphs of many shapes
//  * every training Method runs end-to-end and honors its communication
//    contract (vanilla methods transfer nothing; sharing methods do)
//  * sparsifier invariants across alpha levels and generators
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "sampling/edge_split.hpp"
#include "sparsify/sparsifier.hpp"

namespace splpg {
namespace {

using graph::CsrGraph;
using graph::NodeId;
using util::Rng;

// ---------------------------------------------------------------------------
// CsrGraph invariants across generators and sizes.

struct GraphCase {
  std::string generator;
  NodeId nodes;
  graph::EdgeId edges_or_k;
};

class GraphInvariants : public ::testing::TestWithParam<GraphCase> {
 protected:
  static CsrGraph make(const GraphCase& params) {
    Rng rng(99);
    if (params.generator == "sbm") {
      data::SbmParams sbm;
      sbm.num_nodes = params.nodes;
      sbm.num_edges = params.edges_or_k;
      sbm.num_communities = 5;
      return data::generate_sbm(sbm, rng);
    }
    if (params.generator == "ba") {
      return data::generate_barabasi_albert(params.nodes,
                                            static_cast<std::uint32_t>(params.edges_or_k), rng);
    }
    if (params.generator == "er") {
      return data::generate_erdos_renyi(params.nodes, params.edges_or_k, rng);
    }
    return data::generate_watts_strogatz(params.nodes,
                                         static_cast<std::uint32_t>(params.edges_or_k), 0.3,
                                         rng);
  }
};

TEST_P(GraphInvariants, StructureIsConsistent) {
  const CsrGraph graph = make(GetParam());

  // Degree sum == 2|E|; adjacency symmetric, sorted, self-loop free,
  // duplicate free; edge list canonical and consistent with has_edge.
  graph::EdgeId degree_sum = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const auto neighbors = graph.neighbors(v);
    degree_sum += neighbors.size();
    EXPECT_TRUE(std::is_sorted(neighbors.begin(), neighbors.end()));
    EXPECT_EQ(std::adjacent_find(neighbors.begin(), neighbors.end()), neighbors.end());
    for (const NodeId w : neighbors) {
      EXPECT_NE(w, v);
      EXPECT_TRUE(graph.has_edge(v, w));
      EXPECT_TRUE(graph.has_edge(w, v));
    }
  }
  EXPECT_EQ(degree_sum, 2 * graph.num_edges());

  std::set<graph::Edge> canonical;
  for (const auto& edge : graph.edges()) {
    EXPECT_LT(edge.u, edge.v);
    EXPECT_TRUE(canonical.insert(edge).second);
  }
  EXPECT_EQ(canonical.size(), graph.num_edges());
}

INSTANTIATE_TEST_SUITE_P(
    Generators, GraphInvariants,
    ::testing::Values(GraphCase{"sbm", 100, 400}, GraphCase{"sbm", 1000, 8000},
                      GraphCase{"ba", 200, 3}, GraphCase{"ba", 2000, 5},
                      GraphCase{"er", 150, 1000}, GraphCase{"er", 64, 64},
                      GraphCase{"ws", 120, 6}, GraphCase{"ws", 500, 10}),
    [](const auto& info) {
      return info.param.generator + "_" + std::to_string(info.param.nodes);
    });

// ---------------------------------------------------------------------------
// Every method trains end-to-end and honors its communication contract.

struct MethodProblem {
  data::Dataset dataset;
  sampling::LinkSplit split;
};

const MethodProblem& method_problem() {
  static const MethodProblem instance = [] {
    MethodProblem p;
    p.dataset = data::make_dataset("citeseer", 0.1, 23);
    util::Rng rng = util::Rng(23).split("split");
    p.split = sampling::split_edges(p.dataset.graph, sampling::SplitOptions{}, rng);
    return p;
  }();
  return instance;
}

class EveryMethod : public ::testing::TestWithParam<core::Method> {};

TEST_P(EveryMethod, TrainsAndHonorsCommContract) {
  const core::Method method = GetParam();
  core::TrainConfig config;
  config.method = method;
  config.model.hidden_dim = 16;
  config.model.num_layers = 2;
  config.epochs = 2;
  config.batch_size = 64;
  config.num_partitions = 3;
  config.max_batches_per_epoch = 2;
  config.sync = dist::SyncMode::kGradientAveraging;
  config.seed = 23;

  const auto result = core::train_link_prediction(method_problem().split,
                                                  method_problem().dataset.features, config);
  EXPECT_EQ(result.method, method);
  EXPECT_EQ(result.history.size(), 2U);
  EXPECT_NE(result.model, nullptr);
  EXPECT_GE(result.test_auc, 0.0);

  const auto policy = core::worker_policy(method);
  const bool expects_transfer = method != core::Method::kCentralized &&
                                policy.remote != dist::RemoteAdjacency::kNone;
  if (expects_transfer) {
    EXPECT_GT(result.comm.total_bytes(), 0U) << core::to_string(method);
  } else {
    EXPECT_EQ(result.comm.total_bytes(), 0U) << core::to_string(method);
  }
  if (core::uses_sparsification(method)) {
    EXPECT_GT(result.sparsify_seconds, 0.0);
  } else {
    EXPECT_DOUBLE_EQ(result.sparsify_seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, EveryMethod,
    ::testing::Values(core::Method::kCentralized, core::Method::kPsgdPa,
                      core::Method::kPsgdPaPlus, core::Method::kRandomTma,
                      core::Method::kRandomTmaPlus, core::Method::kSuperTma,
                      core::Method::kSuperTmaPlus, core::Method::kLlcg, core::Method::kSplpg,
                      core::Method::kSplpgPlus, core::Method::kSplpgMinus,
                      core::Method::kSplpgMinusMinus),
    [](const auto& info) {
      std::string name = core::to_string(info.param);
      for (char& c : name) {
        if (c == '+') c = 'P';
        if (c == '-') c = 'M';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Sparsifier invariants across alpha and sparsifier kind.

class SparsifierSweep
    : public ::testing::TestWithParam<std::pair<sparsify::SparsifierKind, double>> {};

TEST_P(SparsifierSweep, InvariantsHold) {
  const auto [kind, alpha] = GetParam();
  data::SbmParams params;
  params.num_nodes = 300;
  params.num_edges = 2400;
  Rng rng(7);
  const CsrGraph graph = data::generate_sbm(params, rng);

  const auto sparsifier = sparsify::make_sparsifier(kind, alpha);
  Rng sparsify_rng(8);
  sparsify::SparsifyStats stats;
  const CsrGraph sparse = sparsifier->sparsify(graph, sparsify_rng, &stats);

  // Node set preserved; edges are a subset; weights positive; draws = L.
  EXPECT_EQ(sparse.num_nodes(), graph.num_nodes());
  EXPECT_LE(sparse.num_edges(), graph.num_edges());
  EXPECT_EQ(stats.sampled_draws,
            static_cast<graph::EdgeId>(std::ceil(alpha * static_cast<double>(graph.num_edges()))));
  EXPECT_LE(stats.kept_edges, stats.sampled_draws);
  for (const auto& edge : sparse.edges()) EXPECT_TRUE(graph.has_edge(edge.u, edge.v));
  double total_weight = 0.0;
  for (const float w : sparse.edge_weights()) {
    EXPECT_GT(w, 0.0F);
    total_weight += w;
  }
  // Unbiasedness: E[total weight] = |E| for both kinds.
  EXPECT_NEAR(total_weight, static_cast<double>(graph.num_edges()),
              0.25 * static_cast<double>(graph.num_edges()));
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndAlphas, SparsifierSweep,
    ::testing::Values(std::pair{sparsify::SparsifierKind::kEffectiveResistance, 0.05},
                      std::pair{sparsify::SparsifierKind::kEffectiveResistance, 0.15},
                      std::pair{sparsify::SparsifierKind::kEffectiveResistance, 0.5},
                      std::pair{sparsify::SparsifierKind::kUniform, 0.05},
                      std::pair{sparsify::SparsifierKind::kUniform, 0.15},
                      std::pair{sparsify::SparsifierKind::kUniform, 0.5}));

}  // namespace
}  // namespace splpg
