// Finite-difference gradient verification through the GNN layers and the
// full link-prediction model — the complete backward path the trainer uses.
// The pooled variants re-run the same checks with a worker ThreadPool
// installed (tensor::ComputePoolScope) at several widths: the row-blocked
// matmul / edge-aggregation kernels must pass the same finite-difference
// test AND reproduce the serial gradients bitwise.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/gnn_layers.hpp"
#include "nn/model.hpp"
#include "nn/predictor.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "tensor/init.hpp"
#include "tensor/parallel.hpp"
#include "util/thread_pool.hpp"

namespace splpg::nn {
namespace {

using sampling::Block;
using tensor::Matrix;
using tensor::Tensor;
using util::Rng;

/// Dense-ish block: 3 destinations, 6 sources, 8 weighted edges.
Block test_block() {
  Block block;
  block.src_nodes = {0, 1, 2, 3, 4, 5};
  block.dst_count = 3;
  block.edge_src = {3, 4, 5, 4, 5, 0, 1, 2};
  block.edge_dst = {0, 0, 0, 1, 1, 2, 2, 2};
  block.edge_weight = {1.0F, 0.5F, 2.0F, 1.0F, 1.0F, 0.25F, 1.5F, 1.0F};
  return block;
}

void check_all_parameters(Module& module, const std::function<Tensor()>& loss_fn,
                          double tolerance = 3e-2, double epsilon = 2e-3) {
  for (std::size_t param_index = 0; param_index < module.parameters().size(); ++param_index) {
    auto& param = module.parameters()[param_index];
    module.zero_grad();
    Tensor loss = loss_fn();
    loss.backward();
    const Matrix analytic = param.grad();
    ASSERT_FALSE(analytic.empty()) << "parameter " << param_index << " got no gradient";

    auto& value = param.mutable_value();
    // Spot-check a handful of coordinates per parameter (full sweeps are slow).
    const std::size_t step = std::max<std::size_t>(1, value.size() / 6);
    for (std::size_t flat = 0; flat < value.size(); flat += step) {
      const std::size_t r = flat / value.cols();
      const std::size_t c = flat % value.cols();
      const float saved = value.at(r, c);
      value.at(r, c) = saved + static_cast<float>(epsilon);
      const double up = loss_fn().item();
      value.at(r, c) = saved - static_cast<float>(epsilon);
      const double down = loss_fn().item();
      value.at(r, c) = saved;
      const double numeric = (up - down) / (2.0 * epsilon);
      EXPECT_NEAR(analytic.at(r, c), numeric, tolerance * std::max(1.0, std::abs(numeric)))
          << "param " << param_index << " at (" << r << "," << c << ")";
    }
  }
}

class LayerGradient : public ::testing::TestWithParam<GnnKind> {};

TEST_P(LayerGradient, MatchesFiniteDifferences) {
  Rng rng(31);
  const auto layer = make_gnn_layer(GetParam(), 3, 4, rng);
  const Block block = test_block();
  Rng feat_rng(32);
  const Tensor x = Tensor::constant(tensor::gaussian(6, 3, 0.0, 1.0, feat_rng));
  const std::vector<float> labels = {1.0F, 0.0F, 1.0F};
  check_all_parameters(*layer, [&] {
    // Sum embedding rows -> per-dst logits via sigmoid-friendly reduction.
    Tensor h = layer->forward(block, x);
    Matrix reducer_values(4, 1, 0.3F);
    const Tensor reducer = Tensor::constant(std::move(reducer_values));
    return bce_with_logits(matmul(tanh_op(h), reducer), labels);
  });
}

INSTANTIATE_TEST_SUITE_P(AllLayerKinds, LayerGradient,
                         ::testing::Values(GnnKind::kGcn, GnnKind::kSage, GnnKind::kGat,
                                           GnnKind::kGatv2));

class ModelGradient : public ::testing::TestWithParam<std::pair<GnnKind, PredictorKind>> {};

TEST_P(ModelGradient, FullPipelineMatchesFiniteDifferences) {
  const auto [gnn, predictor] = GetParam();
  ModelConfig config;
  config.gnn = gnn;
  config.predictor = predictor;
  config.in_dim = 3;
  config.hidden_dim = 4;
  config.num_layers = 2;
  config.predictor_layers = 2;
  LinkPredictionModel model(config, 77);

  // Two stacked blocks over the same 6-node universe.
  sampling::ComputationGraph cg;
  cg.blocks.push_back(test_block());
  Block top;
  top.src_nodes = {0, 1, 2};
  top.dst_count = 2;
  top.edge_src = {1, 2, 2};
  top.edge_dst = {0, 0, 1};
  top.edge_weight = {1.0F, 1.0F, 1.0F};
  cg.blocks.push_back(top);

  Rng feat_rng(33);
  const Matrix features = tensor::gaussian(6, 3, 0.0, 1.0, feat_rng);
  const std::vector<PairIndex> pairs{{0, 1}, {1, 0}};
  const std::vector<float> labels{1.0F, 0.0F};

  check_all_parameters(model, [&] {
    const Tensor embeddings = model.encode(cg, features);
    return bce_with_logits(model.score(embeddings, pairs), labels);
  });
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndPredictors, ModelGradient,
    ::testing::Values(std::pair{GnnKind::kGcn, PredictorKind::kMlp},
                      std::pair{GnnKind::kSage, PredictorKind::kMlp},
                      std::pair{GnnKind::kSage, PredictorKind::kDot},
                      std::pair{GnnKind::kGat, PredictorKind::kDot},
                      std::pair{GnnKind::kGatv2, PredictorKind::kMlp}));

// ---- pooled (row-blocked) kernel paths ----
//
// The blocks above are far below tensor::kParallelFlopThreshold, so they
// always run the serial kernels. These fixtures are sized past the
// threshold (matmul: 192*40*40 flops; aggregation: >= 1152 edges * 40 cols
// per block, against the 2^15 gate), so with a ComputePoolScope installed
// the row-blocked matmul_acc / matmul_tn_acc / matmul_nt_acc and grouped
// spmm_edges paths actually run.

/// Random bipartite stack: 192 input nodes -> 96 -> 48 destinations, 24
/// edges per destination, non-trivial weights.
sampling::ComputationGraph big_graph(Rng& rng) {
  sampling::ComputationGraph cg;
  std::size_t num_src = 192;
  for (const std::size_t num_dst : {96U, 48U}) {
    Block block;
    block.dst_count = num_dst;
    for (std::uint32_t v = 0; v < num_src; ++v) block.src_nodes.push_back(v);
    for (std::uint32_t d = 0; d < num_dst; ++d) {
      for (int e = 0; e < 24; ++e) {
        block.edge_src.push_back(static_cast<std::uint32_t>(rng.uniform_u64(num_src)));
        block.edge_dst.push_back(d);
        block.edge_weight.push_back(0.25F + static_cast<float>(rng.uniform()));
      }
    }
    cg.blocks.push_back(std::move(block));
    num_src = num_dst;
  }
  return cg;
}

class PooledGradient : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PooledGradient, FiniteDifferencesHoldUnderThePool) {
  ModelConfig config;
  config.gnn = GnnKind::kSage;
  config.predictor = PredictorKind::kMlp;
  config.in_dim = 40;
  config.hidden_dim = 40;
  config.num_layers = 2;
  config.predictor_layers = 2;
  LinkPredictionModel model(config, 91);

  Rng graph_rng(92);
  const auto cg = big_graph(graph_rng);
  Rng feat_rng(93);
  const Matrix features = tensor::gaussian(192, 40, 0.0, 1.0, feat_rng);
  const std::vector<PairIndex> pairs{{0, 1}, {2, 3}, {4, 5}, {1, 7}};
  const std::vector<float> labels{1.0F, 0.0F, 1.0F, 0.0F};
  auto loss_fn = [&] {
    const Tensor embeddings = model.encode(cg, features);
    return bce_with_logits(model.score(embeddings, pairs), labels);
  };

  util::ThreadPool pool(GetParam());
  const tensor::ComputePoolScope scope(&pool);
  check_all_parameters(model, loss_fn);
}

TEST_P(PooledGradient, GradientsMatchSerialBitwise) {
  ModelConfig config;
  config.gnn = GnnKind::kGat;  // exercises segment_softmax + coef grads too
  config.predictor = PredictorKind::kMlp;
  config.in_dim = 40;
  config.hidden_dim = 40;
  config.num_layers = 2;
  config.predictor_layers = 2;
  LinkPredictionModel model(config, 94);

  Rng graph_rng(95);
  const auto cg = big_graph(graph_rng);
  Rng feat_rng(96);
  const Matrix features = tensor::gaussian(192, 40, 0.0, 1.0, feat_rng);
  const std::vector<PairIndex> pairs{{0, 1}, {2, 3}, {4, 5}};
  const std::vector<float> labels{1.0F, 0.0F, 1.0F};
  auto run = [&] {
    model.zero_grad();
    Tensor loss = bce_with_logits(model.score(model.encode(cg, features), pairs), labels);
    loss.backward();
    std::vector<Matrix> grads;
    grads.reserve(model.parameters().size());
    for (const auto& p : model.parameters()) grads.push_back(p.grad());
    return grads;
  };

  const auto serial = run();
  util::ThreadPool pool(GetParam());
  std::vector<Matrix> pooled;
  {
    const tensor::ComputePoolScope scope(&pool);
    pooled = run();
  }
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    // The contract is bit-identity; 1e-6 is the acceptance bound it implies.
    const float diff = tensor::max_abs_diff(serial[p], pooled[p]);
    EXPECT_LE(diff, 1e-6F) << "param " << p;
    EXPECT_EQ(diff, 0.0F) << "param " << p << " (bit-identity)";
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, PooledGradient, ::testing::Values(2U, 4U, 7U));

}  // namespace
}  // namespace splpg::nn
