// Finite-difference gradient verification through the GNN layers and the
// full link-prediction model — the complete backward path the trainer uses.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/gnn_layers.hpp"
#include "nn/model.hpp"
#include "nn/predictor.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "tensor/init.hpp"

namespace splpg::nn {
namespace {

using sampling::Block;
using tensor::Matrix;
using tensor::Tensor;
using util::Rng;

/// Dense-ish block: 3 destinations, 6 sources, 8 weighted edges.
Block test_block() {
  Block block;
  block.src_nodes = {0, 1, 2, 3, 4, 5};
  block.dst_count = 3;
  block.edge_src = {3, 4, 5, 4, 5, 0, 1, 2};
  block.edge_dst = {0, 0, 0, 1, 1, 2, 2, 2};
  block.edge_weight = {1.0F, 0.5F, 2.0F, 1.0F, 1.0F, 0.25F, 1.5F, 1.0F};
  return block;
}

void check_all_parameters(Module& module, const std::function<Tensor()>& loss_fn,
                          double tolerance = 3e-2, double epsilon = 2e-3) {
  for (std::size_t param_index = 0; param_index < module.parameters().size(); ++param_index) {
    auto& param = module.parameters()[param_index];
    module.zero_grad();
    Tensor loss = loss_fn();
    loss.backward();
    const Matrix analytic = param.grad();
    ASSERT_FALSE(analytic.empty()) << "parameter " << param_index << " got no gradient";

    auto& value = param.mutable_value();
    // Spot-check a handful of coordinates per parameter (full sweeps are slow).
    const std::size_t step = std::max<std::size_t>(1, value.size() / 6);
    for (std::size_t flat = 0; flat < value.size(); flat += step) {
      const std::size_t r = flat / value.cols();
      const std::size_t c = flat % value.cols();
      const float saved = value.at(r, c);
      value.at(r, c) = saved + static_cast<float>(epsilon);
      const double up = loss_fn().item();
      value.at(r, c) = saved - static_cast<float>(epsilon);
      const double down = loss_fn().item();
      value.at(r, c) = saved;
      const double numeric = (up - down) / (2.0 * epsilon);
      EXPECT_NEAR(analytic.at(r, c), numeric, tolerance * std::max(1.0, std::abs(numeric)))
          << "param " << param_index << " at (" << r << "," << c << ")";
    }
  }
}

class LayerGradient : public ::testing::TestWithParam<GnnKind> {};

TEST_P(LayerGradient, MatchesFiniteDifferences) {
  Rng rng(31);
  const auto layer = make_gnn_layer(GetParam(), 3, 4, rng);
  const Block block = test_block();
  Rng feat_rng(32);
  const Tensor x = Tensor::constant(tensor::gaussian(6, 3, 0.0, 1.0, feat_rng));
  const std::vector<float> labels = {1.0F, 0.0F, 1.0F};
  check_all_parameters(*layer, [&] {
    // Sum embedding rows -> per-dst logits via sigmoid-friendly reduction.
    Tensor h = layer->forward(block, x);
    Matrix reducer_values(4, 1, 0.3F);
    const Tensor reducer = Tensor::constant(std::move(reducer_values));
    return bce_with_logits(matmul(tanh_op(h), reducer), labels);
  });
}

INSTANTIATE_TEST_SUITE_P(AllLayerKinds, LayerGradient,
                         ::testing::Values(GnnKind::kGcn, GnnKind::kSage, GnnKind::kGat,
                                           GnnKind::kGatv2));

class ModelGradient : public ::testing::TestWithParam<std::pair<GnnKind, PredictorKind>> {};

TEST_P(ModelGradient, FullPipelineMatchesFiniteDifferences) {
  const auto [gnn, predictor] = GetParam();
  ModelConfig config;
  config.gnn = gnn;
  config.predictor = predictor;
  config.in_dim = 3;
  config.hidden_dim = 4;
  config.num_layers = 2;
  config.predictor_layers = 2;
  LinkPredictionModel model(config, 77);

  // Two stacked blocks over the same 6-node universe.
  sampling::ComputationGraph cg;
  cg.blocks.push_back(test_block());
  Block top;
  top.src_nodes = {0, 1, 2};
  top.dst_count = 2;
  top.edge_src = {1, 2, 2};
  top.edge_dst = {0, 0, 1};
  top.edge_weight = {1.0F, 1.0F, 1.0F};
  cg.blocks.push_back(top);

  Rng feat_rng(33);
  const Matrix features = tensor::gaussian(6, 3, 0.0, 1.0, feat_rng);
  const std::vector<PairIndex> pairs{{0, 1}, {1, 0}};
  const std::vector<float> labels{1.0F, 0.0F};

  check_all_parameters(model, [&] {
    const Tensor embeddings = model.encode(cg, features);
    return bce_with_logits(model.score(embeddings, pairs), labels);
  });
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndPredictors, ModelGradient,
    ::testing::Values(std::pair{GnnKind::kGcn, PredictorKind::kMlp},
                      std::pair{GnnKind::kSage, PredictorKind::kMlp},
                      std::pair{GnnKind::kSage, PredictorKind::kDot},
                      std::pair{GnnKind::kGat, PredictorKind::kDot},
                      std::pair{GnnKind::kGatv2, PredictorKind::kMlp}));

}  // namespace
}  // namespace splpg::nn
