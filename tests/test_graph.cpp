// Unit tests for the graph module: CSR construction, builder semantics,
// queries, algorithms, subgraphs, and persistence.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/csr_graph.hpp"
#include "graph/features.hpp"
#include "graph/io.hpp"
#include "graph/subgraph.hpp"

namespace splpg::graph {
namespace {

/// Path 0-1-2-3 plus chord 1-3.
CsrGraph make_path_with_chord() {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  builder.add_edge(1, 3);
  return builder.build();
}

TEST(GraphBuilder, DeduplicatesAndDropsSelfLoops) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(1, 0);  // duplicate in the other direction
  builder.add_edge(0, 1);  // duplicate
  builder.add_edge(2, 2);  // self-loop
  EXPECT_EQ(builder.num_edges(), 1U);
  const CsrGraph graph = builder.build();
  EXPECT_EQ(graph.num_edges(), 1U);
  EXPECT_EQ(graph.degree(2), 0U);
}

TEST(GraphBuilder, WeightedDuplicatesSumWeights) {
  GraphBuilder builder(2, /*weighted=*/true);
  builder.add_edge(0, 1, 0.5F);
  builder.add_edge(1, 0, 1.5F);
  const CsrGraph graph = builder.build();
  ASSERT_EQ(graph.num_edges(), 1U);
  EXPECT_FLOAT_EQ(graph.edge_weight(0), 2.0F);
}

TEST(GraphBuilder, OutOfRangeEndpointThrows) {
  GraphBuilder builder(2);
  EXPECT_THROW(builder.add_edge(0, 5), std::out_of_range);
}

TEST(GraphBuilder, ReusableAfterBuild) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  const CsrGraph first = builder.build();
  EXPECT_EQ(first.num_edges(), 1U);
  builder.add_edge(1, 2);
  const CsrGraph second = builder.build();
  EXPECT_EQ(second.num_edges(), 1U);
  EXPECT_TRUE(second.has_edge(1, 2));
  EXPECT_FALSE(second.has_edge(0, 1));
}

TEST(CsrGraph, NeighborsAreSortedAndSymmetric) {
  const CsrGraph graph = make_path_with_chord();
  const auto n1 = graph.neighbors(1);
  ASSERT_EQ(n1.size(), 3U);
  EXPECT_TRUE(std::is_sorted(n1.begin(), n1.end()));
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const NodeId w : graph.neighbors(v)) {
      const auto back = graph.neighbors(w);
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(), v));
    }
  }
}

TEST(CsrGraph, HasEdgeMatchesEdgeList) {
  const CsrGraph graph = make_path_with_chord();
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_TRUE(graph.has_edge(1, 0));
  EXPECT_TRUE(graph.has_edge(1, 3));
  EXPECT_FALSE(graph.has_edge(0, 2));
  EXPECT_FALSE(graph.has_edge(0, 3));
  EXPECT_FALSE(graph.has_edge(2, 2));
  EXPECT_FALSE(graph.has_edge(0, 99));  // out of range is just "no"
}

TEST(CsrGraph, DegreesAndTotals) {
  const CsrGraph graph = make_path_with_chord();
  EXPECT_EQ(graph.degree(0), 1U);
  EXPECT_EQ(graph.degree(1), 3U);
  EXPECT_EQ(graph.degree(2), 2U);
  EXPECT_EQ(graph.degree(3), 2U);
  EXPECT_EQ(graph.total_degree(), 8U);
  EXPECT_EQ(graph.max_degree(), 3U);
  EXPECT_DOUBLE_EQ(graph.mean_degree(), 2.0);
}

TEST(CsrGraph, CanonicalEdgeListSorted) {
  const CsrGraph graph = make_path_with_chord();
  const auto edges = graph.edges();
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(CsrGraph, NonCanonicalConstructorInputThrows) {
  EXPECT_THROW(CsrGraph(3, {{1, 0}}), std::invalid_argument);  // u >= v
  EXPECT_THROW(CsrGraph(3, {{1, 1}}), std::invalid_argument);  // self-loop
  EXPECT_THROW(CsrGraph(2, {{0, 2}}), std::out_of_range);      // out of range
}

TEST(CsrGraph, WeightedNeighborWeightsAligned) {
  GraphBuilder builder(3, true);
  builder.add_edge(0, 1, 2.0F);
  builder.add_edge(0, 2, 3.0F);
  const CsrGraph graph = builder.build();
  const auto neighbors = graph.neighbors(0);
  const auto weights = graph.neighbor_weights(0);
  ASSERT_EQ(neighbors.size(), 2U);
  ASSERT_EQ(weights.size(), 2U);
  EXPECT_EQ(neighbors[0], 1U);
  EXPECT_FLOAT_EQ(weights[0], 2.0F);
  EXPECT_EQ(neighbors[1], 2U);
  EXPECT_FLOAT_EQ(weights[1], 3.0F);
}

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph graph(0, {});
  EXPECT_EQ(graph.num_nodes(), 0U);
  EXPECT_EQ(graph.num_edges(), 0U);
  EXPECT_EQ(graph.max_degree(), 0U);
  EXPECT_DOUBLE_EQ(graph.mean_degree(), 0.0);
}

TEST(CsrGraph, StructureBytesScalesWithDegree) {
  const CsrGraph graph = make_path_with_chord();
  EXPECT_EQ(graph.structure_bytes(1), 3 * sizeof(NodeId) + sizeof(EdgeId));
  EXPECT_EQ(graph.structure_bytes(0), 1 * sizeof(NodeId) + sizeof(EdgeId));
}

TEST(Algorithms, BfsOrderAndDistances) {
  const CsrGraph graph = make_path_with_chord();
  const auto order = bfs_order(graph, 0);
  ASSERT_EQ(order.size(), 4U);
  EXPECT_EQ(order[0], 0U);
  EXPECT_EQ(order[1], 1U);
  const auto dist = bfs_distances(graph, 0);
  EXPECT_EQ(dist[0], 0U);
  EXPECT_EQ(dist[1], 1U);
  EXPECT_EQ(dist[2], 2U);
  EXPECT_EQ(dist[3], 2U);  // via the chord
}

TEST(Algorithms, BfsUnreachableMarked) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);  // nodes 2, 3 isolated
  const CsrGraph graph = builder.build();
  const auto dist = bfs_distances(graph, 0);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Algorithms, ConnectedComponents) {
  GraphBuilder builder(6);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(3, 4);  // node 5 isolated
  const CsrGraph graph = builder.build();
  const auto components = connected_components(graph);
  EXPECT_EQ(components.count, 3U);
  EXPECT_EQ(components.label[0], components.label[2]);
  EXPECT_NE(components.label[0], components.label[3]);
  const auto sizes = components.component_sizes();
  EXPECT_EQ(sizes[components.largest()], 3U);
}

TEST(Algorithms, KHopNeighborhood) {
  const CsrGraph graph = make_path_with_chord();
  const std::vector<NodeId> seeds{0};
  const auto hop0 = k_hop_neighborhood(graph, seeds, 0);
  EXPECT_EQ(hop0, std::vector<NodeId>({0}));
  const auto hop1 = k_hop_neighborhood(graph, seeds, 1);
  EXPECT_EQ(hop1, std::vector<NodeId>({0, 1}));
  const auto hop2 = k_hop_neighborhood(graph, seeds, 2);
  EXPECT_EQ(hop2, std::vector<NodeId>({0, 1, 2, 3}));
}

TEST(Algorithms, TriangleCountAndClustering) {
  // Triangle 0-1-2 plus pendant 3.
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(0, 2);
  builder.add_edge(2, 3);
  const CsrGraph graph = builder.build();
  EXPECT_EQ(triangle_count(graph), 1U);
  // Wedges: d(0)=2 ->1, d(1)=2 ->1, d(2)=3 ->3, d(3)=1 ->0; total 5.
  EXPECT_NEAR(global_clustering_coefficient(graph), 3.0 / 5.0, 1e-12);
}

TEST(Algorithms, DegreeStatsOnRegularGraph) {
  // 4-cycle: all degrees 2.
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  builder.add_edge(0, 3);
  const auto stats = degree_stats(builder.build());
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
  EXPECT_DOUBLE_EQ(stats.variance, 0.0);
  EXPECT_EQ(stats.min, 2U);
  EXPECT_EQ(stats.max, 2U);
  EXPECT_NEAR(stats.gini, 0.0, 1e-9);
}

TEST(Subgraph, InducedKeepsInternalEdgesOnly) {
  const CsrGraph graph = make_path_with_chord();
  const std::vector<NodeId> nodes{1, 2, 3};
  const Subgraph sub = induced_subgraph(graph, nodes);
  EXPECT_EQ(sub.graph.num_nodes(), 3U);
  EXPECT_EQ(sub.graph.num_edges(), 3U);  // 1-2, 2-3, 1-3
  EXPECT_EQ(sub.to_global(0), 1U);
  EXPECT_EQ(sub.to_local(3), 2U);
  EXPECT_EQ(sub.to_local(0), kInvalidNode);
  EXPECT_TRUE(sub.contains(2));
  EXPECT_FALSE(sub.contains(0));
  // Edge 0-1 crosses the boundary: must not appear.
  EXPECT_FALSE(sub.graph.has_edge(sub.to_local(1), 99));
}

TEST(Subgraph, InducedDuplicateNodeThrows) {
  const CsrGraph graph = make_path_with_chord();
  const std::vector<NodeId> nodes{1, 1};
  EXPECT_THROW(induced_subgraph(graph, nodes), std::invalid_argument);
}

TEST(Subgraph, EdgeSubgraphKeepsMaskedEdges) {
  const CsrGraph graph = make_path_with_chord();
  std::vector<bool> mask(graph.num_edges(), false);
  mask[0] = true;  // first canonical edge
  const CsrGraph sub = edge_subgraph(graph, mask);
  EXPECT_EQ(sub.num_nodes(), graph.num_nodes());
  EXPECT_EQ(sub.num_edges(), 1U);
  EXPECT_EQ(sub.edges()[0], graph.edges()[0]);
}

TEST(FeatureStore, RowAccessAndGather) {
  FeatureStore store(3, 2);
  store.row(0)[0] = 1.0F;
  store.row(0)[1] = 2.0F;
  store.row(2)[0] = 5.0F;
  const std::vector<NodeId> nodes{2, 0};
  const FeatureStore gathered = store.gather(nodes);
  EXPECT_EQ(gathered.num_nodes(), 2U);
  EXPECT_FLOAT_EQ(gathered.row(0)[0], 5.0F);
  EXPECT_FLOAT_EQ(gathered.row(1)[1], 2.0F);
}

TEST(FeatureStore, FeatureBytes) {
  const FeatureStore store(10, 7);
  EXPECT_EQ(store.feature_bytes(), 7 * sizeof(float));
}

TEST(FeatureStore, SizeMismatchThrows) {
  EXPECT_THROW(FeatureStore(2, 3, std::vector<float>(5)), std::invalid_argument);
}

TEST(GraphIo, BinaryRoundTripWithFeatures) {
  const CsrGraph graph = make_path_with_chord();
  FeatureStore features(4, 2);
  features.row(1)[0] = 3.5F;
  std::stringstream stream;
  save_graph(stream, graph, features);
  const GraphBundle loaded = load_graph(stream);
  EXPECT_EQ(loaded.graph.num_nodes(), 4U);
  EXPECT_EQ(loaded.graph.num_edges(), 4U);
  EXPECT_TRUE(loaded.graph.has_edge(1, 3));
  EXPECT_FLOAT_EQ(loaded.features.row(1)[0], 3.5F);
}

TEST(GraphIo, BinaryRoundTripWeighted) {
  GraphBuilder builder(3, true);
  builder.add_edge(0, 1, 2.5F);
  const CsrGraph graph = builder.build();
  std::stringstream stream;
  save_graph(stream, graph, FeatureStore{});
  const GraphBundle loaded = load_graph(stream);
  ASSERT_TRUE(loaded.graph.is_weighted());
  EXPECT_FLOAT_EQ(loaded.graph.edge_weight(0), 2.5F);
}

TEST(GraphIo, BadMagicThrows) {
  std::stringstream stream("not a graph file at all");
  EXPECT_THROW(load_graph(stream), std::runtime_error);
}

TEST(GraphIo, EdgeListRoundTrip) {
  const CsrGraph graph = make_path_with_chord();
  std::stringstream stream;
  save_edge_list(stream, graph);
  const CsrGraph loaded = load_edge_list(stream);
  EXPECT_EQ(loaded.num_nodes(), 4U);
  EXPECT_EQ(loaded.num_edges(), 4U);
  EXPECT_TRUE(loaded.has_edge(1, 3));
}

TEST(GraphIo, EdgeListRenumbering) {
  std::stringstream stream("# comment\n100 200\n200 300\n");
  const CsrGraph graph = load_edge_list(stream, /*renumber=*/true);
  EXPECT_EQ(graph.num_nodes(), 3U);
  EXPECT_EQ(graph.num_edges(), 2U);
}

}  // namespace
}  // namespace splpg::graph
