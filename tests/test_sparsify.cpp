// Tests for the sparsify module: exact vs approximate effective resistance
// (Theorem 2 bounds), the Spielman-Srivastava sampler (Theorem 1 weight
// semantics), spectral quality, and partitioned sparsification.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "data/generators.hpp"
#include "sparsify/effective_resistance.hpp"
#include "sparsify/sparsifier.hpp"
#include "util/thread_pool.hpp"

namespace splpg::sparsify {
namespace {

using graph::CsrGraph;
using graph::GraphBuilder;
using graph::NodeId;
using util::Rng;

CsrGraph triangle() {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(0, 2);
  return builder.build();
}

CsrGraph path(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId v = 0; v + 1 < n; ++v) builder.add_edge(v, v + 1);
  return builder.build();
}

TEST(EffectiveResistance, PathEdgesHaveUnitResistance) {
  // In a tree every edge is a bridge: r = 1 exactly.
  const CsrGraph graph = path(6);
  const auto resistance = exact_effective_resistance(graph);
  for (const double r : resistance) EXPECT_NEAR(r, 1.0, 1e-4);
}

TEST(EffectiveResistance, TriangleIsTwoThirds) {
  // Two parallel routes: 1 Ohm direct, 2 Ohm around -> 2/3.
  const auto resistance = exact_effective_resistance(triangle());
  for (const double r : resistance) EXPECT_NEAR(r, 2.0 / 3.0, 1e-4);
}

TEST(EffectiveResistance, SeriesParallelSquare) {
  // 4-cycle: each edge is 1 Ohm in parallel with a 3 Ohm path -> 3/4.
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  builder.add_edge(0, 3);
  const auto resistance = exact_effective_resistance(builder.build());
  for (const double r : resistance) EXPECT_NEAR(r, 0.75, 1e-4);
}

TEST(EffectiveResistance, Theorem2BoundsHold) {
  data::SbmParams params;
  params.num_nodes = 60;
  params.num_edges = 240;
  params.num_communities = 4;
  Rng rng(1);
  const CsrGraph graph = data::generate_sbm(params, rng);
  const auto exact = exact_effective_resistance(graph);
  const auto proxy = approx_effective_resistance(graph);
  const double gamma = normalized_laplacian_gamma(graph);
  ASSERT_GT(gamma, 0.0);
  for (std::size_t e = 0; e < exact.size(); ++e) {
    EXPECT_GE(exact[e] + 1e-6, 0.5 * proxy[e]) << "lower bound violated at edge " << e;
    EXPECT_LE(exact[e] - 1e-6, proxy[e] / gamma) << "upper bound violated at edge " << e;
  }
}

TEST(EffectiveResistance, SumOverTreeEdgesEqualsNodesMinusOne) {
  // Foster's theorem specialization: in any connected graph, the sum of edge
  // effective resistances equals n - 1.
  data::SbmParams params;
  params.num_nodes = 40;
  params.num_edges = 150;
  params.num_communities = 2;
  Rng rng(2);
  CsrGraph graph = data::generate_sbm(params, rng);
  // Use the giant component only (Foster needs connectivity).
  const auto resistance = exact_effective_resistance(graph);
  const double total = std::accumulate(resistance.begin(), resistance.end(), 0.0);
  // Allow slack for a handful of disconnected stragglers.
  EXPECT_NEAR(total, static_cast<double>(graph.num_nodes()) - 1.0, 3.0);
}

TEST(Laplacian, RowSumsAreZero) {
  const CsrGraph graph = triangle();
  const auto lap = laplacian(graph);
  for (std::size_t i = 0; i < 3; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) row_sum += lap.at(i, j);
    EXPECT_NEAR(row_sum, 0.0, 1e-6);
  }
}

TEST(Laplacian, NormalizedGammaOfCompleteGraph) {
  // K_n: normalized Laplacian eigenvalues are 0 and n/(n-1).
  GraphBuilder builder(5);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) builder.add_edge(u, v);
  }
  EXPECT_NEAR(normalized_laplacian_gamma(builder.build()), 5.0 / 4.0, 1e-4);
}

TEST(Sparsifier, PreservesNodeSetAndShrinksEdges) {
  data::SbmParams params;
  params.num_nodes = 500;
  params.num_edges = 5000;
  Rng rng(3);
  const CsrGraph graph = data::generate_sbm(params, rng);
  const EffectiveResistanceSparsifier sparsifier(0.15);
  Rng sparsify_rng(4);
  SparsifyStats stats;
  const CsrGraph sparse = sparsifier.sparsify(graph, sparsify_rng, &stats);
  EXPECT_EQ(sparse.num_nodes(), graph.num_nodes());
  EXPECT_LT(sparse.num_edges(), graph.num_edges() / 4);
  EXPECT_GT(sparse.num_edges(), 0U);
  EXPECT_EQ(stats.original_edges, graph.num_edges());
  EXPECT_EQ(stats.sampled_draws, static_cast<graph::EdgeId>(std::ceil(0.15 * 5000)));
  EXPECT_NEAR(stats.removal_ratio,
              1.0 - static_cast<double>(sparse.num_edges()) / graph.num_edges(), 1e-12);
}

TEST(Sparsifier, OutputIsSubsetOfInputEdges) {
  data::SbmParams params;
  params.num_nodes = 200;
  params.num_edges = 1500;
  Rng rng(5);
  const CsrGraph graph = data::generate_sbm(params, rng);
  Rng sparsify_rng(6);
  const CsrGraph sparse = EffectiveResistanceSparsifier(0.2).sparsify(graph, sparsify_rng);
  for (const auto& [u, v] : sparse.edges()) EXPECT_TRUE(graph.has_edge(u, v));
}

TEST(Sparsifier, WeightsPositiveAndTotalNearEdgeCount) {
  // E[sum of output weights] = |E| (each draw contributes 1/(L p_e) with
  // probability p_e, L draws). Checks the Theorem 1 weight bookkeeping.
  data::SbmParams params;
  params.num_nodes = 400;
  params.num_edges = 4000;
  Rng rng(7);
  const CsrGraph graph = data::generate_sbm(params, rng);
  Rng sparsify_rng(8);
  const CsrGraph sparse = EffectiveResistanceSparsifier(0.3).sparsify(graph, sparsify_rng);
  ASSERT_TRUE(sparse.is_weighted());
  double total = 0.0;
  for (const float w : sparse.edge_weights()) {
    EXPECT_GT(w, 0.0F);
    total += w;
  }
  EXPECT_NEAR(total, static_cast<double>(graph.num_edges()),
              0.15 * static_cast<double>(graph.num_edges()));
}

TEST(Sparsifier, DuplicateDrawsSumWeights) {
  // With alpha >> 1 every edge is drawn many times; the summed weight of
  // each edge then concentrates around 1 (= its multiplicity / (L p_e)
  // expectation), and every edge survives.
  const CsrGraph graph = triangle();
  Rng rng(9);
  const CsrGraph sparse = EffectiveResistanceSparsifier(200.0).sparsify(graph, rng);
  EXPECT_EQ(sparse.num_edges(), 3U);
  for (const float w : sparse.edge_weights()) EXPECT_NEAR(w, 1.0F, 0.25F);
}

TEST(Sparsifier, HigherAlphaKeepsMoreEdges) {
  data::SbmParams params;
  params.num_nodes = 300;
  params.num_edges = 3000;
  Rng rng(10);
  const CsrGraph graph = data::generate_sbm(params, rng);
  Rng rng_a(11);
  Rng rng_b(11);
  const auto sparse_a = EffectiveResistanceSparsifier(0.05).sparsify(graph, rng_a);
  const auto sparse_b = EffectiveResistanceSparsifier(0.3).sparsify(graph, rng_b);
  EXPECT_LT(sparse_a.num_edges(), sparse_b.num_edges());
}

TEST(Sparsifier, RemovalRatioTracksAlpha) {
  // alpha = 0.15 removes ~85% of edges (paper §V-A); with-replacement
  // collisions push removal slightly above 1 - alpha.
  data::SbmParams params;
  params.num_nodes = 1000;
  params.num_edges = 10000;
  Rng rng(12);
  const CsrGraph graph = data::generate_sbm(params, rng);
  Rng sparsify_rng(13);
  SparsifyStats stats;
  (void)EffectiveResistanceSparsifier(0.15).sparsify(graph, sparsify_rng, &stats);
  EXPECT_GT(stats.removal_ratio, 0.82);
  EXPECT_LT(stats.removal_ratio, 0.92);
}

TEST(Sparsifier, SpectralQuadraticFormRoughlyPreserved) {
  // With a generous sample budget the sparsified Laplacian's quadratic form
  // should approximate the original on random vectors (Theorem 1 spirit;
  // the degree proxy adds distortion, so tolerances are loose).
  data::SbmParams params;
  params.num_nodes = 120;
  params.num_edges = 2400;
  Rng rng(14);
  const CsrGraph graph = data::generate_sbm(params, rng);
  Rng sparsify_rng(15);
  const CsrGraph sparse = EffectiveResistanceSparsifier(2.0).sparsify(graph, sparsify_rng);
  const auto lap = laplacian(graph);
  const auto lap_sparse = laplacian(sparse);
  Rng vec_rng(16);
  for (int trial = 0; trial < 5; ++trial) {
    tensor::Matrix x(120, 1);
    for (float& value : x.data()) value = static_cast<float>(vec_rng.normal(0.0, 1.0));
    const double original = tensor::matmul_tn(x, tensor::matmul(lap, x)).at(0, 0);
    const double approx = tensor::matmul_tn(x, tensor::matmul(lap_sparse, x)).at(0, 0);
    ASSERT_GT(original, 0.0);
    EXPECT_NEAR(approx / original, 1.0, 0.35) << "trial " << trial;
  }
}

TEST(Sparsifier, PartitionedKeepsCrossEdgesInBothParts) {
  data::SbmParams params;
  params.num_nodes = 200;
  params.num_edges = 1600;
  Rng rng(17);
  const CsrGraph graph = data::generate_sbm(params, rng);
  std::vector<std::uint32_t> assignment(200);
  for (NodeId v = 0; v < 200; ++v) assignment[v] = v % 2;

  Rng sparsify_rng(18);
  std::vector<SparsifyStats> stats;
  const auto parts = EffectiveResistanceSparsifier(0.5).sparsify_partitions(
      graph, assignment, 2, sparsify_rng, &stats);
  ASSERT_EQ(parts.size(), 2U);
  ASSERT_EQ(stats.size(), 2U);

  // Partition subgraphs include every edge incident to the part, so the two
  // original-edge counts must sum to >= |E| (cross edges counted twice).
  EXPECT_GE(stats[0].original_edges + stats[1].original_edges, graph.num_edges());
  for (std::uint32_t part = 0; part < 2; ++part) {
    EXPECT_EQ(parts[part].num_nodes(), graph.num_nodes());  // global id space
    for (const auto& [u, v] : parts[part].edges()) {
      EXPECT_TRUE(assignment[u] == part || assignment[v] == part);
      EXPECT_TRUE(graph.has_edge(u, v));
    }
  }
}

TEST(Sparsifier, DeterministicGivenRngState) {
  data::SbmParams params;
  params.num_nodes = 150;
  params.num_edges = 900;
  Rng rng(19);
  const CsrGraph graph = data::generate_sbm(params, rng);
  Rng rng1(20);
  Rng rng2(20);
  const auto a = EffectiveResistanceSparsifier(0.15).sparsify(graph, rng1);
  const auto b = EffectiveResistanceSparsifier(0.15).sparsify(graph, rng2);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edges()[e], b.edges()[e]);
    EXPECT_FLOAT_EQ(a.edge_weights()[e], b.edge_weights()[e]);
  }
}

TEST(Sparsifier, InvalidAlphaThrows) {
  EXPECT_THROW(EffectiveResistanceSparsifier(0.0), std::invalid_argument);
  EXPECT_THROW(EffectiveResistanceSparsifier(-1.0), std::invalid_argument);
}

TEST(Sparsifier, EmptyGraphYieldsEmptyOutput) {
  const CsrGraph graph(10, {});
  Rng rng(21);
  const auto sparse = EffectiveResistanceSparsifier(0.15).sparsify(graph, rng);
  EXPECT_EQ(sparse.num_nodes(), 10U);
  EXPECT_EQ(sparse.num_edges(), 0U);
}


// ---- ThreadPool parallelism (bit-exact determinism contract) ----

TEST(Sparsifier, ParallelPartitionsBitIdenticalToSerial) {
  // 8 partitions, serial (1 thread) vs pooled (4 threads), same rng seed:
  // per-partition pre-split rng streams make the outputs the same bytes.
  data::SbmParams params;
  params.num_nodes = 240;
  params.num_edges = 1900;
  params.num_communities = 8;
  Rng rng(31);
  const CsrGraph graph = data::generate_sbm(params, rng);
  std::vector<std::uint32_t> assignment(params.num_nodes);
  for (NodeId v = 0; v < params.num_nodes; ++v) assignment[v] = v % 8;

  Rng serial_rng(33);
  Rng pooled_rng(33);
  std::vector<SparsifyStats> serial_stats;
  std::vector<SparsifyStats> pooled_stats;
  const auto serial = EffectiveResistanceSparsifier(0.3, 1).sparsify_partitions(
      graph, assignment, 8, serial_rng, &serial_stats);
  const auto pooled = EffectiveResistanceSparsifier(0.3, 4).sparsify_partitions(
      graph, assignment, 8, pooled_rng, &pooled_stats);

  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t part = 0; part < serial.size(); ++part) {
    ASSERT_EQ(serial[part].num_edges(), pooled[part].num_edges()) << "part " << part;
    for (std::size_t e = 0; e < serial[part].num_edges(); ++e) {
      EXPECT_EQ(serial[part].edges()[e], pooled[part].edges()[e]);
      EXPECT_EQ(serial[part].edge_weights()[e], pooled[part].edge_weights()[e]);  // bit-exact
    }
    EXPECT_EQ(serial_stats[part].original_edges, pooled_stats[part].original_edges);
    EXPECT_EQ(serial_stats[part].sampled_draws, pooled_stats[part].sampled_draws);
    EXPECT_EQ(serial_stats[part].kept_edges, pooled_stats[part].kept_edges);
    EXPECT_GT(pooled_stats[part].cpu_seconds, 0.0);
  }
}

TEST(Sparsifier, ZeroThreadsMeansHardwareConcurrency) {
  // num_threads = 0 resolves to hardware concurrency inside the pool; the
  // result must still match the serial bytes.
  data::SbmParams params;
  params.num_nodes = 120;
  params.num_edges = 700;
  Rng rng(35);
  const CsrGraph graph = data::generate_sbm(params, rng);
  std::vector<std::uint32_t> assignment(params.num_nodes);
  for (NodeId v = 0; v < params.num_nodes; ++v) assignment[v] = v % 4;
  Rng serial_rng(36);
  Rng pooled_rng(36);
  const auto serial =
      UniformSparsifier(0.4, 1).sparsify_partitions(graph, assignment, 4, serial_rng, nullptr);
  const auto pooled =
      UniformSparsifier(0.4, 0).sparsify_partitions(graph, assignment, 4, pooled_rng, nullptr);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t part = 0; part < serial.size(); ++part) {
    ASSERT_EQ(serial[part].num_edges(), pooled[part].num_edges());
    for (std::size_t e = 0; e < serial[part].num_edges(); ++e) {
      EXPECT_EQ(serial[part].edges()[e], pooled[part].edges()[e]);
      EXPECT_EQ(serial[part].edge_weights()[e], pooled[part].edge_weights()[e]);
    }
  }
}

TEST(EffectiveResistance, PooledKernelsMatchSerialBitwise) {
  data::SbmParams params;
  params.num_nodes = 80;
  params.num_edges = 320;
  Rng rng(37);
  const CsrGraph graph = data::generate_sbm(params, rng);
  util::ThreadPool pool(4);

  const auto lap_serial = laplacian(graph);
  const auto lap_pooled = laplacian(graph, &pool);
  const auto norm_serial = normalized_laplacian(graph);
  const auto norm_pooled = normalized_laplacian(graph, &pool);
  for (NodeId i = 0; i < graph.num_nodes(); ++i) {
    for (NodeId j = 0; j < graph.num_nodes(); ++j) {
      EXPECT_EQ(lap_serial.at(i, j), lap_pooled.at(i, j));
      EXPECT_EQ(norm_serial.at(i, j), norm_pooled.at(i, j));
    }
  }

  const auto er_serial = exact_effective_resistance(graph);
  const auto er_pooled = exact_effective_resistance(graph, &pool);
  ASSERT_EQ(er_serial.size(), er_pooled.size());
  for (std::size_t e = 0; e < er_serial.size(); ++e) {
    EXPECT_EQ(er_serial[e], er_pooled[e]);
  }
  EXPECT_EQ(normalized_laplacian_gamma(graph), normalized_laplacian_gamma(graph, &pool));
}

TEST(EffectiveResistance, ApproxHandlesIsolatedNodes) {
  // Nodes 3 and 4 are isolated; the degree proxy must stay finite and the
  // partitioned sparsifier must accept a partition that holds only isolated
  // nodes (its induced subgraph is empty).
  GraphBuilder builder(5);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(0, 2);
  const CsrGraph graph = builder.build();

  const auto proxy = approx_effective_resistance(graph);
  ASSERT_EQ(proxy.size(), graph.num_edges());
  for (const double p : proxy) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GT(p, 0.0);
  }

  const std::vector<std::uint32_t> assignment = {0, 0, 0, 1, 1};
  Rng rng(39);
  std::vector<SparsifyStats> stats;
  const auto parts = EffectiveResistanceSparsifier(0.5).sparsify_partitions(
      graph, assignment, 2, rng, &stats);
  ASSERT_EQ(parts.size(), 2U);
  EXPECT_GT(parts[0].num_edges(), 0U);
  EXPECT_EQ(parts[1].num_edges(), 0U);  // isolated-node partition: empty, no crash
}

}  // namespace
}  // namespace splpg::sparsify
