// Tests for eval metrics: Hits@K, AUC, threshold accuracy.
#include <gtest/gtest.h>

#include "eval/metrics.hpp"

namespace splpg::eval {
namespace {

TEST(HitsAtK, HandComputed) {
  // Negatives sorted desc: 9, 7, 5, 3. K = 2 -> threshold 7.
  const std::vector<float> negatives{5, 9, 3, 7};
  const std::vector<float> positives{10, 8, 7, 6};  // 10 and 8 beat 7 strictly
  EXPECT_DOUBLE_EQ(hits_at_k(positives, negatives, 2), 0.5);
}

TEST(HitsAtK, K1IsStrictestK4IsLoosest) {
  const std::vector<float> negatives{1, 2, 3, 4};
  const std::vector<float> positives{3.5F};
  EXPECT_DOUBLE_EQ(hits_at_k(positives, negatives, 1), 0.0);  // must beat 4
  EXPECT_DOUBLE_EQ(hits_at_k(positives, negatives, 2), 1.0);  // must beat 3
}

TEST(HitsAtK, FewerNegativesThanKIsPerfect) {
  const std::vector<float> negatives{1, 2};
  const std::vector<float> positives{-5};
  EXPECT_DOUBLE_EQ(hits_at_k(positives, negatives, 100), 1.0);
}

TEST(HitsAtK, TieWithThresholdDoesNotCount) {
  const std::vector<float> negatives{5};
  const std::vector<float> positives{5};
  EXPECT_DOUBLE_EQ(hits_at_k(positives, negatives, 1), 0.0);
}

TEST(HitsAtK, EmptyPositivesIsZero) {
  const std::vector<float> negatives{1};
  EXPECT_DOUBLE_EQ(hits_at_k({}, negatives, 1), 0.0);
}

TEST(Auc, PerfectSeparation) {
  const std::vector<float> positives{3, 4, 5};
  const std::vector<float> negatives{0, 1, 2};
  EXPECT_DOUBLE_EQ(auc(positives, negatives), 1.0);
}

TEST(Auc, PerfectInversion) {
  const std::vector<float> positives{0, 1};
  const std::vector<float> negatives{2, 3};
  EXPECT_DOUBLE_EQ(auc(positives, negatives), 0.0);
}

TEST(Auc, ChanceForIdenticalScores) {
  const std::vector<float> positives{1, 1, 1};
  const std::vector<float> negatives{1, 1};
  EXPECT_DOUBLE_EQ(auc(positives, negatives), 0.5);
}

TEST(Auc, HandComputedMixedCase) {
  // pos = {2, 0}, neg = {1}. Pairs: (2 > 1) = 1, (0 < 1) = 0 -> AUC 0.5.
  const std::vector<float> positives{2, 0};
  const std::vector<float> negatives{1};
  EXPECT_DOUBLE_EQ(auc(positives, negatives), 0.5);
}

TEST(Auc, TiesCountHalf) {
  const std::vector<float> positives{1, 2};
  const std::vector<float> negatives{1};
  // Pairs: (1 vs 1) = 0.5, (2 vs 1) = 1 -> 0.75.
  EXPECT_DOUBLE_EQ(auc(positives, negatives), 0.75);
}

TEST(Auc, EmptySideIsChance) {
  EXPECT_DOUBLE_EQ(auc({}, std::vector<float>{1.0F}), 0.5);
  EXPECT_DOUBLE_EQ(auc(std::vector<float>{1.0F}, {}), 0.5);
}

TEST(AccuracyAtZero, HandComputed) {
  const std::vector<float> positives{1, -1};   // one right
  const std::vector<float> negatives{-2, 0.5F};  // one right
  EXPECT_DOUBLE_EQ(accuracy_at_zero(positives, negatives), 0.5);
}

TEST(AccuracyAtZero, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(accuracy_at_zero({}, {}), 0.0);
}

}  // namespace
}  // namespace splpg::eval
