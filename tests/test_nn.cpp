// Tests for the nn module: layers, GNN convolutions on blocks, predictors,
// the full model, optimizers, and parameter plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/gnn_layers.hpp"
#include "nn/linear.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "nn/predictor.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "tensor/init.hpp"

namespace splpg::nn {
namespace {

using sampling::Block;
using tensor::Matrix;
using tensor::Tensor;
using util::Rng;

/// Block with 2 destinations (nodes 0, 1) and 4 sources; edges:
/// 2->0, 3->0, 1->1 (dst 1's neighbor is src index 1 itself? no: distinct).
Block tiny_block() {
  Block block;
  block.src_nodes = {10, 11, 12, 13};  // global ids (unused by layers)
  block.dst_count = 2;
  block.edge_src = {2, 3, 3};
  block.edge_dst = {0, 0, 1};
  block.edge_weight = {1.0F, 1.0F, 1.0F};
  return block;
}

Matrix iota_features(std::size_t rows, std::size_t cols) {
  Matrix out(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) out.at(r, c) = static_cast<float>(r + 1);
  }
  return out;
}

TEST(Linear, ShapeAndBias) {
  Rng rng(1);
  const Linear layer(4, 3, rng);
  const Tensor x = Tensor::constant(Matrix(5, 4, 0.0F));
  const Tensor y = layer.forward(x);
  EXPECT_EQ(y.rows(), 5U);
  EXPECT_EQ(y.cols(), 3U);
  // Zero input -> bias only, and bias initializes to zero.
  for (const float v : y.value().data()) EXPECT_FLOAT_EQ(v, 0.0F);
}

TEST(Linear, RegistersWeightAndBias) {
  Rng rng(2);
  Linear layer(4, 3, rng);
  ASSERT_EQ(layer.parameters().size(), 2U);
  EXPECT_EQ(layer.parameter_count(), 4 * 3 + 3);
}

TEST(Mlp, DepthAndOutputShape) {
  Rng rng(3);
  Mlp mlp({8, 16, 16, 1}, rng);
  EXPECT_EQ(mlp.parameters().size(), 6U);  // 3 layers x (W, b)
  const Tensor y = mlp.forward(Tensor::constant(Matrix(7, 8, 0.1F)));
  EXPECT_EQ(y.rows(), 7U);
  EXPECT_EQ(y.cols(), 1U);
}

TEST(Mlp, TooFewDimsThrows) {
  Rng rng(4);
  EXPECT_THROW(Mlp({8}, rng), std::invalid_argument);
}

TEST(GcnConv, MeanWithSelfHandComputed) {
  Rng rng(5);
  GcnConv layer(1, 1, rng);
  // Overwrite parameters for a deterministic check: W = [[1]], b = [0].
  layer.parameters()[0].mutable_value().at(0, 0) = 1.0F;
  layer.parameters()[1].mutable_value().at(0, 0) = 0.0F;

  const Block block = tiny_block();
  const Tensor x = Tensor::constant(iota_features(4, 1));  // rows: 1,2,3,4
  const Tensor y = layer.forward(block, x);
  ASSERT_EQ(y.rows(), 2U);
  // dst 0: (self=1 + src2=3 + src3=4) / (1 + 2) = 8/3.
  EXPECT_NEAR(y.value().at(0, 0), 8.0F / 3.0F, 1e-5);
  // dst 1: (self=2 + src3=4) / (1 + 1) = 3.
  EXPECT_NEAR(y.value().at(1, 0), 3.0F, 1e-5);
}

TEST(GcnConv, RespectsEdgeWeights) {
  Rng rng(6);
  GcnConv layer(1, 1, rng);
  layer.parameters()[0].mutable_value().at(0, 0) = 1.0F;
  layer.parameters()[1].mutable_value().at(0, 0) = 0.0F;
  Block block = tiny_block();
  block.edge_weight = {2.0F, 0.0F, 1.0F};  // zero weight disables the 3->0 edge
  const Tensor x = Tensor::constant(iota_features(4, 1));
  const Tensor y = layer.forward(block, x);
  // dst 0: (1 + 2*3 + 0*4) / (1 + 2 + 0) = 7/3.
  EXPECT_NEAR(y.value().at(0, 0), 7.0F / 3.0F, 1e-5);
}

TEST(SageConv, MeanAggregatorHandComputed) {
  Rng rng(7);
  SageConv layer(1, 1, rng);
  // W_self = 1, W_neigh = 1, b = 0.
  layer.parameters()[0].mutable_value().at(0, 0) = 1.0F;
  layer.parameters()[1].mutable_value().at(0, 0) = 1.0F;
  layer.parameters()[2].mutable_value().at(0, 0) = 0.0F;
  const Block block = tiny_block();
  const Tensor x = Tensor::constant(iota_features(4, 1));
  const Tensor y = layer.forward(block, x);
  // dst 0: self 1 + mean(3, 4) = 4.5; dst 1: self 2 + mean(4) = 6.
  EXPECT_NEAR(y.value().at(0, 0), 4.5F, 1e-5);
  EXPECT_NEAR(y.value().at(1, 0), 6.0F, 1e-5);
}

TEST(SageConv, IsolatedDestinationKeepsSelfTermOnly) {
  Rng rng(8);
  SageConv layer(1, 1, rng);
  layer.parameters()[0].mutable_value().at(0, 0) = 1.0F;
  layer.parameters()[1].mutable_value().at(0, 0) = 1.0F;
  layer.parameters()[2].mutable_value().at(0, 0) = 0.0F;
  Block block;
  block.src_nodes = {0};
  block.dst_count = 1;  // no edges at all
  const Tensor x = Tensor::constant(iota_features(1, 1));
  const Tensor y = layer.forward(block, x);
  EXPECT_NEAR(y.value().at(0, 0), 1.0F, 1e-5);
}

class AttentionLayerTest : public ::testing::TestWithParam<GnnKind> {};

TEST_P(AttentionLayerTest, OutputIsConvexCombinationUnderIdentityWeight) {
  // With W = I (1-dim) the output of attention aggregation is a convex
  // combination of {self, neighbors}; it must lie within their value range.
  Rng rng(9);
  const auto layer = make_gnn_layer(GetParam(), 1, 1, rng);
  const Block block = tiny_block();
  const Tensor x = Tensor::constant(iota_features(4, 1));
  const Tensor y = layer->forward(block, x);
  ASSERT_EQ(y.rows(), 2U);
  // All inputs are in [1, 4]; attention output (pre-bias, with small random
  // bias zeroed below) must stay within a slightly padded hull after the
  // linear map. Set W = 1, bias = 0 explicitly for GAT (params 0=W,3=b) and
  // GATv2 (0=W_src, 1=W_dst, 3=b).
  const auto kind = GetParam();
  Rng rng2(9);
  auto fresh = make_gnn_layer(kind, 1, 1, rng2);
  auto& params = fresh->parameters();
  params[0].mutable_value().at(0, 0) = 1.0F;
  if (kind == GnnKind::kGatv2) params[1].mutable_value().at(0, 0) = 1.0F;
  params.back().mutable_value().at(0, 0) = 0.0F;  // bias registered last
  const Tensor z = fresh->forward(block, x);
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_GE(z.value().at(d, 0), 1.0F - 1e-4);
    EXPECT_LE(z.value().at(d, 0), 4.0F + 1e-4);
  }
}

TEST_P(AttentionLayerTest, GradientsReachAllParameters) {
  Rng rng(10);
  const auto layer = make_gnn_layer(GetParam(), 3, 4, rng);
  const Block block = tiny_block();
  Rng feat_rng(11);
  const Tensor x = Tensor::constant(tensor::gaussian(4, 3, 0.0, 1.0, feat_rng));
  Tensor loss = mean_all(layer->forward(block, x));
  loss.backward();
  for (const auto& p : layer->parameters()) {
    EXPECT_FALSE(p.grad().empty()) << "parameter missed by backward";
  }
}

INSTANTIATE_TEST_SUITE_P(GatKinds, AttentionLayerTest,
                         ::testing::Values(GnnKind::kGat, GnnKind::kGatv2));

TEST(Predictors, DotPredictorHandComputed) {
  const DotPredictor predictor;
  Matrix emb(3, 2);
  emb.at(0, 0) = 1.0F;
  emb.at(0, 1) = 2.0F;
  emb.at(1, 0) = 3.0F;
  emb.at(1, 1) = -1.0F;
  emb.at(2, 0) = 0.5F;
  emb.at(2, 1) = 0.5F;
  const Tensor embeddings = Tensor::constant(std::move(emb));
  const std::vector<PairIndex> pairs{{0, 1}, {1, 2}};
  const Tensor scores = predictor.score(embeddings, pairs);
  EXPECT_FLOAT_EQ(scores.value().at(0, 0), 1.0F * 3 + 2 * -1);
  EXPECT_FLOAT_EQ(scores.value().at(1, 0), 3 * 0.5F - 1 * 0.5F);
}

TEST(Predictors, MlpPredictorShapeAndGradients) {
  Rng rng(12);
  MlpPredictor predictor(8, 16, 3, rng);
  Rng feat_rng(13);
  const Tensor embeddings = Tensor::constant(tensor::gaussian(5, 8, 0.0, 1.0, feat_rng));
  const std::vector<PairIndex> pairs{{0, 1}, {2, 3}, {4, 0}};
  Tensor scores = predictor.score(embeddings, pairs);
  EXPECT_EQ(scores.rows(), 3U);
  EXPECT_EQ(scores.cols(), 1U);
  mean_all(scores).backward();
  for (const auto& p : predictor.parameters()) EXPECT_FALSE(p.grad().empty());
}

TEST(Predictors, FactoryAndNames) {
  EXPECT_EQ(to_string(PredictorKind::kDot), "dot");
  EXPECT_EQ(predictor_kind_from_string("mlp"), PredictorKind::kMlp);
  EXPECT_THROW(predictor_kind_from_string("transformer"), std::invalid_argument);
}

TEST(GnnKindNames, RoundTrip) {
  for (const auto kind :
       {GnnKind::kGcn, GnnKind::kSage, GnnKind::kGat, GnnKind::kGatv2}) {
    EXPECT_EQ(gnn_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_EQ(gnn_kind_from_string("sage"), GnnKind::kSage);
  EXPECT_THROW(gnn_kind_from_string("transformer"), std::invalid_argument);
}

TEST(Model, SameSeedGivesIdenticalReplicas) {
  ModelConfig config;
  config.in_dim = 6;
  config.hidden_dim = 8;
  const LinkPredictionModel a(config, 42);
  const LinkPredictionModel b(config, 42);
  ASSERT_EQ(a.parameters().size(), b.parameters().size());
  for (std::size_t i = 0; i < a.parameters().size(); ++i) {
    EXPECT_FLOAT_EQ(
        tensor::max_abs_diff(a.parameters()[i].value(), b.parameters()[i].value()), 0.0F);
  }
}

TEST(Model, DifferentSeedsDiffer) {
  ModelConfig config;
  config.in_dim = 6;
  config.hidden_dim = 8;
  const LinkPredictionModel a(config, 1);
  const LinkPredictionModel b(config, 2);
  EXPECT_GT(tensor::max_abs_diff(a.parameters()[0].value(), b.parameters()[0].value()), 0.0F);
}

TEST(Model, DefaultFanoutsMatchPaper) {
  ModelConfig config;
  config.in_dim = 4;
  config.gnn = GnnKind::kSage;
  const LinkPredictionModel sage(config, 1);
  EXPECT_EQ(sage.default_fanouts(), (std::vector<std::uint32_t>{5, 10, 25}));
  config.gnn = GnnKind::kGcn;
  const LinkPredictionModel gcn(config, 1);
  EXPECT_EQ(gcn.default_fanouts(), (std::vector<std::uint32_t>{0, 0, 0}));
}

TEST(Model, EncodeScoreEndToEnd) {
  ModelConfig config;
  config.in_dim = 4;
  config.hidden_dim = 8;
  config.num_layers = 2;
  const LinkPredictionModel model(config, 3);

  // Two stacked blocks: bottom expands 3 -> 3 (identity-ish), top 2 dsts.
  sampling::ComputationGraph cg;
  Block bottom;
  bottom.src_nodes = {0, 1, 2};
  bottom.dst_count = 3;
  bottom.edge_src = {1, 2, 0};
  bottom.edge_dst = {0, 1, 2};
  bottom.edge_weight = {1, 1, 1};
  Block top;
  top.src_nodes = {0, 1, 2};
  top.dst_count = 2;
  top.edge_src = {2, 2};
  top.edge_dst = {0, 1};
  top.edge_weight = {1, 1};
  cg.blocks = {bottom, top};

  Rng rng(14);
  const auto embeddings = model.encode(cg, tensor::gaussian(3, 4, 0.0, 1.0, rng));
  EXPECT_EQ(embeddings.rows(), 2U);
  EXPECT_EQ(embeddings.cols(), 8U);
  const std::vector<PairIndex> pairs{{0, 1}};
  const auto scores = model.score(embeddings, pairs);
  EXPECT_EQ(scores.rows(), 1U);
}

TEST(Model, MismatchedDepthThrows) {
  ModelConfig config;
  config.in_dim = 4;
  config.num_layers = 3;
  const LinkPredictionModel model(config, 3);
  sampling::ComputationGraph cg;
  cg.blocks.resize(2);  // too shallow
  cg.blocks[0].src_nodes = {0};
  cg.blocks[0].dst_count = 1;
  cg.blocks[1].src_nodes = {0};
  cg.blocks[1].dst_count = 1;
  EXPECT_THROW((void)model.encode(cg, Matrix(1, 4)), std::invalid_argument);
}

TEST(Model, CopyParameters) {
  ModelConfig config;
  config.in_dim = 5;
  config.hidden_dim = 4;
  const LinkPredictionModel source(config, 10);
  LinkPredictionModel destination(config, 20);
  EXPECT_GT(tensor::max_abs_diff(source.parameters()[0].value(),
                                 destination.parameters()[0].value()),
            0.0F);
  copy_parameters(source, destination);
  for (std::size_t i = 0; i < source.parameters().size(); ++i) {
    EXPECT_FLOAT_EQ(tensor::max_abs_diff(source.parameters()[i].value(),
                                         destination.parameters()[i].value()),
                    0.0F);
  }
}

TEST(Optimizers, SgdDescendsQuadratic) {
  // Minimize f(w) = 0.5 ||w||^2; gradient = w.
  class Quadratic : public Module {
   public:
    Quadratic() { w_ = register_parameter(Matrix(2, 2, 3.0F)); }
    Tensor w_;
  };
  Quadratic model;
  Sgd sgd(model, 0.5F);  // grad = 2w/n = w/2, so each step scales w by 0.75
  for (int step = 0; step < 50; ++step) {
    model.zero_grad();
    Tensor loss = mean_all(mul(model.w_, model.w_));
    loss.backward();
    sgd.step();
  }
  EXPECT_LT(model.w_.value().squared_norm(), 0.1);
}

TEST(Optimizers, AdamDescendsQuadraticFasterThanSgdOnIllScaled) {
  class Quadratic : public Module {
   public:
    Quadratic() { w_ = register_parameter(Matrix(1, 2, 2.0F)); }
    Tensor w_;
  };
  auto run = [](Optimizer& optimizer, Quadratic& model) {
    // f = mean(c * w * w) with c = [100, 0.01] (ill-conditioned).
    Matrix scale_values(1, 2);
    scale_values.at(0, 0) = 100.0F;
    scale_values.at(0, 1) = 0.01F;
    const Tensor c = Tensor::constant(scale_values);
    for (int step = 0; step < 200; ++step) {
      optimizer.zero_grad();
      Tensor loss = mean_all(mul(mul(model.w_, model.w_), c));
      loss.backward();
      optimizer.step();
    }
    return std::abs(model.w_.value().at(0, 0));
  };
  Quadratic adam_model;
  Adam adam(adam_model, 0.05F);
  const float adam_w0 = run(adam, adam_model);
  EXPECT_LT(adam_w0, 0.05F);
}

TEST(Optimizers, SgdWeightDecayShrinksWeights) {
  class P : public Module {
   public:
    P() { w_ = register_parameter(Matrix(1, 1, 1.0F)); }
    Tensor w_;
  };
  P model;
  Sgd sgd(model, 0.1F, /*weight_decay=*/0.5F);
  // No gradient accumulated -> grad empty -> step skips. Give a zero grad.
  model.w_.mutable_grad().resize(1, 1);
  sgd.step();
  EXPECT_NEAR(model.w_.value().at(0, 0), 1.0F - 0.1F * 0.5F, 1e-6);
}

TEST(Optimizers, ZeroGradClearsAll) {
  class P : public Module {
   public:
    P() { w_ = register_parameter(Matrix(1, 1, 1.0F)); }
    Tensor w_;
  };
  P model;
  mean_all(model.w_).backward();
  Adam adam(model, 0.1F);
  adam.zero_grad();
  EXPECT_FLOAT_EQ(model.w_.grad().at(0, 0), 0.0F);
}

}  // namespace
}  // namespace splpg::nn
