// Tests for the extension components: uniform sparsifier, spectral
// partitioner, and degree-weighted negative sampling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "partition/spectral.hpp"
#include "sampling/negative_sampler.hpp"
#include "sparsify/sparsifier.hpp"

namespace splpg {
namespace {

using graph::CsrGraph;
using graph::GraphBuilder;
using graph::NodeId;
using util::Rng;

CsrGraph community_graph(NodeId nodes = 400, graph::EdgeId edges = 2800,
                         std::uint32_t communities = 4, std::uint64_t seed = 1) {
  data::SbmParams params;
  params.num_nodes = nodes;
  params.num_edges = edges;
  params.num_communities = communities;
  params.intra_prob = 0.92;
  Rng rng(seed);
  return data::generate_sbm(params, rng);
}

TEST(UniformSparsifier, SameBudgetAsEffectiveResistance) {
  const CsrGraph graph = community_graph();
  Rng rng1(2);
  Rng rng2(2);
  sparsify::SparsifyStats uniform_stats;
  sparsify::SparsifyStats resistance_stats;
  (void)sparsify::UniformSparsifier(0.15).sparsify(graph, rng1, &uniform_stats);
  (void)sparsify::EffectiveResistanceSparsifier(0.15).sparsify(graph, rng2, &resistance_stats);
  EXPECT_EQ(uniform_stats.sampled_draws, resistance_stats.sampled_draws);
  // With-replacement collisions are rarer under the uniform distribution, so
  // it keeps at least as many distinct edges.
  EXPECT_GE(uniform_stats.kept_edges, resistance_stats.kept_edges);
}

TEST(UniformSparsifier, WeightsAreUniformAcrossKeptEdges) {
  const CsrGraph graph = community_graph(100, 600);
  Rng rng(3);
  const auto sparse = sparsify::UniformSparsifier(0.2).sparsify(graph, rng);
  ASSERT_TRUE(sparse.is_weighted());
  // Singly-drawn edges all share the weight |E|/L; multiples are integer
  // multiples of it.
  const float base = *std::min_element(sparse.edge_weights().begin(),
                                       sparse.edge_weights().end());
  for (const float w : sparse.edge_weights()) {
    const float ratio = w / base;
    EXPECT_NEAR(ratio, std::round(ratio), 1e-3);
  }
}

TEST(UniformSparsifier, KeepsHubEdgesMoreOftenThanResistance) {
  // ER-importance favors low-degree edges; the uniform baseline keeps hub-hub
  // edges at the same rate as any other, so the mean endpoint degree of kept
  // edges is higher under uniform sampling.
  const CsrGraph graph = community_graph(600, 5000, 4, 5);
  auto mean_endpoint_degree = [&](const CsrGraph& sparse) {
    double total = 0.0;
    for (const auto& [u, v] : sparse.edges()) {
      total += graph.degree(u) + graph.degree(v);
    }
    return total / (2.0 * static_cast<double>(sparse.num_edges()));
  };
  Rng rng1(6);
  Rng rng2(6);
  const auto uniform = sparsify::UniformSparsifier(0.1).sparsify(graph, rng1);
  const auto resistance = sparsify::EffectiveResistanceSparsifier(0.1).sparsify(graph, rng2);
  EXPECT_GT(mean_endpoint_degree(uniform), mean_endpoint_degree(resistance));
}

TEST(SparsifierFactory, KindsAndNames) {
  const auto er = sparsify::make_sparsifier(sparsify::SparsifierKind::kEffectiveResistance, 0.1);
  EXPECT_EQ(er->name(), "effective_resistance");
  const auto uniform = sparsify::make_sparsifier(sparsify::SparsifierKind::kUniform, 0.1);
  EXPECT_EQ(uniform->name(), "uniform");
  EXPECT_DOUBLE_EQ(uniform->alpha(), 0.1);
}

TEST(SpectralPartitioner, ValidBalancedAssignment) {
  const CsrGraph graph = community_graph(200, 1200, 4);
  Rng rng(7);
  const partition::SpectralPartitioner partitioner;
  for (const std::uint32_t p : {2U, 3U, 4U}) {
    const auto parts = partitioner.partition(graph, p, rng);
    ASSERT_EQ(parts.assignment.size(), graph.num_nodes());
    for (const auto part : parts.assignment) EXPECT_LT(part, p);
    EXPECT_LT(partition::balance(graph, parts), 1.25);
  }
}

TEST(SpectralPartitioner, RecoversPlantedBisection) {
  // Two dense communities, sparse cross edges: spectral bisection should cut
  // far fewer edges than random.
  const CsrGraph graph = community_graph(200, 1600, 2, 8);
  Rng rng(9);
  const auto spectral = partition::SpectralPartitioner().partition(graph, 2, rng);
  const auto random = partition::RandomPartitioner().partition(graph, 2, rng);
  EXPECT_LT(partition::edge_cut(graph, spectral), partition::edge_cut(graph, random) / 2);
}

TEST(SpectralPartitioner, SizeGuardThrows) {
  const CsrGraph graph = community_graph(300, 1500);
  Rng rng(10);
  EXPECT_THROW(partition::SpectralPartitioner(100).partition(graph, 2, rng),
               std::invalid_argument);
}

TEST(SpectralPartitioner, InFactory) {
  EXPECT_EQ(partition::make_partitioner("spectral")->name(), "spectral");
}

TEST(DegreeWeightedNegatives, PrefersHighDegreeDestinations) {
  // Star graph: hub 0 has degree n-1, leaves have degree 1. Under the
  // (deg+1)^0.75 distribution the hub must be drawn an order of magnitude
  // more often than under uniform. Sample with a leaf source (leaves are not
  // adjacent to each other, so only the hub edge gets rejected — use source
  // = leaf and count hub != possible; instead make source a node with no
  // edge to the hub: impossible in a star, so add one extra isolated node as
  // the source).
  constexpr NodeId kNodes = 101;
  GraphBuilder builder(kNodes + 1);  // node kNodes is isolated (the source)
  for (NodeId leaf = 1; leaf < kNodes; ++leaf) builder.add_edge(0, leaf);
  const CsrGraph graph = builder.build();

  std::vector<NodeId> candidates(kNodes);  // hub + leaves; not the source
  for (NodeId v = 0; v < kNodes; ++v) candidates[v] = v;
  const auto weights = sampling::negative_candidate_weights(
      sampling::NegativeDistribution::kDegreeWeighted, graph, candidates);
  ASSERT_EQ(weights.size(), candidates.size());
  EXPECT_GT(weights[0], 10.0 * weights[1]);  // hub weight dominates

  const sampling::PerSourceNegativeSampler weighted(
      candidates, [&graph](NodeId u, NodeId v) { return graph.has_edge(u, v); }, weights);
  const sampling::PerSourceNegativeSampler uniform(
      candidates, [&graph](NodeId u, NodeId v) { return graph.has_edge(u, v); });

  auto hub_rate = [&](const sampling::PerSourceNegativeSampler& sampler, std::uint64_t seed) {
    Rng rng(seed);
    int hub_draws = 0;
    constexpr int kDraws = 5000;
    for (int i = 0; i < kDraws; ++i) {
      if (sampler.sample_destination(kNodes, rng) == 0) ++hub_draws;
    }
    return static_cast<double>(hub_draws) / kDraws;
  };
  EXPECT_GT(hub_rate(weighted, 12), 5.0 * hub_rate(uniform, 12));
}

TEST(DegreeWeightedNegatives, UniformDistributionYieldsNoWeights) {
  const CsrGraph graph = community_graph(100, 500);
  std::vector<NodeId> candidates{0, 1, 2};
  EXPECT_TRUE(sampling::negative_candidate_weights(sampling::NegativeDistribution::kUniform,
                                                   graph, candidates)
                  .empty());
}

TEST(DegreeWeightedNegatives, WeightArityMismatchThrows) {
  EXPECT_THROW(sampling::PerSourceNegativeSampler({0, 1, 2},
                                                  [](NodeId, NodeId) { return false; },
                                                  {1.0, 2.0}),
               std::invalid_argument);
}

TEST(TrainerExtensions, UniformSparsifierVariantRuns) {
  const auto dataset = data::make_dataset("cora", 0.1, 13);
  util::Rng split_rng = util::Rng(13).split("split");
  const auto split = sampling::split_edges(dataset.graph, sampling::SplitOptions{}, split_rng);
  core::TrainConfig config;
  config.method = core::Method::kSplpg;
  config.sparsifier = sparsify::SparsifierKind::kUniform;
  config.model.hidden_dim = 16;
  config.model.num_layers = 2;
  config.epochs = 2;
  config.batch_size = 64;
  config.num_partitions = 2;
  config.max_batches_per_epoch = 2;
  config.seed = 13;
  const auto result = core::train_link_prediction(split, dataset.features, config);
  EXPECT_EQ(result.history.size(), 2U);
  EXPECT_GT(result.comm.total_bytes(), 0U);
}

TEST(TrainerExtensions, DegreeWeightedNegativesVariantRuns) {
  const auto dataset = data::make_dataset("cora", 0.1, 14);
  util::Rng split_rng = util::Rng(14).split("split");
  const auto split = sampling::split_edges(dataset.graph, sampling::SplitOptions{}, split_rng);
  core::TrainConfig config;
  config.method = core::Method::kSplpg;
  config.negative_distribution = sampling::NegativeDistribution::kDegreeWeighted;
  config.model.hidden_dim = 16;
  config.model.num_layers = 2;
  config.epochs = 2;
  config.batch_size = 64;
  config.num_partitions = 2;
  config.max_batches_per_epoch = 2;
  config.seed = 14;
  const auto result = core::train_link_prediction(split, dataset.features, config);
  EXPECT_EQ(result.history.size(), 2U);
  EXPECT_GT(result.test_auc, 0.3);
}

}  // namespace
}  // namespace splpg
