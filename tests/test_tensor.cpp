// Unit tests for the tensor module: matrix kernels, eigendecomposition,
// pseudo-inverse, and initializers.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/eigen.hpp"
#include "tensor/init.hpp"
#include "tensor/matrix.hpp"
#include "tensor/parallel.hpp"
#include "tensor/vec.hpp"
#include "util/rng.hpp"

namespace splpg::tensor {
namespace {

using util::Rng;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix out(rows, cols);
  for (float& x : out.data()) x = static_cast<float>(rng.normal(0.0, 1.0));
  return out;
}

/// Naive triple-loop reference GEMM.
Matrix reference_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float sum = 0.0F;
      for (std::size_t k = 0; k < a.cols(); ++k) sum += a.at(i, k) * b.at(k, j);
      c.at(i, j) = sum;
    }
  }
  return c;
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(1);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  EXPECT_LT(max_abs_diff(matmul(a, b), reference_matmul(a, b)), 1e-4F);
}

TEST_P(GemmShapes, TransposedVariantsMatchReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(2);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  // A^T * B via matmul_tn(A, B) where A is (k x m) transposed input.
  const Matrix at = a.transposed();
  EXPECT_LT(max_abs_diff(matmul_tn(at, b), reference_matmul(a, b)), 1e-4F);
  const Matrix bt = b.transposed();
  EXPECT_LT(max_abs_diff(matmul_nt(a, bt), reference_matmul(a, b)), 1e-4F);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapes,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{3, 4, 5},
                                           std::tuple{7, 1, 7}, std::tuple{16, 16, 16},
                                           std::tuple{2, 31, 5}, std::tuple{10, 64, 3}));

TEST(Matrix, AccumulatingGemmAddsOnTop) {
  Rng rng(3);
  const Matrix a = random_matrix(3, 4, rng);
  const Matrix b = random_matrix(4, 2, rng);
  Matrix c(3, 2, 1.0F);
  matmul_acc(a, b, c);
  Matrix expected = reference_matmul(a, b);
  for (float& x : expected.data()) x += 1.0F;
  EXPECT_LT(max_abs_diff(c, expected), 1e-4F);
}

TEST(Matrix, ElementwiseOps) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {5, 6, 7, 8});
  EXPECT_FLOAT_EQ(add(a, b).at(1, 1), 12.0F);
  EXPECT_FLOAT_EQ(sub(a, b).at(0, 0), -4.0F);
  EXPECT_FLOAT_EQ(hadamard(a, b).at(1, 0), 21.0F);
}

TEST(Matrix, InplaceOps) {
  Matrix a(1, 3, {1, 2, 3});
  Matrix b(1, 3, {10, 20, 30});
  a.add_inplace(b);
  EXPECT_FLOAT_EQ(a.at(0, 2), 33.0F);
  a.axpy_inplace(-1.0F, b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 1.0F);
  a.scale_inplace(2.0F);
  EXPECT_FLOAT_EQ(a.at(0, 1), 4.0F);
}

TEST(Matrix, SquaredNormAndMap) {
  Matrix a(1, 3, {3, 4, 0});
  EXPECT_DOUBLE_EQ(a.squared_norm(), 25.0);
  const Matrix doubled = a.map([](float x) { return 2 * x; });
  EXPECT_FLOAT_EQ(doubled.at(0, 1), 8.0F);
}

TEST(Matrix, TransposedTwiceIsIdentity) {
  Rng rng(4);
  const Matrix a = random_matrix(3, 7, rng);
  EXPECT_FLOAT_EQ(max_abs_diff(a.transposed().transposed(), a), 0.0F);
}

TEST(Matrix, BlockedTransposeMatchesNaiveBytes) {
  // The blocked transpose is pure data movement; its bytes must equal the
  // naive element-by-element transpose on shapes around and across the
  // 32-wide block boundary (including degenerate rows/columns).
  Rng rng(41);
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {1, 1}, {1, 67}, {67, 1}, {31, 33}, {32, 32}, {37, 53}, {64, 65}, {100, 3}};
  for (const auto& [rows, cols] : shapes) {
    const Matrix a = random_matrix(rows, cols, rng);
    Matrix expected(cols, rows);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) expected.at(c, r) = a.at(r, c);
    }
    const Matrix got = a.transposed();
    ASSERT_EQ(got.rows(), cols);
    ASSERT_EQ(got.cols(), rows);
    EXPECT_TRUE(std::equal(got.data().begin(), got.data().end(), expected.data().begin()))
        << rows << "x" << cols;
  }
}

TEST(Matrix, ZeroSkipMasksNanByDefault) {
  // Historical (and default) behavior: an exact 0 in A skips the whole B
  // row, so NaN/Inf hiding behind a zero coefficient never reaches C.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Matrix a(1, 2, {0.0F, 1.0F});
  Matrix b(2, 2, {nan, std::numeric_limits<float>::infinity(), 2.0F, 3.0F});
  ASSERT_TRUE(kernels_assume_finite());
  Matrix c(1, 2);
  matmul_acc(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 2.0F);
  EXPECT_FLOAT_EQ(c.at(0, 1), 3.0F);

  // A^T(2x1) * B(1x2): the a(0,0) = 0 coefficient would multiply B's NaN
  // row into C row 0 — skipped by default.
  Matrix bt(1, 2, {nan, 3.0F});
  Matrix ct(2, 2);
  matmul_tn_acc(a, bt, ct);
  EXPECT_FLOAT_EQ(ct.at(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(ct.at(0, 1), 0.0F);
  EXPECT_TRUE(std::isnan(ct.at(1, 0)));
  EXPECT_FLOAT_EQ(ct.at(1, 1), 3.0F);
}

TEST(Matrix, ZeroSkipDisabledPropagatesNan) {
  // Strict IEEE mode: 0 * NaN = NaN must poison the accumulator.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Matrix a(1, 2, {0.0F, 1.0F});
  Matrix b(2, 2, {nan, std::numeric_limits<float>::infinity(), 2.0F, 3.0F});
  AssumeFiniteScope strict(false);
  Matrix c(1, 2);
  matmul_acc(a, b, c);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));  // 0 * NaN + 1 * 2
  EXPECT_TRUE(std::isnan(c.at(0, 1)));  // 0 * Inf + 1 * 3 = NaN + 3

  Matrix bt(1, 2, {nan, 3.0F});
  Matrix ct(2, 2);
  matmul_tn_acc(a, bt, ct);
  EXPECT_TRUE(std::isnan(ct.at(0, 0)));  // 0 * NaN
  EXPECT_FLOAT_EQ(ct.at(0, 1), 0.0F);    // 0 * 3
}

TEST(Matrix, AssumeFiniteScopeRestoresPreviousValue) {
  ASSERT_TRUE(kernels_assume_finite());
  {
    AssumeFiniteScope strict(false);
    EXPECT_FALSE(kernels_assume_finite());
    {
      AssumeFiniteScope inner(true);
      EXPECT_TRUE(kernels_assume_finite());
    }
    EXPECT_FALSE(kernels_assume_finite());
  }
  EXPECT_TRUE(kernels_assume_finite());
}

TEST(Parallel, SaturatingFlopGateDoesNotWrap) {
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  // (2^22)^3 = 2^66 wraps to 0 in std::size_t — the old gate read these
  // adversarial shapes as "tiny" and silently de-parallelized.
  constexpr std::size_t kBig = std::size_t{1} << 22U;
  EXPECT_EQ(kBig * kBig * kBig, 0U);  // the wrap the fix exists for
  EXPECT_EQ(sat_flops(kBig, kBig, kBig), kMax);
  EXPECT_EQ(sat_mul(kMax, 2), kMax);
  EXPECT_EQ(sat_flops(std::size_t{1} << 32U, std::size_t{1} << 32U, 16), kMax);
  // Non-overflowing products are exact.
  EXPECT_EQ(sat_mul(12, 12), 144U);
  EXPECT_EQ(sat_flops(128, 64, 32), 128U * 64U * 32U);
  EXPECT_EQ(sat_flops(0, kMax, kMax), 0U);
}

TEST(Eigen, DiagonalMatrix) {
  Matrix a(3, 3);
  a.at(0, 0) = 3.0F;
  a.at(1, 1) = 1.0F;
  a.at(2, 2) = 2.0F;
  const auto decomposition = symmetric_eigen(a);
  ASSERT_EQ(decomposition.eigenvalues.size(), 3U);
  EXPECT_NEAR(decomposition.eigenvalues[0], 1.0, 1e-8);
  EXPECT_NEAR(decomposition.eigenvalues[1], 2.0, 1e-8);
  EXPECT_NEAR(decomposition.eigenvalues[2], 3.0, 1e-8);
}

TEST(Eigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  Matrix a(2, 2, {2, 1, 1, 2});
  const auto decomposition = symmetric_eigen(a);
  EXPECT_NEAR(decomposition.eigenvalues[0], 1.0, 1e-8);
  EXPECT_NEAR(decomposition.eigenvalues[1], 3.0, 1e-8);
}

TEST(Eigen, ReconstructionProperty) {
  Rng rng(5);
  const Matrix half = random_matrix(6, 6, rng);
  // Symmetrize: A = (H + H^T) / 2.
  Matrix a = add(half, half.transposed());
  a.scale_inplace(0.5F);
  const auto decomposition = symmetric_eigen(a);
  // A v_k = lambda_k v_k for every eigenpair.
  for (std::size_t k = 0; k < 6; ++k) {
    Matrix v(6, 1);
    for (std::size_t i = 0; i < 6; ++i) v.at(i, 0) = decomposition.eigenvectors.at(i, k);
    const Matrix av = matmul(a, v);
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_NEAR(av.at(i, 0), decomposition.eigenvalues[k] * v.at(i, 0), 1e-3);
    }
  }
}

TEST(Eigen, EigenvectorsOrthonormal) {
  Rng rng(6);
  const Matrix half = random_matrix(5, 5, rng);
  Matrix a = add(half, half.transposed());
  const auto decomposition = symmetric_eigen(a);
  const Matrix vtv = matmul_tn(decomposition.eigenvectors, decomposition.eigenvectors);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(vtv.at(i, j), i == j ? 1.0 : 0.0, 1e-4);
    }
  }
}

TEST(Eigen, PseudoInverseOfInvertibleIsInverse) {
  Matrix a(2, 2, {4, 1, 1, 3});
  const Matrix pinv = symmetric_pseudo_inverse(a);
  const Matrix identity = matmul(a, pinv);
  EXPECT_NEAR(identity.at(0, 0), 1.0, 1e-4);
  EXPECT_NEAR(identity.at(1, 1), 1.0, 1e-4);
  EXPECT_NEAR(identity.at(0, 1), 0.0, 1e-4);
}

TEST(Eigen, PseudoInverseSatisfiesMoorePenrose) {
  // Singular matrix: rank-1 projector scaled.
  Matrix a(3, 3);
  const float v[3] = {1.0F, 2.0F, -1.0F};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) a.at(i, j) = v[i] * v[j];
  }
  const Matrix pinv = symmetric_pseudo_inverse(a);
  // A A+ A = A.
  const Matrix apa = matmul(matmul(a, pinv), a);
  EXPECT_LT(max_abs_diff(apa, a), 1e-3F);
  // A+ A A+ = A+.
  const Matrix pap = matmul(matmul(pinv, a), pinv);
  EXPECT_LT(max_abs_diff(pap, pinv), 1e-3F);
}

TEST(Init, XavierUniformBounds) {
  Rng rng(7);
  const Matrix w = xavier_uniform(100, 50, rng);
  const double bound = std::sqrt(6.0 / 150.0);
  for (const float x : w.data()) {
    EXPECT_GE(x, -bound);
    EXPECT_LE(x, bound);
  }
}

TEST(Init, HeNormalVariance) {
  Rng rng(8);
  const Matrix w = he_normal(200, 100, rng);
  double sum_sq = 0.0;
  for (const float x : w.data()) sum_sq += static_cast<double>(x) * x;
  const double variance = sum_sq / static_cast<double>(w.size());
  EXPECT_NEAR(variance, 2.0 / 200.0, 2.0 / 200.0 * 0.15);
}

TEST(Init, DeterministicGivenRng) {
  Rng rng1(9);
  Rng rng2(9);
  const Matrix a = xavier_uniform(10, 10, rng1);
  const Matrix b = xavier_uniform(10, 10, rng2);
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.0F);
}

}  // namespace
}  // namespace splpg::tensor
