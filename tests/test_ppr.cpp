// Tests for the personalized-PageRank link predictor and the trainer's
// early-stopping / per-worker accounting extensions.
#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "eval/ppr.hpp"
#include "sampling/edge_split.hpp"

namespace splpg {
namespace {

using graph::CsrGraph;
using graph::GraphBuilder;
using graph::NodeId;
using util::Rng;

TEST(PersonalizedPageRank, MassApproximatelyConserved) {
  GraphBuilder builder(5);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  builder.add_edge(3, 4);
  builder.add_edge(0, 4);
  const CsrGraph graph = builder.build();
  const eval::PersonalizedPageRank ppr(graph, 0.15, 1e-7);
  const auto vec = ppr.ppr_vector(0);
  double total = 0.0;
  for (const auto& [node, mass] : vec) {
    EXPECT_GE(mass, 0.0);
    total += mass;
  }
  EXPECT_NEAR(total, 1.0, 1e-3);  // estimate + tiny leftover residual
}

TEST(PersonalizedPageRank, SeedHasLargestMass) {
  data::SbmParams params;
  params.num_nodes = 150;
  params.num_edges = 900;
  Rng rng(1);
  const CsrGraph graph = data::generate_sbm(params, rng);
  const eval::PersonalizedPageRank ppr(graph, 0.2, 1e-6);
  for (const NodeId seed : {NodeId{3}, NodeId{50}, NodeId{120}}) {
    if (graph.degree(seed) == 0) continue;
    const auto vec = ppr.ppr_vector(seed);
    double best = 0.0;
    for (const auto& [node, mass] : vec) best = std::max(best, mass);
    EXPECT_DOUBLE_EQ(vec.at(seed), best);
  }
}

TEST(PersonalizedPageRank, NeighborsOutrankDistantNodes) {
  GraphBuilder builder(7);  // path 0-1-2-3-4-5-6
  for (NodeId v = 0; v + 1 < 7; ++v) builder.add_edge(v, v + 1);
  const CsrGraph graph = builder.build();
  const eval::PersonalizedPageRank ppr(graph, 0.15, 1e-8);
  EXPECT_GT(ppr.score(0, 1), ppr.score(0, 3));
  EXPECT_GT(ppr.score(0, 3), ppr.score(0, 6));
}

TEST(PersonalizedPageRank, SymmetricScore) {
  data::SbmParams params;
  params.num_nodes = 80;
  params.num_edges = 400;
  Rng rng(2);
  const CsrGraph graph = data::generate_sbm(params, rng);
  const eval::PersonalizedPageRank ppr(graph);
  EXPECT_NEAR(ppr.score(3, 40), ppr.score(40, 3), 1e-12);
}

TEST(PersonalizedPageRank, BeatsChanceOnCommunityGraph) {
  data::SbmParams params;
  params.num_nodes = 300;
  params.num_edges = 2400;
  params.num_communities = 6;
  params.intra_prob = 0.9;
  Rng rng(3);
  const CsrGraph graph = data::generate_sbm(params, rng);
  Rng split_rng(4);
  const auto split = sampling::split_edges(graph, sampling::SplitOptions{}, split_rng);
  const eval::PersonalizedPageRank ppr(split.train_graph, 0.15, 1e-5);
  const auto result = eval::evaluate_heuristic(ppr, split);
  EXPECT_GT(result.test_auc, 0.7);
}

TEST(PersonalizedPageRank, IsolatedSeedKeepsAllMass) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);  // node 2 isolated
  const CsrGraph graph = builder.build();
  const eval::PersonalizedPageRank ppr(graph);
  const auto vec = ppr.ppr_vector(2);
  EXPECT_NEAR(vec.at(2), 1.0, 1e-9);
  EXPECT_EQ(vec.size(), 1U);
}

struct TrainerFixture {
  data::Dataset dataset = data::make_dataset("cora", 0.1, 31);
  sampling::LinkSplit split = [this] {
    util::Rng rng = util::Rng(31).split("split");
    return sampling::split_edges(dataset.graph, sampling::SplitOptions{}, rng);
  }();
};

TEST(TrainerEarlyStopping, PatienceTruncatesTraining) {
  const TrainerFixture fixture;
  core::TrainConfig config;
  config.method = core::Method::kSplpg;
  config.model.hidden_dim = 16;
  config.model.num_layers = 2;
  config.epochs = 12;
  config.batch_size = 64;
  config.num_partitions = 2;
  config.max_batches_per_epoch = 1;  // starve learning so validation stalls
  config.eval_every = 1;
  config.patience = 2;
  config.learning_rate = 0.0F;       // guarantees no improvement after epoch 1
  config.seed = 31;
  const auto result =
      core::train_link_prediction(fixture.split, fixture.dataset.features, config);
  EXPECT_LT(result.history.size(), 12U);
  // With lr = 0 every evaluation scores the initial model, so after the
  // first evaluation (which may or may not beat the 0.0 starting best)
  // validation never improves again: training stops within
  // 1 + patience epochs, and no earlier than patience.
  EXPECT_LE(result.history.size(), 1U + config.patience);
  EXPECT_GE(result.history.size(), config.patience);
}

TEST(TrainerEarlyStopping, ZeroPatienceRunsAllEpochs) {
  const TrainerFixture fixture;
  core::TrainConfig config;
  config.method = core::Method::kCentralized;
  config.model.hidden_dim = 16;
  config.model.num_layers = 2;
  config.epochs = 4;
  config.batch_size = 64;
  config.max_batches_per_epoch = 1;
  config.eval_every = 1;
  config.patience = 0;
  config.learning_rate = 0.0F;
  config.seed = 31;
  const auto result =
      core::train_link_prediction(fixture.split, fixture.dataset.features, config);
  EXPECT_EQ(result.history.size(), 4U);
}

TEST(TrainerPerWorkerComm, BreakdownSumsToTotal) {
  const TrainerFixture fixture;
  core::TrainConfig config;
  config.method = core::Method::kSplpg;
  config.model.hidden_dim = 16;
  config.model.num_layers = 2;
  config.epochs = 2;
  config.batch_size = 64;
  config.num_partitions = 3;
  config.max_batches_per_epoch = 2;
  config.seed = 31;
  const auto result =
      core::train_link_prediction(fixture.split, fixture.dataset.features, config);
  ASSERT_EQ(result.per_worker_comm.size(), 3U);
  std::uint64_t sum = 0;
  for (const auto& stats : result.per_worker_comm) sum += stats.total_bytes();
  EXPECT_EQ(sum, result.comm.total_bytes());
  EXPECT_GT(sum, 0U);
}

}  // namespace
}  // namespace splpg
